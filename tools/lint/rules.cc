/**
 * @file
 * The varsaw-lint rule implementations. Every rule is driven by its
 * `[rule.<id>]` manifest section; a disabled or absent section skips
 * the rule. Findings land in one flat list, sorted by location.
 *
 * Rule ids (see tools/lint/rules.toml for the authoritative config
 * and docs/architecture.md for the rationale):
 *   layering            one-way layer DAG over #include edges
 *   intrinsics          arch intrinsic headers confined to kernels/
 *   fp-contract         kernel TUs pinned to -ffp-contract=off
 *   nondeterminism      rand()/random_device/wall-clock now() bans
 *   parallel-accumulate reductions must use the fixed-fold helpers
 *   unordered-iter      no iteration over unordered containers
 *   status-taxonomy     runtime/service throw only StatusError
 *   atomics-order       no default-seq_cst atomic ops in hot paths
 *   metric-naming       registry names are dotted lowercase snake
 */

#include "lint.hh"

#include <algorithm>
#include <cctype>

namespace varsaw::lint {

namespace {

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Occurrences of identifier-like @p needle at word boundaries. */
std::vector<std::size_t>
findIdent(const std::string &text, const std::string &needle)
{
    std::vector<std::size_t> out;
    std::size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
        const bool leftOk =
            pos == 0 || !identChar(text[pos - 1]);
        const std::size_t end = pos + needle.size();
        const bool rightOk =
            end >= text.size() || !identChar(text[end]);
        // "::now" style needles start with ':'; boundary on the
        // left is then the preceding identifier char, which is fine.
        if (leftOk && rightOk)
            out.push_back(pos);
        pos += needle.size();
    }
    return out;
}

/** Offset just past the ')' matching the '(' at @p open (npos when
 * unbalanced). */
std::size_t
matchParen(const std::string &text, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < text.size(); ++i) {
        if (text[i] == '(')
            ++depth;
        else if (text[i] == ')' && --depth == 0)
            return i + 1;
    }
    return std::string::npos;
}

/** Skip a balanced <...> starting at @p open (offset of '<'). */
std::size_t
matchAngle(const std::string &text, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < text.size(); ++i) {
        if (text[i] == '<')
            ++depth;
        else if (text[i] == '>' && --depth == 0)
            return i + 1;
        else if (text[i] == ';')
            break; // not a template argument list after all
    }
    return std::string::npos;
}

void
emit(std::vector<Finding> &findings, const SourceFile &f, int line,
     const std::string &rule, const std::string &message)
{
    if (!f.allowed(rule, line))
        findings.push_back({f.path, line, rule, message});
}

/** `#include "..."` paths of @p f with their 1-based lines. */
std::vector<std::pair<std::string, int>>
quotedIncludes(const SourceFile &f)
{
    std::vector<std::pair<std::string, int>> out;
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
        const std::string &line = f.lines[i];
        std::size_t h = line.find_first_not_of(" \t");
        if (h == std::string::npos || line[h] != '#')
            continue;
        const std::size_t inc = line.find("include", h);
        if (inc == std::string::npos)
            continue;
        const std::size_t q1 = line.find('"', inc);
        if (q1 == std::string::npos)
            continue;
        const std::size_t q2 = line.find('"', q1 + 1);
        if (q2 == std::string::npos)
            continue;
        out.emplace_back(line.substr(q1 + 1, q2 - q1 - 1),
                         static_cast<int>(i + 1));
    }
    return out;
}

// ---- layering --------------------------------------------------------------

void
ruleLayering(const Manifest &m, const Tree &tree,
             std::vector<Finding> &findings)
{
    const std::string id = "layering";
    if (!m.boolean("rule." + id, "enabled", true))
        return;
    const std::string srcRoot = m.str("rule." + id, "root", "src");

    // layer name -> allowed dependency layers (self always allowed).
    std::map<std::string, std::set<std::string>> allowed;
    for (const std::string &layer : m.subsections("layer")) {
        auto &deps = allowed[layer];
        for (const std::string &d :
             m.list("layer." + layer, "deps"))
            deps.insert(d);
    }

    for (const SourceFile &f : tree.files) {
        if (!pathUnder(f.path, srcRoot))
            continue;
        // src/<layer>/... ; files directly under src/ are umbrella
        // headers, above the layering.
        const std::string rest = f.path.substr(srcRoot.size() + 1);
        const std::size_t slash = rest.find('/');
        if (slash == std::string::npos)
            continue;
        const std::string layer = rest.substr(0, slash);
        auto it = allowed.find(layer);
        if (it == allowed.end()) {
            emit(findings, f, 0, id,
                 "directory src/" + layer +
                     " is not a declared layer; add [layer." +
                     layer + "] to rules.toml");
            continue;
        }
        for (const auto &[inc, line] : quotedIncludes(f)) {
            const std::size_t s = inc.find('/');
            if (s == std::string::npos)
                continue;
            const std::string target = inc.substr(0, s);
            if (allowed.find(target) == allowed.end())
                continue; // not a layer-qualified include
            if (target != layer && !it->second.count(target))
                emit(findings, f, line, id,
                     "layer '" + layer + "' must not include '" +
                         inc + "' (allowed deps: declared in "
                               "[layer." +
                         layer + "])");
        }
    }
}

// ---- intrinsics ------------------------------------------------------------

void
ruleIntrinsics(const Manifest &m, const Tree &tree,
               std::vector<Finding> &findings)
{
    const std::string id = "intrinsics";
    if (!m.boolean("rule." + id, "enabled", true))
        return;
    const auto headers = m.list("rule." + id, "headers");
    const auto allowedDirs = m.list("rule." + id, "allowed");
    const auto scanDirs = m.list("rule." + id, "scan");

    for (const SourceFile *f : tree.under(scanDirs)) {
        bool exempt = false;
        for (const std::string &d : allowedDirs)
            if (pathUnder(f->path, d))
                exempt = true;
        if (exempt)
            continue;
        for (std::size_t i = 0; i < f->lines.size(); ++i) {
            const std::string &line = f->lines[i];
            const std::size_t h = line.find_first_not_of(" \t");
            if (h == std::string::npos || line[h] != '#')
                continue;
            for (const std::string &hdr : headers)
                if (line.find(hdr) != std::string::npos)
                    emit(findings, *f, static_cast<int>(i + 1), id,
                         "arch intrinsic header <" + hdr +
                             "> outside the allowed kernel "
                             "directories (code above kernels/ "
                             "stays ISA-portable)");
        }
    }
}

// ---- fp-contract -----------------------------------------------------------

void
ruleFpContract(const Manifest &m, const Tree &tree,
               std::vector<Finding> &findings)
{
    const std::string id = "fp-contract";
    if (!m.boolean("rule." + id, "enabled", true))
        return;
    const std::string kernelDir =
        m.str("rule." + id, "kernel_dir", "src/sim/kernels");
    const std::string flag =
        m.str("rule." + id, "flag", "-ffp-contract=off");
    const std::string cmakeName =
        m.str("rule." + id, "cmake", "CMakeLists.txt");

    // Kernel translation units in the scanned tree.
    std::vector<const SourceFile *> kernels;
    for (const SourceFile &f : tree.files)
        if (pathUnder(f.path, kernelDir) &&
            f.path.size() > 3 &&
            f.path.compare(f.path.size() - 3, 3, ".cc") == 0)
            kernels.push_back(&f);
    if (kernels.empty())
        return; // tree has no kernel TUs (e.g. a lint fixture)

    const SourceFile *cmake = nullptr;
    for (const SourceFile &f : tree.files)
        if (f.path == cmakeName)
            cmake = &f;
    if (!cmake) {
        findings.push_back(
            {cmakeName, 0, id,
             "kernel TUs exist but no " + cmakeName +
                 " was scanned to verify their " + flag +
                 " pinning"});
        return;
    }
    const bool hasFlag =
        cmake->raw.find(flag) != std::string::npos;
    for (const SourceFile *k : kernels) {
        const std::string base =
            k->path.substr(k->path.rfind('/') + 1);
        if (!hasFlag ||
            cmake->raw.find(base) == std::string::npos)
            emit(findings, *cmake, 0, id,
                 "kernel TU " + k->path + " is not pinned with " +
                     flag + " in " + cmakeName +
                     " (fixed rounding DAGs are part of the "
                     "bit-identity contract)");
    }
}

// ---- nondeterminism --------------------------------------------------------

void
ruleNondeterminism(const Manifest &m, const Tree &tree,
                   std::vector<Finding> &findings)
{
    const std::string id = "nondeterminism";
    if (!m.boolean("rule." + id, "enabled", true))
        return;
    const auto dirs = m.list("rule." + id, "dirs");
    const auto exempt = m.list("rule." + id, "exempt");
    const auto idents = m.list("rule." + id, "identifiers");
    const auto calls = m.list("rule." + id, "calls");

    for (const SourceFile *f : tree.under(dirs)) {
        bool skip = false;
        for (const std::string &e : exempt)
            if (pathUnder(f->path, e))
                skip = true;
        if (skip)
            continue;
        for (const std::string &ident : idents)
            for (std::size_t pos :
                 findIdent(f->stripped, ident))
                emit(findings, *f, f->lineOf(pos), id,
                     "'" + ident +
                         "' in a deterministic path (results must "
                         "be pure functions of job content; use "
                         "util/rng.hh seeded streams)");
        for (const std::string &call : calls) {
            std::size_t pos = 0;
            while ((pos = f->stripped.find(call, pos)) !=
                   std::string::npos) {
                emit(findings, *f, f->lineOf(pos), id,
                     "wall-clock '" + call +
                         "' in a deterministic path (timestamps "
                         "must never feed results; telemetry is "
                         "the only clock consumer)");
                pos += call.size();
            }
        }
    }
}

// ---- parallel-accumulate ---------------------------------------------------

/**
 * Inside the argument region of a parallel elementwise construct,
 * a compound add/sub into a BARE captured scalar is a reduction in
 * disguise: its merge order would depend on thread interleaving.
 * Subscripted targets (per-chunk partials, disjoint slices) and
 * identifiers declared inside the region are fine.
 */
void
ruleParallelAccumulate(const Manifest &m, const Tree &tree,
                       std::vector<Finding> &findings)
{
    const std::string id = "parallel-accumulate";
    if (!m.boolean("rule." + id, "enabled", true))
        return;
    const auto dirs = m.list("rule." + id, "dirs");
    const auto exempt = m.list("rule." + id, "exempt");
    const auto constructs = m.list("rule." + id, "constructs");
    const auto banned = m.list("rule." + id, "banned");

    for (const SourceFile *f : tree.under(dirs)) {
        bool skip = false;
        for (const std::string &e : exempt)
            if (pathUnder(f->path, e))
                skip = true;
        if (skip)
            continue;

        // Unordered-merge library reductions are banned outright in
        // these directories: chunkedReduce/pairwiseReduce are the
        // only sanctioned folds.
        for (const std::string &b : banned)
            for (std::size_t pos : findIdent(f->stripped, b))
                emit(findings, *f, f->lineOf(pos), id,
                     "'" + b +
                         "' in a deterministic path; use the "
                         "fixed-fold helpers (chunkedReduce / "
                         "pairwiseReduce in util/parallel.hh)");

        for (const std::string &ctor : constructs) {
            for (std::size_t pos :
                 findIdent(f->stripped, ctor)) {
                const std::size_t open =
                    f->stripped.find('(', pos);
                if (open == std::string::npos)
                    continue;
                const std::size_t end =
                    matchParen(f->stripped, open);
                if (end == std::string::npos)
                    continue;
                const std::string region =
                    f->stripped.substr(open, end - open);
                for (const char *op : {"+=", "-="}) {
                    std::size_t p = 0;
                    while ((p = region.find(op, p)) !=
                           std::string::npos) {
                        // What precedes the operator?
                        std::size_t e = p;
                        while (e > 0 &&
                               std::isspace(
                                   static_cast<unsigned char>(
                                       region[e - 1])))
                            --e;
                        if (e == 0 || region[e - 1] == ']' ||
                            !identChar(region[e - 1])) {
                            p += 2; // subscripted or not a var
                            continue;
                        }
                        std::size_t b = e;
                        while (b > 0 && identChar(region[b - 1]))
                            --b;
                        const std::string name =
                            region.substr(b, e - b);
                        // Member/pointee accumulation still races.
                        // Declared inside the region? Then it is
                        // per-invocation state, which is safe.
                        bool declared = false;
                        for (std::size_t d :
                             findIdent(region, name)) {
                            if (d >= b)
                                break;
                            std::size_t t = d;
                            while (t > 0 &&
                                   std::isspace(
                                       static_cast<unsigned char>(
                                           region[t - 1])))
                                --t;
                            if (t > 0 &&
                                (identChar(region[t - 1]) ||
                                 region[t - 1] == '>' ||
                                 region[t - 1] == '*' ||
                                 region[t - 1] == '&')) {
                                declared = true;
                                break;
                            }
                        }
                        if (!declared)
                            emit(findings, *f,
                                 f->lineOf(open + p), id,
                                 "accumulation into captured '" +
                                     name + "' inside " + ctor +
                                     " (merge order would depend "
                                     "on thread interleaving; use "
                                     "chunkedReduce or per-chunk "
                                     "partials)");
                        p += 2;
                    }
                }
            }
        }
    }
}

// ---- unordered-iter --------------------------------------------------------

/** Identifiers declared with an unordered container type. */
std::vector<std::string>
unorderedNames(const std::string &text)
{
    std::vector<std::string> out;
    for (const char *type :
         {"unordered_map", "unordered_set", "unordered_multimap",
          "unordered_multiset"}) {
        for (std::size_t pos : findIdent(text, type)) {
            std::size_t p = pos + std::string(type).size();
            if (p < text.size() && text[p] == '<') {
                p = matchAngle(text, p);
                if (p == std::string::npos)
                    continue;
            }
            while (p < text.size() &&
                   (std::isspace(
                        static_cast<unsigned char>(text[p])) ||
                    text[p] == '&' || text[p] == '*'))
                ++p;
            std::size_t e = p;
            while (e < text.size() && identChar(text[e]))
                ++e;
            if (e > p) {
                const std::string name = text.substr(p, e - p);
                if (name != "const" && name != "return")
                    out.push_back(name);
            }
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

void
ruleUnorderedIter(const Manifest &m, const Tree &tree,
                  std::vector<Finding> &findings)
{
    const std::string id = "unordered-iter";
    if (!m.boolean("rule." + id, "enabled", true))
        return;
    const auto dirs = m.list("rule." + id, "dirs");

    for (const SourceFile *f : tree.under(dirs)) {
        for (const std::string &name :
             unorderedNames(f->stripped)) {
            for (std::size_t pos :
                 findIdent(f->stripped, name)) {
                // Range-for: `: name)` — walk left over spaces.
                std::size_t b = pos;
                while (b > 0 &&
                       std::isspace(static_cast<unsigned char>(
                           f->stripped[b - 1])))
                    --b;
                const bool rangeFor =
                    b > 0 && f->stripped[b - 1] == ':' &&
                    (b < 2 || f->stripped[b - 2] != ':');
                // Explicit iterator walk: name.begin() etc.
                std::size_t a = pos + name.size();
                bool iterCall = false;
                if (a < f->stripped.size() &&
                    (f->stripped[a] == '.' ||
                     f->stripped.compare(a, 2, "->") == 0)) {
                    const std::size_t ms =
                        f->stripped[a] == '.' ? a + 1 : a + 2;
                    for (const char *it :
                         {"begin", "cbegin", "rbegin"})
                        if (f->stripped.compare(
                                ms, std::string(it).size(), it) ==
                            0)
                            iterCall = true;
                }
                if (rangeFor || iterCall)
                    emit(findings, *f, f->lineOf(pos), id,
                         "iteration over unordered container '" +
                             name +
                             "' (bucket order is "
                             "implementation-defined and must "
                             "never feed results or hashes; use "
                             "an ordered container or sort "
                             "first)");
            }
        }
    }
}

// ---- status-taxonomy -------------------------------------------------------

/**
 * Execution layers fail through util/status.hh: the only exception
 * type thrown in the configured directories is StatusError, and
 * process-killing calls (abort/terminate/exit/fatal) are banned.
 * `throw;` (a bare rethrow) is allowed — it originates nothing, it
 * re-propagates an exception something else was allowed to create —
 * and panic() stays the sanctioned invariant-violation mechanism.
 */
void
ruleStatusTaxonomy(const Manifest &m, const Tree &tree,
                   std::vector<Finding> &findings)
{
    const std::string id = "status-taxonomy";
    if (!m.boolean("rule." + id, "enabled", true))
        return;
    const auto dirs = m.list("rule." + id, "dirs");
    const auto allowedThrow = m.list("rule." + id, "allowed_throw");
    const auto bannedCalls = m.list("rule." + id, "banned_calls");

    for (const SourceFile *f : tree.under(dirs)) {
        for (std::size_t pos : findIdent(f->stripped, "throw")) {
            std::size_t p = pos + 5;
            while (p < f->stripped.size() &&
                   std::isspace(static_cast<unsigned char>(
                       f->stripped[p])))
                ++p;
            if (p < f->stripped.size() && f->stripped[p] == ';')
                continue; // bare rethrow
            // The thrown expression's leading identifier, with any
            // namespace qualifiers peeled (std::runtime_error and
            // varsaw::StatusError both resolve to their last
            // component).
            std::string tok;
            for (;;) {
                std::size_t e = p;
                while (e < f->stripped.size() &&
                       identChar(f->stripped[e]))
                    ++e;
                tok = f->stripped.substr(p, e - p);
                if (e + 1 < f->stripped.size() &&
                    f->stripped[e] == ':' &&
                    f->stripped[e + 1] == ':') {
                    p = e + 2;
                    continue;
                }
                break;
            }
            bool ok = false;
            for (const std::string &a : allowedThrow)
                if (tok == a)
                    ok = true;
            if (!ok)
                emit(findings, *f, f->lineOf(pos), id,
                     "throw of '" + (tok.empty() ? "?" : tok) +
                         "' outside the Status taxonomy (execution "
                         "paths throw StatusError only — see "
                         "util/status.hh)");
        }
        for (const std::string &call : bannedCalls) {
            for (std::size_t pos :
                 findIdent(f->stripped, call)) {
                const std::size_t open = pos + call.size();
                if (open >= f->stripped.size() ||
                    f->stripped[open] != '(')
                    continue; // not a call
                emit(findings, *f, f->lineOf(pos), id,
                     "'" + call +
                         "' kills the process from an execution "
                         "path; fail the job with a Status "
                         "(panic() remains the sanctioned "
                         "invariant-violation escape)");
            }
        }
    }
}

// ---- atomics-order ---------------------------------------------------------

/** Identifiers declared std::atomic<...> / std::atomic_xxx. */
std::vector<std::string>
atomicNames(const std::string &text)
{
    std::vector<std::string> out;
    for (std::size_t pos : findIdent(text, "atomic")) {
        std::size_t p = pos + 6;
        if (p < text.size() && text[p] == '<') {
            p = matchAngle(text, p);
            if (p == std::string::npos)
                continue;
        } else if (p < text.size() && text[p] == '_') {
            // atomic_bool, atomic_flag, atomic_uint64_t, ...
            while (p < text.size() && identChar(text[p]))
                ++p;
        } else {
            continue;
        }
        while (p < text.size() &&
               (std::isspace(
                    static_cast<unsigned char>(text[p])) ||
                text[p] == '&' || text[p] == '*'))
            ++p;
        std::size_t e = p;
        while (e < text.size() && identChar(text[e]))
            ++e;
        if (e > p)
            out.push_back(text.substr(p, e - p));
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

void
ruleAtomicsOrder(const Manifest &m, const Tree &tree,
                 std::vector<Finding> &findings)
{
    const std::string id = "atomics-order";
    if (!m.boolean("rule." + id, "enabled", true))
        return;
    const auto paths = m.list("rule." + id, "paths");
    const auto methods = m.list("rule." + id, "methods");

    for (const SourceFile *f : tree.under(paths)) {
        // Method calls missing an explicit memory order.
        for (const std::string &method : methods) {
            for (std::size_t pos :
                 findIdent(f->stripped, method)) {
                if (pos == 0 || (f->stripped[pos - 1] != '.' &&
                                 !(pos >= 2 &&
                                   f->stripped[pos - 2] == '-' &&
                                   f->stripped[pos - 1] == '>')))
                    continue;
                const std::size_t open = pos + method.size();
                if (open >= f->stripped.size() ||
                    f->stripped[open] != '(')
                    continue;
                const std::size_t end =
                    matchParen(f->stripped, open);
                if (end == std::string::npos)
                    continue;
                const std::string args =
                    f->stripped.substr(open, end - open);
                if (args.find("memory_order") ==
                    std::string::npos)
                    emit(findings, *f, f->lineOf(pos), id,
                         "'" + method +
                             "' without an explicit memory order "
                             "in a documented-contract hot path "
                             "(default seq_cst hides the intended "
                             "ordering; state it)");
            }
        }
        // Operator forms on atomic-declared identifiers: ++x, x++,
        // x += 1, bare x = v assignments — all seq_cst in disguise.
        for (const std::string &name :
             atomicNames(f->stripped)) {
            for (std::size_t pos :
                 findIdent(f->stripped, name)) {
                const std::size_t e = pos + name.size();
                std::size_t b = pos;
                while (b > 0 &&
                       std::isspace(static_cast<unsigned char>(
                           f->stripped[b - 1])))
                    --b;
                const bool preIncDec =
                    b >= 2 &&
                    ((f->stripped[b - 1] == '+' &&
                      f->stripped[b - 2] == '+') ||
                     (f->stripped[b - 1] == '-' &&
                      f->stripped[b - 2] == '-'));
                std::size_t a = e;
                while (a < f->stripped.size() &&
                       std::isspace(static_cast<unsigned char>(
                           f->stripped[a])))
                    ++a;
                bool postOp = false;
                if (a + 1 < f->stripped.size()) {
                    const char c0 = f->stripped[a];
                    const char c1 = f->stripped[a + 1];
                    postOp = (c0 == '+' && c1 == '+') ||
                        (c0 == '-' && c1 == '-') ||
                        ((c0 == '+' || c0 == '-' || c0 == '|' ||
                          c0 == '&' || c0 == '^') &&
                         c1 == '=');
                }
                if (preIncDec || postOp)
                    emit(findings, *f, f->lineOf(pos), id,
                         "operator-form atomic update on '" +
                             name +
                             "' is seq_cst; use "
                             "fetch_add/fetch_sub with an "
                             "explicit memory order");
            }
        }
    }
}

// ---- metric naming ---------------------------------------------------------

/**
 * layer.component.metric form: two or more '.'-separated segments,
 * each lowercase snake_case starting with a letter.
 */
bool
wellFormedMetricName(const std::string &name)
{
    int segments = 0;
    std::size_t i = 0;
    for (;;) {
        if (i >= name.size() ||
            !(name[i] >= 'a' && name[i] <= 'z'))
            return false;
        std::size_t j = i + 1;
        while (j < name.size() &&
               ((name[j] >= 'a' && name[j] <= 'z') ||
                (name[j] >= '0' && name[j] <= '9') ||
                name[j] == '_'))
            ++j;
        ++segments;
        if (j == name.size())
            return segments >= 2;
        if (name[j] != '.')
            return false;
        i = j + 1;
    }
}

void
ruleMetricNaming(const Manifest &m, const Tree &tree,
                 std::vector<Finding> &findings)
{
    const std::string id = "metric-naming";
    if (!m.boolean("rule." + id, "enabled", true))
        return;
    const auto dirs = m.list("rule." + id, "dirs");
    const auto methods = m.list("rule." + id, "methods");

    for (const SourceFile *f : tree.under(dirs)) {
        for (const std::string &method : methods) {
            for (std::size_t pos :
                 findIdent(f->stripped, method)) {
                const std::size_t open = pos + method.size();
                if (open >= f->stripped.size() ||
                    f->stripped[open] != '(')
                    continue;
                // Only calls whose first argument is a string
                // LITERAL are checked; computed names (labeled
                // bases, per-session series) are validated at
                // their literal source instead. The literal text
                // lives in `raw` — stripping blanks string
                // contents but preserves offsets.
                std::size_t p = open + 1;
                while (p < f->raw.size() &&
                       std::isspace(static_cast<unsigned char>(
                           f->raw[p])))
                    ++p;
                if (p >= f->raw.size() || f->raw[p] != '"')
                    continue;
                const std::size_t q = f->raw.find('"', p + 1);
                if (q == std::string::npos)
                    continue;
                const std::string name =
                    f->raw.substr(p + 1, q - p - 1);
                if (!wellFormedMetricName(name))
                    emit(findings, *f, f->lineOf(pos), id,
                         "metric name '" + name +
                             "' is not layer.component.metric "
                             "form (two or more dot-separated "
                             "lowercase snake_case segments)");
            }
        }
    }
}

} // namespace

std::vector<Finding>
runRules(const Manifest &manifest, const Tree &tree)
{
    std::vector<Finding> findings;
    for (const SourceFile &f : tree.files)
        for (const Finding &a : f.annotationFindings)
            findings.push_back(a);

    ruleLayering(manifest, tree, findings);
    ruleIntrinsics(manifest, tree, findings);
    ruleFpContract(manifest, tree, findings);
    ruleNondeterminism(manifest, tree, findings);
    ruleParallelAccumulate(manifest, tree, findings);
    ruleUnorderedIter(manifest, tree, findings);
    ruleStatusTaxonomy(manifest, tree, findings);
    ruleAtomicsOrder(manifest, tree, findings);
    ruleMetricNaming(manifest, tree, findings);

    std::sort(findings.begin(), findings.end());
    findings.erase(std::unique(findings.begin(), findings.end(),
                               [](const Finding &a,
                                  const Finding &b) {
                                   return a.file == b.file &&
                                       a.line == b.line &&
                                       a.rule == b.rule &&
                                       a.message == b.message;
                               }),
                   findings.end());
    return findings;
}

} // namespace varsaw::lint
