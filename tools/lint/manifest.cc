/**
 * @file
 * Minimal TOML-subset parser for tools/lint/rules.toml.
 *
 * Supported grammar (everything the manifest needs, nothing more):
 *   - `# comment` lines and trailing comments
 *   - `[section.name]` headers (dotted names kept verbatim)
 *   - `key = "string"`, `key = true|false`
 *   - `key = ["a", "b", ...]`, which may span multiple lines until
 *     the closing bracket
 * Anything else is a hard error: a manifest typo must fail the lint
 * run loudly, never silently relax a rule.
 */

#include "lint.hh"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace varsaw::lint {

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b &&
           std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Strip a trailing # comment (quote-aware). */
std::string
stripComment(const std::string &line)
{
    bool inString = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (c == '"')
            inString = !inString;
        else if (c == '#' && !inString)
            return line.substr(0, i);
    }
    return line;
}

[[noreturn]] void
fail(const std::string &path, int line, const std::string &what)
{
    std::ostringstream os;
    os << path << ":" << line << ": manifest error: " << what;
    throw std::runtime_error(os.str());
}

/** Parse one scalar token: quoted string or true/false. */
std::string
parseScalar(const std::string &tok, const std::string &path,
            int line)
{
    const std::string t = trim(tok);
    if (t.size() >= 2 && t.front() == '"' && t.back() == '"')
        return t.substr(1, t.size() - 2);
    if (t == "true" || t == "false")
        return t;
    fail(path, line, "expected quoted string or bool, got '" + t +
                         "'");
}

/** Split a bracket-free array body on commas (quote-aware). */
std::vector<std::string>
parseArrayBody(const std::string &body, const std::string &path,
               int line)
{
    std::vector<std::string> out;
    std::string cur;
    bool inString = false;
    for (char c : body) {
        if (c == '"')
            inString = !inString;
        if (c == ',' && !inString) {
            if (!trim(cur).empty())
                out.push_back(parseScalar(cur, path, line));
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!trim(cur).empty())
        out.push_back(parseScalar(cur, path, line));
    return out;
}

} // namespace

std::vector<std::string>
Manifest::list(const std::string &section,
               const std::string &key) const
{
    auto s = sections.find(section);
    if (s == sections.end())
        return {};
    auto k = s->second.find(key);
    if (k == s->second.end())
        return {};
    return k->second;
}

std::string
Manifest::str(const std::string &section, const std::string &key,
              const std::string &fallback) const
{
    const auto v = list(section, key);
    return v.empty() ? fallback : v.front();
}

bool
Manifest::boolean(const std::string &section,
                  const std::string &key, bool fallback) const
{
    const auto v = list(section, key);
    if (v.empty())
        return fallback;
    return v.front() == "true";
}

std::vector<std::string>
Manifest::subsections(const std::string &prefix) const
{
    std::vector<std::string> out;
    const std::string want = prefix + ".";
    for (const auto &[name, _] : sections)
        if (name.rfind(want, 0) == 0)
            out.push_back(name.substr(want.size()));
    return out;
}

Manifest
parseManifest(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open manifest: " + path);

    Manifest m;
    std::string section;
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const int startLine = lineNo;
        std::string text = trim(stripComment(line));
        if (text.empty())
            continue;
        if (text.front() == '[') {
            if (text.back() != ']')
                fail(path, lineNo, "unterminated section header");
            section = trim(text.substr(1, text.size() - 2));
            if (section.empty())
                fail(path, lineNo, "empty section name");
            m.sections[section]; // created even if empty
            continue;
        }
        const std::size_t eq = text.find('=');
        if (eq == std::string::npos)
            fail(path, lineNo, "expected 'key = value'");
        const std::string key = trim(text.substr(0, eq));
        std::string value = trim(text.substr(eq + 1));
        if (key.empty())
            fail(path, lineNo, "empty key");
        if (section.empty())
            fail(path, lineNo, "entry before any [section]");

        if (!value.empty() && value.front() == '[') {
            // Array, possibly spanning lines until the closing ']'.
            while (value.find(']') == std::string::npos) {
                std::string more;
                if (!std::getline(in, more))
                    fail(path, startLine, "unterminated array");
                ++lineNo;
                value += " " + trim(stripComment(more));
            }
            const std::size_t close = value.find(']');
            if (!trim(value.substr(close + 1)).empty())
                fail(path, lineNo, "trailing text after array");
            m.sections[section][key] = parseArrayBody(
                value.substr(1, close - 1), path, startLine);
        } else {
            m.sections[section][key] = {
                parseScalar(value, path, startLine)};
        }
    }
    return m;
}

} // namespace varsaw::lint
