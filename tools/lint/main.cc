/**
 * @file
 * varsaw-lint CLI.
 *
 *   varsaw_lint --manifest tools/lint/rules.toml [--root DIR]
 *               [--list-rules] [--verbose]
 *
 * Scans the `[scan] roots` directories of the manifest under --root
 * (default: the current directory), runs every enabled rule, prints
 * findings as `path:line: [rule] message`, and exits 1 when any
 * finding survives the allowlists (0 clean, 2 usage/config error).
 * Fixture trees under tests/lint/fixtures are linted by pointing
 * --root at them with the same manifest.
 */

#include "lint.hh"

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace fs = std::filesystem;
using namespace varsaw::lint;

namespace {

bool
sourceExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
        ext == ".h" || ext == ".hpp";
}

int
usage()
{
    std::cerr
        << "usage: varsaw_lint --manifest rules.toml [--root DIR]"
           " [--list-rules] [--verbose]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string manifestPath;
    std::string root = ".";
    bool listRules = false;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--manifest" && i + 1 < argc)
            manifestPath = argv[++i];
        else if (arg == "--root" && i + 1 < argc)
            root = argv[++i];
        else if (arg == "--list-rules")
            listRules = true;
        else if (arg == "--verbose")
            verbose = true;
        else
            return usage();
    }
    if (manifestPath.empty())
        return usage();

    try {
        const Manifest manifest = parseManifest(manifestPath);

        if (listRules) {
            for (const std::string &r :
                 manifest.subsections("rule"))
                std::cout
                    << r << (manifest.boolean("rule." + r,
                                              "enabled", true)
                                ? ""
                                : " (disabled)")
                    << ": "
                    << manifest.str("rule." + r, "summary") << "\n";
            return 0;
        }

        Tree tree;
        tree.root = fs::absolute(root).string();

        // Collect files under the manifest's scan roots, sorted so
        // every run reports in the same order.
        const std::vector<std::string> excludes =
            manifest.list("scan", "exclude");
        std::vector<std::string> relPaths;
        for (const std::string &dir :
             manifest.list("scan", "roots")) {
            const fs::path base = fs::path(root) / dir;
            if (!fs::exists(base))
                continue;
            for (auto it = fs::recursive_directory_iterator(base);
                 it != fs::recursive_directory_iterator(); ++it) {
                if (!it->is_regular_file() ||
                    !sourceExtension(it->path()))
                    continue;
                const std::string rel =
                    fs::relative(it->path(), root)
                        .generic_string();
                bool skip = false;
                for (const std::string &ex : excludes)
                    if (pathUnder(rel, ex))
                        skip = true;
                if (!skip)
                    relPaths.push_back(rel);
            }
        }
        for (const std::string &extra :
             manifest.list("scan", "files")) {
            if (fs::exists(fs::path(root) / extra))
                relPaths.push_back(extra);
        }
        std::sort(relPaths.begin(), relPaths.end());
        relPaths.erase(
            std::unique(relPaths.begin(), relPaths.end()),
            relPaths.end());

        for (const std::string &rel : relPaths)
            tree.files.push_back(scanFile(
                (fs::path(root) / rel).string(), rel));
        if (verbose)
            std::cerr << "varsaw-lint: scanned "
                      << tree.files.size() << " files under "
                      << tree.root << "\n";

        const std::vector<Finding> findings =
            runRules(manifest, tree);
        for (const Finding &f : findings) {
            std::cout << f.file;
            if (f.line > 0)
                std::cout << ":" << f.line;
            std::cout << ": [" << f.rule << "] " << f.message
                      << "\n";
        }
        if (!findings.empty()) {
            std::cout << "varsaw-lint: " << findings.size()
                      << " finding(s)\n";
            return 1;
        }
        if (verbose)
            std::cerr << "varsaw-lint: clean\n";
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "varsaw-lint: " << e.what() << "\n";
        return 2;
    }
}
