/**
 * @file
 * Source preprocessing for varsaw-lint: load a file, collect its
 * allow-annotations (which live in comments, so this happens first),
 * then blank comment and string-literal CONTENTS to spaces so rule
 * matching never fires on prose or literals. Offsets and line
 * numbers are preserved exactly — stripped[i] corresponds to raw[i].
 */

#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace varsaw::lint {

namespace {

/**
 * Blank comments and string/char literal contents to spaces.
 * Handles //, C comments, "...", '...', and the raw-string form
 * R"delim(...)delim". Newlines inside comments are kept so line
 * numbers stay aligned.
 */
std::string
stripSource(const std::string &src)
{
    std::string out = src;
    enum class St {
        Code,
        Line,
        Block,
        Str,
        Chr,
        Raw
    } st = St::Code;
    std::string rawDelim;
    for (std::size_t i = 0; i < src.size(); ++i) {
        const char c = src[i];
        const char n = i + 1 < src.size() ? src[i + 1] : '\0';
        switch (st) {
        case St::Code:
            if (c == '/' && n == '/') {
                st = St::Line;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '/' && n == '*') {
                st = St::Block;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == 'R' && n == '"' &&
                       (i == 0 ||
                        (!std::isalnum(static_cast<unsigned char>(
                             src[i - 1])) &&
                         src[i - 1] != '_'))) {
                // R"delim( ... )delim"
                std::size_t open = src.find('(', i + 2);
                if (open == std::string::npos)
                    break;
                rawDelim =
                    ")" + src.substr(i + 2, open - (i + 2)) + "\"";
                st = St::Raw;
                i = open; // keep prefix; contents blanked below
            } else if (c == '"') {
                // Keep the quoted path of a preprocessor #include —
                // the include-graph rules read it; every other
                // string literal is blanked.
                std::size_t ls = src.rfind('\n', i);
                ls = ls == std::string::npos ? 0 : ls + 1;
                std::size_t h = ls;
                while (h < i && (src[h] == ' ' || src[h] == '\t'))
                    ++h;
                if (h < i && src[h] == '#') {
                    const std::size_t end = src.find('"', i + 1);
                    if (end != std::string::npos)
                        i = end;
                } else {
                    st = St::Str;
                }
            } else if (c == '\'') {
                st = St::Chr;
            }
            break;
        case St::Line:
            if (c == '\n')
                st = St::Code;
            else
                out[i] = ' ';
            break;
        case St::Block:
            if (c == '*' && n == '/') {
                st = St::Code;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        case St::Str:
            if (c == '\\' && n != '\0') {
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '"') {
                st = St::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        case St::Chr:
            if (c == '\\' && n != '\0') {
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '\'') {
                st = St::Code;
            } else {
                out[i] = ' ';
            }
            break;
        case St::Raw:
            if (src.compare(i, rawDelim.size(), rawDelim) == 0) {
                st = St::Code;
                i += rawDelim.size() - 1;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        }
    }
    return out;
}

/**
 * Parse `varsaw-lint: allow(...)` / `allow-file(...)` annotations
 * from the RAW text (they live inside comments). Grammar:
 *   varsaw-lint: allow(rule[, rule...]) <reason text>
 * A missing or empty reason is a finding — exemptions must say why.
 */
void
collectAnnotations(SourceFile &f)
{
    static const std::string kMarker = "varsaw-lint:";
    std::size_t pos = 0;
    while ((pos = f.raw.find(kMarker, pos)) != std::string::npos) {
        const int line = f.lineOf(pos);
        std::size_t p = pos + kMarker.size();
        while (p < f.raw.size() && f.raw[p] == ' ')
            ++p;
        // Prose that merely mentions the marker (docs, this file)
        // is not an annotation; only allow(...) forms are parsed,
        // and a malformed allow IS flagged.
        if (f.raw.compare(p, 5, "allow") != 0) {
            pos += kMarker.size();
            continue;
        }
        bool wholeFile = false;
        if (f.raw.compare(p, 11, "allow-file(") == 0) {
            wholeFile = true;
            p += 11;
        } else if (f.raw.compare(p, 6, "allow(") == 0) {
            p += 6;
        } else {
            f.annotationFindings.push_back(
                {f.path, line, "annotation",
                 "malformed varsaw-lint annotation (expected "
                 "allow(rule) reason or allow-file(rule) reason)"});
            pos += kMarker.size();
            continue;
        }
        const std::size_t close = f.raw.find(')', p);
        const std::size_t eol = f.raw.find('\n', p);
        if (close == std::string::npos ||
            (eol != std::string::npos && close > eol)) {
            f.annotationFindings.push_back(
                {f.path, line, "annotation",
                 "unterminated allow(...) annotation"});
            pos += kMarker.size();
            continue;
        }
        // Rule list.
        std::vector<std::string> rules;
        std::string cur;
        for (std::size_t i = p; i < close; ++i) {
            const char c = f.raw[i];
            if (c == ',') {
                rules.push_back(cur);
                cur.clear();
            } else if (c != ' ') {
                cur += c;
            }
        }
        if (!cur.empty())
            rules.push_back(cur);
        // Reason: rest of the line after ')'.
        std::string reason = f.raw.substr(
            close + 1, (eol == std::string::npos ? f.raw.size()
                                                 : eol) -
                           (close + 1));
        reason.erase(
            std::remove(reason.begin(), reason.end(), '\r'),
            reason.end());
        std::size_t rb = reason.find_first_not_of(" \t-:");
        if (rules.empty() || rb == std::string::npos) {
            f.annotationFindings.push_back(
                {f.path, line, "annotation",
                 "allow() annotation needs a rule id and a reason "
                 "(// varsaw-lint: allow(rule) why it is safe)"});
        } else {
            for (const std::string &r : rules) {
                if (wholeFile)
                    f.allowFile.insert(r);
                else
                    f.allowLines[r].insert(line);
            }
        }
        pos = close;
    }
}

} // namespace

int
SourceFile::lineOf(std::size_t pos) const
{
    return 1 + static_cast<int>(std::count(
                   raw.begin(),
                   raw.begin() + static_cast<std::ptrdiff_t>(
                                     std::min(pos, raw.size())),
                   '\n'));
}

bool
SourceFile::allowed(const std::string &rule, int line) const
{
    if (allowFile.count(rule))
        return true;
    auto it = allowLines.find(rule);
    if (it == allowLines.end())
        return false;
    // The annotation's own line, or an annotation on the line above.
    return it->second.count(line) || it->second.count(line - 1);
}

SourceFile
scanFile(const std::string &absPath, const std::string &relPath)
{
    std::ifstream in(absPath, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot read " + absPath);
    std::ostringstream buf;
    buf << in.rdbuf();

    SourceFile f;
    f.path = relPath;
    f.raw = buf.str();
    collectAnnotations(f);
    f.stripped = stripSource(f.raw);

    std::string line;
    std::istringstream ls(f.stripped);
    while (std::getline(ls, line))
        f.lines.push_back(line);
    return f;
}

bool
pathUnder(const std::string &path, const std::string &prefix)
{
    if (path == prefix)
        return true;
    return path.size() > prefix.size() &&
        path.compare(0, prefix.size(), prefix) == 0 &&
        path[prefix.size()] == '/';
}

std::vector<const SourceFile *>
Tree::under(const std::vector<std::string> &prefixes) const
{
    std::vector<const SourceFile *> out;
    for (const SourceFile &f : files)
        for (const std::string &p : prefixes)
            if (pathUnder(f.path, p)) {
                out.push_back(&f);
                break;
            }
    return out;
}

} // namespace varsaw::lint
