/**
 * @file
 * varsaw-lint: the project invariant checker.
 *
 * A token/include-graph level linter (no libclang) that enforces the
 * structural invariants no compiler checks: the one-way layer DAG,
 * kernel purity (intrinsics confinement, fp-contract pinning,
 * nondeterminism bans), determinism hazards (reductions outside the
 * fixed-fold helpers, iteration over unordered containers), and
 * atomic hygiene (no default-seq_cst ops in documented-contract hot
 * paths). Rules are driven by a declarative manifest
 * (tools/lint/rules.toml); per-site exemptions are source
 * annotations that REQUIRE a reason:
 *
 *     // varsaw-lint: allow(rule-id) reason text
 *     // varsaw-lint: allow-file(rule-id) reason text
 *
 * allow() covers the annotation's line and the next line;
 * allow-file() covers the whole file. An annotation without a reason
 * is itself a finding.
 */

#ifndef VARSAW_TOOLS_LINT_HH
#define VARSAW_TOOLS_LINT_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace varsaw::lint {

/** One rule violation at a source location. */
struct Finding
{
    std::string file; ///< Root-relative path, '/' separators.
    int line = 0;     ///< 1-based; 0 = whole-file finding.
    std::string rule;
    std::string message;

    bool operator<(const Finding &o) const
    {
        if (file != o.file)
            return file < o.file;
        if (line != o.line)
            return line < o.line;
        if (rule != o.rule)
            return rule < o.rule;
        return message < o.message;
    }
};

/**
 * Parsed manifest: `[section]` headers over `key = value` entries
 * where value is a string, bool, or array of strings. Scalar values
 * are stored as single-element vectors. Ordered maps so every run
 * reports in the same order.
 */
struct Manifest
{
    std::map<std::string,
             std::map<std::string, std::vector<std::string>>>
        sections;

    bool has(const std::string &section) const
    {
        return sections.count(section) != 0;
    }

    /** Values of section.key ([] when absent). */
    std::vector<std::string> list(const std::string &section,
                                  const std::string &key) const;

    /** First value of section.key (fallback when absent). */
    std::string str(const std::string &section,
                    const std::string &key,
                    const std::string &fallback = "") const;

    bool boolean(const std::string &section, const std::string &key,
                 bool fallback = false) const;

    /** Section names matching `prefix.*`, suffix only. */
    std::vector<std::string>
    subsections(const std::string &prefix) const;
};

/** Parse @p path; throws std::runtime_error on malformed input. */
Manifest parseManifest(const std::string &path);

/** One scanned source file. */
struct SourceFile
{
    std::string path; ///< Root-relative, '/' separators.
    std::string raw;  ///< Original bytes.
    /** Comment and string-literal contents blanked to spaces;
     * offsets and line structure identical to raw. */
    std::string stripped;
    std::vector<std::string> lines; ///< Stripped, by line.

    /** rule id -> 1-based lines carrying allow(rule). */
    std::map<std::string, std::set<int>> allowLines;
    /** rule ids allowed for the whole file. */
    std::set<std::string> allowFile;

    /** Annotation problems found while scanning (missing reason,
     * unknown syntax); reported as rule "annotation". */
    std::vector<Finding> annotationFindings;

    /** Whether a finding for @p rule at @p line is exempted: the
     * annotation's own line and the line after it are covered. */
    bool allowed(const std::string &rule, int line) const;

    /** 1-based line of byte offset @p pos in stripped/raw. */
    int lineOf(std::size_t pos) const;
};

/** Load and preprocess one file (path shown root-relative). */
SourceFile scanFile(const std::string &absPath,
                    const std::string &relPath);

/** Everything the rules see: the file set plus the scan root. */
struct Tree
{
    std::string root; ///< Absolute path of the scanned tree.
    std::vector<SourceFile> files;

    /** Files whose root-relative path starts with @p prefix
     * (a directory like "src/sim" or an exact file path). */
    std::vector<const SourceFile *>
    under(const std::vector<std::string> &prefixes) const;
};

/** True when @p path is @p prefix or lies under @p prefix/. */
bool pathUnder(const std::string &path, const std::string &prefix);

/** Run every rule in @p manifest over @p tree. */
std::vector<Finding> runRules(const Manifest &manifest,
                              const Tree &tree);

} // namespace varsaw::lint

#endif // VARSAW_TOOLS_LINT_HH
