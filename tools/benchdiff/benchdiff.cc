/**
 * @file
 * benchdiff: compare two perf-trajectory summaries and flag
 * regressions.
 *
 * The benches write schema-versioned BENCH_<name>.json files
 * (bench::emitBenchSummary). This tool compares a BASELINE against
 * a CANDIDATE — each either a single file or a directory scanned
 * for BENCH_*.json — and exits nonzero when any gated metric
 * regressed beyond the threshold:
 *
 *   metrics.wall_seconds   up by more than the threshold = slower
 *   metrics.executions     up by more than the threshold = the
 *                          dedupe/caching machinery lost work
 *
 * Every other shared numeric key is reported informationally. A
 * bench present on only one side is reported and skipped (new and
 * retired benches are not regressions).
 *
 * Usage:
 *   benchdiff BASELINE CANDIDATE [--threshold=PCT] [--report-only]
 *
 * --threshold=PCT   allowed relative growth of a gated metric
 *                   before it counts as a regression (default 10)
 * --report-only     always exit 0 (CI trend job: record, don't gate)
 *
 * Standalone: parses the summaries with its own minimal JSON reader
 * (numbers flattened to dotted keys), so it builds and runs without
 * the library — a perf report must never depend on the code whose
 * performance it judges.
 */

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

/** Numeric leaves of one summary, keyed "metrics.wall_seconds". */
using FlatMetrics = std::map<std::string, double>;

/**
 * Minimal JSON reader for the summaries benchdiff consumes: objects,
 * arrays, numbers, strings, true/false/null. Numbers are flattened
 * into @p out under dotted keys (array elements indexed); strings
 * and booleans are ignored — comparisons are numeric. Tolerant by
 * design: a malformed file yields whatever prefix parsed, and the
 * caller treats an empty map as "no data".
 */
class FlatJsonParser
{
  public:
    explicit FlatJsonParser(const std::string &text) : text_(text) {}

    FlatMetrics
    parse()
    {
        FlatMetrics out;
        pos_ = 0;
        value("", &out);
        return out;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::string
    string()
    {
        std::string out;
        if (!consume('"'))
            return out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\' && pos_ + 1 < text_.size())
                ++pos_; // keep the escaped char, drop the backslash
            out += text_[pos_++];
        }
        if (pos_ < text_.size())
            ++pos_; // closing quote
        return out;
    }

    void
    value(const std::string &key, FlatMetrics *out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return;
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            skipWs();
            if (consume('}'))
                return;
            for (;;) {
                const std::string name = string();
                consume(':');
                value(key.empty() ? name : key + "." + name, out);
                if (!consume(','))
                    break;
            }
            consume('}');
        } else if (c == '[') {
            ++pos_;
            skipWs();
            if (consume(']'))
                return;
            for (std::size_t i = 0;; ++i) {
                value(key + "." + std::to_string(i), out);
                if (!consume(','))
                    break;
            }
            consume(']');
        } else if (c == '"') {
            (void)string();
        } else if (c == 't' || c == 'f' || c == 'n') {
            while (pos_ < text_.size() &&
                   std::isalpha(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        } else {
            char *end = nullptr;
            const double v =
                std::strtod(text_.c_str() + pos_, &end);
            if (end == text_.c_str() + pos_) {
                ++pos_; // unparsable: skip a char, stay tolerant
                return;
            }
            pos_ = static_cast<std::size_t>(end - text_.c_str());
            if (!key.empty())
                (*out)[key] = v;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

FlatMetrics
loadSummary(const std::filesystem::path &path)
{
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    const std::string content = text.str();
    return FlatJsonParser(content).parse();
}

/** Bench name → summary path, from a file or a scanned directory. */
std::map<std::string, std::filesystem::path>
collect(const std::filesystem::path &where)
{
    std::map<std::string, std::filesystem::path> out;
    const auto nameOf =
        [](const std::filesystem::path &p) -> std::string {
        std::string stem = p.stem().string(); // BENCH_foo
        if (stem.rfind("BENCH_", 0) == 0)
            stem = stem.substr(6);
        return stem;
    };
    std::error_code ec;
    if (std::filesystem::is_directory(where, ec)) {
        for (const auto &entry :
             std::filesystem::directory_iterator(where, ec)) {
            const auto &p = entry.path();
            const std::string file = p.filename().string();
            if (file.rfind("BENCH_", 0) == 0 &&
                p.extension() == ".json")
                out.emplace(nameOf(p), p);
        }
    } else if (std::filesystem::exists(where, ec)) {
        out.emplace(nameOf(where), where);
    }
    return out;
}

/** Metrics whose growth beyond the threshold gates the exit code. */
bool
isGated(const std::string &key)
{
    return key == "metrics.wall_seconds" ||
        key == "metrics.executions";
}

struct Comparison
{
    int regressions = 0;
    int compared = 0;
};

void
compareBench(const std::string &bench, const FlatMetrics &base,
             const FlatMetrics &cand, double threshold_pct,
             Comparison *totals)
{
    std::printf("== %s ==\n", bench.c_str());
    for (const auto &[key, base_value] : base) {
        const auto it = cand.find(key);
        if (it == cand.end())
            continue;
        if (key.rfind("metrics.", 0) != 0 &&
            key.rfind("phases.", 0) != 0)
            continue; // build provenance, schema version, ...
        const double cand_value = it->second;
        ++totals->compared;
        const double delta_pct = std::abs(base_value) > 1e-12
            ? 100.0 * (cand_value - base_value) / base_value
            : (cand_value == 0.0 ? 0.0 : 100.0);
        const bool gated = isGated(key);
        const bool regressed =
            gated && delta_pct > threshold_pct;
        if (regressed)
            ++totals->regressions;
        std::printf("  %-44s %14.6g -> %14.6g  %+8.2f%%%s\n",
                    key.c_str(), base_value, cand_value, delta_pct,
                    regressed       ? "  REGRESSION"
                        : gated     ? "  (gated)"
                                    : "");
    }
}

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s BASELINE CANDIDATE [--threshold=PCT] "
                 "[--report-only]\n"
                 "  BASELINE/CANDIDATE: a BENCH_<name>.json file "
                 "or a directory of them\n",
                 argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> positional;
    double threshold_pct = 10.0;
    bool report_only = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--threshold=", 0) == 0) {
            threshold_pct = std::atof(arg.c_str() + 12);
        } else if (arg == "--report-only") {
            report_only = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 2;
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() != 2) {
        usage(argv[0]);
        return 2;
    }

    const auto baselines = collect(positional[0]);
    const auto candidates = collect(positional[1]);
    if (baselines.empty()) {
        std::fprintf(stderr, "no BENCH_*.json under %s\n",
                     positional[0].c_str());
        return 2;
    }
    if (candidates.empty()) {
        std::fprintf(stderr, "no BENCH_*.json under %s\n",
                     positional[1].c_str());
        return 2;
    }

    std::printf("benchdiff: %s -> %s (threshold %+.1f%%)\n\n",
                positional[0].c_str(), positional[1].c_str(),
                threshold_pct);

    Comparison totals;
    for (const auto &[bench, base_path] : baselines) {
        const auto it = candidates.find(bench);
        if (it == candidates.end()) {
            std::printf("== %s == only in baseline (skipped)\n",
                        bench.c_str());
            continue;
        }
        compareBench(bench, loadSummary(base_path),
                     loadSummary(it->second), threshold_pct,
                     &totals);
    }
    for (const auto &[bench, path] : candidates)
        if (!baselines.count(bench))
            std::printf("== %s == only in candidate (skipped)\n",
                        bench.c_str());

    std::printf("\n%d metric(s) compared, %d regression(s)\n",
                totals.compared, totals.regressions);
    if (totals.regressions > 0 && !report_only)
        return 1;
    return 0;
}
