/**
 * @file
 * varsaw-top: live terminal view of a running VarSaw service.
 *
 * Connects to the unix-socket introspection endpoint an
 * ExecutionService serves when VARSAW_INTROSPECT=PATH (or
 * --introspect=PATH) was set at service construction, sends the
 * "top" command, and renders the returned page, refreshing until
 * interrupted. The endpoint renders the page server-side, so this
 * client is a dumb pipe: one connect per refresh, one line out,
 * read to EOF, print.
 *
 * Usage:
 *   varsaw_top [--socket=PATH] [--interval=SEC] [--once]
 *
 * PATH defaults to $VARSAW_INTROSPECT. --once prints a single
 * snapshot and exits nonzero if the endpoint is unreachable (the
 * scriptable mode; the default loop instead keeps retrying, so the
 * viewer can be started before the workload). The endpoint speaks a
 * one-line command protocol ("json", "prom", "sessions", "top"),
 * so `echo json | nc -U PATH` works equally well for raw scraping.
 *
 * Standalone on purpose: it never links the library it observes, so
 * it can watch any varsaw process, including one wedged enough that
 * linking its code would be suspect.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#define VARSAW_TOP_HAVE_UNIX_SOCKETS 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#endif

namespace {

struct Options
{
    std::string socketPath;
    double intervalSeconds = 1.0;
    bool once = false;
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--socket=PATH] [--interval=SEC] [--once]\n"
        "  --socket=PATH    introspection socket (default: "
        "$VARSAW_INTROSPECT)\n"
        "  --interval=SEC   refresh period (default: 1.0)\n"
        "  --once           print one snapshot and exit\n",
        argv0);
}

bool
parseOptions(int argc, char **argv, Options *out)
{
    const char *env = std::getenv("VARSAW_INTROSPECT");
    if (env)
        out->socketPath = env;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char *flag) -> const char * {
            const std::size_t n = std::strlen(flag);
            if (arg.compare(0, n, flag) != 0)
                return nullptr;
            if (arg.size() > n && arg[n] == '=')
                return arg.c_str() + n + 1;
            return nullptr;
        };
        if (const char *v = value("--socket")) {
            out->socketPath = v;
        } else if (const char *v = value("--interval")) {
            out->intervalSeconds = std::atof(v);
            if (out->intervalSeconds <= 0.0)
                out->intervalSeconds = 1.0;
        } else if (arg == "--once") {
            out->once = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return false;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n",
                         arg.c_str());
            usage(argv[0]);
            return false;
        }
    }
    if (out->socketPath.empty()) {
        std::fprintf(stderr,
                     "no socket: pass --socket=PATH or set "
                     "VARSAW_INTROSPECT (and start the service "
                     "with the same value)\n");
        return false;
    }
    return true;
}

#if VARSAW_TOP_HAVE_UNIX_SOCKETS

/** One request/response round trip. Returns false on any failure. */
bool
fetch(const std::string &path, const std::string &command,
      std::string *out)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        ::close(fd);
        return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return false;
    }
    const std::string line = command + "\n";
    std::size_t sent = 0;
    while (sent < line.size()) {
        const ssize_t n =
            ::send(fd, line.data() + sent, line.size() - sent, 0);
        if (n <= 0) {
            ::close(fd);
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    out->clear();
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n < 0) {
            ::close(fd);
            return false;
        }
        if (n == 0)
            break;
        out->append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return true;
}

int
run(const Options &opts)
{
    std::string page;
    if (opts.once) {
        if (!fetch(opts.socketPath, "top", &page)) {
            std::fprintf(stderr,
                         "varsaw-top: cannot reach %s (is a "
                         "service running with VARSAW_INTROSPECT "
                         "set to this path?)\n",
                         opts.socketPath.c_str());
            return 1;
        }
        std::fputs(page.c_str(), stdout);
        return 0;
    }
    const auto interval = std::chrono::duration<double>(
        opts.intervalSeconds);
    bool was_connected = false;
    for (;;) {
        if (fetch(opts.socketPath, "top", &page)) {
            // Home + clear-to-end keeps the refresh flicker-free.
            std::printf("\033[H\033[J%s", page.c_str());
            std::fflush(stdout);
            was_connected = true;
        } else {
            std::printf("\033[H\033[J(waiting for %s%s)\n",
                        opts.socketPath.c_str(),
                        was_connected ? " — service gone"
                                      : "");
            std::fflush(stdout);
        }
        std::this_thread::sleep_for(interval);
    }
}

#else // !VARSAW_TOP_HAVE_UNIX_SOCKETS

int
run(const Options &)
{
    std::fprintf(stderr,
                 "varsaw-top: unix sockets unavailable on this "
                 "platform\n");
    return 1;
}

#endif

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    if (!parseOptions(argc, argv, &opts))
        return 2;
    return run(opts);
}
