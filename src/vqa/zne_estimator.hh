/**
 * @file
 * Zero-noise-extrapolated energy estimator.
 *
 * Applies ZNE (mitigation/zne.hh) on top of the baseline
 * measurement pipeline: per fold factor every basis circuit is
 * folded and measured, per-factor energies are Richardson
 * extrapolated to zero gate noise. Circuit cost per evaluation is
 * factors x bases. Attacks *gate* noise — complementary to the
 * measurement-error mitigation of JigSaw/VarSaw.
 */

#ifndef VARSAW_VQA_ZNE_ESTIMATOR_HH
#define VARSAW_VQA_ZNE_ESTIMATOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mitigation/executor.hh"
#include "mitigation/zne.hh"
#include "pauli/commutation.hh"
#include "pauli/hamiltonian.hh"
#include "runtime/batch_executor.hh"
#include "runtime/submitter.hh"
#include "vqa/estimator.hh"

namespace varsaw {

/** ZNE-on-baseline energy estimator. */
class ZneEstimator : public EnergyEstimator
{
  public:
    /**
     * @param hamiltonian Problem Hamiltonian.
     * @param ansatz      Parameterized preparation circuit.
     * @param executor    Backend (counts the circuit cost).
     * @param shots       Shots per circuit (0 = exact).
     * @param factors     Odd fold factors (default {1, 3, 5}).
     * @param runtime     Batch runtime tunables (threads, cache) or,
     *                    via runtime.service, the shared execution
     *                    service to open a session on. All folded
     *                    basis circuits of one evaluation are
     *                    submitted as one batch.
     */
    ZneEstimator(const Hamiltonian &hamiltonian, const Circuit &ansatz,
                 Executor &executor, std::uint64_t shots,
                 std::vector<int> factors = {1, 3, 5},
                 const RuntimeConfig &runtime = {});

    double estimate(const std::vector<double> &params) override;

    std::string name() const override { return "zne"; }

    /** The fold factors in use. */
    const std::vector<int> &factors() const { return factors_; }

    /** The cover-reduced measurement bases in use. */
    const BasisReduction &reduction() const { return reduction_; }

    /** The submitter (private runtime or shared-service session)
     * circuits are submitted through. */
    JobSubmitter &runtime() { return *runtime_; }
    const JobSubmitter &runtime() const { return *runtime_; }

  private:
    const Hamiltonian &hamiltonian_;
    const Circuit &ansatz_;
    std::unique_ptr<JobSubmitter> runtime_;
    std::uint64_t shots_;
    std::vector<int> factors_;
    BasisReduction reduction_;
};

} // namespace varsaw

#endif // VARSAW_VQA_ZNE_ESTIMATOR_HH
