#include "vqa/estimator.hh"

#include <cmath>

#include "sim/statevector.hh"
#include "util/logging.hh"

namespace varsaw {

double
energyFromBasisPmfs(const Hamiltonian &hamiltonian,
                    const BasisReduction &reduction,
                    const std::vector<Pmf> &basis_pmfs)
{
    if (basis_pmfs.size() != reduction.bases.size())
        panic("energyFromBasisPmfs: PMF count != basis count");

    const auto &terms = hamiltonian.terms();
    std::vector<double> expectations(terms.size(), 0.0);
    for (std::size_t b = 0; b < reduction.bases.size(); ++b) {
        const Pmf &pmf = basis_pmfs[b];
        for (std::size_t t : reduction.basisTerms[b]) {
            expectations[t] =
                pmf.expectationParity(terms[t].string.supportMask());
        }
    }
    return hamiltonian.energy(expectations);
}

ExactEstimator::ExactEstimator(const Hamiltonian &hamiltonian,
                               const Circuit &ansatz)
    : hamiltonian_(hamiltonian), ansatz_(ansatz)
{
}

double
ExactEstimator::estimate(const std::vector<double> &params)
{
    Statevector sv(ansatz_.numQubits());
    sv.run(ansatz_, params);
    double e = hamiltonian_.identityOffset();
    for (const auto &term : hamiltonian_.terms())
        e += term.coefficient * sv.expectationPauli(term.string);
    return e;
}

BaselineEstimator::BaselineEstimator(const Hamiltonian &hamiltonian,
                                     const Circuit &ansatz,
                                     Executor &executor,
                                     std::uint64_t shots,
                                     BasisMode basis_mode,
                                     ShotAllocation allocation,
                                     const RuntimeConfig &runtime)
    : hamiltonian_(hamiltonian),
      prep_(std::make_shared<const Circuit>(ansatz)),
      runtime_(makeSubmitter(executor, runtime)), shots_(shots),
      reduction_(reduceBases(hamiltonian.strings(), basis_mode))
{
    // The ansatz and bases are fixed for the estimator's lifetime,
    // so the measurement suffixes are built once; each evaluation
    // submits them against the shared prep instead of cloning the
    // full prepared circuit per basis.
    suffixes_.reserve(reduction_.bases.size());
    for (const auto &basis : reduction_.bases)
        suffixes_.push_back(makeGlobalSuffix(basis));

    const std::size_t n = reduction_.bases.size();
    basisShots_.assign(n, shots);
    if (allocation == ShotAllocation::CoefficientWeighted &&
        shots > 0 && n > 0) {
        // Distribute the total budget (n * shots) proportionally to
        // each basis's |coefficient| mass, with a floor of 1 shot.
        std::vector<double> mass(n, 0.0);
        double total_mass = 0.0;
        const auto &terms = hamiltonian.terms();
        for (std::size_t b = 0; b < n; ++b) {
            for (std::size_t t : reduction_.basisTerms[b])
                mass[b] += std::abs(terms[t].coefficient);
            total_mass += mass[b];
        }
        if (total_mass > 0.0) {
            const double budget =
                static_cast<double>(n) * static_cast<double>(shots);
            for (std::size_t b = 0; b < n; ++b)
                basisShots_[b] = std::max<std::uint64_t>(
                    1, static_cast<std::uint64_t>(
                           budget * mass[b] / total_mass));
        }
    }
}

double
BaselineEstimator::estimate(const std::vector<double> &params)
{
    Batch batch;
    batch.reserve(suffixes_.size());
    for (std::size_t b = 0; b < suffixes_.size(); ++b)
        batch.addPrefixed(prep_, suffixes_[b], params,
                          basisShots_[b]);
    const std::vector<Pmf> pmfs = runtime_->run(batch);
    return energyFromBasisPmfs(hamiltonian_, reduction_, pmfs);
}

JigsawEstimator::JigsawEstimator(const Hamiltonian &hamiltonian,
                                 const Circuit &ansatz,
                                 Executor &executor,
                                 const JigsawConfig &config,
                                 BasisMode basis_mode,
                                 const RuntimeConfig &runtime)
    : hamiltonian_(hamiltonian),
      prep_(std::make_shared<const Circuit>(ansatz)),
      runtime_(makeSubmitter(executor, runtime)), config_(config),
      reduction_(reduceBases(hamiltonian.strings(), basis_mode))
{
    suffixSets_.reserve(reduction_.bases.size());
    for (const auto &basis : reduction_.bases)
        suffixSets_.push_back(
            makeJigsawSuffixes(basis, config_.subsetSize));
}

double
JigsawEstimator::estimate(const std::vector<double> &params)
{
    // One batch holds every basis's CPMs and Global so independent
    // circuits from different bases can run concurrently; all jobs
    // share the single prep prefix.
    Batch batch;
    std::vector<std::size_t> first_subset_index;
    std::vector<std::size_t> global_index;
    for (const JigsawCircuitSet &set : suffixSets_) {
        first_subset_index.push_back(batch.size());
        for (const auto &c : set.subsetCircuits)
            batch.addPrefixed(prep_, c, params,
                              config_.subsetShots);
        global_index.push_back(
            batch.addPrefixed(prep_, set.globalCircuit, params,
                              config_.globalShots));
    }

    const std::vector<Pmf> results = runtime_->run(batch);

    std::vector<Pmf> pmfs;
    pmfs.reserve(suffixSets_.size());
    for (std::size_t b = 0; b < suffixSets_.size(); ++b) {
        const JigsawCircuitSet &set = suffixSets_[b];
        std::vector<Pmf> subset_pmfs(
            results.begin() +
                static_cast<std::ptrdiff_t>(first_subset_index[b]),
            results.begin() +
                static_cast<std::ptrdiff_t>(
                    first_subset_index[b] + set.windows.size()));
        pmfs.push_back(reconstructJigsaw(set, subset_pmfs,
                                         results[global_index[b]],
                                         config_.reconstructionPasses));
    }
    return energyFromBasisPmfs(hamiltonian_, reduction_, pmfs);
}

} // namespace varsaw
