#include "vqa/estimator.hh"

#include <cmath>

#include "sim/statevector.hh"
#include "util/logging.hh"

namespace varsaw {

double
energyFromBasisPmfs(const Hamiltonian &hamiltonian,
                    const BasisReduction &reduction,
                    const std::vector<Pmf> &basis_pmfs)
{
    if (basis_pmfs.size() != reduction.bases.size())
        panic("energyFromBasisPmfs: PMF count != basis count");

    const auto &terms = hamiltonian.terms();
    std::vector<double> expectations(terms.size(), 0.0);
    for (std::size_t b = 0; b < reduction.bases.size(); ++b) {
        const Pmf &pmf = basis_pmfs[b];
        for (std::size_t t : reduction.basisTerms[b]) {
            expectations[t] =
                pmf.expectationParity(terms[t].string.supportMask());
        }
    }
    return hamiltonian.energy(expectations);
}

ExactEstimator::ExactEstimator(const Hamiltonian &hamiltonian,
                               const Circuit &ansatz)
    : hamiltonian_(hamiltonian), ansatz_(ansatz)
{
}

double
ExactEstimator::estimate(const std::vector<double> &params)
{
    Statevector sv(ansatz_.numQubits());
    sv.run(ansatz_, params);
    double e = hamiltonian_.identityOffset();
    for (const auto &term : hamiltonian_.terms())
        e += term.coefficient * sv.expectationPauli(term.string);
    return e;
}

BaselineEstimator::BaselineEstimator(const Hamiltonian &hamiltonian,
                                     const Circuit &ansatz,
                                     Executor &executor,
                                     std::uint64_t shots,
                                     BasisMode basis_mode,
                                     ShotAllocation allocation)
    : hamiltonian_(hamiltonian), ansatz_(ansatz), executor_(executor),
      shots_(shots),
      reduction_(reduceBases(hamiltonian.strings(), basis_mode))
{
    const std::size_t n = reduction_.bases.size();
    basisShots_.assign(n, shots);
    if (allocation == ShotAllocation::CoefficientWeighted &&
        shots > 0 && n > 0) {
        // Distribute the total budget (n * shots) proportionally to
        // each basis's |coefficient| mass, with a floor of 1 shot.
        std::vector<double> mass(n, 0.0);
        double total_mass = 0.0;
        const auto &terms = hamiltonian.terms();
        for (std::size_t b = 0; b < n; ++b) {
            for (std::size_t t : reduction_.basisTerms[b])
                mass[b] += std::abs(terms[t].coefficient);
            total_mass += mass[b];
        }
        if (total_mass > 0.0) {
            const double budget =
                static_cast<double>(n) * static_cast<double>(shots);
            for (std::size_t b = 0; b < n; ++b)
                basisShots_[b] = std::max<std::uint64_t>(
                    1, static_cast<std::uint64_t>(
                           budget * mass[b] / total_mass));
        }
    }
}

double
BaselineEstimator::estimate(const std::vector<double> &params)
{
    std::vector<Pmf> pmfs;
    pmfs.reserve(reduction_.bases.size());
    for (std::size_t b = 0; b < reduction_.bases.size(); ++b) {
        Circuit c = makeGlobalCircuit(ansatz_, reduction_.bases[b]);
        pmfs.push_back(executor_.execute(c, params, basisShots_[b]));
    }
    return energyFromBasisPmfs(hamiltonian_, reduction_, pmfs);
}

JigsawEstimator::JigsawEstimator(const Hamiltonian &hamiltonian,
                                 const Circuit &ansatz,
                                 Executor &executor,
                                 const JigsawConfig &config,
                                 BasisMode basis_mode)
    : hamiltonian_(hamiltonian), ansatz_(ansatz), executor_(executor),
      config_(config),
      reduction_(reduceBases(hamiltonian.strings(), basis_mode))
{
}

double
JigsawEstimator::estimate(const std::vector<double> &params)
{
    std::vector<Pmf> pmfs;
    pmfs.reserve(reduction_.bases.size());
    for (const auto &basis : reduction_.bases)
        pmfs.push_back(jigsawMitigate(executor_, ansatz_, params,
                                      basis, config_));
    return energyFromBasisPmfs(hamiltonian_, reduction_, pmfs);
}

} // namespace varsaw
