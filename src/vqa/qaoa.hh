/**
 * @file
 * QAOA ansatz construction.
 *
 * The paper names QAOA alongside VQE as the VQA workloads VarSaw
 * serves (Sections 2.4, 7.3). The Quantum Approximate Optimization
 * Algorithm alternates cost layers exp(-i gamma_k C) — with C a
 * diagonal (Z-only) Hamiltonian — and mixer layers of RX rotations
 * on a uniform-superposition start.
 *
 * The optimizer-facing parameter vector is the standard
 * [gamma_1..gamma_p, beta_1..beta_p]; the circuit itself carries one
 * angle slot per (layer, term) and per (layer, mixer qubit) so each
 * term's coefficient scales its angle exactly.
 * expandParameters() maps between the two.
 */

#ifndef VARSAW_VQA_QAOA_HH
#define VARSAW_VQA_QAOA_HH

#include <cstdint>
#include <vector>

#include "pauli/hamiltonian.hh"
#include "sim/circuit.hh"

namespace varsaw {

/** QAOA ansatz builder for diagonal cost Hamiltonians. */
class QaoaAnsatz
{
  public:
    /**
     * Build a p-layer QAOA circuit for @p cost.
     *
     * @param cost   Diagonal Hamiltonian (every term Z/I only;
     *               fatal otherwise). Weight-1 terms compile to RZ,
     *               weight-2 to RZZ, higher weights to a CX-ladder
     *               parity computation around an RZ.
     * @param layers Number p of (cost, mixer) layers.
     */
    QaoaAnsatz(const Hamiltonian &cost, int layers);

    /** The parameterized circuit (no measurements attached). */
    const Circuit &circuit() const { return circuit_; }

    /** Optimizer-facing parameter count: 2p (gammas then betas). */
    int numParams() const { return 2 * layers_; }

    /** Circuit-facing slot count: p * (terms + qubits). */
    int numCircuitParams() const { return layers_ * stride_; }

    /** Number of layers p. */
    int layers() const { return layers_; }

    /**
     * Expand [gamma_1..gamma_p, beta_1..beta_p] into the circuit's
     * angle slots: slot(k, term t) = 2 * gamma_k * coeff_t and
     * slot(k, mixer qubit i) = 2 * beta_k.
     */
    std::vector<double>
    expandParameters(const std::vector<double> &gamma_beta) const;

    /**
     * A deterministic initial [gamma, beta] vector (small positive
     * gammas, mid-range betas), seeded.
     */
    std::vector<double> initialParameters(std::uint64_t seed) const;

  private:
    int layers_;
    int stride_ = 0;
    std::vector<double> coefficients_; //!< term coefficients in order
    Circuit circuit_;
};

} // namespace varsaw

#endif // VARSAW_VQA_QAOA_HH
