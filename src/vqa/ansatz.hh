/**
 * @file
 * Hardware-efficient SU2 ansatz construction.
 *
 * The paper uses Qiskit's EfficientSU2 with "full" entanglement and
 * 2 repetition blocks (Section 5.1), and sweeps entanglement
 * structure (Table 3) and depth p (Table 4). The ansatz alternates
 * RY+RZ rotation layers (one symbolic parameter each) with CX
 * entanglement layers, and closes with a final rotation layer, so a
 * p-rep ansatz has 2 * Q * (p + 1) parameters.
 */

#ifndef VARSAW_VQA_ANSATZ_HH
#define VARSAW_VQA_ANSATZ_HH

#include <string>
#include <utility>
#include <vector>

#include "sim/circuit.hh"

namespace varsaw {

/** CX connectivity pattern of the entanglement layer. */
enum class Entanglement
{
    Full,       //!< CX between every qubit pair (paper default)
    Linear,     //!< chain: CX(i, i+1)
    Circular,   //!< chain plus the wrap-around CX(Q-1, 0)
    /**
     * Skip-one staircase: CX(i, i+2) plus CX(0, 1) to connect the
     * two parity chains. (The paper's "asymmetric" ansatz is not
     * specified further; this is our concrete choice, documented
     * in DESIGN.md.)
     */
    Asymmetric,
};

/** Printable entanglement name. */
const char *entanglementName(Entanglement e);

/** Configuration of an EfficientSU2 ansatz. */
struct AnsatzConfig
{
    int numQubits = 4;
    int reps = 2; //!< entanglement blocks ("p" in Table 4)
    Entanglement entanglement = Entanglement::Full;
};

/** Hardware-efficient SU2 ansatz builder. */
class EfficientSU2
{
  public:
    /** Build the parameterized circuit for @p config. */
    explicit EfficientSU2(const AnsatzConfig &config);

    /** The parameterized circuit (no measurements attached). */
    const Circuit &circuit() const { return circuit_; }

    /** Number of symbolic parameters: 2 * Q * (reps + 1). */
    int numParams() const { return circuit_.numParams(); }

    /** The configuration used. */
    const AnsatzConfig &config() const { return config_; }

    /** CX pairs of one entanglement layer for a given pattern. */
    static std::vector<std::pair<int, int>>
    entanglementPairs(int num_qubits, Entanglement e);

    /**
     * A deterministic, well-spread initial parameter vector for
     * optimizer runs (small angles around zero, seeded).
     */
    std::vector<double> initialParameters(std::uint64_t seed) const;

  private:
    AnsatzConfig config_;
    Circuit circuit_;
};

} // namespace varsaw

#endif // VARSAW_VQA_ANSATZ_HH
