#include "vqa/zne_estimator.hh"

#include "mitigation/jigsaw.hh"
#include "util/logging.hh"

#include <utility>

namespace varsaw {

ZneEstimator::ZneEstimator(const Hamiltonian &hamiltonian,
                           const Circuit &ansatz, Executor &executor,
                           std::uint64_t shots,
                           std::vector<int> factors,
                           const RuntimeConfig &runtime)
    : hamiltonian_(hamiltonian), ansatz_(ansatz),
      runtime_(makeSubmitter(executor, runtime)), shots_(shots),
      factors_(std::move(factors)),
      reduction_(coverReduce(hamiltonian.strings()))
{
    if (factors_.empty())
        fatal("ZneEstimator: need at least one fold factor");
    for (int f : factors_)
        if (f < 1 || f % 2 == 0)
            fatal("ZneEstimator: fold factors must be odd and >= 1");
}

double
ZneEstimator::estimate(const std::vector<double> &params)
{
    // One batch holds every (factor, basis) circuit so independent
    // folds run concurrently; factor 1 of different factor sets, and
    // evaluations repeated at one parameter point, dedupe through
    // the result cache when one is attached. Folding inserts
    // inverse-gate pairs inside the prep, so folded circuits (except
    // factor 1) cannot share a prepared state — they are submitted
    // as plain jobs.
    Batch batch;
    batch.reserve(factors_.size() * reduction_.bases.size());
    for (int factor : factors_)
        for (const auto &basis : reduction_.bases) {
            Circuit global =
                makeGlobalCircuit(ansatz_, basis).bound(params);
            batch.add(foldCircuit(global, factor), {}, shots_);
        }

    const std::vector<Pmf> results = runtime_->run(batch);

    std::vector<std::pair<double, double>> points;
    points.reserve(factors_.size());
    std::size_t next = 0;
    for (int factor : factors_) {
        std::vector<Pmf> pmfs(
            results.begin() + static_cast<std::ptrdiff_t>(next),
            results.begin() +
                static_cast<std::ptrdiff_t>(
                    next + reduction_.bases.size()));
        next += reduction_.bases.size();
        points.emplace_back(
            static_cast<double>(factor),
            energyFromBasisPmfs(hamiltonian_, reduction_, pmfs));
    }
    if (points.size() == 1)
        return points[0].second;
    return richardsonExtrapolate(points);
}

} // namespace varsaw
