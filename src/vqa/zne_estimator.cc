#include "vqa/zne_estimator.hh"

#include "mitigation/jigsaw.hh"
#include "util/logging.hh"

namespace varsaw {

ZneEstimator::ZneEstimator(const Hamiltonian &hamiltonian,
                           const Circuit &ansatz, Executor &executor,
                           std::uint64_t shots,
                           std::vector<int> factors)
    : hamiltonian_(hamiltonian), ansatz_(ansatz), executor_(executor),
      shots_(shots), factors_(std::move(factors)),
      reduction_(coverReduce(hamiltonian.strings()))
{
    if (factors_.empty())
        fatal("ZneEstimator: need at least one fold factor");
    for (int f : factors_)
        if (f < 1 || f % 2 == 0)
            fatal("ZneEstimator: fold factors must be odd and >= 1");
}

double
ZneEstimator::estimate(const std::vector<double> &params)
{
    std::vector<std::pair<double, double>> points;
    points.reserve(factors_.size());
    for (int factor : factors_) {
        std::vector<Pmf> pmfs;
        pmfs.reserve(reduction_.bases.size());
        for (const auto &basis : reduction_.bases) {
            Circuit global =
                makeGlobalCircuit(ansatz_, basis).bound(params);
            Circuit folded = foldCircuit(global, factor);
            pmfs.push_back(executor_.execute(folded, {}, shots_));
        }
        points.emplace_back(
            static_cast<double>(factor),
            energyFromBasisPmfs(hamiltonian_, reduction_, pmfs));
    }
    if (points.size() == 1)
        return points[0].second;
    return richardsonExtrapolate(points);
}

} // namespace varsaw
