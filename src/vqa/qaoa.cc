#include "vqa/qaoa.hh"

#include "util/logging.hh"
#include "util/rng.hh"

namespace varsaw {

QaoaAnsatz::QaoaAnsatz(const Hamiltonian &cost, int layers)
    : layers_(layers), circuit_(cost.numQubits(), "qaoa")
{
    if (layers < 1)
        panic("QaoaAnsatz: need at least one layer");
    for (const auto &term : cost.terms())
        if (term.string.xMask() != 0)
            fatal("QaoaAnsatz: cost Hamiltonian must be diagonal "
                  "(Z/I terms only); offending term " +
                  term.string.toString());

    const int q = cost.numQubits();
    const auto &terms = cost.terms();
    stride_ = static_cast<int>(terms.size()) + q;
    coefficients_.reserve(terms.size());
    for (const auto &term : terms)
        coefficients_.push_back(term.coefficient);

    // |+>^n start.
    for (int i = 0; i < q; ++i)
        circuit_.h(i);

    for (int k = 0; k < layers; ++k) {
        // Cost layer: exp(-i gamma_k c_t Z...Z) per term. The angle
        // slot receives 2 * gamma_k * c_t at expansion time.
        for (std::size_t t = 0; t < terms.size(); ++t) {
            const int slot = k * stride_ + static_cast<int>(t);
            const auto support = terms[t].string.support();
            if (support.size() == 1) {
                circuit_.rzParam(support[0], slot);
            } else if (support.size() == 2) {
                circuit_.rzzParam(support[0], support[1], slot);
            } else {
                // CX ladder folds the parity onto the last support
                // qubit, RZ applies the phase, un-ladder restores.
                for (std::size_t i = 0; i + 1 < support.size(); ++i)
                    circuit_.cx(support[i], support[i + 1]);
                circuit_.rzParam(support.back(), slot);
                for (std::size_t i = support.size() - 1; i > 0; --i)
                    circuit_.cx(support[i - 1], support[i]);
            }
        }
        // Mixer layer: RX(2 beta_k) on every qubit.
        for (int i = 0; i < q; ++i)
            circuit_.rxParam(
                i, k * stride_ + static_cast<int>(terms.size()) + i);
    }
}

std::vector<double>
QaoaAnsatz::expandParameters(
    const std::vector<double> &gamma_beta) const
{
    if (static_cast<int>(gamma_beta.size()) != numParams())
        panic("QaoaAnsatz::expandParameters: expected 2p values");
    const int n_terms = static_cast<int>(coefficients_.size());
    std::vector<double> slots(numCircuitParams(), 0.0);
    for (int k = 0; k < layers_; ++k) {
        const double gamma = gamma_beta[k];
        const double beta = gamma_beta[layers_ + k];
        for (int t = 0; t < n_terms; ++t)
            slots[k * stride_ + t] =
                2.0 * gamma * coefficients_[t];
        for (int i = n_terms; i < stride_; ++i)
            slots[k * stride_ + i] = 2.0 * beta;
    }
    return slots;
}

std::vector<double>
QaoaAnsatz::initialParameters(std::uint64_t seed) const
{
    Rng rng(seed);
    std::vector<double> gb(numParams());
    for (int k = 0; k < layers_; ++k) {
        gb[k] = rng.uniform(0.1, 0.5);           // gamma_k
        gb[layers_ + k] = rng.uniform(0.3, 0.8); // beta_k
    }
    return gb;
}

} // namespace varsaw
