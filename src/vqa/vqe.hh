/**
 * @file
 * VQE driver: the hybrid quantum-classical outer loop (Fig. 4).
 *
 * Alternates quantum objective evaluation (through an
 * EnergyEstimator) with classical parameter updates (through an
 * Optimizer), while recording the energy and cumulative circuit
 * cost so fixed-budget comparisons (Figs. 13, 15) fall out of the
 * trace directly.
 */

#ifndef VARSAW_VQA_VQE_HH
#define VARSAW_VQA_VQE_HH

#include <cstdint>
#include <vector>

#include "pauli/hamiltonian.hh"
#include "vqa/estimator.hh"
#include "vqa/optimizer.hh"

namespace varsaw {

/** Stopping criteria for a VQE run. */
struct VqeConfig
{
    /** Maximum optimizer iterations. */
    int maxIterations = 200;

    /**
     * Stop once this many circuits have been executed through the
     * cost-source executor (0 = unlimited). This is the paper's
     * fixed-circuit-budget comparison knob.
     */
    std::uint64_t circuitBudget = 0;
};

/** One point of the convergence trace. */
struct VqeTracePoint
{
    int iteration = 0;
    double energy = 0.0;     //!< energy observed this iteration
    double bestEnergy = 0.0; //!< best energy seen so far
    std::uint64_t circuits = 0; //!< cumulative circuits executed
};

/** Outcome of a VQE run. */
struct VqeResult
{
    double bestEnergy = 0.0;
    std::vector<double> bestParams;
    int iterations = 0;
    std::uint64_t circuitsUsed = 0;
    std::vector<VqeTracePoint> trace;
};

/**
 * Optional mapping from the optimizer's parameter vector to the
 * ansatz circuit's angle slots (identity when absent). QAOA uses
 * this to optimize [gamma, beta] while the circuit carries one
 * coefficient-scaled slot per term.
 */
using ParameterExpander =
    std::function<std::vector<double>(const std::vector<double> &)>;

/** The hybrid VQE loop. */
class VqeDriver
{
  public:
    /**
     * @param estimator   Objective evaluator (defines the method:
     *                    baseline / jigsaw / varsaw / exact).
     * @param optimizer   Classical tuner.
     * @param cost_source Executor whose circuit counter enforces the
     *                    budget; nullptr disables budget stopping
     *                    and reports zero cost.
     * @param expander    Optional optimizer-to-circuit parameter
     *                    mapping (e.g. QaoaAnsatz::expandParameters).
     */
    VqeDriver(EnergyEstimator &estimator, Optimizer &optimizer,
              Executor *cost_source = nullptr,
              ParameterExpander expander = {});

    /** Run from initial parameters @p x0 under @p config. */
    VqeResult run(std::vector<double> x0, const VqeConfig &config);

  private:
    EnergyEstimator &estimator_;
    Optimizer &optimizer_;
    Executor *costSource_;
    ParameterExpander expander_;
};

} // namespace varsaw

#endif // VARSAW_VQA_VQE_HH
