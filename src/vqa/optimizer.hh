/**
 * @file
 * Classical tuners for the hybrid VQA loop.
 *
 * The paper uses SPSA and ImFil (Section 5.1). Both are implemented
 * here from their published definitions:
 *
 *  - SPSA (Spall): two objective evaluations per iteration at
 *    simultaneous random +-c_k perturbations estimate the gradient
 *    regardless of dimension — the de-facto standard for noisy VQE.
 *  - Implicit Filtering (Kelley; the algorithm behind ImFil):
 *    coordinate-stencil gradient descent whose stencil radius
 *    shrinks when no stencil point improves, filtering noise at
 *    progressively finer scales.
 */

#ifndef VARSAW_VQA_OPTIMIZER_HH
#define VARSAW_VQA_OPTIMIZER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace varsaw {

/** Objective function over a parameter vector (lower is better). */
using Objective = std::function<double(const std::vector<double> &)>;

/**
 * Per-iteration callback: (iteration, params, value). Return false
 * to stop the optimizer early (e.g. circuit budget exhausted).
 */
using IterCallback =
    std::function<bool(int, const std::vector<double> &, double)>;

/** Result of an optimization run. */
struct OptResult
{
    std::vector<double> bestParams;
    double bestValue = 0.0;
    int iterations = 0;
    /** Objective value observed at each iteration (not best-so-far). */
    std::vector<double> trace;
};

/** Abstract minimizer interface. */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /**
     * Minimize @p f from @p x0 for at most @p max_iter iterations.
     *
     * @param cb Optional per-iteration callback; returning false
     *           stops the run (used for fixed circuit budgets).
     */
    virtual OptResult minimize(const Objective &f,
                               std::vector<double> x0, int max_iter,
                               const IterCallback &cb = {}) = 0;

    /** Human-readable optimizer name. */
    virtual std::string name() const = 0;
};

/** Simultaneous Perturbation Stochastic Approximation (Spall). */
class Spsa : public Optimizer
{
  public:
    /** SPSA gain-sequence hyperparameters. */
    struct Config
    {
        /**
         * Step-size numerator. <= 0 requests Spall's calibration:
         * a is chosen from a few probe gradient pairs at x0 so the
         * first update moves each parameter by ~targetFirstStep.
         */
        double a = 0.0;
        double c = 0.15;     //!< perturbation-size numerator
        double bigA = 10.0;  //!< step-size stability offset
        double alpha = 0.602; //!< step-size decay exponent
        double gamma = 0.101; //!< perturbation decay exponent
        /** Desired per-parameter first-step magnitude (radians). */
        double targetFirstStep = 0.25;
        /** Probe pairs used by the calibration. */
        int calibrationProbes = 4;
        /** Per-parameter per-iteration step clamp (radians). */
        double maxStep = 1.0;
        std::uint64_t seed = 7;
    };

    Spsa() : Spsa(Config()) {}
    explicit Spsa(Config config);

    OptResult minimize(const Objective &f, std::vector<double> x0,
                       int max_iter, const IterCallback &cb) override;

    std::string name() const override { return "spsa"; }

  private:
    Config config_;
};

/**
 * Nelder-Mead simplex search (derivative-free). Not used by the
 * paper, provided as an additional tuner for the optimizer
 * ablation; robust on smooth objectives, weaker under heavy shot
 * noise than SPSA.
 */
class NelderMead : public Optimizer
{
  public:
    /** Simplex hyperparameters (standard coefficients). */
    struct Config
    {
        double initialStep = 0.3; //!< initial simplex edge length
        double reflection = 1.0;
        double expansion = 2.0;
        double contraction = 0.5;
        double shrink = 0.5;
    };

    NelderMead() : NelderMead(Config()) {}
    explicit NelderMead(Config config);

    OptResult minimize(const Objective &f, std::vector<double> x0,
                       int max_iter, const IterCallback &cb) override;

    std::string name() const override { return "nelder-mead"; }

  private:
    Config config_;
};

/** Implicit Filtering (the ImFil algorithm). */
class ImplicitFiltering : public Optimizer
{
  public:
    /** Stencil-search hyperparameters. */
    struct Config
    {
        double initialStep = 0.4; //!< initial stencil radius
        double shrink = 0.5;      //!< radius multiplier on stall
        double minStep = 1e-3;    //!< terminate below this radius
        double gradientStep = 1.0; //!< line-step scale along -grad
    };

    ImplicitFiltering() : ImplicitFiltering(Config()) {}
    explicit ImplicitFiltering(Config config);

    OptResult minimize(const Objective &f, std::vector<double> x0,
                       int max_iter, const IterCallback &cb) override;

    std::string name() const override { return "imfil"; }

  private:
    Config config_;
};

} // namespace varsaw

#endif // VARSAW_VQA_OPTIMIZER_HH
