/**
 * @file
 * Energy estimators: how one VQA objective evaluation is turned
 * into quantum circuits.
 *
 * Every estimator answers "what is <H> at these ansatz parameters?"
 * but with different circuit workloads per call:
 *
 *  - ExactEstimator: state-vector expectation, no circuits (used for
 *    ideal references and to find optimal parameters);
 *  - BaselineEstimator: traditional VQA — one circuit per
 *    commutation-reduced measurement basis (the paper's Baseline);
 *  - JigsawEstimator: Baseline plus, per basis, a Global and all
 *    sliding-window subset circuits with Bayesian reconstruction
 *    (the paper's JigSaw-for-VQA);
 *  - VarsawEstimator (src/core/varsaw.hh): the proposed approach.
 */

#ifndef VARSAW_VQA_ESTIMATOR_HH
#define VARSAW_VQA_ESTIMATOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mitigation/executor.hh"
#include "mitigation/jigsaw.hh"
#include "pauli/commutation.hh"
#include "pauli/hamiltonian.hh"
#include "runtime/batch_executor.hh"
#include "runtime/submitter.hh"
#include "sim/circuit.hh"

namespace varsaw {

/** Abstract objective evaluator for the hybrid VQA loop. */
class EnergyEstimator
{
  public:
    virtual ~EnergyEstimator() = default;

    /** Estimate <H> at the given ansatz parameters. */
    virtual double estimate(const std::vector<double> &params) = 0;

    /**
     * Optimizer-iteration boundary notification. Stateful
     * estimators (VarSaw's stale-Global chain) freeze their
     * reconstruction prior within an iteration so that the multiple
     * objective probes of one optimizer step (e.g. SPSA's +-
     * perturbations) see the same prior and the gradient signal is
     * not polluted by chain-advance noise. Default: no-op.
     */
    virtual void onIterationBoundary() {}

    /** Human-readable estimator name. */
    virtual std::string name() const = 0;
};

/** Noise-free, shot-free state-vector expectation (no circuits). */
class ExactEstimator : public EnergyEstimator
{
  public:
    /**
     * @param hamiltonian Problem Hamiltonian.
     * @param ansatz      Parameterized preparation circuit.
     */
    ExactEstimator(const Hamiltonian &hamiltonian,
                   const Circuit &ansatz);

    double estimate(const std::vector<double> &params) override;

    std::string name() const override { return "exact"; }

  private:
    const Hamiltonian &hamiltonian_;
    const Circuit &ansatz_;
};

/** How a baseline evaluation distributes shots across bases. */
enum class ShotAllocation
{
    /** The same shot count for every basis circuit. */
    Uniform,
    /**
     * Shots proportional to each basis's |coefficient| mass
     * (variance-optimal up to term covariances): heavy bases get
     * measured harder for the same total shot budget.
     */
    CoefficientWeighted,
};

/**
 * Traditional VQA estimator: one measurement circuit per
 * cover-reduced basis (the paper's Baseline comparison, which does
 * use Pauli-string commutation but no error mitigation).
 */
class BaselineEstimator : public EnergyEstimator
{
  public:
    /**
     * @param hamiltonian Problem Hamiltonian.
     * @param ansatz      Parameterized preparation circuit,
     *                    snapshotted at construction — later
     *                    changes to the caller's circuit do not
     *                    affect this estimator.
     * @param executor    Backend (counts the circuit cost).
     * @param shots       Shots per basis circuit (0 = exact); under
     *                    CoefficientWeighted allocation this is the
     *                    *average* per basis (total preserved).
     * @param basis_mode  Commutation reduction flavor.
     * @param allocation  Shot distribution across bases.
     * @param runtime     Batch runtime tunables (threads, cache) or,
     *                    via runtime.service, the shared execution
     *                    service to open a session on.
     */
    BaselineEstimator(
        const Hamiltonian &hamiltonian, const Circuit &ansatz,
        Executor &executor, std::uint64_t shots,
        BasisMode basis_mode = BasisMode::Cover,
        ShotAllocation allocation = ShotAllocation::Uniform,
        const RuntimeConfig &runtime = {});

    double estimate(const std::vector<double> &params) override;

    std::string name() const override { return "baseline"; }

    /** The cover-reduced measurement bases in use. */
    const BasisReduction &reduction() const { return reduction_; }

    /** Shots assigned to each basis per evaluation. */
    const std::vector<std::uint64_t> &basisShots() const
    {
        return basisShots_;
    }

    /** The submitter (private runtime or shared-service session)
     * circuits are submitted through. */
    JobSubmitter &runtime() { return *runtime_; }
    const JobSubmitter &runtime() const { return *runtime_; }

  private:
    const Hamiltonian &hamiltonian_;
    /** Construction-time ansatz snapshot, shared by every job. */
    std::shared_ptr<const Circuit> prep_;
    std::unique_ptr<JobSubmitter> runtime_;
    std::uint64_t shots_;
    BasisReduction reduction_;
    /** Per-basis measurement suffixes (fixed across evaluations). */
    std::vector<Circuit> suffixes_;
    std::vector<std::uint64_t> basisShots_;
};

/**
 * JigSaw-for-VQA estimator: every basis circuit is mitigated
 * independently with fresh Globals and fresh sliding-window subsets
 * each evaluation — the costly prior approach VarSaw improves on.
 */
class JigsawEstimator : public EnergyEstimator
{
  public:
    /**
     * @param hamiltonian Problem Hamiltonian.
     * @param ansatz      Parameterized preparation circuit,
     *                    snapshotted at construction.
     * @param executor    Backend (counts the circuit cost).
     * @param config      Subset size, shots, reconstruction passes.
     * @param basis_mode  Commutation reduction flavor.
     * @param runtime     Batch runtime tunables (threads, cache).
     */
    JigsawEstimator(const Hamiltonian &hamiltonian,
                    const Circuit &ansatz, Executor &executor,
                    const JigsawConfig &config,
                    BasisMode basis_mode = BasisMode::Cover,
                    const RuntimeConfig &runtime = {});

    double estimate(const std::vector<double> &params) override;

    std::string name() const override { return "jigsaw"; }

    /** The cover-reduced measurement bases in use. */
    const BasisReduction &reduction() const { return reduction_; }

    /** The submitter (private runtime or shared-service session)
     * circuits are submitted through. */
    JobSubmitter &runtime() { return *runtime_; }
    const JobSubmitter &runtime() const { return *runtime_; }

  private:
    const Hamiltonian &hamiltonian_;
    /** Construction-time ansatz snapshot, shared by every job. */
    std::shared_ptr<const Circuit> prep_;
    std::unique_ptr<JobSubmitter> runtime_;
    JigsawConfig config_;
    BasisReduction reduction_;
    /** Per-basis suffix sets (windows + CPM/Global suffixes). */
    std::vector<JigsawCircuitSet> suffixSets_;
};

/**
 * Shared helper: energy from per-basis output PMFs. Basis b's PMF
 * must span all qubits (bit q = qubit q); each term assigned to b
 * is evaluated as the parity expectation over its support.
 */
double energyFromBasisPmfs(const Hamiltonian &hamiltonian,
                           const BasisReduction &reduction,
                           const std::vector<Pmf> &basis_pmfs);

} // namespace varsaw

#endif // VARSAW_VQA_ESTIMATOR_HH
