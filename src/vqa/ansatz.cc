#include "vqa/ansatz.hh"

#include "util/logging.hh"
#include "util/rng.hh"

#include <utility>

namespace varsaw {

const char *
entanglementName(Entanglement e)
{
    switch (e) {
      case Entanglement::Full:       return "full";
      case Entanglement::Linear:     return "linear";
      case Entanglement::Circular:   return "circular";
      case Entanglement::Asymmetric: return "asymmetric";
    }
    return "?";
}

std::vector<std::pair<int, int>>
EfficientSU2::entanglementPairs(int num_qubits, Entanglement e)
{
    std::vector<std::pair<int, int>> pairs;
    switch (e) {
      case Entanglement::Full:
        for (int i = 0; i < num_qubits; ++i)
            for (int j = i + 1; j < num_qubits; ++j)
                pairs.emplace_back(i, j);
        break;
      case Entanglement::Linear:
        for (int i = 0; i + 1 < num_qubits; ++i)
            pairs.emplace_back(i, i + 1);
        break;
      case Entanglement::Circular:
        for (int i = 0; i + 1 < num_qubits; ++i)
            pairs.emplace_back(i, i + 1);
        if (num_qubits > 2)
            pairs.emplace_back(num_qubits - 1, 0);
        break;
      case Entanglement::Asymmetric:
        for (int i = 0; i + 2 < num_qubits; ++i)
            pairs.emplace_back(i, i + 2);
        if (num_qubits > 1)
            pairs.emplace_back(0, 1);
        break;
    }
    return pairs;
}

EfficientSU2::EfficientSU2(const AnsatzConfig &config)
    : config_(config), circuit_(config.numQubits, "efficient-su2")
{
    if (config.numQubits < 2)
        panic("EfficientSU2: need at least 2 qubits");
    if (config.reps < 1)
        panic("EfficientSU2: reps must be >= 1");

    const int q = config.numQubits;
    int next_param = 0;
    auto rotation_layer = [&]() {
        for (int i = 0; i < q; ++i)
            circuit_.ryParam(i, next_param++);
        for (int i = 0; i < q; ++i)
            circuit_.rzParam(i, next_param++);
    };
    const auto pairs = entanglementPairs(q, config.entanglement);

    for (int rep = 0; rep < config.reps; ++rep) {
        rotation_layer();
        for (const auto &[a, b] : pairs)
            circuit_.cx(a, b);
    }
    rotation_layer();
}

std::vector<double>
EfficientSU2::initialParameters(std::uint64_t seed) const
{
    Rng rng(seed);
    std::vector<double> params(numParams());
    for (auto &p : params)
        p = rng.uniform(-0.4, 0.4);
    return params;
}

} // namespace varsaw
