#include "vqa/vqe.hh"

#include <algorithm>
#include <utility>

namespace varsaw {

VqeDriver::VqeDriver(EnergyEstimator &estimator, Optimizer &optimizer,
                     Executor *cost_source,
                     ParameterExpander expander)
    : estimator_(estimator), optimizer_(optimizer),
      costSource_(cost_source), expander_(std::move(expander))
{
}

VqeResult
VqeDriver::run(std::vector<double> x0, const VqeConfig &config)
{
    VqeResult result;
    result.trace.reserve(config.maxIterations);

    const std::uint64_t start_circuits =
        costSource_ ? costSource_->circuitsExecuted() : 0;

    Objective objective = [this](const std::vector<double> &params) {
        if (expander_)
            return estimator_.estimate(expander_(params));
        return estimator_.estimate(params);
    };

    // Open the first iteration window before the optimizer's initial
    // evaluation; subsequent boundaries fire from the callback.
    estimator_.onIterationBoundary();

    double best = 0.0;
    bool have_best = false;
    IterCallback callback = [&](int iter,
                                const std::vector<double> &,
                                double value) {
        if (!have_best || value < best) {
            best = value;
            have_best = true;
        }
        VqeTracePoint point;
        point.iteration = iter;
        point.energy = value;
        point.bestEnergy = best;
        point.circuits = costSource_
            ? costSource_->circuitsExecuted() - start_circuits : 0;
        result.trace.push_back(point);

        if (config.circuitBudget > 0 &&
            point.circuits >= config.circuitBudget)
            return false;
        estimator_.onIterationBoundary();
        return true;
    };

    OptResult opt = optimizer_.minimize(objective, std::move(x0),
                                        config.maxIterations, callback);

    result.bestEnergy = opt.bestValue;
    result.bestParams = std::move(opt.bestParams);
    result.iterations = opt.iterations;
    result.circuitsUsed = costSource_
        ? costSource_->circuitsExecuted() - start_circuits : 0;
    return result;
}

} // namespace varsaw
