#include "vqa/optimizer.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/logging.hh"
#include "util/rng.hh"

namespace varsaw {

Spsa::Spsa(Config config) : config_(config)
{
}

OptResult
Spsa::minimize(const Objective &f, std::vector<double> x0, int max_iter,
               const IterCallback &cb)
{
    const std::size_t dim = x0.size();
    if (dim == 0)
        panic("Spsa::minimize: empty parameter vector");

    Rng rng(config_.seed);
    OptResult result;
    result.bestParams = x0;
    result.bestValue = f(x0);
    result.trace.reserve(max_iter);

    std::vector<double> x = std::move(x0);
    std::vector<int> delta(dim);

    // Spall's a-calibration: probe |f(x+c d) - f(x-c d)| / (2c) a few
    // times and size a so the first step moves ~targetFirstStep.
    double a = config_.a;
    if (a <= 0.0) {
        double magnitude = 0.0;
        const int probes = std::max(1, config_.calibrationProbes);
        for (int p = 0; p < probes; ++p) {
            std::vector<double> xp = x, xm = x;
            for (std::size_t i = 0; i < dim; ++i) {
                const int d = rng.rademacher();
                xp[i] += config_.c * d;
                xm[i] -= config_.c * d;
            }
            magnitude +=
                std::abs(f(xp) - f(xm)) / (2.0 * config_.c);
        }
        magnitude /= probes;
        if (magnitude < 1e-10)
            magnitude = 1e-10;
        a = config_.targetFirstStep *
            std::pow(config_.bigA + 1.0, config_.alpha) / magnitude;
    }

    for (int k = 0; k < max_iter; ++k) {
        const double ck =
            config_.c / std::pow(k + 1.0, config_.gamma);
        const double ak =
            a / std::pow(k + 1.0 + config_.bigA, config_.alpha);

        for (auto &d : delta)
            d = rng.rademacher();

        std::vector<double> x_plus = x, x_minus = x;
        for (std::size_t i = 0; i < dim; ++i) {
            x_plus[i] += ck * delta[i];
            x_minus[i] -= ck * delta[i];
        }
        const double f_plus = f(x_plus);
        const double f_minus = f(x_minus);
        const double diff = (f_plus - f_minus) / (2.0 * ck);

        for (std::size_t i = 0; i < dim; ++i) {
            double update = ak * diff / static_cast<double>(delta[i]);
            // Trust region: a single shot-noise spike must not throw
            // the iterate across the landscape.
            update = std::clamp(update, -config_.maxStep,
                                config_.maxStep);
            x[i] -= update;
        }

        // Track the better of the two probes as this iteration's
        // observed value; evaluating f(x) separately would cost an
        // extra energy estimate (circuits) per iteration.
        const double observed = std::min(f_plus, f_minus);
        const auto &observed_at = f_plus <= f_minus ? x_plus : x_minus;
        result.trace.push_back(observed);
        if (observed < result.bestValue) {
            result.bestValue = observed;
            result.bestParams = observed_at;
        }
        result.iterations = k + 1;

        if (cb && !cb(k, x, observed))
            break;
    }
    return result;
}

NelderMead::NelderMead(Config config) : config_(config)
{
}

OptResult
NelderMead::minimize(const Objective &f, std::vector<double> x0,
                     int max_iter, const IterCallback &cb)
{
    const std::size_t dim = x0.size();
    if (dim == 0)
        panic("NelderMead::minimize: empty parameter vector");

    // Initial simplex: x0 plus one vertex per axis.
    std::vector<std::vector<double>> simplex;
    std::vector<double> values;
    simplex.push_back(x0);
    values.push_back(f(x0));
    for (std::size_t i = 0; i < dim; ++i) {
        auto v = x0;
        v[i] += config_.initialStep;
        simplex.push_back(v);
        values.push_back(f(simplex.back()));
    }

    OptResult result;
    result.trace.reserve(max_iter);

    auto order = [&]() {
        // Selection sort is fine: simplex has dim+1 vertices.
        for (std::size_t i = 0; i + 1 < simplex.size(); ++i) {
            std::size_t best = i;
            for (std::size_t j = i + 1; j < simplex.size(); ++j)
                if (values[j] < values[best])
                    best = j;
            std::swap(values[i], values[best]);
            std::swap(simplex[i], simplex[best]);
        }
    };

    for (int k = 0; k < max_iter; ++k) {
        order();

        // Centroid of all but the worst vertex.
        std::vector<double> centroid(dim, 0.0);
        for (std::size_t v = 0; v + 1 < simplex.size(); ++v)
            for (std::size_t i = 0; i < dim; ++i)
                centroid[i] += simplex[v][i];
        for (auto &c : centroid)
            c /= static_cast<double>(dim);

        const auto &worst = simplex.back();
        auto blend = [&](double t) {
            std::vector<double> p(dim);
            for (std::size_t i = 0; i < dim; ++i)
                p[i] = centroid[i] + t * (centroid[i] - worst[i]);
            return p;
        };

        auto reflected = blend(config_.reflection);
        const double f_r = f(reflected);
        if (f_r < values[0]) {
            auto expanded = blend(config_.expansion);
            const double f_e = f(expanded);
            if (f_e < f_r) {
                simplex.back() = std::move(expanded);
                values.back() = f_e;
            } else {
                simplex.back() = std::move(reflected);
                values.back() = f_r;
            }
        } else if (f_r < values[values.size() - 2]) {
            simplex.back() = std::move(reflected);
            values.back() = f_r;
        } else {
            auto contracted = blend(-config_.contraction);
            const double f_c = f(contracted);
            if (f_c < values.back()) {
                simplex.back() = std::move(contracted);
                values.back() = f_c;
            } else {
                // Shrink toward the best vertex.
                for (std::size_t v = 1; v < simplex.size(); ++v) {
                    for (std::size_t i = 0; i < dim; ++i)
                        simplex[v][i] = simplex[0][i] +
                            config_.shrink *
                                (simplex[v][i] - simplex[0][i]);
                    values[v] = f(simplex[v]);
                }
            }
        }

        order();
        result.trace.push_back(values[0]);
        result.iterations = k + 1;
        if (cb && !cb(k, simplex[0], values[0]))
            break;
    }

    order();
    result.bestParams = simplex[0];
    result.bestValue = values[0];
    return result;
}

ImplicitFiltering::ImplicitFiltering(Config config) : config_(config)
{
}

OptResult
ImplicitFiltering::minimize(const Objective &f, std::vector<double> x0,
                            int max_iter, const IterCallback &cb)
{
    const std::size_t dim = x0.size();
    if (dim == 0)
        panic("ImplicitFiltering::minimize: empty parameter vector");

    OptResult result;
    std::vector<double> x = std::move(x0);
    double fx = f(x);
    result.bestParams = x;
    result.bestValue = fx;
    result.trace.reserve(max_iter);

    double h = config_.initialStep;

    for (int k = 0; k < max_iter && h >= config_.minStep; ++k) {
        // Central-difference stencil gradient at radius h; remember
        // the best stencil point seen on the way.
        std::vector<double> grad(dim, 0.0);
        double best_stencil = fx;
        std::vector<double> best_point = x;
        for (std::size_t i = 0; i < dim; ++i) {
            std::vector<double> xp = x, xm = x;
            xp[i] += h;
            xm[i] -= h;
            const double fp = f(xp);
            const double fm = f(xm);
            grad[i] = (fp - fm) / (2.0 * h);
            if (fp < best_stencil) {
                best_stencil = fp;
                best_point = xp;
            }
            if (fm < best_stencil) {
                best_stencil = fm;
                best_point = xm;
            }
        }

        // Line step along the negative stencil gradient, backtracking
        // until improvement (or fall back to the best stencil point).
        double norm2 = 0.0;
        for (double g : grad)
            norm2 += g * g;
        bool moved = false;
        if (norm2 > 0.0) {
            double step = config_.gradientStep * h /
                std::sqrt(norm2);
            for (int bt = 0; bt < 3 && !moved; ++bt) {
                std::vector<double> cand = x;
                for (std::size_t i = 0; i < dim; ++i)
                    cand[i] -= step * grad[i];
                const double fc = f(cand);
                if (fc < fx) {
                    x = std::move(cand);
                    fx = fc;
                    moved = true;
                } else {
                    step *= 0.5;
                }
            }
        }
        if (!moved && best_stencil < fx) {
            x = best_point;
            fx = best_stencil;
            moved = true;
        }
        if (!moved)
            h *= config_.shrink; // stencil failure: refine the scale

        result.trace.push_back(fx);
        if (fx < result.bestValue) {
            result.bestValue = fx;
            result.bestParams = x;
        }
        result.iterations = k + 1;

        if (cb && !cb(k, x, fx))
            break;
    }
    return result;
}

} // namespace varsaw
