/**
 * @file
 * Per-qubit readout (measurement) error channels.
 *
 * Measurement errors manifest as classical bit flips after the
 * projective measurement: a true 0 is read as 1 with probability
 * p01, and a true 1 is read as 0 with probability p10 (typically
 * larger, since the excited state can decay during the long readout
 * pulse). The confusion matrix of a qubit is
 *
 *     [ 1-p01   p10 ]
 *     [ p01   1-p10 ]
 *
 * and the register channel is the tensor product over measured
 * qubits, scaled up by measurement crosstalk when many qubits are
 * read simultaneously.
 */

#ifndef VARSAW_NOISE_READOUT_ERROR_HH
#define VARSAW_NOISE_READOUT_ERROR_HH

#include <vector>

namespace varsaw {

/** Asymmetric readout-error rates of one qubit. */
struct ReadoutError
{
    double p01 = 0.0; //!< P(read 1 | true 0)
    double p10 = 0.0; //!< P(read 0 | true 1)

    /** Average flip probability (the usual datasheet number). */
    double
    meanError() const
    {
        return 0.5 * (p01 + p10);
    }

    /**
     * Error scaled by a crosstalk (or noise-sweep) factor, with
     * flip probabilities clamped to 0.5 (beyond that the channel
     * would anti-correlate, which hardware does not do).
     */
    ReadoutError scaled(double factor) const;
};

/**
 * Apply per-qubit readout confusion to a dense distribution over
 * measured bits, in place.
 *
 * @param probs  Dense distribution of length 2^m (bit i = measured
 *               slot i).
 * @param errors One ReadoutError per measured slot (size m).
 */
void applyReadoutConfusion(std::vector<double> &probs,
                           const std::vector<ReadoutError> &errors);

/**
 * Apply the *inverse* of the per-qubit confusion (the core of
 * matrix-based mitigation). The result can contain small negative
 * entries; callers clamp and renormalize.
 *
 * @param probs  Dense distribution of length 2^m.
 * @param errors One ReadoutError per measured slot (size m).
 * @return False if any per-qubit matrix is singular (p01+p10 = 1).
 */
bool applyInverseReadoutConfusion(std::vector<double> &probs,
                                  const std::vector<ReadoutError> &errors);

/**
 * Measurement-crosstalk scale factor for reading @p num_measured
 * qubits simultaneously: 1 + slope * (num_measured - 1). Google
 * reports ~1.26x average degradation for simultaneous readout; the
 * factor grows with the number of concurrent measurements.
 */
double crosstalkFactor(int num_measured, double slope);

} // namespace varsaw

#endif // VARSAW_NOISE_READOUT_ERROR_HH
