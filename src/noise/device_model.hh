/**
 * @file
 * Simulated NISQ device models.
 *
 * The paper evaluates on noisy simulation of IBMQ Mumbai (27 qubits)
 * and on IBM Lagos / Jakarta (7 qubits). Real calibration data is not
 * redistributable, so each preset synthesizes a deterministic,
 * heterogeneous error profile within the publicly reported ranges
 * (readout error 1-7%, two-qubit gate error ~1%, readout crosstalk
 * ~1.26-2x for simultaneous measurement). What matters for VarSaw is
 * the *structure* — heterogeneous readout quality (subsets map onto
 * the best qubits) plus crosstalk that grows with the number of
 * simultaneously measured qubits — and both are preserved.
 */

#ifndef VARSAW_NOISE_DEVICE_MODEL_HH
#define VARSAW_NOISE_DEVICE_MODEL_HH

#include <string>
#include <vector>

#include "noise/readout_error.hh"

namespace varsaw {

/** How gate noise is folded into a simulated execution. */
enum class GateNoiseMode
{
    /** No gate noise (readout error only). */
    None,
    /**
     * Global depolarizing approximation: the ideal output
     * distribution is mixed with the uniform distribution with
     * weight 1 - prod(1 - e_g) over all gates. Exact for a global
     * depolarizing channel; the default, and fast.
     */
    AnalyticDepolarizing,
    /**
     * Stochastic Pauli trajectories: per trajectory, each gate is
     * followed by a random Pauli on its qubits with the gate's error
     * probability. Slower; used for cross-validation.
     */
    PauliTrajectories,
};

/** A simulated quantum device: error rates plus readout profile. */
class DeviceModel
{
  public:
    DeviceModel() = default;

    /**
     * Build a device.
     *
     * @param name           Preset name for reporting.
     * @param readout        Per-physical-qubit readout errors.
     * @param crosstalk_slope Crosstalk slope (see crosstalkFactor()).
     * @param gate1_error    Depolarizing probability per 1q gate.
     * @param gate2_error    Depolarizing probability per 2q gate.
     */
    DeviceModel(std::string name, std::vector<ReadoutError> readout,
                double crosstalk_slope, double gate1_error,
                double gate2_error);

    /** Device name. */
    const std::string &name() const { return name_; }

    /** Number of physical qubits. */
    int numQubits() const
    {
        return static_cast<int>(readout_.size());
    }

    /** Per-physical-qubit readout errors (physical order). */
    const std::vector<ReadoutError> &readout() const
    {
        return readout_;
    }

    /** Crosstalk slope. */
    double crosstalkSlope() const { return crosstalkSlope_; }

    /** Depolarizing probability per one-qubit gate. */
    double gate1Error() const { return gate1Error_; }

    /** Depolarizing probability per two-qubit gate. */
    double gate2Error() const { return gate2Error_; }

    /**
     * Readout errors for a measurement of @p num_measured qubits.
     *
     * Models the two JigSaw mechanisms: when fewer qubits are
     * measured than the device has, the measurement is mapped onto
     * the qubits with the best readout fidelity (sorted ascending by
     * mean error); crosstalk scales every flip probability by
     * crosstalkFactor(num_measured).
     *
     * @param num_measured Number of simultaneously measured qubits.
     * @param best_mapping Map onto the best qubits (subset circuits)
     *                     or keep physical order (full measurement).
     */
    std::vector<ReadoutError>
    effectiveReadout(int num_measured, bool best_mapping) const;

    /** Indices of the @p m qubits with lowest mean readout error. */
    std::vector<int> bestQubits(int m) const;

    /**
     * Copy of this device with *all* error rates multiplied by
     * @p factor (the Appendix B noise sweep).
     */
    DeviceModel scaled(double factor) const;

    /**
     * Copy with per-qubit readout errors perturbed by independent
     * log-normal factors of relative width @p relative_sigma —
     * models calibration drift between sessions (the Section 7.1
     * discussion of calibration-aware deployment).
     */
    DeviceModel drifted(std::uint64_t seed,
                        double relative_sigma) const;

    /** Copy with measurement crosstalk disabled (ablation). */
    DeviceModel withoutCrosstalk() const;

    /** Copy with gate noise disabled (measurement-error-only). */
    DeviceModel withoutGateNoise() const;

    /**
     * Copy with readout error (and crosstalk) disabled, keeping
     * gate noise — isolates the unmitigable error floor when
     * normalizing measurement-mitigation recovery.
     */
    DeviceModel withoutReadoutError() const;

    /** One-line description. */
    std::string summary() const;

    /** @name Presets
     *  @{
     */
    /** 27-qubit IBMQ-Mumbai-like device (the paper's main model). */
    static DeviceModel mumbai();

    /** 7-qubit IBM-Lagos-like device (Fig. 16). */
    static DeviceModel lagos();

    /** 7-qubit IBM-Jakarta-like device (Fig. 16, noisier readout). */
    static DeviceModel jakarta();

    /** Noiseless device with @p num_qubits qubits. */
    static DeviceModel ideal(int num_qubits);

    /**
     * Uniform synthetic device: identical readout error on every
     * qubit (useful in unit tests).
     */
    static DeviceModel uniform(int num_qubits, double p01, double p10,
                               double crosstalk_slope = 0.0,
                               double gate1_error = 0.0,
                               double gate2_error = 0.0);
    /** @} */

  private:
    std::string name_ = "null";
    std::vector<ReadoutError> readout_;
    double crosstalkSlope_ = 0.0;
    double gate1Error_ = 0.0;
    double gate2Error_ = 0.0;
};

} // namespace varsaw

#endif // VARSAW_NOISE_DEVICE_MODEL_HH
