#include "noise/readout_error.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace varsaw {

ReadoutError
ReadoutError::scaled(double factor) const
{
    ReadoutError e;
    e.p01 = std::min(0.5, p01 * factor);
    e.p10 = std::min(0.5, p10 * factor);
    return e;
}

void
applyReadoutConfusion(std::vector<double> &probs,
                      const std::vector<ReadoutError> &errors)
{
    const std::size_t dim = probs.size();
    if (dim != (1ull << errors.size()))
        panic("applyReadoutConfusion: dimension mismatch");

    for (std::size_t q = 0; q < errors.size(); ++q) {
        const double p01 = errors[q].p01;
        const double p10 = errors[q].p10;
        const std::size_t bit = 1ull << q;
        for (std::size_t i = 0; i < dim; ++i) {
            if (i & bit)
                continue;
            const double v0 = probs[i];
            const double v1 = probs[i | bit];
            probs[i] = (1.0 - p01) * v0 + p10 * v1;
            probs[i | bit] = p01 * v0 + (1.0 - p10) * v1;
        }
    }
}

bool
applyInverseReadoutConfusion(std::vector<double> &probs,
                             const std::vector<ReadoutError> &errors)
{
    const std::size_t dim = probs.size();
    if (dim != (1ull << errors.size()))
        panic("applyInverseReadoutConfusion: dimension mismatch");

    for (std::size_t q = 0; q < errors.size(); ++q) {
        const double p01 = errors[q].p01;
        const double p10 = errors[q].p10;
        const double det = 1.0 - p01 - p10;
        if (std::abs(det) < 1e-12)
            return false;
        // Inverse of [[1-p01, p10], [p01, 1-p10]] / det.
        const double inv00 = (1.0 - p10) / det;
        const double inv01 = -p10 / det;
        const double inv10 = -p01 / det;
        const double inv11 = (1.0 - p01) / det;
        const std::size_t bit = 1ull << q;
        for (std::size_t i = 0; i < dim; ++i) {
            if (i & bit)
                continue;
            const double v0 = probs[i];
            const double v1 = probs[i | bit];
            probs[i] = inv00 * v0 + inv01 * v1;
            probs[i | bit] = inv10 * v0 + inv11 * v1;
        }
    }
    return true;
}

double
crosstalkFactor(int num_measured, double slope)
{
    if (num_measured <= 1)
        return 1.0;
    return 1.0 + slope * static_cast<double>(num_measured - 1);
}

} // namespace varsaw
