#include "noise/device_model.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <utility>

#include "util/logging.hh"
#include "util/rng.hh"

namespace varsaw {

namespace {

/**
 * Synthesize a deterministic heterogeneous readout profile: mean
 * errors log-uniform in [lo, hi], asymmetry p10 ~ 1.5-2.5x p01
 * (excited-state decay during readout).
 */
std::vector<ReadoutError>
syntheticReadout(int num_qubits, double lo, double hi,
                 std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<ReadoutError> out(num_qubits);
    for (auto &e : out) {
        const double log_lo = std::log(lo);
        const double log_hi = std::log(hi);
        const double mean = std::exp(rng.uniform(log_lo, log_hi));
        const double asym = rng.uniform(1.5, 2.5);
        // mean = (p01 + p10) / 2 with p10 = asym * p01.
        e.p01 = 2.0 * mean / (1.0 + asym);
        e.p10 = asym * e.p01;
    }
    return out;
}

} // namespace

DeviceModel::DeviceModel(std::string name,
                         std::vector<ReadoutError> readout,
                         double crosstalk_slope, double gate1_error,
                         double gate2_error)
    : name_(std::move(name)), readout_(std::move(readout)),
      crosstalkSlope_(crosstalk_slope), gate1Error_(gate1_error),
      gate2Error_(gate2_error)
{
    if (readout_.empty())
        panic("DeviceModel: must have at least one qubit");
}

std::vector<ReadoutError>
DeviceModel::effectiveReadout(int num_measured, bool best_mapping) const
{
    if (num_measured < 1 || num_measured > numQubits())
        panic("DeviceModel::effectiveReadout: bad measured count");

    std::vector<ReadoutError> slots;
    slots.reserve(num_measured);
    if (best_mapping) {
        for (int q : bestQubits(num_measured))
            slots.push_back(readout_[q]);
    } else {
        for (int q = 0; q < num_measured; ++q)
            slots.push_back(readout_[q]);
    }

    const double factor = crosstalkFactor(num_measured,
                                          crosstalkSlope_);
    for (auto &e : slots)
        e = e.scaled(factor);
    return slots;
}

std::vector<int>
DeviceModel::bestQubits(int m) const
{
    std::vector<int> order(numQubits());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return readout_[a].meanError() < readout_[b].meanError();
    });
    order.resize(m);
    return order;
}

DeviceModel
DeviceModel::scaled(double factor) const
{
    DeviceModel d(*this);
    std::ostringstream name;
    name << name_ << "-x" << factor;
    d.name_ = name.str();
    for (auto &e : d.readout_)
        e = e.scaled(factor);
    d.gate1Error_ = std::min(0.75, gate1Error_ * factor);
    d.gate2Error_ = std::min(0.75, gate2Error_ * factor);
    return d;
}

DeviceModel
DeviceModel::drifted(std::uint64_t seed, double relative_sigma) const
{
    Rng rng(seed);
    DeviceModel d(*this);
    d.name_ = name_ + "-drift";
    for (auto &e : d.readout_) {
        const double factor =
            std::exp(rng.normal(0.0, relative_sigma));
        e = e.scaled(factor);
    }
    return d;
}

DeviceModel
DeviceModel::withoutCrosstalk() const
{
    DeviceModel d(*this);
    d.crosstalkSlope_ = 0.0;
    d.name_ = name_ + "-noxtalk";
    return d;
}

DeviceModel
DeviceModel::withoutGateNoise() const
{
    DeviceModel d(*this);
    d.gate1Error_ = 0.0;
    d.gate2Error_ = 0.0;
    d.name_ = name_ + "-meas-only";
    return d;
}

std::string
DeviceModel::summary() const
{
    std::vector<double> means;
    means.reserve(readout_.size());
    for (const auto &e : readout_)
        means.push_back(e.meanError());
    const double lo = *std::min_element(means.begin(), means.end());
    const double hi = *std::max_element(means.begin(), means.end());
    std::ostringstream out;
    out << name_ << ": " << numQubits() << " qubits, readout "
        << lo * 100 << "-" << hi * 100 << "%, crosstalk slope "
        << crosstalkSlope_ << ", gate err " << gate1Error_ << "/"
        << gate2Error_;
    return out.str();
}

DeviceModel
DeviceModel::mumbai()
{
    // 27 qubits; readout mean error log-uniform in [0.5%, 6.5%]
    // (IBM Falcon r5.1 class machines report readout errors from a
    // few tenths of a percent up to ~7%); crosstalk slope tuned so
    // full-register readout is ~2x worse than isolated, matching
    // the order-of-magnitude degradation the paper cites. Gate
    // errors are kept low enough that measurement error dominates
    // the shallow SU2 ansatz, as in the paper's setting.
    return DeviceModel("ibmq_mumbai_sim",
                       syntheticReadout(27, 0.005, 0.065, 0x4D554D42ull),
                       0.04, 1e-4, 1e-3);
}

DeviceModel
DeviceModel::lagos()
{
    // 7-qubit Falcon r5.11H-like: comparatively clean readout.
    return DeviceModel("ibm_lagos_sim",
                       syntheticReadout(7, 0.007, 0.035, 0x4C41474Full),
                       0.045, 2e-4, 1.5e-3);
}

DeviceModel
DeviceModel::jakarta()
{
    // 7-qubit Falcon r5.11L-like: noisier readout than Lagos.
    return DeviceModel("ibm_jakarta_sim",
                       syntheticReadout(7, 0.015, 0.06, 0x4A414B41ull),
                       0.055, 3e-4, 2.5e-3);
}

DeviceModel
DeviceModel::withoutReadoutError() const
{
    DeviceModel d(*this);
    for (auto &e : d.readout_)
        e = ReadoutError{};
    d.crosstalkSlope_ = 0.0;
    d.name_ = name_ + "-gate-only";
    return d;
}

DeviceModel
DeviceModel::ideal(int num_qubits)
{
    return DeviceModel("ideal",
                       std::vector<ReadoutError>(num_qubits),
                       0.0, 0.0, 0.0);
}

DeviceModel
DeviceModel::uniform(int num_qubits, double p01, double p10,
                     double crosstalk_slope, double gate1_error,
                     double gate2_error)
{
    std::vector<ReadoutError> readout(num_qubits);
    for (auto &e : readout) {
        e.p01 = p01;
        e.p10 = p10;
    }
    return DeviceModel("uniform", std::move(readout), crosstalk_slope,
                       gate1_error, gate2_error);
}

} // namespace varsaw
