/**
 * @file
 * The unified worker scheduler of the shared execution service.
 *
 * One fixed set of worker threads serves BOTH kinds of work in the
 * process:
 *
 *  - **Batch tasks** — type-erased job closures enqueued by service
 *    sessions. Admission is fair FIFO across sessions: each session
 *    owns a queue, tasks stay FIFO within it, and workers
 *    round-robin across the non-empty queues, so a chatty session
 *    cannot starve a quiet one.
 *  - **Kernel chunks** — engaged statevector sweeps published
 *    through util/parallel.hh. A worker with no batch task lends
 *    itself to an active kernel loop (detail::assistOneKernelJob)
 *    and returns when the loop is exhausted; conversely, a worker
 *    executing a batch task that engages a kernel gets helped by
 *    its idle peers. This replaces the two competing thread sets
 *    (batch pool x kernel pool) and with them the manual
 *    "batchThreads x kernelThreads <= cores" sizing rule: the
 *    service's workers ARE the process's thread supply.
 *
 * Determinism: the scheduler only decides WHERE and WHEN work runs.
 * Batch results are pure functions of job content (content-derived
 * streams), kernel chunk decomposition is fixed (util/parallel.hh),
 * so no placement, fairness, or lending decision can change any
 * output bit.
 *
 * Backpressure: each admission queue is depth-bounded (the
 * maxQueueDepth construction parameter; 0 = unbounded). enqueue()
 * never blocks — a full queue is a typed rejection
 * (Admission::Full) so the submitting session can SHED the work
 * with a ResourceExhausted error instead of queueing unboundedly or
 * stalling the submit path.
 *
 * Shutdown: stop accepting, drain every queue, join the workers.
 * Tasks already enqueued always run; enqueue() after shutdown
 * returns Admission::Closed and the caller runs the task inline.
 */

#ifndef VARSAW_SERVICE_SCHEDULER_HH
#define VARSAW_SERVICE_SCHEDULER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.hh"

namespace varsaw {

/** Fair multi-queue worker pool with kernel-assist (see file doc). */
class ServiceScheduler
{
  public:
    /** Outcome of one admission attempt (see enqueue()). */
    enum class Admission
    {
        Accepted, //!< queued; a worker will run the task
        Full,     //!< queue at depth cap — shed or retry later
        Closed,   //!< shutting down / queue closed — run inline
    };

    /**
     * Spawn @p threads workers (at least one).
     *
     * @param max_queue_depth Per-queue admission cap: an enqueue
     *        that would make a queue deeper than this returns
     *        Admission::Full without queueing. 0 = unbounded (the
     *        historical behaviour).
     */
    explicit ServiceScheduler(int threads,
                              std::size_t max_queue_depth = 0);

    /** shutdown() if not already done. */
    ~ServiceScheduler();

    ServiceScheduler(const ServiceScheduler &) = delete;
    ServiceScheduler &operator=(const ServiceScheduler &) = delete;

    /**
     * Open an admission queue (one per session). @p label names the
     * owner in telemetry (the per-session `queue_wait` series); an
     * empty label keeps the queue anonymous (global series only).
     */
    std::uint64_t openQueue(std::string label = {});

    /**
     * Close an admission queue: no further enqueues; tasks already
     * queued still run, and the queue is reaped once empty.
     */
    void closeQueue(std::uint64_t queue);

    /**
     * Append a task to @p queue. Never blocks. Returns
     * Admission::Closed — without queuing — when the scheduler is
     * shutting down or the queue is closed (the caller must then
     * run the task itself: results cannot depend on which side runs
     * it), and Admission::Full when the queue is at its depth cap
     * (the caller sheds the task with a typed error — the one
     * admission outcome where the task does NOT run).
     */
    Admission enqueue(std::uint64_t queue,
                      std::function<void()> task);

    /** Per-queue admission cap (0 = unbounded). */
    std::size_t maxQueueDepth() const { return maxQueueDepth_; }

    /** Chunks currently waiting in @p queue (0 for unknown ids). */
    std::size_t queueDepth(std::uint64_t queue) const;

    /** Block until no task is queued or running. */
    void drain();

    /**
     * Stop accepting work, drain every queue, join the workers.
     * Idempotent and safe to call concurrently — with enqueues
     * (they fail over to inline execution) and with other shutdown
     * callers (every caller returns only once the queues are
     * drained and the workers are joined).
     */
    void shutdown();

    /** Number of worker threads. */
    int threadCount() const
    {
        return static_cast<int>(workers_.size());
    }

    /**
     * Admitted task closures executed by the workers so far. The
     * unit is the enqueued closure — for service sessions one
     * prefix-schedule CHUNK of jobs, not one job; see
     * ServiceStats::jobsSubmitted for job counts.
     */
    std::uint64_t chunksExecuted() const
    {
        return chunksExecuted_.load(std::memory_order_relaxed);
    }

    /**
     * Kernel loops idle workers were lent to so far (one count per
     * assist engagement; see assistedChunks() for the work done).
     */
    std::uint64_t kernelAssists() const
    {
        return kernelAssists_.load(std::memory_order_relaxed);
    }

    /**
     * Kernel chunks actually run by lent idle workers. This is the
     * work that used to be invisible: it shows up in neither
     * chunksExecuted() (not a batch task) nor the standalone pool's
     * helper counts (assist hosts bypass the pool's own workers).
     * With it, this scheduler's utilization adds up:
     * chunksExecuted() batch closures + assistedChunks() kernel
     * chunks is everything its threads ever ran.
     */
    std::uint64_t assistedChunks() const
    {
        return assistedChunks_.load(std::memory_order_relaxed);
    }

  private:
    /**
     * One admitted chunk. enqueueNs is nonzero only when telemetry
     * was observing at admission: it marks the entry as counted in
     * the `service.queue_depth` gauge (so enable/disable races
     * cannot leak the gauge) and carries the timestamp the
     * queue-wait attribution is computed from at pop. Timestamps
     * are never read for scheduling — pure observation.
     */
    struct Entry
    {
        std::function<void()> task;
        std::uint64_t enqueueNs = 0;
    };

    struct Queue
    {
        std::deque<Entry> tasks;
        bool open = true;
        /** Telemetry label of the owning session ("" = anonymous). */
        std::string label;
        /** Lazily resolved per-session queue-wait series. */
        telemetry::Histogram *waitHist = nullptr;
    };

    /** Pop the next task round-robin. Caller holds mutex_ and has
     * checked queuedCount_ > 0. */
    std::function<void()> popNextLocked();

    void workerLoop();

    /** Kernel-assist wake callback (registered with util/parallel). */
    void signalKernelWork();

    mutable std::mutex mutex_;
    std::size_t maxQueueDepth_ = 0; //!< 0 = unbounded
    std::condition_variable workCv_; //!< workers wait here
    std::condition_variable idleCv_; //!< drain() waits here
    /** Admission queues by id (ordered, for stable round-robin). */
    std::map<std::uint64_t, Queue> queues_;
    std::uint64_t nextQueueId_ = 1;
    /** Queue id served last; the scan resumes after it. */
    std::uint64_t cursor_ = 0;
    std::size_t queuedCount_ = 0;
    int runningCount_ = 0;
    bool stopping_ = false;
    bool joined_ = false;
    /** Bumped (under mutex_) when a kernel loop is published. */
    std::uint64_t kernelSignals_ = 0;
    std::atomic<std::uint64_t> chunksExecuted_{0};
    std::atomic<std::uint64_t> kernelAssists_{0};
    std::atomic<std::uint64_t> assistedChunks_{0};
    int assistHostId_ = -1;
    std::vector<std::thread> workers_;
};

} // namespace varsaw

#endif // VARSAW_SERVICE_SCHEDULER_HH
