#include "service/scheduler.hh"

#include "telemetry/metrics.hh"
#include "telemetry/profiler.hh"
#include "telemetry/trace.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

#include <utility>

namespace varsaw {

namespace {

/** Worker-utilization mirror under `service.scheduler.*`, plus the
 * admission-queue visibility gauges: `service.queue_depth` (chunks
 * waiting across every queue) and `service.queue_age_us` (age of
 * the chunk a worker most recently dequeued). */
struct SchedulerMetrics
{
    telemetry::Counter &chunksExecuted;
    telemetry::Counter &kernelAssists;
    telemetry::Counter &assistedChunks;
    telemetry::Histogram &chunkLatencyNs;
    telemetry::Gauge &queueDepth;
    telemetry::Gauge &queueAgeUs;

    static SchedulerMetrics &
    get()
    {
        auto &reg = telemetry::MetricsRegistry::instance();
        static SchedulerMetrics *m = new SchedulerMetrics{
            reg.counter("service.scheduler.chunks_executed"),
            reg.counter("service.scheduler.kernel_assists"),
            reg.counter("service.scheduler.assisted_chunks"),
            reg.histogram("service.scheduler.chunk_latency_ns"),
            reg.gauge("service.queue_depth"),
            reg.gauge("service.queue_age_us"),
        };
        return *m;
    }
};

} // namespace

ServiceScheduler::ServiceScheduler(int threads,
                                   std::size_t max_queue_depth)
    : maxQueueDepth_(max_queue_depth)
{
    if (threads < 1)
        panic("ServiceScheduler: thread count must be >= 1");
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    // Register as a kernel-assist host AFTER the workers exist:
    // from here on, idle workers are the process's kernel helper
    // supply and the standalone kernel pool spawns no threads.
    assistHostId_ =
        detail::addKernelAssistHost([this] { signalKernelWork(); });
}

ServiceScheduler::~ServiceScheduler()
{
    shutdown();
}

void
ServiceScheduler::signalKernelWork()
{
    {
        // Under mutex_ so a worker between predicate check and
        // sleep cannot miss the wake.
        std::lock_guard<std::mutex> lock(mutex_);
        ++kernelSignals_;
    }
    workCv_.notify_all();
}

std::uint64_t
ServiceScheduler::openQueue(std::string label)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t id = nextQueueId_++;
    Queue queue;
    queue.label = std::move(label);
    queues_.emplace(id, std::move(queue));
    return id;
}

void
ServiceScheduler::closeQueue(std::uint64_t queue)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = queues_.find(queue);
    if (it == queues_.end())
        return;
    if (it->second.tasks.empty())
        queues_.erase(it); // nothing pending: reap immediately
    else
        it->second.open = false; // reaped by popNextLocked()
}

ServiceScheduler::Admission
ServiceScheduler::enqueue(std::uint64_t queue,
                          std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            return Admission::Closed;
        auto it = queues_.find(queue);
        if (it == queues_.end() || !it->second.open)
            return Admission::Closed;
        if (maxQueueDepth_ != 0 &&
            it->second.tasks.size() >= maxQueueDepth_)
            return Admission::Full;
        // A shed (Full) or closed admission never reaches here, so
        // the depth gauge counts exactly the entries a pop will
        // later decrement — typed-shed paths cannot leak depth. The
        // timestamp doubles as the "counted" marker (see Entry).
        Entry entry{std::move(task), 0};
        if (telemetry::metricsEnabled() ||
            telemetry::profilerEnabled()) {
            entry.enqueueNs = telemetry::nowNs();
            SchedulerMetrics::get().queueDepth.add(1);
        }
        it->second.tasks.push_back(std::move(entry));
        ++queuedCount_;
    }
    workCv_.notify_one();
    return Admission::Accepted;
}

std::function<void()>
ServiceScheduler::popNextLocked()
{
    // Round-robin: resume the scan strictly after the queue served
    // last, wrapping once. queuedCount_ > 0 guarantees a hit.
    auto it = queues_.upper_bound(cursor_);
    for (std::size_t scanned = 0; scanned <= queues_.size();
         ++scanned) {
        if (it == queues_.end())
            it = queues_.begin();
        if (!it->second.tasks.empty()) {
            cursor_ = it->first;
            Entry entry = std::move(it->second.tasks.front());
            it->second.tasks.pop_front();
            --queuedCount_;
            if (entry.enqueueNs != 0) {
                // Queue-wait attribution + the visibility gauges.
                // Observation only: the timestamps never influence
                // which task was picked.
                const std::uint64_t age =
                    telemetry::nowNs() - entry.enqueueNs;
                auto &m = SchedulerMetrics::get();
                m.queueDepth.add(-1);
                m.queueAgeUs.set(
                    static_cast<std::int64_t>(age / 1000));
                if (telemetry::profilerEnabled()) {
                    telemetry::recordPhaseNs(
                        telemetry::Phase::QueueWait, age);
                    if (!it->second.waitHist &&
                        !it->second.label.empty())
                        it->second.waitHist =
                            &telemetry::sessionPhaseHistogram(
                                telemetry::Phase::QueueWait,
                                it->second.label);
                    if (it->second.waitHist)
                        it->second.waitHist->record(age);
                }
            }
            if (!it->second.open && it->second.tasks.empty())
                queues_.erase(it); // closed and drained: reap
            return std::move(entry.task);
        }
        ++it;
    }
    panic("ServiceScheduler: queuedCount_ out of sync");
    return {};
}

void
ServiceScheduler::workerLoop()
{
    std::uint64_t seen_signals = 0;
    for (;;) {
        std::function<void()> task;
        bool assist = false;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(lock, [&] {
                return stopping_ || queuedCount_ > 0 ||
                    kernelSignals_ != seen_signals;
            });
            if (queuedCount_ > 0) {
                // Drain batch work first — also on shutdown, so
                // every accepted task runs before the workers exit.
                task = popNextLocked();
                ++runningCount_;
            } else if (stopping_) {
                return;
            } else {
                seen_signals = kernelSignals_;
                assist = true;
            }
        }
        if (task) {
            {
                telemetry::ScopedSpan span("chunk", 0);
                task();
                if (telemetry::metricsEnabled()) {
                    auto &m = SchedulerMetrics::get();
                    m.chunksExecuted.add();
                    if (span.armed())
                        m.chunkLatencyNs.record(span.elapsedNs());
                }
            }
            chunksExecuted_.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(mutex_);
            --runningCount_;
            if (queuedCount_ == 0 && runningCount_ == 0)
                idleCv_.notify_all();
        } else if (assist) {
            // Idle: lend this worker to engaged kernel loops until
            // none need help, then go back to waiting for batch
            // work.
            std::uint64_t ran;
            while ((ran = detail::assistOneKernelJob()) > 0) {
                kernelAssists_.fetch_add(1,
                                         std::memory_order_relaxed);
                assistedChunks_.fetch_add(
                    ran, std::memory_order_relaxed);
                if (telemetry::metricsEnabled()) {
                    auto &m = SchedulerMetrics::get();
                    m.kernelAssists.add();
                    m.assistedChunks.add(ran);
                }
            }
        }
    }
}

std::size_t
ServiceScheduler::queueDepth(std::uint64_t queue) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = queues_.find(queue);
    return it == queues_.end() ? 0 : it->second.tasks.size();
}

void
ServiceScheduler::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [&] {
        return queuedCount_ == 0 && runningCount_ == 0;
    });
}

void
ServiceScheduler::shutdown()
{
    bool joiner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (joined_)
            return;
        if (!stopping_) {
            stopping_ = true;
            joiner = true; // first caller performs the join
        }
    }
    if (!joiner) {
        // A concurrent shutdown is in flight: block until ITS join
        // completes, so every returning caller sees the documented
        // post-condition (queues drained, workers gone).
        std::unique_lock<std::mutex> lock(mutex_);
        idleCv_.wait(lock, [&] { return joined_; });
        return;
    }
    workCv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
    // Unregister only after the workers are gone: the wake callback
    // references this object, and removeKernelAssistHost()
    // guarantees no further invocation once it returns.
    if (assistHostId_ >= 0)
        detail::removeKernelAssistHost(assistHostId_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        joined_ = true;
    }
    idleCv_.notify_all();
}

} // namespace varsaw
