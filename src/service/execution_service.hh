/**
 * @file
 * The shared execution service: one process-wide scheduler, shared
 * caches, multi-tenant sessions.
 *
 * Before this layer, every estimator owned a private BatchExecutor
 * — its own worker pool, its own ResultCache — so
 * SelectiveVarsawEstimator's heavy/light halves, a ZNE wrapper over
 * a baseline, or two concurrent clients re-executed identical jobs
 * and competed for cores. The ExecutionService inverts the
 * ownership: ONE service per backend owns the worker supply (a
 * ServiceScheduler whose threads also serve as the kernel-helper
 * pool) and the shared dedupe state (one JobLedger + ResultCache
 * across all tenants, plus the backend SimEngine's StateCache,
 * which all sessions share by construction). Estimators and
 * external clients hold cheap Session handles and submit batches
 * through them; identical (prep, suffix, params, shots) work
 * submitted by DIFFERENT sessions executes once.
 *
 * Determinism contract: every job's sampling stream is derived from
 * its content key (see jobStream), so a job's result is a pure
 * function of (backend, job content). Cross-session dedupe, cache
 * eviction, fairness decisions, worker lending, shutdown races —
 * none of them can change a result bit: a shared-service run is
 * bit-identical to the same estimators on private runtimes, at any
 * thread count, session count, or submission interleaving. What
 * interleaving CAN change is bookkeeping (which session's
 * submission was the primary, hence per-session hit splits and
 * wall time) — never results or the set of results.
 *
 * Sessions are multi-tenant: per-session statistics (jobs, hits,
 * cross-session hits, shots saved), fair FIFO admission (one
 * scheduler queue per session, round-robin service), and graceful
 * shutdown — shutdown() stops admission, drains every queue, joins
 * the workers; submissions arriving after shutdown execute inline
 * on the submitting thread with identical results.
 *
 * Layering: service/ sits on top of runtime/ (it implements the
 * ExecutionBackplane interface estimators reach through
 * RuntimeConfig::service); nothing below service/ may include it.
 */

#ifndef VARSAW_SERVICE_EXECUTION_SERVICE_HH
#define VARSAW_SERVICE_EXECUTION_SERVICE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mitigation/executor.hh"
#include "runtime/batch_executor.hh"
#include "runtime/job_ledger.hh"
#include "runtime/result_cache.hh"
#include "runtime/submitter.hh"
#include "service/scheduler.hh"
#include "telemetry/introspect.hh"

namespace varsaw {

class ExecutionService;

/** Tunables of the shared execution service. */
struct ServiceConfig
{
    /**
     * Worker threads. 0 (the default) resolves through
     * resolveServiceThreads(): the --service-threads flag /
     * VARSAW_SERVICE_THREADS when set, else the hardware
     * concurrency. This is the ONE thread knob to size: the same
     * workers run batch jobs and are lent to engaged kernels, so
     * the old batchThreads x kernelThreads <= cores rule does not
     * apply. Results never depend on it.
     */
    int threads = 0;

    /**
     * Dedupe identical submissions across ALL sessions through the
     * shared ledger + result cache (on by default — sharing is the
     * point of the service). Sessions opened with an explicit
     * RuntimeConfig can still opt out individually.
     */
    bool cacheResults = true;

    /** Tracked-key cap of the shared dedupe ledger / result cache. */
    std::size_t cacheMaxEntries = 1 << 16;

    /** Default prefix-aware placement for sessions (see
     * RuntimeConfig::prefixAwareScheduling). */
    bool prefixAwareScheduling = true;

    /**
     * Intra-kernel threads to apply at service construction via
     * setKernelThreads() — this sets the per-loop helper admission
     * cap; the helpers themselves are the service's idle workers.
     * 0 leaves the process-wide setting untouched.
     */
    int kernelThreads = 0;

    /**
     * Per-session admission-queue depth cap (scheduler chunks, not
     * jobs). A submit whose chunk finds its session's queue at the
     * cap is SHED: the chunk's jobs fail with ResourceExhausted
     * (their ledger claims are abandoned so cross-session waiters
     * fail too instead of hanging) and the caller is expected to
     * back off and resubmit. 0 (the default) = unbounded, the
     * historical behaviour.
     */
    std::size_t maxQueueDepth = 0;

    /**
     * Latency-class SLO targets: a batch whose submit-to-complete
     * wall time exceeds its session's class target bumps the
     * `service.slo_burn{class=...}` counter (every batch also lands
     * in the `service.latency_ns{class=...}` histogram, SLO or not).
     * Pure accounting — admission and scheduling never read these.
     * 0 disables burn counting for that class.
     */
    std::uint64_t interactiveSloNs = 100'000'000;     //!< 100 ms
    std::uint64_t bulkSloNs = 10'000'000'000;         //!< 10 s

    /** Latency class of sessions that do not declare one (see
     * RuntimeConfig::latencyClass for sessions that do). */
    LatencyClass defaultLatencyClass = LatencyClass::Bulk;
};

/** Per-session submission/dedupe statistics. */
struct SessionStats
{
    /** Jobs submitted through this session. */
    std::uint64_t jobsSubmitted = 0;

    /** Submissions answered from the shared ledger (duplicates). */
    std::uint64_t cacheHits = 0;

    /** Subset of cacheHits whose primary was submitted by a
     * DIFFERENT session: work this tenant got for free from
     * another. */
    std::uint64_t crossSessionHits = 0;

    /** Submissions this session executed as a key's primary. */
    std::uint64_t cacheMisses = 0;

    /** Shots avoided across this session's hits. */
    std::uint64_t shotsSaved = 0;

    /** Jobs executed inline on the submitting thread (after
     * service shutdown, when admission raced it, or degraded
     * around an injected worker stall). */
    std::uint64_t inlineJobs = 0;

    /** Jobs shed at admission (queue at its depth cap): their
     * futures failed with ResourceExhausted without executing. */
    std::uint64_t shedJobs = 0;
};

/** Service-wide statistics. */
struct ServiceStats
{
    std::uint64_t sessionsOpened = 0;
    std::uint64_t jobsSubmitted = 0;

    /** Duplicates answered across session boundaries. */
    std::uint64_t crossSessionHits = 0;

    /** Admitted task chunks the scheduler's workers executed (a
     * chunk holds one or more jobs; compare jobsSubmitted for job
     * counts). */
    std::uint64_t chunksExecuted = 0;

    /** Kernel loops idle workers were lent to. */
    std::uint64_t kernelAssists = 0;

    /** Kernel chunks those lent workers actually ran — the work
     * that, before this counter, appeared in no stats struct (see
     * ServiceScheduler::assistedChunks). */
    std::uint64_t kernelAssistedChunks = 0;

    /** Jobs shed at admission across all sessions (queue depth cap
     * hit; futures failed with ResourceExhausted). */
    std::uint64_t shedJobs = 0;

    /** Jobs that fell over to inline execution because admission
     * was already closed (late submit racing shutdown). */
    std::uint64_t inlineAfterShutdown = 0;

    /** Poison keys currently quarantined in the shared ledger. */
    std::uint64_t quarantinedKeys = 0;

    /** Shared result-cache statistics (all sessions combined). */
    CacheStats cache;
};

/**
 * A tenant's handle onto the shared service. Implements
 * JobSubmitter, so estimators use it exactly like a private
 * BatchExecutor. Cheap to create; destroy to release the session's
 * admission queue (tasks already admitted still run). Must not
 * outlive the service unless it was opened through the owning
 * (shared_ptr) path.
 */
class Session : public JobSubmitter
{
  public:
    ~Session() override;

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    std::vector<std::future<Pmf>> submit(const Batch &batch) override;

    Executor &backend() override;
    const Executor &backend() const override;

    /**
     * This session's share of the shared cache:
     * hits/misses/shotsSaved as counted at this session's
     * submissions (circuitsSaved == hits). Insertions/evictions are
     * service-wide concepts and read 0 here; see
     * ExecutionService::cache() for the global view.
     */
    CacheStats cacheStats() const override;

    std::uint64_t jobsSubmitted() const override;

    /** Full per-session statistics. */
    SessionStats stats() const;

    /** Session id (unique within the service; tags ledger claims). */
    std::uint64_t id() const { return id_; }

    /** Diagnostic name ("" unless given at creation). */
    const std::string &name() const { return name_; }

    /** Declared latency class (SLO accounting series selector). */
    LatencyClass latencyClass() const { return latencyClass_; }

    /** The service this session submits through. */
    ExecutionService &service() { return *service_; }
    const ExecutionService &service() const { return *service_; }

  private:
    friend class ExecutionService;

    Session(ExecutionService *service,
            std::shared_ptr<ExecutionService> keep_alive,
            std::string name, bool cache_results,
            bool prefix_aware, LatencyClass latency_class);

    ExecutionService *service_;
    /** Set on the owning path (env shim): the last session keeps
     * the service alive. */
    std::shared_ptr<ExecutionService> keepAlive_;
    std::string name_;
    std::uint64_t id_;
    std::uint64_t queue_;
    bool cacheResults_;
    bool prefixAware_;
    LatencyClass latencyClass_;

    std::atomic<std::uint64_t> jobs_{0};
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> crossHits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> shotsSaved_{0};
    std::atomic<std::uint64_t> inlineJobs_{0};
    std::atomic<std::uint64_t> shed_{0};
};

/** The shared execution service (see file comment). */
class ExecutionService : public ExecutionBackplane
{
  public:
    /**
     * @param backend Executor all sessions' jobs run on. One
     *                service per backend: results are
     *                backend-specific, so cached results must never
     *                cross backends.
     * @param config  Service tunables.
     */
    explicit ExecutionService(Executor &backend,
                              ServiceConfig config = {});

    /** shutdown(), then releases the scheduler and caches. */
    ~ExecutionService() override;

    /**
     * Open a session with the service's default cache/placement
     * settings. The session borrows the service (must not outlive
     * it).
     */
    std::unique_ptr<Session> createSession(std::string name = {});

    /**
     * createSession with an explicit latency class (the SLO series
     * the session's batches are accounted under — see
     * ServiceConfig::interactiveSloNs / bulkSloNs). Accounting only:
     * admission and scheduling treat every class identically.
     */
    std::unique_ptr<Session>
    createSession(std::string name, LatencyClass latency_class);

    /**
     * ExecutionBackplane: open a session for an estimator.
     * @p backend must be THIS service's backend. Honors
     * config.cacheResults / config.prefixAwareScheduling per
     * session; config.threads is ignored (the service's workers are
     * the thread supply).
     */
    std::unique_ptr<JobSubmitter>
    openSession(Executor &backend,
                const RuntimeConfig &config) override;

    /**
     * Owning variant used when sessions must keep the service alive
     * (the VARSAW_SHARED_SERVICE env shim): @p self must be a
     * shared_ptr to this service.
     */
    std::unique_ptr<Session>
    openOwnedSession(std::shared_ptr<ExecutionService> self,
                     const RuntimeConfig &config);

    /** The backend all sessions execute on. */
    Executor &backend() { return backend_; }
    const Executor &backend() const { return backend_; }

    /** The backend's prefix-sharing engine (shared StateCache).
     * Read through the backend live, so it stays correct even if
     * the backend's engine is replaced (configureSimEngine /
     * setSimEngine) after this service was built. */
    SimEngine &simEngine() { return backend_.simEngine(); }
    const SimEngine &simEngine() const
    {
        return backend_.simEngine();
    }

    /** The shared result cache (service-wide statistics). */
    const ResultCache &cache() const { return cache_; }
    ResultCache &cache() { return cache_; }

    /** The shared dedupe ledger (quarantine inspection /
     * clearQuarantine() after operator intervention). */
    const JobLedger &ledger() const { return ledger_; }
    JobLedger &ledger() { return ledger_; }

    /** Service configuration in use (threads resolved). */
    const ServiceConfig &config() const { return config_; }

    /** Resolved worker count. */
    int threadCount() const { return scheduler_.threadCount(); }

    /** Block until every admitted task has completed. */
    void drain();

    /**
     * Drop all shared dedupe state (ledger + result cache; the
     * backend's StateCache is untouched). Results cannot change —
     * they are pure functions of job content — so this only costs
     * re-execution. Use it to release memory, or to fence
     * measurement phases whose cost accounting must not share work
     * (e.g. comparing methods under a circuit budget, as
     * quickstart does). Safe during concurrent submission.
     */
    void clearSharedCaches();

    /**
     * Graceful shutdown: stop admission, drain every session's
     * queue, join the workers. Safe to call while sessions are
     * submitting concurrently — a submission that misses admission
     * executes inline on the submitting thread with an identical
     * result. Idempotent; also runs at destruction.
     */
    void shutdown();

    /** Whether shutdown has been requested. */
    bool closed() const
    {
        return closed_.load(std::memory_order_acquire);
    }

    /** Service-wide statistics snapshot. */
    ServiceStats stats() const;

  private:
    friend class Session;

    /** Session-facing submission core (defined in the .cc). */
    std::vector<std::future<Pmf>>
    submitFor(Session &session, const Batch &batch);

    std::unique_ptr<Session>
    makeSession(std::shared_ptr<ExecutionService> keep_alive,
                std::string name, bool cache_results,
                bool prefix_aware, LatencyClass latency_class);

    /** Start the live-introspection endpoint when
     * telemetry::introspectPath() is set (ctor helper). */
    void maybeStartIntrospection();

    /** Status rows for the introspection endpoint (one per live
     * session, id order). */
    std::vector<telemetry::SessionStatusRow> sessionStatus() const;

    /** Live-session registry maintained by Session ctor/dtor —
     * read only by the introspection endpoint. */
    void registerSession(Session &session);
    void unregisterSession(Session &session);

    Executor &backend_;
    ServiceConfig config_;
    ResultCache cache_;
    JobLedger ledger_;
    std::atomic<std::uint64_t> nextSessionId_{1};
    std::atomic<std::uint64_t> sessionsOpened_{0};
    std::atomic<std::uint64_t> jobsSubmitted_{0};
    std::atomic<std::uint64_t> crossSessionHits_{0};
    std::atomic<std::uint64_t> shedJobs_{0};
    std::atomic<std::uint64_t> inlineAfterShutdown_{0};
    /** Latched by the first inline-after-shutdown fallover so the
     * warning prints once per service, not once per chunk. */
    std::atomic<bool> warnedLateInline_{false};
    std::atomic<bool> closed_{false};
    /** Guards liveSessions_ (introspection reads vs session
     * open/close). */
    mutable std::mutex sessionsMutex_;
    /** Live sessions by id — non-owning; entries are erased in
     * ~Session before the session's members die. */
    std::map<std::uint64_t, Session *> liveSessions_;
    /**
     * Declared last: its destructor (via shutdown()) joins the
     * workers first, so no in-flight task can touch the ledger or
     * cache after they are destroyed.
     */
    ServiceScheduler scheduler_;
    /**
     * Declared after scheduler_ so it is destroyed FIRST: the
     * endpoint's accept thread reads stats()/sessionStatus() and
     * must be joined before the scheduler or the session registry
     * can go away. Null unless VARSAW_INTROSPECT / --introspect was
     * set when the service was constructed.
     */
    std::unique_ptr<telemetry::IntrospectServer> introspect_;
};

} // namespace varsaw

#endif // VARSAW_SERVICE_EXECUTION_SERVICE_HH
