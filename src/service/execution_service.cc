#include "service/execution_service.hh"

#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "fault/fault_injector.hh"
#include "telemetry/metrics.hh"
#include "telemetry/profiler.hh"
#include "telemetry/trace.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace varsaw {

namespace {

/** Service-wide mirror under `service.*`. */
struct ServiceMetrics
{
    telemetry::Counter &sessionsOpened;
    telemetry::Counter &jobsSubmitted;
    telemetry::Counter &crossSessionHits;
    telemetry::Counter &shed;
    telemetry::Counter &inlineAfterShutdown;

    static ServiceMetrics &
    get()
    {
        auto &reg = telemetry::MetricsRegistry::instance();
        static ServiceMetrics *m = new ServiceMetrics{
            reg.counter("service.sessions_opened"),
            reg.counter("service.jobs_submitted"),
            reg.counter("service.cross_session_hits"),
            reg.counter("service.shed"),
            reg.counter("service.inline_after_shutdown"),
        };
        return *m;
    }
};

/** Label value identifying a session: its name, or "s<id>". */
std::string
sessionLabel(const Session &session)
{
    if (!session.name().empty())
        return session.name();
    return "s" + std::to_string(session.id());
}

/**
 * Per-session labeled counters under `service.session.*{session=X}`.
 * Looked up once per submit() batch (a registry-mutex lookup), then
 * bumped with the batch's tallies — never per job.
 */
struct SessionBatchMetrics
{
    telemetry::Counter &jobs;
    telemetry::Counter &hits;
    telemetry::Counter &crossHits;
    telemetry::Counter &misses;
    telemetry::Counter &shotsSaved;
    telemetry::Counter &inlineJobs;

    static SessionBatchMetrics
    forSession(const Session &session)
    {
        auto &reg = telemetry::MetricsRegistry::instance();
        const auto label = [&session](const char *base) {
            return telemetry::labeled(
                base, {{"session", sessionLabel(session)}});
        };
        return SessionBatchMetrics{
            reg.counter(label("service.session.jobs_submitted")),
            reg.counter(label("service.session.cache_hits")),
            reg.counter(
                label("service.session.cross_session_hits")),
            reg.counter(label("service.session.cache_misses")),
            reg.counter(label("service.session.shots_saved")),
            reg.counter(label("service.session.inline_jobs")),
        };
    }
};

/**
 * Per-latency-class SLO accounting series: every batch lands in
 * `service.latency_ns{class=...}`; a batch over its class target
 * additionally bumps `service.slo_burn{class=...}`.
 */
struct SloMetrics
{
    telemetry::Histogram &latency;
    telemetry::Counter &burn;

    static SloMetrics &
    forClass(LatencyClass latency_class)
    {
        auto &reg = telemetry::MetricsRegistry::instance();
        const auto make = [&reg](const char *class_name) {
            return SloMetrics{
                reg.histogram(telemetry::labeled(
                    "service.latency_ns",
                    {{"class", class_name}})),
                reg.counter(telemetry::labeled(
                    "service.slo_burn", {{"class", class_name}})),
            };
        };
        static SloMetrics *interactive =
            new SloMetrics(make("interactive"));
        static SloMetrics *bulk = new SloMetrics(make("bulk"));
        return latency_class == LatencyClass::Interactive
            ? *interactive
            : *bulk;
    }
};

/**
 * Submit-to-complete latency tracker for one batch: the LAST chunk
 * to finish (worker, inline, or shed — shed chunks resolve their
 * futures at shed time, which IS their completion) records the
 * batch's wall time under the session's class series. Pure
 * observation: nothing reads the recorded values back.
 */
struct SloState
{
    std::uint64_t submitNs = 0;
    std::uint64_t targetNs = 0;
    LatencyClass latencyClass = LatencyClass::Bulk;
    std::atomic<std::size_t> remaining{0};

    void
    complete()
    {
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
            record();
    }

    void
    record() const
    {
        const std::uint64_t latency =
            telemetry::nowNs() - submitNs;
        SloMetrics &m = SloMetrics::forClass(latencyClass);
        m.latency.record(latency);
        if (targetNs != 0 && latency > targetNs)
            m.burn.add();
    }
};

} // namespace

// ---- Session ---------------------------------------------------------------

Session::Session(ExecutionService *service,
                 std::shared_ptr<ExecutionService> keep_alive,
                 std::string name, bool cache_results,
                 bool prefix_aware, LatencyClass latency_class)
    : service_(service), keepAlive_(std::move(keep_alive)),
      name_(std::move(name)),
      id_(service->nextSessionId_.fetch_add(
          1, std::memory_order_relaxed)),
      // The queue carries the session label so the scheduler can
      // attribute per-session queue-wait time (name_ and id_ are
      // initialized above; declaration order guarantees it).
      queue_(service->scheduler_.openQueue(
          name_.empty() ? "s" + std::to_string(id_) : name_)),
      cacheResults_(cache_results), prefixAware_(prefix_aware),
      latencyClass_(latency_class)
{
    service_->sessionsOpened_.fetch_add(1,
                                        std::memory_order_relaxed);
    if (telemetry::metricsEnabled())
        ServiceMetrics::get().sessionsOpened.add();
    service_->registerSession(*this);
}

Session::~Session()
{
    // Drop out of the introspection registry BEFORE the queue
    // closes, so a status snapshot can never see a dying session.
    service_->unregisterSession(*this);
    // Tasks already admitted still run (the queue is reaped once
    // drained); only further admission stops.
    service_->scheduler_.closeQueue(queue_);
}

std::vector<std::future<Pmf>>
Session::submit(const Batch &batch)
{
    return service_->submitFor(*this, batch);
}

Executor &
Session::backend()
{
    return service_->backend();
}

const Executor &
Session::backend() const
{
    return service_->backend();
}

CacheStats
Session::cacheStats() const
{
    CacheStats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    stats.circuitsSaved = stats.hits;
    stats.shotsSaved = shotsSaved_.load(std::memory_order_relaxed);
    return stats;
}

std::uint64_t
Session::jobsSubmitted() const
{
    return jobs_.load(std::memory_order_relaxed);
}

SessionStats
Session::stats() const
{
    SessionStats stats;
    stats.jobsSubmitted = jobs_.load(std::memory_order_relaxed);
    stats.cacheHits = hits_.load(std::memory_order_relaxed);
    stats.crossSessionHits =
        crossHits_.load(std::memory_order_relaxed);
    stats.cacheMisses = misses_.load(std::memory_order_relaxed);
    stats.shotsSaved = shotsSaved_.load(std::memory_order_relaxed);
    stats.inlineJobs = inlineJobs_.load(std::memory_order_relaxed);
    stats.shedJobs = shed_.load(std::memory_order_relaxed);
    return stats;
}

// ---- ExecutionService ------------------------------------------------------

ExecutionService::ExecutionService(Executor &backend,
                                   ServiceConfig config)
    : backend_(backend), config_(config),
      cache_(config.cacheMaxEntries),
      ledger_(config.cacheMaxEntries),
      scheduler_(resolveServiceThreads(config.threads),
                 config.maxQueueDepth)
{
    config_.threads = scheduler_.threadCount();
    if (config_.kernelThreads > 0)
        setKernelThreads(config_.kernelThreads);
    maybeStartIntrospection();
}

ExecutionService::~ExecutionService()
{
    // Join the introspection endpoint FIRST: its accept thread
    // reads the session registry and the scheduler, both of which
    // shutdown() and member destruction tear down.
    if (introspect_)
        introspect_->stop();
    shutdown();
}

void
ExecutionService::maybeStartIntrospection()
{
    const std::string path = telemetry::introspectPath();
    if (path.empty())
        return;
    auto server = std::make_unique<telemetry::IntrospectServer>();
    server->setStatusProvider([this] { return sessionStatus(); });
    if (!server->start(path))
        return; // start() has already warned
    introspect_ = std::move(server);
}

void
ExecutionService::registerSession(Session &session)
{
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    liveSessions_.emplace(session.id(), &session);
}

void
ExecutionService::unregisterSession(Session &session)
{
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    liveSessions_.erase(session.id());
}

std::vector<telemetry::SessionStatusRow>
ExecutionService::sessionStatus() const
{
    std::vector<telemetry::SessionStatusRow> rows;
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    rows.reserve(liveSessions_.size());
    for (const auto &[id, session] : liveSessions_) {
        telemetry::SessionStatusRow row;
        row.session = sessionLabel(*session);
        row.latencyClass =
            latencyClassName(session->latencyClass_);
        row.jobsSubmitted =
            session->jobs_.load(std::memory_order_relaxed);
        row.cacheHits =
            session->hits_.load(std::memory_order_relaxed);
        row.crossSessionHits =
            session->crossHits_.load(std::memory_order_relaxed);
        row.shedJobs =
            session->shed_.load(std::memory_order_relaxed);
        row.inlineJobs =
            session->inlineJobs_.load(std::memory_order_relaxed);
        row.queueDepth = scheduler_.queueDepth(session->queue_);
        rows.push_back(std::move(row));
    }
    return rows;
}

std::unique_ptr<Session>
ExecutionService::makeSession(
    std::shared_ptr<ExecutionService> keep_alive, std::string name,
    bool cache_results, bool prefix_aware,
    LatencyClass latency_class)
{
    return std::unique_ptr<Session>(
        new Session(this, std::move(keep_alive), std::move(name),
                    cache_results, prefix_aware, latency_class));
}

std::unique_ptr<Session>
ExecutionService::createSession(std::string name)
{
    return makeSession(nullptr, std::move(name),
                       config_.cacheResults,
                       config_.prefixAwareScheduling,
                       config_.defaultLatencyClass);
}

std::unique_ptr<Session>
ExecutionService::createSession(std::string name,
                                LatencyClass latency_class)
{
    return makeSession(nullptr, std::move(name),
                       config_.cacheResults,
                       config_.prefixAwareScheduling,
                       latency_class);
}

std::unique_ptr<JobSubmitter>
ExecutionService::openSession(Executor &backend,
                              const RuntimeConfig &config)
{
    if (&backend != &backend_)
        panic("ExecutionService::openSession: the estimator's "
              "executor is not this service's backend (results are "
              "backend-specific; open one service per backend)");
    return makeSession(nullptr, {}, config.cacheResults,
                       config.prefixAwareScheduling,
                       config.latencyClass);
}

std::unique_ptr<Session>
ExecutionService::openOwnedSession(
    std::shared_ptr<ExecutionService> self,
    const RuntimeConfig &config)
{
    if (self.get() != this)
        panic("ExecutionService::openOwnedSession: self mismatch");
    return makeSession(std::move(self), {}, config.cacheResults,
                       config.prefixAwareScheduling,
                       config.latencyClass);
}

void
ExecutionService::drain()
{
    scheduler_.drain();
}

void
ExecutionService::clearSharedCaches()
{
    ledger_.clear(cache_);
}

void
ExecutionService::shutdown()
{
    closed_.store(true, std::memory_order_release);
    scheduler_.shutdown();
}

ServiceStats
ExecutionService::stats() const
{
    ServiceStats stats;
    stats.sessionsOpened =
        sessionsOpened_.load(std::memory_order_relaxed);
    stats.jobsSubmitted =
        jobsSubmitted_.load(std::memory_order_relaxed);
    stats.crossSessionHits =
        crossSessionHits_.load(std::memory_order_relaxed);
    stats.chunksExecuted = scheduler_.chunksExecuted();
    stats.kernelAssists = scheduler_.kernelAssists();
    stats.kernelAssistedChunks = scheduler_.assistedChunks();
    stats.shedJobs = shedJobs_.load(std::memory_order_relaxed);
    stats.inlineAfterShutdown =
        inlineAfterShutdown_.load(std::memory_order_relaxed);
    stats.quarantinedKeys = ledger_.quarantinedCount();
    stats.cache = cache_.stats();
    return stats;
}

std::vector<std::future<Pmf>>
ExecutionService::submitFor(Session &session, const Batch &batch)
{
    std::vector<std::future<Pmf>> futures;
    futures.reserve(batch.size());
    if (batch.empty())
        return futures;

    session.jobs_.fetch_add(batch.size(),
                            std::memory_order_relaxed);
    jobsSubmitted_.fetch_add(batch.size(),
                             std::memory_order_relaxed);

    // Batch-local telemetry tallies, published once after the
    // admission loop so labeled counters cost one registry lookup
    // per batch, not per job.
    const bool metricsOn = telemetry::metricsEnabled();
    const std::uint64_t submitNs =
        metricsOn ? telemetry::nowNs() : 0;
    std::uint64_t tallyHits = 0, tallyCrossHits = 0,
                  tallyMisses = 0, tallyShotsSaved = 0,
                  tallyInline = 0;

    // Task closures reference the jobs through shared batch storage
    // (one copy per submit), so futures stay valid even if the
    // caller drops the Batch — or the Session — before they
    // resolve; they capture the service, never the session.
    auto owned = std::make_shared<const std::vector<CircuitJob>>(
        batch.jobs());
    std::vector<PrepKey> prep_keys;
    if (session.prefixAware_)
        prep_keys = prepKeysOf(*owned);

    // One pending record per primary job: the task closure plus the
    // metadata the shed path needs to fail the job WITHOUT running
    // it (its ledger claim and its caller-facing promise).
    struct PendingJob
    {
        PrepKey prepKey;
        JobKey key;
        std::shared_ptr<std::promise<Pmf>> publish; //!< ledger claim
        std::shared_ptr<std::promise<Pmf>> done; //!< caller's future
        std::function<void()> run;
    };
    std::vector<PendingJob> pending;
    pending.reserve(owned->size());

    for (std::size_t i = 0; i < owned->size(); ++i) {
        const CircuitJob &job = (*owned)[i];
        const JobKey key = makeJobKey(job);
        if (telemetry::tracingEnabled())
            telemetry::SpanTracer::instance().instant(
                "enqueue", jobStream(key),
                sessionLabel(session).c_str());

        // Shared-ledger admission in submission order: the first
        // session to claim a key (across ALL tenants) executes it;
        // everyone else — including other sessions — defers onto
        // the primary's future. Content-derived streams make the
        // deduped result identical to what the duplicate would have
        // computed itself, so WHO wins the claim race can never
        // change a result, only the bookkeeping.
        std::shared_ptr<std::promise<Pmf>> publish;
        if (session.cacheResults_) {
            std::uint64_t primary_owner = 0;
            auto claim = [&] {
                telemetry::ScopedPhase phase(
                    telemetry::Phase::LedgerLookup);
                return ledger_.claim(key, job.shots, cache_,
                                     session.id_, &primary_owner);
            }();
            if (claim.duplicate()) {
                session.hits_.fetch_add(1,
                                        std::memory_order_relaxed);
                session.shotsSaved_.fetch_add(
                    job.shots, std::memory_order_relaxed);
                ++tallyHits;
                tallyShotsSaved += job.shots;
                if (primary_owner != session.id_) {
                    session.crossHits_.fetch_add(
                        1, std::memory_order_relaxed);
                    crossSessionHits_.fetch_add(
                        1, std::memory_order_relaxed);
                    ++tallyCrossHits;
                }
                futures.push_back(
                    JobLedger::deferToPrimary(std::move(claim)));
                continue;
            }
            session.misses_.fetch_add(1, std::memory_order_relaxed);
            ++tallyMisses;
            publish = std::move(claim.publish);
        }

        const CircuitJob *job_ptr = &job;
        ResultCache *cache =
            session.cacheResults_ ? &cache_ : nullptr;
        // Explicit promise instead of a packaged_task so the shed
        // path can fail the future without running the task. A
        // failed execution (StatusError: quarantine, retries
        // exhausted, invalid job) fails THIS job's future and
        // nothing else — the rest of its chunk still runs.
        auto done = std::make_shared<std::promise<Pmf>>();
        futures.push_back(done->get_future());
        auto run = [this, owned, job_ptr, key, cache, publish,
                    done] {
            try {
                done->set_value(ledger_.executeAndPublish(
                    backend_, *job_ptr, key, cache, publish));
            } catch (...) {
                done->set_exception(std::current_exception());
            }
        };
        pending.push_back(
            {session.prefixAware_ ? prep_keys[i] : PrepKey{}, key,
             std::move(publish), std::move(done), std::move(run)});
    }

    // Admission: prefix-aware chunks (or one task per chunk) into
    // this session's FIFO queue; the scheduler round-robins across
    // sessions. Three non-Accepted outcomes, all local to the
    // chunk:
    //  - Closed (shutdown, or a shutdown racing this submit): the
    //    chunk runs inline on the submitting thread — same jobs,
    //    same streams, same results (satellite counter
    //    service.inline_after_shutdown + a once-per-service warn;
    //    this fallover used to be silent).
    //  - Full (queue at ServiceConfig::maxQueueDepth): the chunk is
    //    SHED — every job's future fails with ResourceExhausted and
    //    its ledger claim is abandoned so cross-session duplicates
    //    fail too instead of hanging. Nothing executes; the caller
    //    backs off and resubmits.
    //  - Injected worker stall (fault::FaultSite::WorkerStall,
    //    keyed by the chunk's first job): degrade to inline
    //    execution, as if the worker assigned to the chunk never
    //    picked it up and the submitter reclaimed the work.
    std::vector<std::vector<std::size_t>> chunk_indices;
    if (session.prefixAware_) {
        std::vector<PrepKey> pending_keys;
        pending_keys.reserve(pending.size());
        for (const PendingJob &p : pending)
            pending_keys.push_back(p.prepKey);
        chunk_indices = prefixScheduleIndexChunks(
            pending_keys,
            static_cast<std::size_t>(scheduler_.threadCount()));
    } else {
        chunk_indices.reserve(pending.size());
        for (std::size_t i = 0; i < pending.size(); ++i)
            chunk_indices.push_back({i});
    }
    // Latency-class SLO accounting: the last chunk to complete
    // records the batch's submit-to-complete wall time (SloState).
    // All-hit batches (no chunks) complete right here.
    std::shared_ptr<SloState> slo;
    if (metricsOn) {
        slo = std::make_shared<SloState>();
        slo->submitNs = submitNs;
        slo->latencyClass = session.latencyClass_;
        slo->targetNs =
            session.latencyClass_ == LatencyClass::Interactive
            ? config_.interactiveSloNs
            : config_.bulkSloNs;
        slo->remaining.store(chunk_indices.size(),
                             std::memory_order_relaxed);
        if (chunk_indices.empty())
            slo->record();
    }

    auto &injector = fault::FaultInjector::instance();
    std::uint64_t tallyShed = 0;
    for (const auto &indices : chunk_indices) {
        auto shared = std::make_shared<
            std::vector<std::function<void()>>>();
        shared->reserve(indices.size());
        for (std::size_t i : indices)
            shared->push_back(std::move(pending[i].run));
        auto runner = [shared, slo] {
            for (auto &run : *shared)
                run();
            if (slo)
                slo->complete();
        };

        if (injector.enabled() && !indices.empty() &&
            injector.shouldInject(
                fault::FaultSite::WorkerStall,
                jobStream(pending[indices.front()].key))) {
            session.inlineJobs_.fetch_add(
                shared->size(), std::memory_order_relaxed);
            tallyInline += shared->size();
            runner();
            continue;
        }

        switch (scheduler_.enqueue(session.queue_, runner)) {
        case ServiceScheduler::Admission::Accepted:
            break;
        case ServiceScheduler::Admission::Full: {
            const Status status = resourceExhaustedError(
                "session admission queue is full (maxQueueDepth=" +
                std::to_string(scheduler_.maxQueueDepth()) +
                "): job shed — back off and resubmit");
            for (std::size_t i : indices) {
                PendingJob &p = pending[i];
                if (p.publish)
                    ledger_.abandon(p.key, p.publish, status);
                p.done->set_exception(std::make_exception_ptr(
                    StatusError(status)));
            }
            session.shed_.fetch_add(shared->size(),
                                    std::memory_order_relaxed);
            shedJobs_.fetch_add(shared->size(),
                                std::memory_order_relaxed);
            tallyShed += shared->size();
            // The shed chunk's futures have all resolved
            // (exceptionally) — that IS its completion.
            if (slo)
                slo->complete();
            break;
        }
        case ServiceScheduler::Admission::Closed:
            if (!warnedLateInline_.exchange(
                    true, std::memory_order_relaxed))
                warn("ExecutionService: admission closed "
                     "(shutdown); late submissions execute inline "
                     "on the submitting thread");
            session.inlineJobs_.fetch_add(
                shared->size(), std::memory_order_relaxed);
            inlineAfterShutdown_.fetch_add(
                shared->size(), std::memory_order_relaxed);
            tallyInline += shared->size();
            if (metricsOn)
                ServiceMetrics::get().inlineAfterShutdown.add(
                    shared->size());
            runner();
            break;
        }
    }

    if (metricsOn) {
        ServiceMetrics &svc = ServiceMetrics::get();
        svc.jobsSubmitted.add(batch.size());
        svc.crossSessionHits.add(tallyCrossHits);
        svc.shed.add(tallyShed);
        SessionBatchMetrics m =
            SessionBatchMetrics::forSession(session);
        m.jobs.add(batch.size());
        m.hits.add(tallyHits);
        m.crossHits.add(tallyCrossHits);
        m.misses.add(tallyMisses);
        m.shotsSaved.add(tallyShotsSaved);
        m.inlineJobs.add(tallyInline);
    }
    return futures;
}

// ---- VARSAW_SHARED_SERVICE env shim ----------------------------------------

namespace {

/**
 * Process-wide registry backing the VARSAW_SHARED_SERVICE=1 mode:
 * every estimator constructed without an explicit service is routed
 * onto ONE shared service per backend executor. Sessions hold the
 * service by shared_ptr, so the last session of a backend tears its
 * service down and the weak entry expires; a later estimator on the
 * same (or an address-reusing) backend builds a fresh service.
 * This is how CI runs the entire suite through the service layer.
 */
std::mutex sharedRegistryMutex;
std::unordered_map<Executor *, std::weak_ptr<ExecutionService>>
    sharedRegistry;

std::unique_ptr<JobSubmitter>
sharedServiceSession(Executor &backend, const RuntimeConfig &config)
{
    std::shared_ptr<ExecutionService> service;
    {
        std::lock_guard<std::mutex> lock(sharedRegistryMutex);
        auto &slot = sharedRegistry[&backend];
        service = slot.lock();
        if (!service) {
            // Service defaults throughout: auto thread count and
            // the default shared-ledger cap. Deliberately NOT the
            // first estimator's cacheMaxEntries — the shared cap is
            // a service-wide property (RuntimeConfig documents the
            // field as ignored under a service), and letting one
            // tenant's small cap thrash every later tenant's dedupe
            // would silently balloon circuit costs. Per-session
            // cacheResults/prefixAwareScheduling still come from
            // each estimator's RuntimeConfig below.
            service = std::make_shared<ExecutionService>(
                backend, ServiceConfig{});
            slot = service;
        }
        // Opportunistic cleanup of expired entries (dead backends).
        // varsaw-lint: allow(unordered-iter) order-insensitive erase of expired weak_ptrs; no result observes the walk
        for (auto it = sharedRegistry.begin();
             it != sharedRegistry.end();) {
            if (it->second.expired())
                it = sharedRegistry.erase(it);
            else
                ++it;
        }
    }
    ExecutionService *raw = service.get();
    return raw->openOwnedSession(std::move(service), config);
}

/** Installs the backplane hook at static-init when the env asks. */
struct SharedServiceEnvShim
{
    SharedServiceEnvShim()
    {
        const char *env = std::getenv("VARSAW_SHARED_SERVICE");
        if (env && env[0] == '1' && env[1] == '\0')
            setProcessBackplane(&sharedServiceSession);
    }
};

const SharedServiceEnvShim sharedServiceEnvShim{};

} // namespace

} // namespace varsaw
