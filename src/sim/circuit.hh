/**
 * @file
 * Parameterized quantum circuits.
 *
 * A Circuit is a gate list plus a measurement specification (which
 * qubits are read out, in classical-bit order). Measuring only a
 * subset of qubits is first-class — it is the core mechanism of
 * JigSaw/VarSaw subsetting.
 */

#ifndef VARSAW_SIM_CIRCUIT_HH
#define VARSAW_SIM_CIRCUIT_HH

#include <string>
#include <utility>
#include <vector>

#include "pauli/pauli_string.hh"
#include "sim/gate.hh"

namespace varsaw {

/** A quantum circuit over a fixed number of qubits. */
class Circuit
{
  public:
    Circuit() = default;

    /** Circuit over @p num_qubits qubits, no gates, no measurements. */
    explicit Circuit(int num_qubits, std::string label = "");

    /** Number of qubits. */
    int numQubits() const { return numQubits_; }

    /** Optional label for diagnostics ("global:ZZIZ", "subset:ZX--"). */
    const std::string &label() const { return label_; }

    /** Set the diagnostic label. */
    void setLabel(std::string label) { label_ = std::move(label); }

    /** Gate sequence. */
    const std::vector<GateOp> &ops() const { return ops_; }

    /** Number of distinct symbolic parameters referenced. */
    int numParams() const { return numParams_; }

    /** @name Gate appenders
     *  @{
     */
    Circuit &h(int q);
    Circuit &x(int q);
    Circuit &y(int q);
    Circuit &z(int q);
    Circuit &s(int q);
    Circuit &sdg(int q);
    Circuit &t(int q);
    Circuit &rx(int q, double theta);
    Circuit &ry(int q, double theta);
    Circuit &rz(int q, double theta);
    /** RX whose angle is parameter @p param_index. */
    Circuit &rxParam(int q, int param_index);
    /** RY whose angle is parameter @p param_index. */
    Circuit &ryParam(int q, int param_index);
    /** RZ whose angle is parameter @p param_index. */
    Circuit &rzParam(int q, int param_index);
    Circuit &cx(int control, int target);
    Circuit &cz(int a, int b);
    /** exp(-i theta/2 Z_a Z_b). */
    Circuit &rzz(int a, int b, double theta);
    /** RZZ whose angle is parameter @p param_index. */
    Circuit &rzzParam(int a, int b, int param_index);
    Circuit &swap(int a, int b);
    /** @} */

    /** Append all gates of @p other (measurements are not copied). */
    Circuit &append(const Circuit &other);

    /**
     * Copy of this circuit with every symbolic parameter bound to
     * its value from @p params (the result has numParams() == 0).
     * Needed by transformations that must negate angles, e.g. ZNE
     * circuit folding.
     */
    Circuit bound(const std::vector<double> &params) const;

    /**
     * Append the basis-change gates that rotate each qubit's
     * measurement into the given Pauli basis: H for X, Sdg+H for Y,
     * nothing for Z or I.
     */
    Circuit &appendBasisRotations(const PauliString &basis);

    /** Mark qubit @p q as measured (next classical bit). */
    Circuit &measure(int q);

    /** Measure all qubits in ascending order. */
    Circuit &measureAll();

    /**
     * Measure the support of @p basis (the non-identity positions,
     * ascending). This is how subset circuits are finalized.
     */
    Circuit &measureSupport(const PauliString &basis);

    /** Qubits read out, in classical-bit order. */
    const std::vector<int> &measuredQubits() const
    {
        return measured_;
    }

    /** Number of measured qubits. */
    int numMeasured() const
    {
        return static_cast<int>(measured_.size());
    }

    /** Number of one-qubit gates. */
    int oneQubitGateCount() const;

    /** Number of two-qubit gates. */
    int twoQubitGateCount() const;

    /**
     * Circuit depth under greedy ASAP scheduling (gates pack into
     * the earliest layer where their qubits are free).
     */
    int depth() const;

    /** One-line summary for diagnostics. */
    std::string summary() const;

  private:
    Circuit &pushOp(GateKind kind, int q0, int q1, double param,
                    int param_index);

    int numQubits_ = 0;
    int numParams_ = 0;
    std::string label_;
    std::vector<GateOp> ops_;
    std::vector<int> measured_;
};

} // namespace varsaw

#endif // VARSAW_SIM_CIRCUIT_HH
