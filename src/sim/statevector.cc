#include "sim/statevector.hh"

#include <cmath>
#include <cstring>

#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace varsaw {

namespace gates {

Matrix2
fixedMatrix(GateKind kind)
{
    using namespace std::complex_literals;
    const double isq2 = 1.0 / std::sqrt(2.0);
    switch (kind) {
      case GateKind::H:
        return {isq2, isq2, isq2, -isq2};
      case GateKind::X:
        return {0, 1, 1, 0};
      case GateKind::Y:
        return {0, -1i, 1i, 0};
      case GateKind::Z:
        return {1, 0, 0, -1};
      case GateKind::S:
        return {1, 0, 0, 1i};
      case GateKind::Sdg:
        return {1, 0, 0, -1i};
      case GateKind::T:
        return {1, 0, 0, std::exp(1i * (M_PI / 4.0))};
      default:
        panic("gates::fixedMatrix: not a fixed one-qubit gate");
    }
}

Matrix2
rx(double theta)
{
    using namespace std::complex_literals;
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    return {c, -1i * s, -1i * s, c};
}

Matrix2
ry(double theta)
{
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    return {c, -s, s, c};
}

Matrix2
rz(double theta)
{
    using namespace std::complex_literals;
    return {std::exp(-1i * (theta / 2.0)), 0, 0,
            std::exp(1i * (theta / 2.0))};
}

std::pair<std::complex<double>, std::complex<double>>
rzzFactors(double theta)
{
    using namespace std::complex_literals;
    return {std::exp(-1i * (theta / 2.0)),
            std::exp(1i * (theta / 2.0))};
}

} // namespace gates

namespace {

/** Resolve a gate op's angle against the parameter vector. */
double
resolveTheta(const GateOp &op, const std::vector<double> &params)
{
    if (op.paramIndex < 0)
        return op.param;
    if (static_cast<std::size_t>(op.paramIndex) >= params.size())
        panic("Statevector: parameter index out of range");
    return params[op.paramIndex];
}

/** Matrix of any one-qubit gate op (rotation or fixed). */
Matrix2
gateMatrix1Q(const GateOp &op, const std::vector<double> &params)
{
    switch (op.kind) {
      case GateKind::RX:
        return gates::rx(resolveTheta(op, params));
      case GateKind::RY:
        return gates::ry(resolveTheta(op, params));
      case GateKind::RZ:
        return gates::rz(resolveTheta(op, params));
      default:
        return gates::fixedMatrix(op.kind);
    }
}

/**
 * Shared traversal of the 2^(n-1) amplitude pairs of target qubit
 * @p q, invoking body(lo, hi) on each pair's two amplitude slots.
 * The ONLY copy of the pair index math: adjacent stride-2 pairs for
 * q == 0, otherwise 2^(q+1)-sized blocks whose lower/upper halves
 * are both contiguous (unit-stride streams for every target), with
 * chunk boundaries allowed to land mid-block. body is inlined, so
 * the specialized kernels keep their vectorizable inner loops.
 */
template <typename Body>
void
sweepPairs(Statevector::Amplitude *amps, int q,
           std::uint64_t pairs, Body body)
{
    const std::uint64_t bit = 1ull << q;
    parallelForItems(
        pairs, [=](std::uint64_t k0, std::uint64_t k1) {
            if (q == 0) {
                for (std::uint64_t i = 2 * k0; i < 2 * k1; i += 2)
                    body(amps[i], amps[i + 1]);
                return;
            }
            std::uint64_t k = k0;
            while (k < k1) {
                const std::uint64_t block = k >> q;
                const std::uint64_t off0 = k & (bit - 1);
                const std::uint64_t off_end =
                    std::min<std::uint64_t>(bit, off0 + (k1 - k));
                Statevector::Amplitude *lo =
                    amps + (block << (q + 1));
                Statevector::Amplitude *hi = lo + bit;
                for (std::uint64_t off = off0; off < off_end;
                     ++off)
                    body(lo[off], hi[off]);
                k += off_end - off0;
            }
        });
}

} // namespace

Statevector::Statevector(int num_qubits) : numQubits_(num_qubits)
{
    if (num_qubits < 1 || num_qubits > kMaxQubits)
        panic("Statevector: register of " +
              std::to_string(num_qubits) +
              " qubits is not densely simulable; supported range is "
              "[1, " + std::to_string(kMaxQubits) +
              "] (kMaxQubits: 2^26 amplitudes = 1 GiB)");
    amps_.assign(1ull << num_qubits, Amplitude(0.0, 0.0));
    amps_[0] = Amplitude(1.0, 0.0);
}

void
Statevector::reset()
{
    std::fill(amps_.begin(), amps_.end(), Amplitude(0.0, 0.0));
    amps_[0] = Amplitude(1.0, 0.0);
}

bool
Statevector::copyFrom(const Statevector &other)
{
    if (this == &other)
        return true;
    const std::size_t n = other.amps_.size();
    const bool reused = amps_.capacity() >= n;
    numQubits_ = other.numQubits_;
    amps_.resize(n);
    const Amplitude *src = other.amps_.data();
    Amplitude *dst = amps_.data();
    parallelForItems(n, [=](std::uint64_t begin, std::uint64_t end) {
        std::memcpy(dst + begin, src + begin,
                    (end - begin) * sizeof(Amplitude));
    });
    return reused;
}

void
Statevector::apply1Q(int q, const Matrix2 &m)
{
    // Enumerate the 2^(n-1) amplitude pairs directly (sweepPairs):
    // no index is visited and skipped, and both amplitude streams
    // are unit-stride for every target qubit.
    const Amplitude m00 = m.m00, m01 = m.m01;
    const Amplitude m10 = m.m10, m11 = m.m11;
    sweepPairs(amps_.data(), q, amps_.size() >> 1,
               [=](Amplitude &lo, Amplitude &hi) {
                   const Amplitude a0 = lo;
                   const Amplitude a1 = hi;
                   lo = m00 * a0 + m01 * a1;
                   hi = m10 * a0 + m11 * a1;
               });
}

void
Statevector::applyCX(int control, int target)
{
    // 2^(n-2) affected pairs: control set, target clear.
    const std::uint64_t cbit = 1ull << control;
    const std::uint64_t tbit = 1ull << target;
    const std::uint64_t quads = amps_.size() >> 2;
    Amplitude *amps = amps_.data();
    parallelForItems(
        quads, [=](std::uint64_t k0, std::uint64_t k1) {
            for (std::uint64_t k = k0; k < k1; ++k) {
                const std::uint64_t i =
                    insertTwoZeroBits(k, control, target) | cbit;
                std::swap(amps[i], amps[i | tbit]);
            }
        });
}

void
Statevector::applyCZ(int a, int b)
{
    // Only the 2^(n-2) amplitudes with both bits set change sign.
    const std::uint64_t abit = 1ull << a;
    const std::uint64_t bbit = 1ull << b;
    const std::uint64_t quads = amps_.size() >> 2;
    Amplitude *amps = amps_.data();
    parallelForItems(
        quads, [=](std::uint64_t k0, std::uint64_t k1) {
            for (std::uint64_t k = k0; k < k1; ++k) {
                const std::uint64_t i =
                    insertTwoZeroBits(k, a, b) | abit | bbit;
                amps[i] = -amps[i];
            }
        });
}

void
Statevector::applyParityPhase(int a, int b, const Amplitude &f0,
                              const Amplitude &f1)
{
    // table[bit_a | bit_b << 1]: even parity (00, 11) -> f0, odd
    // (01, 10) -> f1. No popcount, no branch in the sweep.
    const Amplitude table[4] = {f0, f1, f1, f0};
    const std::uint64_t n = amps_.size();
    Amplitude *amps = amps_.data();
    parallelForItems(
        n, [=](std::uint64_t i0, std::uint64_t i1) {
            for (std::uint64_t i = i0; i < i1; ++i) {
                const std::uint64_t sel =
                    ((i >> a) & 1ull) | (((i >> b) & 1ull) << 1);
                amps[i] *= table[sel];
            }
        });
}

void
Statevector::applyDiagonal1Q(int q, const Amplitude &f0,
                             const Amplitude &f1)
{
    // Same pair enumeration as apply1Q, but purely diagonal: the
    // clear-bit amplitude is scaled by f0 and the set-bit one by
    // f1, with no zero off-diagonal term mixed in.
    const Amplitude g0 = f0, g1 = f1;
    sweepPairs(amps_.data(), q, amps_.size() >> 1,
               [=](Amplitude &lo, Amplitude &hi) {
                   lo *= g0;
                   hi *= g1;
               });
}

void
Statevector::applyRZZ(int a, int b, double theta)
{
    const auto [even, odd] = gates::rzzFactors(theta);
    applyParityPhase(a, b, even, odd);
}

void
Statevector::applySwap(int a, int b)
{
    // 2^(n-2) swapped pairs: a set / b clear <-> a clear / b set.
    const std::uint64_t abit = 1ull << a;
    const std::uint64_t bbit = 1ull << b;
    const std::uint64_t quads = amps_.size() >> 2;
    Amplitude *amps = amps_.data();
    parallelForItems(
        quads, [=](std::uint64_t k0, std::uint64_t k1) {
            for (std::uint64_t k = k0; k < k1; ++k) {
                const std::uint64_t i =
                    insertTwoZeroBits(k, a, b) | abit;
                std::swap(amps[i ^ abit ^ bbit], amps[i]);
            }
        });
}

void
Statevector::applyOp(const GateOp &op, const std::vector<double> &params)
{
    switch (op.kind) {
      case GateKind::CX:
        applyCX(op.q0, op.q1);
        break;
      case GateKind::CZ:
        applyCZ(op.q0, op.q1);
        break;
      case GateKind::RZZ:
        applyRZZ(op.q0, op.q1, resolveTheta(op, params));
        break;
      case GateKind::SWAP:
        applySwap(op.q0, op.q1);
        break;
      case GateKind::RZ:
      case GateKind::Z:
      case GateKind::S:
      case GateKind::Sdg:
      case GateKind::T: {
        // Diagonal singles skip the generic pair kernel: two
        // half-block scalings instead of mixing in a zero
        // off-diagonal term per pair.
        const Matrix2 m = gateMatrix1Q(op, params);
        applyDiagonal1Q(op.q0, m.m00, m.m11);
        break;
      }
      default:
        apply1Q(op.q0, gateMatrix1Q(op, params));
        break;
    }
}

namespace {

/** Whether a gate kind is diagonal in the computational basis. */
bool
isDiagonalGate(GateKind kind)
{
    switch (kind) {
      case GateKind::Z:
      case GateKind::S:
      case GateKind::Sdg:
      case GateKind::T:
      case GateKind::RZ:
      case GateKind::CZ:
      case GateKind::RZZ:
        return true;
      default:
        return false;
    }
}

/** One fused diagonal gate: how to pick this gate's phase factor. */
struct DiagFactor
{
    enum class Sel
    {
        Bit,    //!< f1 if the masked bit is set, else f0
        AllOf,  //!< negate when every masked bit is set (CZ)
        Parity, //!< f1 on odd masked parity, else f0 (RZZ)
    };

    Sel sel = Sel::Bit;
    std::uint64_t mask = 0;
    Statevector::Amplitude f0{1.0, 0.0};
    Statevector::Amplitude f1{1.0, 0.0};
};

} // namespace

void
Statevector::applyDiagonalRun(const GateOp *ops, std::size_t count,
                              const std::vector<double> &params)
{
    // Per-gate factor tables are built once, outside the sweep; the
    // sweep itself is dispatched to a specialized kernel where the
    // run's shape allows, so the per-amplitude inner loop carries
    // no selector switch in the common cases.
    std::vector<DiagFactor> factors(count);
    for (std::size_t g = 0; g < count; ++g) {
        const GateOp &op = ops[g];
        DiagFactor &f = factors[g];
        switch (op.kind) {
          case GateKind::RZ: {
            const Matrix2 m =
                gates::rz(resolveTheta(op, params));
            f.mask = 1ull << op.q0;
            f.f0 = m.m00;
            f.f1 = m.m11;
            break;
          }
          case GateKind::CZ:
            f.sel = DiagFactor::Sel::AllOf;
            f.mask = (1ull << op.q0) | (1ull << op.q1);
            break;
          case GateKind::RZZ: {
            const auto [even, odd] =
                gates::rzzFactors(resolveTheta(op, params));
            f.sel = DiagFactor::Sel::Parity;
            f.mask = (1ull << op.q0) | (1ull << op.q1);
            f.f0 = even;
            f.f1 = odd;
            break;
          }
          default: {
            const Matrix2 m = gates::fixedMatrix(op.kind);
            f.mask = 1ull << op.q0;
            f.f0 = m.m00;
            f.f1 = m.m11;
            break;
          }
        }
    }

    // (Runs of one never reach this function: applyOps only fuses
    // runs of >= 2, and single diagonal gates dispatch to the
    // specialized kernels directly in applyOp.)
    const std::uint64_t n = amps_.size();
    Amplitude *amps = amps_.data();
    const DiagFactor *fac = factors.data();

    bool allBit = true;
    for (const DiagFactor &f : factors)
        allBit = allBit && f.sel == DiagFactor::Sel::Bit;

    if (allBit) {
        // Bit-only run (RZ/Z/S/Sdg/T layers): the selector is
        // hoisted out of the sweep — the inner loop is one masked
        // pick per gate, no switch. The multiply order matches the
        // unfused kernels exactly.
        parallelForItems(
            n, [=](std::uint64_t i0, std::uint64_t i1) {
                for (std::uint64_t i = i0; i < i1; ++i) {
                    Amplitude a = amps[i];
                    for (std::size_t g = 0; g < count; ++g) {
                        const DiagFactor &f = fac[g];
                        a *= (i & f.mask) ? f.f1 : f.f0;
                    }
                    amps[i] = a;
                }
            });
        return;
    }

    // Mixed run: one read-modify-write pass, every amplitude
    // multiplied by each gate's phase in gate order — exactly the
    // per-amplitude arithmetic the unfused kernels perform.
    parallelForItems(
        n, [=](std::uint64_t i0, std::uint64_t i1) {
            for (std::uint64_t i = i0; i < i1; ++i) {
                Amplitude a = amps[i];
                for (std::size_t g = 0; g < count; ++g) {
                    const DiagFactor &f = fac[g];
                    switch (f.sel) {
                      case DiagFactor::Sel::Bit:
                        a *= (i & f.mask) ? f.f1 : f.f0;
                        break;
                      case DiagFactor::Sel::AllOf:
                        if ((i & f.mask) == f.mask)
                            a = -a;
                        break;
                      case DiagFactor::Sel::Parity:
                        a *= parity(i & f.mask) ? f.f1 : f.f0;
                        break;
                    }
                }
                amps[i] = a;
            }
        });
}

void
Statevector::applyOps(const GateOp *ops, std::size_t count,
                      const std::vector<double> &params)
{
    std::size_t i = 0;
    while (i < count) {
        // Same-qubit single-qubit runs collapse into one Matrix2
        // product (one kernel pass for a whole RY·RZ·... column) —
        // with two exclusions that protect the bit-identity
        // between a (prep, suffix) job and its flattened twin.
        // All-diagonal runs fall through to the cross-qubit
        // diagonal fusion below, which covers them in one full
        // sweep with arithmetic identical to the unfused gates
        // (and is therefore safe across ANY span boundary). And a
        // matmul run never extends from a non-basis gate INTO a
        // basis-change gate (H/S/Sdg), nor forms from basis-change
        // gates alone: splitPrepSuffix places the prep/suffix span
        // boundary exactly at such transitions, so a run fused
        // across one in the flattened shape would round
        // differently than the prefixed shape's separate spans.
        if (!isTwoQubitGate(ops[i].kind)) {
            std::size_t j = i + 1;
            bool any_nondiag = !isDiagonalGate(ops[i].kind);
            bool any_nonbasis = !isBasisChangeGate(ops[i].kind);
            while (j < count && !isTwoQubitGate(ops[j].kind) &&
                   ops[j].q0 == ops[i].q0 &&
                   !(any_nonbasis &&
                     isBasisChangeGate(ops[j].kind))) {
                any_nondiag |= !isDiagonalGate(ops[j].kind);
                any_nonbasis |= !isBasisChangeGate(ops[j].kind);
                ++j;
            }
            if (j - i >= 2 && any_nondiag && any_nonbasis) {
                Matrix2 acc = gateMatrix1Q(ops[i], params);
                for (std::size_t g = i + 1; g < j; ++g)
                    acc = matmul(gateMatrix1Q(ops[g], params), acc);
                apply1Q(ops[i].q0, acc);
                i = j;
                continue;
            }
        }
        if (isDiagonalGate(ops[i].kind)) {
            std::size_t j = i + 1;
            bool full_pass = ops[i].kind != GateKind::CZ;
            while (j < count && isDiagonalGate(ops[j].kind)) {
                full_pass |= ops[j].kind != GateKind::CZ;
                ++j;
            }
            // Fuse only when the run contains a gate that touches
            // every amplitude anyway (RZ/RZZ/Z/S/Sdg/T): a CZ-only
            // run is cheaper as quarter-pass kernels than as a
            // fused full sweep.
            if (j - i >= 2 && full_pass) {
                applyDiagonalRun(ops + i, j - i, params);
                i = j;
                continue;
            }
        }
        applyOp(ops[i], params);
        ++i;
    }
}

void
Statevector::run(const Circuit &circuit, const std::vector<double> &params)
{
    if (circuit.numQubits() != numQubits_)
        panic("Statevector::run: circuit width mismatch");
    if (circuit.numParams() > static_cast<int>(params.size()))
        panic("Statevector::run: parameter vector too short");
    applyOps(circuit.ops().data(), circuit.ops().size(), params);
}

double
Statevector::norm() const
{
    const Amplitude *amps = amps_.data();
    return chunkedReduce<double>(
        amps_.size(), [=](std::uint64_t i0, std::uint64_t i1) {
            double total = 0.0;
            for (std::uint64_t i = i0; i < i1; ++i)
                total += std::norm(amps[i]);
            return total;
        });
}

std::vector<double>
Statevector::probabilities() const
{
    std::vector<double> probs(amps_.size());
    const Amplitude *amps = amps_.data();
    double *out = probs.data();
    parallelForItems(
        amps_.size(), [=](std::uint64_t i0, std::uint64_t i1) {
            for (std::uint64_t i = i0; i < i1; ++i)
                out[i] = std::norm(amps[i]);
        });
    return probs;
}

namespace {

/**
 * Histogram bins small enough for the chunk-partial strategy: one
 * partial histogram per fixed chunk (<= kMaxParallelChunks of
 * them), merged slot-wise in chunk order. Fixed, like the grain.
 */
constexpr std::uint64_t kMaxParallelHistBins = 1ull << 12;

/**
 * Chunk-parallel histogram accumulation: bin(i) maps an amplitude
 * index to its slot. Engagement depends only on (total, bins), so
 * for a given shape the accumulation order — per-slot contributions
 * in ascending index order, grouped by fixed chunk, merged in chunk
 * order — is one fixed association regardless of thread count.
 */
template <typename BinFn>
std::vector<double>
histogramProbabilities(const Statevector::Amplitude *amps,
                       std::uint64_t total, std::uint64_t bins,
                       BinFn bin)
{
    std::vector<double> probs(bins, 0.0);
    if (total < kParallelEngage || bins > kMaxParallelHistBins) {
        for (std::uint64_t i = 0; i < total; ++i) {
            const double p = std::norm(amps[i]);
            if (p == 0.0)
                continue;
            probs[bin(i)] += p;
        }
        return probs;
    }
    const std::uint64_t chunks = parallelChunkCount(total);
    // Reused per thread: at 26 qubits x 4096 bins the partials
    // span 32 MiB, which must not be reallocated per basis on the
    // otherwise zero-allocation suffix path. assign() zeroes while
    // recycling capacity. Retention is bounded like the engine's
    // suffix scratch: capacity >= 4x the current need with > 8 MiB
    // of excess is released, so one wide evaluation cannot pin the
    // buffer under later narrow workloads.
    thread_local std::vector<double> partials;
    const std::size_t need =
        static_cast<std::size_t>(chunks * bins);
    if (partials.capacity() >= 4 * need &&
        (partials.capacity() - need) * sizeof(double) >
            (8ull << 20))
        std::vector<double>().swap(partials);
    partials.assign(need, 0.0);
    double *parts = partials.data();
    parallelForChunks(
        total, [&](std::uint64_t c, std::uint64_t i0,
                   std::uint64_t i1) {
            double *local = parts + c * bins;
            for (std::uint64_t i = i0; i < i1; ++i) {
                const double p = std::norm(amps[i]);
                if (p == 0.0)
                    continue;
                local[bin(i)] += p;
            }
        });
    // Merge in fixed chunk order: slot s receives its chunks'
    // partial sums in ascending chunk (= ascending index) order.
    for (std::uint64_t c = 0; c < chunks; ++c) {
        const double *local = parts + c * bins;
        for (std::uint64_t s = 0; s < bins; ++s)
            probs[s] += local[s];
    }
    return probs;
}

} // namespace

std::vector<double>
Statevector::marginalProbabilities(const std::vector<int> &measured) const
{
    const int m = static_cast<int>(measured.size());
    const std::uint64_t bins = 1ull << m;
    const Amplitude *amps = amps_.data();
    const std::uint64_t total = amps_.size();

    // Identity layout (measured qubits are 0..m-1 in order — every
    // measureAll() circuit): the compact index is just the low bits,
    // so skip the per-amplitude bit gather.
    bool identity = true;
    for (int q = 0; q < m; ++q)
        if (measured[static_cast<std::size_t>(q)] != q) {
            identity = false;
            break;
        }
    if (identity) {
        const std::uint64_t mask = (m == 64) ? ~0ull
                                             : (1ull << m) - 1ull;
        return histogramProbabilities(
            amps, total, bins,
            [=](std::uint64_t i) { return i & mask; });
    }

    return histogramProbabilities(
        amps, total, bins, [&measured](std::uint64_t i) {
            return gatherBits(i, measured);
        });
}

double
Statevector::expectationPauli(const PauliString &p) const
{
    if (p.numQubits() != numQubits_)
        panic("Statevector::expectationPauli: width mismatch");
    // P|i> = phase * (-1)^{popcount(i & z)} |i ^ x| with
    // phase = i^{#Y}; accumulate <psi|P|psi> per fixed chunk and
    // combine the chunk partials in fixed pairwise order.
    const std::uint64_t x = p.xMask();
    const std::uint64_t z = p.zMask();
    const int n_y = popcount(x & z);
    static const std::complex<double> i_pow[4] = {
        {1, 0}, {0, 1}, {-1, 0}, {0, -1}};
    const std::complex<double> phase = i_pow[n_y & 3];
    const Amplitude *amps = amps_.data();

    const std::complex<double> acc =
        chunkedReduce<std::complex<double>>(
            amps_.size(),
            [=](std::uint64_t i0, std::uint64_t i1) {
                std::complex<double> partial(0.0, 0.0);
                for (std::uint64_t i = i0; i < i1; ++i) {
                    const Amplitude &a = amps[i];
                    if (a == Amplitude(0.0, 0.0))
                        continue;
                    const double sign = paritySign(i & z);
                    partial += std::conj(amps[i ^ x]) *
                        (phase * sign * a);
                }
                return partial;
            });
    return acc.real();
}

Statevector::Amplitude
Statevector::innerProduct(const Statevector &other) const
{
    if (other.numQubits_ != numQubits_)
        panic("Statevector::innerProduct: width mismatch");
    const Amplitude *lhs = amps_.data();
    const Amplitude *rhs = other.amps_.data();
    return chunkedReduce<Amplitude>(
        amps_.size(), [=](std::uint64_t i0, std::uint64_t i1) {
            Amplitude partial(0.0, 0.0);
            for (std::uint64_t i = i0; i < i1; ++i)
                partial += std::conj(lhs[i]) * rhs[i];
            return partial;
        });
}

void
Statevector::applyPauli(const PauliString &p)
{
    if (p.numQubits() != numQubits_)
        panic("Statevector::applyPauli: width mismatch");
    const std::uint64_t x = p.xMask();
    const std::uint64_t z = p.zMask();
    const int n_y = popcount(x & z);
    static const std::complex<double> i_pow[4] = {
        {1, 0}, {0, 1}, {-1, 0}, {0, -1}};
    const std::complex<double> phase = i_pow[n_y & 3];

    if (x == 0) {
        // Z-type string: a pure phase, applied truly in place.
        Amplitude *amps = amps_.data();
        parallelForItems(
            amps_.size(),
            [=](std::uint64_t i0, std::uint64_t i1) {
                for (std::uint64_t i = i0; i < i1; ++i) {
                    const double sign = paritySign(i & z);
                    amps[i] = phase * sign * amps[i];
                }
            });
        return;
    }

    // Bit-permuting case: write into the ping-pong buffer and swap.
    // The buffer is allocated on first use and reused afterwards, so
    // repeated applications (trajectory sampling, expectation sweeps)
    // perform no per-call allocation. Chunks write disjoint slices
    // (i -> i ^ x is a bijection), so the scatter parallelizes.
    scratch_.resize(amps_.size());
    const Amplitude *amps = amps_.data();
    Amplitude *out = scratch_.data();
    parallelForItems(
        amps_.size(), [=](std::uint64_t i0, std::uint64_t i1) {
            for (std::uint64_t i = i0; i < i1; ++i) {
                const double sign = paritySign(i & z);
                out[i ^ x] = phase * sign * amps[i];
            }
        });
    amps_.swap(scratch_);
}

} // namespace varsaw
