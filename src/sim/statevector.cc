#include "sim/statevector.hh"

#include <cmath>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace varsaw {

namespace gates {

Matrix2
fixedMatrix(GateKind kind)
{
    using namespace std::complex_literals;
    const double isq2 = 1.0 / std::sqrt(2.0);
    switch (kind) {
      case GateKind::H:
        return {isq2, isq2, isq2, -isq2};
      case GateKind::X:
        return {0, 1, 1, 0};
      case GateKind::Y:
        return {0, -1i, 1i, 0};
      case GateKind::Z:
        return {1, 0, 0, -1};
      case GateKind::S:
        return {1, 0, 0, 1i};
      case GateKind::Sdg:
        return {1, 0, 0, -1i};
      case GateKind::T:
        return {1, 0, 0, std::exp(1i * (M_PI / 4.0))};
      default:
        panic("gates::fixedMatrix: not a fixed one-qubit gate");
    }
}

Matrix2
rx(double theta)
{
    using namespace std::complex_literals;
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    return {c, -1i * s, -1i * s, c};
}

Matrix2
ry(double theta)
{
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    return {c, -s, s, c};
}

Matrix2
rz(double theta)
{
    using namespace std::complex_literals;
    return {std::exp(-1i * (theta / 2.0)), 0, 0,
            std::exp(1i * (theta / 2.0))};
}

} // namespace gates

Statevector::Statevector(int num_qubits) : numQubits_(num_qubits)
{
    if (num_qubits < 1 || num_qubits > kMaxQubits)
        panic("Statevector: register of " +
              std::to_string(num_qubits) +
              " qubits is not densely simulable; supported range is "
              "[1, " + std::to_string(kMaxQubits) +
              "] (kMaxQubits: 2^26 amplitudes = 1 GiB)");
    amps_.assign(1ull << num_qubits, Amplitude(0.0, 0.0));
    amps_[0] = Amplitude(1.0, 0.0);
}

void
Statevector::reset()
{
    std::fill(amps_.begin(), amps_.end(), Amplitude(0.0, 0.0));
    amps_[0] = Amplitude(1.0, 0.0);
}

void
Statevector::apply1Q(int q, const Matrix2 &m)
{
    // Enumerate the 2^(n-1) amplitude pairs directly: k runs over
    // the free bits and a zero is inserted at the target position,
    // so no index is visited and skipped.
    const std::uint64_t bit = 1ull << q;
    const std::uint64_t pairs = amps_.size() >> 1;
    for (std::uint64_t k = 0; k < pairs; ++k) {
        const std::uint64_t i = insertZeroBit(k, q);
        const Amplitude a0 = amps_[i];
        const Amplitude a1 = amps_[i | bit];
        amps_[i] = m.m00 * a0 + m.m01 * a1;
        amps_[i | bit] = m.m10 * a0 + m.m11 * a1;
    }
}

void
Statevector::applyCX(int control, int target)
{
    // 2^(n-2) affected pairs: control set, target clear.
    const std::uint64_t cbit = 1ull << control;
    const std::uint64_t tbit = 1ull << target;
    const std::uint64_t quads = amps_.size() >> 2;
    for (std::uint64_t k = 0; k < quads; ++k) {
        const std::uint64_t i =
            insertTwoZeroBits(k, control, target) | cbit;
        std::swap(amps_[i], amps_[i | tbit]);
    }
}

void
Statevector::applyCZ(int a, int b)
{
    // Only the 2^(n-2) amplitudes with both bits set change sign.
    const std::uint64_t abit = 1ull << a;
    const std::uint64_t bbit = 1ull << b;
    const std::uint64_t quads = amps_.size() >> 2;
    for (std::uint64_t k = 0; k < quads; ++k) {
        const std::uint64_t i =
            insertTwoZeroBits(k, a, b) | abit | bbit;
        amps_[i] = -amps_[i];
    }
}

void
Statevector::applyRZZ(int a, int b, double theta)
{
    using namespace std::complex_literals;
    const std::uint64_t abit = 1ull << a;
    const std::uint64_t bbit = 1ull << b;
    const Amplitude even = std::exp(-1i * (theta / 2.0));
    const Amplitude odd = std::exp(1i * (theta / 2.0));
    const std::uint64_t n = amps_.size();
    for (std::uint64_t i = 0; i < n; ++i) {
        const bool parity =
            ((i & abit) != 0) != ((i & bbit) != 0);
        amps_[i] *= parity ? odd : even;
    }
}

void
Statevector::applySwap(int a, int b)
{
    // 2^(n-2) swapped pairs: a set / b clear <-> a clear / b set.
    const std::uint64_t abit = 1ull << a;
    const std::uint64_t bbit = 1ull << b;
    const std::uint64_t quads = amps_.size() >> 2;
    for (std::uint64_t k = 0; k < quads; ++k) {
        const std::uint64_t i = insertTwoZeroBits(k, a, b) | abit;
        std::swap(amps_[i ^ abit ^ bbit], amps_[i]);
    }
}

void
Statevector::applyOp(const GateOp &op, const std::vector<double> &params)
{
    double theta = op.param;
    if (op.paramIndex >= 0) {
        if (static_cast<std::size_t>(op.paramIndex) >= params.size())
            panic("Statevector::applyOp: parameter index out of range");
        theta = params[op.paramIndex];
    }

    switch (op.kind) {
      case GateKind::RX:
        apply1Q(op.q0, gates::rx(theta));
        break;
      case GateKind::RY:
        apply1Q(op.q0, gates::ry(theta));
        break;
      case GateKind::RZ:
        apply1Q(op.q0, gates::rz(theta));
        break;
      case GateKind::CX:
        applyCX(op.q0, op.q1);
        break;
      case GateKind::CZ:
        applyCZ(op.q0, op.q1);
        break;
      case GateKind::RZZ:
        applyRZZ(op.q0, op.q1, theta);
        break;
      case GateKind::SWAP:
        applySwap(op.q0, op.q1);
        break;
      default:
        apply1Q(op.q0, gates::fixedMatrix(op.kind));
        break;
    }
}

namespace {

/** Whether a gate kind is diagonal in the computational basis. */
bool
isDiagonalGate(GateKind kind)
{
    switch (kind) {
      case GateKind::Z:
      case GateKind::S:
      case GateKind::Sdg:
      case GateKind::T:
      case GateKind::RZ:
      case GateKind::CZ:
      case GateKind::RZZ:
        return true;
      default:
        return false;
    }
}

/** One fused diagonal gate: how to pick this gate's phase factor. */
struct DiagFactor
{
    enum class Sel
    {
        Bit,    //!< f1 if the masked bit is set, else f0
        AllOf,  //!< negate when every masked bit is set (CZ)
        Parity, //!< f1 on odd masked parity, else f0 (RZZ)
    };

    Sel sel = Sel::Bit;
    std::uint64_t mask = 0;
    Statevector::Amplitude f0{1.0, 0.0};
    Statevector::Amplitude f1{1.0, 0.0};
};

} // namespace

void
Statevector::applyDiagonalRun(const GateOp *ops, std::size_t count,
                              const std::vector<double> &params)
{
    using namespace std::complex_literals;
    std::vector<DiagFactor> factors(count);
    for (std::size_t g = 0; g < count; ++g) {
        const GateOp &op = ops[g];
        double theta = op.param;
        if (op.paramIndex >= 0) {
            if (static_cast<std::size_t>(op.paramIndex) >=
                params.size())
                panic("Statevector::applyDiagonalRun: parameter "
                      "index out of range");
            theta = params[op.paramIndex];
        }
        DiagFactor &f = factors[g];
        switch (op.kind) {
          case GateKind::RZ: {
            const Matrix2 m = gates::rz(theta);
            f.mask = 1ull << op.q0;
            f.f0 = m.m00;
            f.f1 = m.m11;
            break;
          }
          case GateKind::CZ:
            f.sel = DiagFactor::Sel::AllOf;
            f.mask = (1ull << op.q0) | (1ull << op.q1);
            break;
          case GateKind::RZZ:
            f.sel = DiagFactor::Sel::Parity;
            f.mask = (1ull << op.q0) | (1ull << op.q1);
            f.f0 = std::exp(-1i * (theta / 2.0));
            f.f1 = std::exp(1i * (theta / 2.0));
            break;
          default: {
            const Matrix2 m = gates::fixedMatrix(op.kind);
            f.mask = 1ull << op.q0;
            f.f0 = m.m00;
            f.f1 = m.m11;
            break;
          }
        }
    }

    // One read-modify-write pass: every amplitude is multiplied by
    // each gate's phase in gate order, exactly the per-amplitude
    // arithmetic the unfused kernels perform.
    const std::uint64_t n = amps_.size();
    for (std::uint64_t i = 0; i < n; ++i) {
        Amplitude a = amps_[i];
        for (const DiagFactor &f : factors) {
            switch (f.sel) {
              case DiagFactor::Sel::Bit:
                a *= (i & f.mask) ? f.f1 : f.f0;
                break;
              case DiagFactor::Sel::AllOf:
                if ((i & f.mask) == f.mask)
                    a = -a;
                break;
              case DiagFactor::Sel::Parity:
                a *= parity(i & f.mask) ? f.f1 : f.f0;
                break;
            }
        }
        amps_[i] = a;
    }
}

void
Statevector::applyOps(const GateOp *ops, std::size_t count,
                      const std::vector<double> &params)
{
    std::size_t i = 0;
    while (i < count) {
        if (isDiagonalGate(ops[i].kind)) {
            std::size_t j = i + 1;
            bool full_pass = ops[i].kind != GateKind::CZ;
            while (j < count && isDiagonalGate(ops[j].kind)) {
                full_pass |= ops[j].kind != GateKind::CZ;
                ++j;
            }
            // Fuse only when the run contains a gate that touches
            // every amplitude anyway (RZ/RZZ/Z/S/Sdg/T): a CZ-only
            // run is cheaper as quarter-pass kernels than as a
            // fused full sweep.
            if (j - i >= 2 && full_pass) {
                applyDiagonalRun(ops + i, j - i, params);
                i = j;
                continue;
            }
        }
        applyOp(ops[i], params);
        ++i;
    }
}

void
Statevector::run(const Circuit &circuit, const std::vector<double> &params)
{
    if (circuit.numQubits() != numQubits_)
        panic("Statevector::run: circuit width mismatch");
    if (circuit.numParams() > static_cast<int>(params.size()))
        panic("Statevector::run: parameter vector too short");
    applyOps(circuit.ops().data(), circuit.ops().size(), params);
}

double
Statevector::norm() const
{
    double total = 0.0;
    for (const auto &a : amps_)
        total += std::norm(a);
    return total;
}

std::vector<double>
Statevector::probabilities() const
{
    std::vector<double> probs(amps_.size());
    for (std::size_t i = 0; i < amps_.size(); ++i)
        probs[i] = std::norm(amps_[i]);
    return probs;
}

std::vector<double>
Statevector::marginalProbabilities(const std::vector<int> &measured) const
{
    const int m = static_cast<int>(measured.size());
    std::vector<double> probs(1ull << m, 0.0);

    // Identity layout (measured qubits are 0..m-1 in order — every
    // measureAll() circuit): the compact index is just the low bits,
    // so skip the per-amplitude bit gather.
    bool identity = true;
    for (int q = 0; q < m; ++q)
        if (measured[static_cast<std::size_t>(q)] != q) {
            identity = false;
            break;
        }
    if (identity) {
        const std::uint64_t mask = (m == 64) ? ~0ull
                                             : (1ull << m) - 1ull;
        for (std::uint64_t i = 0; i < amps_.size(); ++i) {
            const double p = std::norm(amps_[i]);
            if (p == 0.0)
                continue;
            probs[i & mask] += p;
        }
        return probs;
    }

    for (std::uint64_t i = 0; i < amps_.size(); ++i) {
        const double p = std::norm(amps_[i]);
        if (p == 0.0)
            continue;
        probs[gatherBits(i, measured)] += p;
    }
    return probs;
}

double
Statevector::expectationPauli(const PauliString &p) const
{
    if (p.numQubits() != numQubits_)
        panic("Statevector::expectationPauli: width mismatch");
    // P|i> = phase * (-1)^{popcount(i & z)} |i ^ x| with
    // phase = i^{#Y}; accumulate <psi|P|psi>.
    const std::uint64_t x = p.xMask();
    const std::uint64_t z = p.zMask();
    const int n_y = popcount(x & z);
    static const std::complex<double> i_pow[4] = {
        {1, 0}, {0, 1}, {-1, 0}, {0, -1}};
    const std::complex<double> phase = i_pow[n_y & 3];

    std::complex<double> acc(0.0, 0.0);
    for (std::uint64_t i = 0; i < amps_.size(); ++i) {
        const Amplitude &a = amps_[i];
        if (a == Amplitude(0.0, 0.0))
            continue;
        const double sign = paritySign(i & z);
        acc += std::conj(amps_[i ^ x]) * (phase * sign * a);
    }
    return acc.real();
}

Statevector::Amplitude
Statevector::innerProduct(const Statevector &other) const
{
    if (other.numQubits_ != numQubits_)
        panic("Statevector::innerProduct: width mismatch");
    Amplitude acc(0.0, 0.0);
    for (std::size_t i = 0; i < amps_.size(); ++i)
        acc += std::conj(amps_[i]) * other.amps_[i];
    return acc;
}

void
Statevector::applyPauli(const PauliString &p)
{
    if (p.numQubits() != numQubits_)
        panic("Statevector::applyPauli: width mismatch");
    const std::uint64_t x = p.xMask();
    const std::uint64_t z = p.zMask();
    const int n_y = popcount(x & z);
    static const std::complex<double> i_pow[4] = {
        {1, 0}, {0, 1}, {-1, 0}, {0, -1}};
    const std::complex<double> phase = i_pow[n_y & 3];

    if (x == 0) {
        // Z-type string: a pure phase, applied truly in place.
        for (std::uint64_t i = 0; i < amps_.size(); ++i) {
            const double sign = paritySign(i & z);
            amps_[i] = phase * sign * amps_[i];
        }
        return;
    }

    // Bit-permuting case: write into the ping-pong buffer and swap.
    // The buffer is allocated on first use and reused afterwards, so
    // repeated applications (trajectory sampling, expectation sweeps)
    // perform no per-call allocation.
    scratch_.resize(amps_.size());
    for (std::uint64_t i = 0; i < amps_.size(); ++i) {
        const double sign = paritySign(i & z);
        scratch_[i ^ x] = phase * sign * amps_[i];
    }
    amps_.swap(scratch_);
}

} // namespace varsaw
