#include "sim/statevector.hh"

#include <cmath>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace varsaw {

namespace gates {

Matrix2
fixedMatrix(GateKind kind)
{
    using namespace std::complex_literals;
    const double isq2 = 1.0 / std::sqrt(2.0);
    switch (kind) {
      case GateKind::H:
        return {isq2, isq2, isq2, -isq2};
      case GateKind::X:
        return {0, 1, 1, 0};
      case GateKind::Y:
        return {0, -1i, 1i, 0};
      case GateKind::Z:
        return {1, 0, 0, -1};
      case GateKind::S:
        return {1, 0, 0, 1i};
      case GateKind::Sdg:
        return {1, 0, 0, -1i};
      case GateKind::T:
        return {1, 0, 0, std::exp(1i * (M_PI / 4.0))};
      default:
        panic("gates::fixedMatrix: not a fixed one-qubit gate");
    }
}

Matrix2
rx(double theta)
{
    using namespace std::complex_literals;
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    return {c, -1i * s, -1i * s, c};
}

Matrix2
ry(double theta)
{
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    return {c, -s, s, c};
}

Matrix2
rz(double theta)
{
    using namespace std::complex_literals;
    return {std::exp(-1i * (theta / 2.0)), 0, 0,
            std::exp(1i * (theta / 2.0))};
}

} // namespace gates

Statevector::Statevector(int num_qubits) : numQubits_(num_qubits)
{
    if (num_qubits < 1 || num_qubits > 26)
        panic("Statevector: qubit count must be in [1, 26]");
    amps_.assign(1ull << num_qubits, Amplitude(0.0, 0.0));
    amps_[0] = Amplitude(1.0, 0.0);
}

void
Statevector::reset()
{
    std::fill(amps_.begin(), amps_.end(), Amplitude(0.0, 0.0));
    amps_[0] = Amplitude(1.0, 0.0);
}

void
Statevector::apply1Q(int q, const Matrix2 &m)
{
    const std::uint64_t bit = 1ull << q;
    const std::uint64_t n = amps_.size();
    for (std::uint64_t i = 0; i < n; ++i) {
        if (i & bit)
            continue;
        const Amplitude a0 = amps_[i];
        const Amplitude a1 = amps_[i | bit];
        amps_[i] = m.m00 * a0 + m.m01 * a1;
        amps_[i | bit] = m.m10 * a0 + m.m11 * a1;
    }
}

void
Statevector::applyCX(int control, int target)
{
    const std::uint64_t cbit = 1ull << control;
    const std::uint64_t tbit = 1ull << target;
    const std::uint64_t n = amps_.size();
    for (std::uint64_t i = 0; i < n; ++i) {
        // Visit each affected pair once: control set, target clear.
        if ((i & cbit) && !(i & tbit))
            std::swap(amps_[i], amps_[i | tbit]);
    }
}

void
Statevector::applyCZ(int a, int b)
{
    const std::uint64_t abit = 1ull << a;
    const std::uint64_t bbit = 1ull << b;
    const std::uint64_t n = amps_.size();
    for (std::uint64_t i = 0; i < n; ++i)
        if ((i & abit) && (i & bbit))
            amps_[i] = -amps_[i];
}

void
Statevector::applyRZZ(int a, int b, double theta)
{
    using namespace std::complex_literals;
    const std::uint64_t abit = 1ull << a;
    const std::uint64_t bbit = 1ull << b;
    const Amplitude even = std::exp(-1i * (theta / 2.0));
    const Amplitude odd = std::exp(1i * (theta / 2.0));
    const std::uint64_t n = amps_.size();
    for (std::uint64_t i = 0; i < n; ++i) {
        const bool parity =
            ((i & abit) != 0) != ((i & bbit) != 0);
        amps_[i] *= parity ? odd : even;
    }
}

void
Statevector::applySwap(int a, int b)
{
    const std::uint64_t abit = 1ull << a;
    const std::uint64_t bbit = 1ull << b;
    const std::uint64_t n = amps_.size();
    for (std::uint64_t i = 0; i < n; ++i)
        if ((i & abit) && !(i & bbit))
            std::swap(amps_[i ^ abit ^ bbit], amps_[i]);
}

void
Statevector::applyOp(const GateOp &op, const std::vector<double> &params)
{
    double theta = op.param;
    if (op.paramIndex >= 0) {
        if (static_cast<std::size_t>(op.paramIndex) >= params.size())
            panic("Statevector::applyOp: parameter index out of range");
        theta = params[op.paramIndex];
    }

    switch (op.kind) {
      case GateKind::RX:
        apply1Q(op.q0, gates::rx(theta));
        break;
      case GateKind::RY:
        apply1Q(op.q0, gates::ry(theta));
        break;
      case GateKind::RZ:
        apply1Q(op.q0, gates::rz(theta));
        break;
      case GateKind::CX:
        applyCX(op.q0, op.q1);
        break;
      case GateKind::CZ:
        applyCZ(op.q0, op.q1);
        break;
      case GateKind::RZZ:
        applyRZZ(op.q0, op.q1, theta);
        break;
      case GateKind::SWAP:
        applySwap(op.q0, op.q1);
        break;
      default:
        apply1Q(op.q0, gates::fixedMatrix(op.kind));
        break;
    }
}

void
Statevector::run(const Circuit &circuit, const std::vector<double> &params)
{
    if (circuit.numQubits() != numQubits_)
        panic("Statevector::run: circuit width mismatch");
    if (circuit.numParams() > static_cast<int>(params.size()))
        panic("Statevector::run: parameter vector too short");
    for (const auto &op : circuit.ops())
        applyOp(op, params);
}

double
Statevector::norm() const
{
    double total = 0.0;
    for (const auto &a : amps_)
        total += std::norm(a);
    return total;
}

std::vector<double>
Statevector::probabilities() const
{
    std::vector<double> probs(amps_.size());
    for (std::size_t i = 0; i < amps_.size(); ++i)
        probs[i] = std::norm(amps_[i]);
    return probs;
}

std::vector<double>
Statevector::marginalProbabilities(const std::vector<int> &measured) const
{
    const int m = static_cast<int>(measured.size());
    std::vector<double> probs(1ull << m, 0.0);
    for (std::uint64_t i = 0; i < amps_.size(); ++i) {
        const double p = std::norm(amps_[i]);
        if (p == 0.0)
            continue;
        probs[gatherBits(i, measured)] += p;
    }
    return probs;
}

double
Statevector::expectationPauli(const PauliString &p) const
{
    if (p.numQubits() != numQubits_)
        panic("Statevector::expectationPauli: width mismatch");
    // P|i> = phase * (-1)^{popcount(i & z)} |i ^ x| with
    // phase = i^{#Y}; accumulate <psi|P|psi>.
    const std::uint64_t x = p.xMask();
    const std::uint64_t z = p.zMask();
    const int n_y = popcount(x & z);
    static const std::complex<double> i_pow[4] = {
        {1, 0}, {0, 1}, {-1, 0}, {0, -1}};
    const std::complex<double> phase = i_pow[n_y & 3];

    std::complex<double> acc(0.0, 0.0);
    for (std::uint64_t i = 0; i < amps_.size(); ++i) {
        const Amplitude &a = amps_[i];
        if (a == Amplitude(0.0, 0.0))
            continue;
        const double sign = paritySign(i & z);
        acc += std::conj(amps_[i ^ x]) * (phase * sign * a);
    }
    return acc.real();
}

Statevector::Amplitude
Statevector::innerProduct(const Statevector &other) const
{
    if (other.numQubits_ != numQubits_)
        panic("Statevector::innerProduct: width mismatch");
    Amplitude acc(0.0, 0.0);
    for (std::size_t i = 0; i < amps_.size(); ++i)
        acc += std::conj(amps_[i]) * other.amps_[i];
    return acc;
}

void
Statevector::applyPauli(const PauliString &p)
{
    if (p.numQubits() != numQubits_)
        panic("Statevector::applyPauli: width mismatch");
    const std::uint64_t x = p.xMask();
    const std::uint64_t z = p.zMask();
    const int n_y = popcount(x & z);
    static const std::complex<double> i_pow[4] = {
        {1, 0}, {0, 1}, {-1, 0}, {0, -1}};
    const std::complex<double> phase = i_pow[n_y & 3];

    std::vector<Amplitude> out(amps_.size());
    for (std::uint64_t i = 0; i < amps_.size(); ++i) {
        const double sign = paritySign(i & z);
        out[i ^ x] = phase * sign * amps_[i];
    }
    amps_ = std::move(out);
}

} // namespace varsaw
