#include "sim/statevector.hh"

#include <cmath>
#include <cstring>
#include <utility>

#include "sim/kernels/kernels.hh"
#include "telemetry/metrics.hh"
#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace varsaw {

namespace gates {

Matrix2
fixedMatrix(GateKind kind)
{
    using namespace std::complex_literals;
    const double isq2 = 1.0 / std::sqrt(2.0);
    switch (kind) {
      case GateKind::H:
        return {isq2, isq2, isq2, -isq2};
      case GateKind::X:
        return {0, 1, 1, 0};
      case GateKind::Y:
        return {0, -1i, 1i, 0};
      case GateKind::Z:
        return {1, 0, 0, -1};
      case GateKind::S:
        return {1, 0, 0, 1i};
      case GateKind::Sdg:
        return {1, 0, 0, -1i};
      case GateKind::T:
        return {1, 0, 0, std::exp(1i * (M_PI / 4.0))};
      default:
        panic("gates::fixedMatrix: not a fixed one-qubit gate");
    }
}

Matrix2
rx(double theta)
{
    using namespace std::complex_literals;
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    return {c, -1i * s, -1i * s, c};
}

Matrix2
ry(double theta)
{
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    return {c, -s, s, c};
}

Matrix2
rz(double theta)
{
    using namespace std::complex_literals;
    return {std::exp(-1i * (theta / 2.0)), 0, 0,
            std::exp(1i * (theta / 2.0))};
}

std::pair<std::complex<double>, std::complex<double>>
rzzFactors(double theta)
{
    using namespace std::complex_literals;
    return {std::exp(-1i * (theta / 2.0)),
            std::exp(1i * (theta / 2.0))};
}

} // namespace gates

namespace {

/**
 * Per-kernel dispatch counters (`sim.kernels.<name>.invocations`):
 * one count per kernel CALL (a full sweep), not per chunk, so the
 * numbers read as "how many gate applications / reductions ran"
 * regardless of threading. References cached once; every site
 * guards on metricsEnabled() (the < 1% telemetry-off contract).
 */
struct KernelMetrics
{
    telemetry::Counter &apply1q;
    telemetry::Counter &diagTables;
    telemetry::Counter &cx;
    telemetry::Counter &cz;
    telemetry::Counter &swp;
    telemetry::Counter &norm;
    telemetry::Counter &probabilities;
    telemetry::Counter &innerProduct;
    telemetry::Counter &expectationPauli;
};

KernelMetrics &
kernelMetrics()
{
    static KernelMetrics m = [] {
        auto &reg = telemetry::MetricsRegistry::instance();
        auto c = [&reg](const char *name) -> telemetry::Counter & {
            return reg.counter(
                std::string("sim.kernels.") + name +
                ".invocations");
        };
        return KernelMetrics{
            c("apply1q"),       c("diag_tables"),
            c("cx"),            c("cz"),
            c("swap"),          c("norm"),
            c("probabilities"), c("inner_product"),
            c("expectation_pauli")};
    }();
    return m;
}

#define VARSAW_COUNT_KERNEL(field)                          \
    do {                                                    \
        if (telemetry::metricsEnabled())                    \
            kernelMetrics().field.add();                    \
    } while (0)

/** Resolve a gate op's angle against the parameter vector. */
double
resolveTheta(const GateOp &op, const std::vector<double> &params)
{
    if (op.paramIndex < 0)
        return op.param;
    if (static_cast<std::size_t>(op.paramIndex) >= params.size())
        panic("Statevector: parameter index out of range");
    return params[op.paramIndex];
}

/** Matrix of any one-qubit gate op (rotation or fixed). */
Matrix2
gateMatrix1Q(const GateOp &op, const std::vector<double> &params)
{
    switch (op.kind) {
      case GateKind::RX:
        return gates::rx(resolveTheta(op, params));
      case GateKind::RY:
        return gates::ry(resolveTheta(op, params));
      case GateKind::RZ:
        return gates::rz(resolveTheta(op, params));
      default:
        return gates::fixedMatrix(op.kind);
    }
}

/** One-qubit diagonal in table form: selected by bit q alone. */
kern::DiagTableGate
bitDiagGate(int q, const std::complex<double> &f0,
            const std::complex<double> &f1)
{
    kern::DiagTableGate g;
    g.a = q;
    g.b = q;
    g.table[0] = f0;
    g.table[1] = f1;
    g.table[2] = f0;
    g.table[3] = f1;
    return g;
}

} // namespace

Statevector::Statevector(int num_qubits) : numQubits_(num_qubits)
{
    if (num_qubits < 1 || num_qubits > kMaxQubits)
        panic("Statevector: register of " +
              std::to_string(num_qubits) +
              " qubits is not densely simulable; supported range is "
              "[1, " + std::to_string(kMaxQubits) +
              "] (kMaxQubits: 2^26 amplitudes = 1 GiB)");
    amps_.assign(1ull << num_qubits, Amplitude(0.0, 0.0));
    amps_[0] = Amplitude(1.0, 0.0);
}

void
Statevector::reset()
{
    std::fill(amps_.begin(), amps_.end(), Amplitude(0.0, 0.0));
    amps_[0] = Amplitude(1.0, 0.0);
}

bool
Statevector::copyFrom(const Statevector &other)
{
    if (this == &other)
        return true;
    const std::size_t n = other.amps_.size();
    const bool reused = amps_.capacity() >= n;
    numQubits_ = other.numQubits_;
    // resize() within capacity never reallocates, so the recycled
    // buffer keeps the 64-byte alignment its AlignedAllocator
    // established at allocation time; a growing resize allocates
    // through the same allocator. Either way the contract holds
    // (pinned by SimdKernels.AlignmentSurvivesRecycling).
    amps_.resize(n);
    const Amplitude *src = other.amps_.data();
    Amplitude *dst = amps_.data();
    parallelForItems(n, [=](std::uint64_t begin, std::uint64_t end) {
        std::memcpy(dst + begin, src + begin,
                    (end - begin) * sizeof(Amplitude));
    });
    return reused;
}

void
Statevector::apply1Q(int q, const Matrix2 &m)
{
    // Pair enumeration, traversal math, and the arithmetic DAG all
    // live in the dispatched kernel (src/sim/kernels/); this layer
    // keeps only the fixed chunk decomposition. The table is
    // fetched once per call so one sweep never mixes tiers.
    VARSAW_COUNT_KERNEL(apply1q);
    const kern::KernelTable &kt = kern::activeKernels();
    auto fn = kt.apply1q;
    Amplitude *amps = amps_.data();
    const Matrix2 mat = m;
    parallelForItems(
        amps_.size() >> 1,
        [=](std::uint64_t k0, std::uint64_t k1) {
            fn(amps, q, k0, k1, mat);
        });
}

void
Statevector::applyCX(int control, int target)
{
    // 2^(n-2) affected pairs: control set, target clear.
    VARSAW_COUNT_KERNEL(cx);
    const kern::KernelTable &kt = kern::activeKernels();
    auto fn = kt.cxQuads;
    Amplitude *amps = amps_.data();
    parallelForItems(
        amps_.size() >> 2,
        [=](std::uint64_t k0, std::uint64_t k1) {
            fn(amps, control, target, k0, k1);
        });
}

void
Statevector::applyCZ(int a, int b)
{
    // Only the 2^(n-2) amplitudes with both bits set change sign.
    VARSAW_COUNT_KERNEL(cz);
    const kern::KernelTable &kt = kern::activeKernels();
    auto fn = kt.czQuads;
    Amplitude *amps = amps_.data();
    parallelForItems(
        amps_.size() >> 2,
        [=](std::uint64_t k0, std::uint64_t k1) {
            fn(amps, a, b, k0, k1);
        });
}

void
Statevector::applyParityPhase(int a, int b, const Amplitude &f0,
                              const Amplitude &f1)
{
    // table[bit_a | bit_b << 1]: even parity (00, 11) -> f0, odd
    // (01, 10) -> f1. No popcount, no branch in the sweep.
    kern::DiagTableGate g;
    g.a = a;
    g.b = b;
    g.table[0] = f0;
    g.table[1] = f1;
    g.table[2] = f1;
    g.table[3] = f0;
    applyDiagonalTables(&g, 1);
}

void
Statevector::applyDiagonal1Q(int q, const Amplitude &f0,
                             const Amplitude &f1)
{
    const kern::DiagTableGate g = bitDiagGate(q, f0, f1);
    applyDiagonalTables(&g, 1);
}

void
Statevector::applyDiagonalTables(const kern::DiagTableGate *gates,
                                 std::size_t count)
{
    VARSAW_COUNT_KERNEL(diagTables);
    const kern::KernelTable &kt = kern::activeKernels();
    auto fn = kt.diagTables;
    Amplitude *amps = amps_.data();
    parallelForItems(
        amps_.size(), [=](std::uint64_t i0, std::uint64_t i1) {
            fn(amps, i0, i1, gates, count);
        });
}

void
Statevector::applyRZZ(int a, int b, double theta)
{
    const auto [even, odd] = gates::rzzFactors(theta);
    applyParityPhase(a, b, even, odd);
}

void
Statevector::applySwap(int a, int b)
{
    // 2^(n-2) swapped pairs: a set / b clear <-> a clear / b set.
    VARSAW_COUNT_KERNEL(swp);
    const kern::KernelTable &kt = kern::activeKernels();
    auto fn = kt.swapQuads;
    Amplitude *amps = amps_.data();
    parallelForItems(
        amps_.size() >> 2,
        [=](std::uint64_t k0, std::uint64_t k1) {
            fn(amps, a, b, k0, k1);
        });
}

void
Statevector::applyOp(const GateOp &op, const std::vector<double> &params)
{
    switch (op.kind) {
      case GateKind::CX:
        applyCX(op.q0, op.q1);
        break;
      case GateKind::CZ:
        applyCZ(op.q0, op.q1);
        break;
      case GateKind::RZZ:
        applyRZZ(op.q0, op.q1, resolveTheta(op, params));
        break;
      case GateKind::SWAP:
        applySwap(op.q0, op.q1);
        break;
      case GateKind::RZ:
      case GateKind::Z:
      case GateKind::S:
      case GateKind::Sdg:
      case GateKind::T: {
        // Diagonal singles skip the generic pair kernel: a pure
        // table multiply instead of mixing in a zero off-diagonal
        // term per pair.
        const Matrix2 m = gateMatrix1Q(op, params);
        applyDiagonal1Q(op.q0, m.m00, m.m11);
        break;
      }
      default:
        apply1Q(op.q0, gateMatrix1Q(op, params));
        break;
    }
}

namespace {

/** Whether a gate kind is diagonal in the computational basis. */
bool
isDiagonalGate(GateKind kind)
{
    switch (kind) {
      case GateKind::Z:
      case GateKind::S:
      case GateKind::Sdg:
      case GateKind::T:
      case GateKind::RZ:
      case GateKind::CZ:
      case GateKind::RZZ:
        return true;
      default:
        return false;
    }
}

} // namespace

void
Statevector::applyDiagonalRun(const GateOp *ops, std::size_t count,
                              const std::vector<double> &params)
{
    // Per-gate factor tables are built once, outside the sweep,
    // then the whole run is one read-modify-write pass: every
    // amplitude multiplied by each gate's selected factor in gate
    // order — the identical per-amplitude arithmetic of the
    // unfused kernels (CZ stays an exact negation in table form,
    // so fused and standalone CZ match bit for bit across any
    // prep/suffix span boundary).
    std::vector<kern::DiagTableGate> tables(count);
    for (std::size_t g = 0; g < count; ++g) {
        const GateOp &op = ops[g];
        switch (op.kind) {
          case GateKind::RZ: {
            const Matrix2 m =
                gates::rz(resolveTheta(op, params));
            tables[g] = bitDiagGate(op.q0, m.m00, m.m11);
            break;
          }
          case GateKind::CZ: {
            kern::DiagTableGate d;
            d.a = op.q0;
            d.b = op.q1;
            d.negate = true;
            tables[g] = d;
            break;
          }
          case GateKind::RZZ: {
            const auto [even, odd] =
                gates::rzzFactors(resolveTheta(op, params));
            kern::DiagTableGate d;
            d.a = op.q0;
            d.b = op.q1;
            d.table[0] = even;
            d.table[1] = odd;
            d.table[2] = odd;
            d.table[3] = even;
            tables[g] = d;
            break;
          }
          default: {
            const Matrix2 m = gates::fixedMatrix(op.kind);
            tables[g] = bitDiagGate(op.q0, m.m00, m.m11);
            break;
          }
        }
    }
    applyDiagonalTables(tables.data(), count);
}

void
Statevector::applyOps(const GateOp *ops, std::size_t count,
                      const std::vector<double> &params)
{
    std::size_t i = 0;
    while (i < count) {
        // Same-qubit single-qubit runs collapse into one Matrix2
        // product (one kernel pass for a whole RY·RZ·... column) —
        // with two exclusions that protect the bit-identity
        // between a (prep, suffix) job and its flattened twin.
        // All-diagonal runs fall through to the cross-qubit
        // diagonal fusion below, which covers them in one full
        // sweep with arithmetic identical to the unfused gates
        // (and is therefore safe across ANY span boundary). And a
        // matmul run never extends from a non-basis gate INTO a
        // basis-change gate (H/S/Sdg), nor forms from basis-change
        // gates alone: splitPrepSuffix places the prep/suffix span
        // boundary exactly at such transitions, so a run fused
        // across one in the flattened shape would round
        // differently than the prefixed shape's separate spans.
        if (!isTwoQubitGate(ops[i].kind)) {
            std::size_t j = i + 1;
            bool any_nondiag = !isDiagonalGate(ops[i].kind);
            bool any_nonbasis = !isBasisChangeGate(ops[i].kind);
            while (j < count && !isTwoQubitGate(ops[j].kind) &&
                   ops[j].q0 == ops[i].q0 &&
                   !(any_nonbasis &&
                     isBasisChangeGate(ops[j].kind))) {
                any_nondiag |= !isDiagonalGate(ops[j].kind);
                any_nonbasis |= !isBasisChangeGate(ops[j].kind);
                ++j;
            }
            if (j - i >= 2 && any_nondiag && any_nonbasis) {
                Matrix2 acc = gateMatrix1Q(ops[i], params);
                for (std::size_t g = i + 1; g < j; ++g)
                    acc = matmul(gateMatrix1Q(ops[g], params), acc);
                apply1Q(ops[i].q0, acc);
                i = j;
                continue;
            }
        }
        if (isDiagonalGate(ops[i].kind)) {
            std::size_t j = i + 1;
            bool full_pass = ops[i].kind != GateKind::CZ;
            while (j < count && isDiagonalGate(ops[j].kind)) {
                full_pass |= ops[j].kind != GateKind::CZ;
                ++j;
            }
            // Fuse only when the run contains a gate that touches
            // every amplitude anyway (RZ/RZZ/Z/S/Sdg/T): a CZ-only
            // run is cheaper as quarter-pass kernels than as a
            // fused full sweep.
            if (j - i >= 2 && full_pass) {
                applyDiagonalRun(ops + i, j - i, params);
                i = j;
                continue;
            }
        }
        applyOp(ops[i], params);
        ++i;
    }
}

void
Statevector::run(const Circuit &circuit, const std::vector<double> &params)
{
    if (circuit.numQubits() != numQubits_)
        panic("Statevector::run: circuit width mismatch");
    if (circuit.numParams() > static_cast<int>(params.size()))
        panic("Statevector::run: parameter vector too short");
    applyOps(circuit.ops().data(), circuit.ops().size(), params);
}

double
Statevector::norm() const
{
    VARSAW_COUNT_KERNEL(norm);
    const kern::KernelTable &kt = kern::activeKernels();
    auto fn = kt.normChunk;
    const Amplitude *amps = amps_.data();
    return chunkedReduce<double>(
        amps_.size(), [=](std::uint64_t i0, std::uint64_t i1) {
            return fn(amps, i0, i1);
        });
}

std::vector<double>
Statevector::probabilities() const
{
    VARSAW_COUNT_KERNEL(probabilities);
    const kern::KernelTable &kt = kern::activeKernels();
    auto fn = kt.probChunk;
    std::vector<double> probs(amps_.size());
    const Amplitude *amps = amps_.data();
    double *out = probs.data();
    parallelForItems(
        amps_.size(), [=](std::uint64_t i0, std::uint64_t i1) {
            fn(amps, out, i0, i1);
        });
    return probs;
}

namespace {

/**
 * Histogram bins small enough for the chunk-partial strategy: one
 * partial histogram per fixed chunk (<= kMaxParallelChunks of
 * them), merged slot-wise in chunk order. Fixed, like the grain.
 */
constexpr std::uint64_t kMaxParallelHistBins = 1ull << 12;

/**
 * Chunk-parallel histogram accumulation: bin(i) maps an amplitude
 * index to its slot. Engagement depends only on (total, bins), so
 * for a given shape the accumulation order — per-slot contributions
 * in ascending index order, grouped by fixed chunk, merged in chunk
 * order — is one fixed association regardless of thread count.
 */
template <typename BinFn>
std::vector<double>
histogramProbabilities(const Statevector::Amplitude *amps,
                       std::uint64_t total, std::uint64_t bins,
                       BinFn bin)
{
    std::vector<double> probs(bins, 0.0);
    if (total < kParallelEngage || bins > kMaxParallelHistBins) {
        for (std::uint64_t i = 0; i < total; ++i) {
            const double p = std::norm(amps[i]);
            if (p == 0.0)
                continue;
            probs[bin(i)] += p;
        }
        return probs;
    }
    const std::uint64_t chunks = parallelChunkCount(total);
    // Reused per thread: at 26 qubits x 4096 bins the partials
    // span 32 MiB, which must not be reallocated per basis on the
    // otherwise zero-allocation suffix path. assign() zeroes while
    // recycling capacity. Retention is bounded like the engine's
    // suffix scratch: capacity >= 4x the current need with > 8 MiB
    // of excess is released, so one wide evaluation cannot pin the
    // buffer under later narrow workloads.
    thread_local std::vector<double> partials;
    const std::size_t need =
        static_cast<std::size_t>(chunks * bins);
    if (partials.capacity() >= 4 * need &&
        (partials.capacity() - need) * sizeof(double) >
            (8ull << 20))
        std::vector<double>().swap(partials);
    partials.assign(need, 0.0);
    double *parts = partials.data();
    parallelForChunks(
        total, [&](std::uint64_t c, std::uint64_t i0,
                   std::uint64_t i1) {
            double *local = parts + c * bins;
            for (std::uint64_t i = i0; i < i1; ++i) {
                const double p = std::norm(amps[i]);
                if (p == 0.0)
                    continue;
                local[bin(i)] += p;
            }
        });
    // Merge in fixed chunk order: slot s receives its chunks'
    // partial sums in ascending chunk (= ascending index) order.
    for (std::uint64_t c = 0; c < chunks; ++c) {
        const double *local = parts + c * bins;
        for (std::uint64_t s = 0; s < bins; ++s)
            probs[s] += local[s];
    }
    return probs;
}

} // namespace

std::vector<double>
Statevector::marginalProbabilities(const std::vector<int> &measured) const
{
    const int m = static_cast<int>(measured.size());
    const std::uint64_t bins = 1ull << m;
    const Amplitude *amps = amps_.data();
    const std::uint64_t total = amps_.size();

    // Identity layout (measured qubits are 0..m-1 in order — every
    // measureAll() circuit): the compact index is just the low bits,
    // so skip the per-amplitude bit gather.
    bool identity = true;
    for (int q = 0; q < m; ++q)
        if (measured[static_cast<std::size_t>(q)] != q) {
            identity = false;
            break;
        }
    if (identity) {
        const std::uint64_t mask = (m == 64) ? ~0ull
                                             : (1ull << m) - 1ull;
        return histogramProbabilities(
            amps, total, bins,
            [=](std::uint64_t i) { return i & mask; });
    }

    return histogramProbabilities(
        amps, total, bins, [&measured](std::uint64_t i) {
            return gatherBits(i, measured);
        });
}

double
Statevector::expectationPauli(const PauliString &p) const
{
    if (p.numQubits() != numQubits_)
        panic("Statevector::expectationPauli: width mismatch");
    // P|i> = i^{#Y} * (-1)^{popcount(i & z)} |i ^ x|; accumulate
    // <psi|P|psi> per fixed chunk (branch-free in the kernel, with
    // the phase applied as exact component swaps and sign flips)
    // and combine the chunk partials in fixed pairwise order.
    VARSAW_COUNT_KERNEL(expectationPauli);
    const kern::KernelTable &kt = kern::activeKernels();
    auto fn = kt.expPauliChunk;
    const std::uint64_t x = p.xMask();
    const std::uint64_t z = p.zMask();
    const int quadrant = popcount(x & z) & 3;
    const Amplitude *amps = amps_.data();

    const std::complex<double> acc =
        chunkedReduce<std::complex<double>>(
            amps_.size(),
            [=](std::uint64_t i0, std::uint64_t i1) {
                return fn(amps, x, z, quadrant, i0, i1);
            });
    return acc.real();
}

Statevector::Amplitude
Statevector::innerProduct(const Statevector &other) const
{
    if (other.numQubits_ != numQubits_)
        panic("Statevector::innerProduct: width mismatch");
    VARSAW_COUNT_KERNEL(innerProduct);
    const kern::KernelTable &kt = kern::activeKernels();
    auto fn = kt.innerChunk;
    const Amplitude *lhs = amps_.data();
    const Amplitude *rhs = other.amps_.data();
    return chunkedReduce<Amplitude>(
        amps_.size(), [=](std::uint64_t i0, std::uint64_t i1) {
            return fn(lhs, rhs, i0, i1);
        });
}

void
Statevector::applyPauli(const PauliString &p)
{
    if (p.numQubits() != numQubits_)
        panic("Statevector::applyPauli: width mismatch");
    const std::uint64_t x = p.xMask();
    const std::uint64_t z = p.zMask();
    const int n_y = popcount(x & z);
    static const std::complex<double> i_pow[4] = {
        {1, 0}, {0, 1}, {-1, 0}, {0, -1}};
    const std::complex<double> phase = i_pow[n_y & 3];

    if (x == 0) {
        // Z-type string: a pure phase, applied truly in place.
        Amplitude *amps = amps_.data();
        parallelForItems(
            amps_.size(),
            [=](std::uint64_t i0, std::uint64_t i1) {
                for (std::uint64_t i = i0; i < i1; ++i) {
                    const double sign = paritySign(i & z);
                    amps[i] = phase * sign * amps[i];
                }
            });
        return;
    }

    // Bit-permuting case: write into the ping-pong buffer and swap.
    // The buffer is allocated on first use and reused afterwards, so
    // repeated applications (trajectory sampling, expectation sweeps)
    // perform no per-call allocation. Chunks write disjoint slices
    // (i -> i ^ x is a bijection), so the scatter parallelizes.
    scratch_.resize(amps_.size());
    const Amplitude *amps = amps_.data();
    Amplitude *out = scratch_.data();
    parallelForItems(
        amps_.size(), [=](std::uint64_t i0, std::uint64_t i1) {
            for (std::uint64_t i = i0; i < i1; ++i) {
                const double sign = paritySign(i & z);
                out[i ^ x] = phase * sign * amps[i];
            }
        });
    amps_.swap(scratch_);
}

} // namespace varsaw
