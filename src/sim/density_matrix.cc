#include "sim/density_matrix.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/parallel.hh"
#include "sim/statevector.hh"

namespace varsaw {

DensityMatrix::DensityMatrix(int num_qubits)
    : numQubits_(num_qubits), dim_(1ull << num_qubits)
{
    if (num_qubits < 1 || num_qubits > 12)
        panic("DensityMatrix: qubit count must be in [1, 12]");
    data_.assign(dim_ * dim_, Amplitude(0.0, 0.0));
    data_[0] = Amplitude(1.0, 0.0);
}

DensityMatrix::Amplitude &
DensityMatrix::at(std::uint64_t row, std::uint64_t col)
{
    return data_[row * dim_ + col];
}

const DensityMatrix::Amplitude &
DensityMatrix::at(std::uint64_t row, std::uint64_t col) const
{
    return data_[row * dim_ + col];
}

DensityMatrix::Amplitude
DensityMatrix::element(std::uint64_t row, std::uint64_t col) const
{
    return at(row, col);
}

void
DensityMatrix::reset()
{
    std::fill(data_.begin(), data_.end(), Amplitude(0.0, 0.0));
    data_[0] = Amplitude(1.0, 0.0);
}

void
DensityMatrix::apply1Q(int q, const Matrix2 &m)
{
    const std::uint64_t bit = 1ull << q;

    // Left multiply by U: mix row pairs, all columns.
    for (std::uint64_t r = 0; r < dim_; ++r) {
        if (r & bit)
            continue;
        for (std::uint64_t c = 0; c < dim_; ++c) {
            const Amplitude a0 = at(r, c);
            const Amplitude a1 = at(r | bit, c);
            at(r, c) = m.m00 * a0 + m.m01 * a1;
            at(r | bit, c) = m.m10 * a0 + m.m11 * a1;
        }
    }
    // Right multiply by U+: mix column pairs, all rows.
    const Amplitude d00 = std::conj(m.m00);
    const Amplitude d01 = std::conj(m.m01);
    const Amplitude d10 = std::conj(m.m10);
    const Amplitude d11 = std::conj(m.m11);
    for (std::uint64_t r = 0; r < dim_; ++r) {
        for (std::uint64_t c = 0; c < dim_; ++c) {
            if (c & bit)
                continue;
            const Amplitude a0 = at(r, c);
            const Amplitude a1 = at(r, c | bit);
            // (rho U+)(r, c0) = rho(r, c0) conj(U00) +
            //                   rho(r, c1) conj(U01)
            at(r, c) = a0 * d00 + a1 * d01;
            at(r, c | bit) = a0 * d10 + a1 * d11;
        }
    }
}

void
DensityMatrix::applyCX(int control, int target)
{
    const std::uint64_t cbit = 1ull << control;
    const std::uint64_t tbit = 1ull << target;
    auto permute = [&](std::uint64_t i) {
        return (i & cbit) ? (i ^ tbit) : i;
    };
    std::vector<Amplitude> out(data_.size());
    for (std::uint64_t r = 0; r < dim_; ++r)
        for (std::uint64_t c = 0; c < dim_; ++c)
            out[permute(r) * dim_ + permute(c)] = at(r, c);
    data_ = std::move(out);
}

void
DensityMatrix::applyCZ(int a, int b)
{
    const std::uint64_t abit = 1ull << a;
    const std::uint64_t bbit = 1ull << b;
    auto sign = [&](std::uint64_t i) {
        return ((i & abit) && (i & bbit)) ? -1.0 : 1.0;
    };
    for (std::uint64_t r = 0; r < dim_; ++r)
        for (std::uint64_t c = 0; c < dim_; ++c)
            at(r, c) *= sign(r) * sign(c);
}

void
DensityMatrix::applyRZZ(int a, int b, double theta)
{
    using namespace std::complex_literals;
    const std::uint64_t abit = 1ull << a;
    const std::uint64_t bbit = 1ull << b;
    auto phase = [&](std::uint64_t i) {
        const int parity =
            (static_cast<int>((i & abit) != 0) +
             static_cast<int>((i & bbit) != 0)) & 1;
        const double s = parity ? 1.0 : -1.0;
        return std::exp(1i * (s * theta / 2.0));
    };
    for (std::uint64_t r = 0; r < dim_; ++r)
        for (std::uint64_t c = 0; c < dim_; ++c)
            at(r, c) *= phase(r) * std::conj(phase(c));
}

void
DensityMatrix::applyOp(const GateOp &op,
                       const std::vector<double> &params)
{
    double theta = op.param;
    if (op.paramIndex >= 0) {
        if (static_cast<std::size_t>(op.paramIndex) >= params.size())
            panic("DensityMatrix::applyOp: parameter out of range");
        theta = params[op.paramIndex];
    }
    switch (op.kind) {
      case GateKind::RX:
        apply1Q(op.q0, gates::rx(theta));
        break;
      case GateKind::RY:
        apply1Q(op.q0, gates::ry(theta));
        break;
      case GateKind::RZ:
        apply1Q(op.q0, gates::rz(theta));
        break;
      case GateKind::CX:
        applyCX(op.q0, op.q1);
        break;
      case GateKind::CZ:
        applyCZ(op.q0, op.q1);
        break;
      case GateKind::RZZ:
        applyRZZ(op.q0, op.q1, theta);
        break;
      case GateKind::SWAP:
        applyCX(op.q0, op.q1);
        applyCX(op.q1, op.q0);
        applyCX(op.q0, op.q1);
        break;
      default:
        apply1Q(op.q0, gates::fixedMatrix(op.kind));
        break;
    }
}

void
DensityMatrix::conjugateByPauli(const PauliString &p)
{
    if (p.numQubits() != numQubits_)
        panic("DensityMatrix::conjugateByPauli: width mismatch");
    const std::uint64_t x = p.xMask();
    const std::uint64_t z = p.zMask();
    const int n_y = popcount(x & z);
    static const std::complex<double> i_pow[4] = {
        {1, 0}, {0, 1}, {-1, 0}, {0, -1}};
    const Amplitude base_phase = i_pow[n_y & 3];
    // P|k> = ph(k)|k ^ x> with ph(k) = i^{nY} (-1)^{par(k & z)};
    // (P rho P+)(i, j) = ph(i^x) conj(ph(j^x)) rho(i^x, j^x).
    // Parallel over all dim^2 elements (disjoint writes) — a
    // row-wise split could never reach the engagement threshold at
    // <= 12 qubits, but the element count does from 8 qubits up.
    std::vector<Amplitude> out(data_.size());
    Amplitude *dst = out.data();
    const std::uint64_t dim = dim_;
    parallelForItems(
        dim * dim,
        [&, dst, dim](std::uint64_t begin, std::uint64_t end) {
            std::uint64_t k = begin;
            while (k < end) {
                const std::uint64_t i = k / dim;
                const std::uint64_t row_end =
                    std::min(end, (i + 1) * dim);
                const Amplitude phi = base_phase *
                    static_cast<double>(paritySign((i ^ x) & z));
                for (; k < row_end; ++k) {
                    const std::uint64_t j = k - i * dim;
                    const Amplitude phj = base_phase *
                        static_cast<double>(
                            paritySign((j ^ x) & z));
                    dst[k] =
                        phi * std::conj(phj) * at(i ^ x, j ^ x);
                }
            }
        });
    data_ = std::move(out);
}

void
DensityMatrix::applyDepolarizing(int q, double p)
{
    if (p <= 0.0)
        return;
    DensityMatrix kicked_x(*this), kicked_y(*this), kicked_z(*this);
    PauliString px(numQubits_), py(numQubits_), pz(numQubits_);
    px.setOp(q, PauliOp::X);
    py.setOp(q, PauliOp::Y);
    pz.setOp(q, PauliOp::Z);
    kicked_x.conjugateByPauli(px);
    kicked_y.conjugateByPauli(py);
    kicked_z.conjugateByPauli(pz);
    const double keep = 1.0 - p;
    const double each = p / 3.0;
    Amplitude *self = data_.data();
    const Amplitude *kx = kicked_x.data_.data();
    const Amplitude *ky = kicked_y.data_.data();
    const Amplitude *kz = kicked_z.data_.data();
    parallelForItems(
        data_.size(), [=](std::uint64_t i0, std::uint64_t i1) {
            for (std::uint64_t i = i0; i < i1; ++i)
                self[i] = keep * self[i] +
                    each * (kx[i] + ky[i] + kz[i]);
        });
}

void
DensityMatrix::applyTwoQubitDepolarizing(int q0, int q1, double p)
{
    if (p <= 0.0)
        return;
    DensityMatrix acc(numQubits_);
    std::fill(acc.data_.begin(), acc.data_.end(),
              Amplitude(0.0, 0.0));
    static const PauliOp ops[4] = {PauliOp::I, PauliOp::X,
                                   PauliOp::Y, PauliOp::Z};
    for (int a = 0; a < 4; ++a)
        for (int b = 0; b < 4; ++b) {
            if (a == 0 && b == 0)
                continue;
            DensityMatrix kicked(*this);
            PauliString ps(numQubits_);
            ps.setOp(q0, ops[a]);
            ps.setOp(q1, ops[b]);
            kicked.conjugateByPauli(ps);
            for (std::size_t i = 0; i < data_.size(); ++i)
                acc.data_[i] += kicked.data_[i];
        }
    const double keep = 1.0 - p;
    const double each = p / 15.0;
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] = keep * data_[i] + each * acc.data_[i];
}

void
DensityMatrix::runNoisy(const Circuit &circuit,
                        const std::vector<double> &params,
                        double gate1_error, double gate2_error)
{
    if (circuit.numQubits() != numQubits_)
        panic("DensityMatrix::runNoisy: circuit width mismatch");
    for (const auto &op : circuit.ops()) {
        applyOp(op, params);
        const double err = isTwoQubitGate(op.kind) ? gate2_error
                                                   : gate1_error;
        if (err <= 0.0)
            continue;
        applyDepolarizing(op.q0, err);
        if (isTwoQubitGate(op.kind))
            applyDepolarizing(op.q1, err);
    }
}

void
DensityMatrix::run(const Circuit &circuit,
                   const std::vector<double> &params)
{
    runNoisy(circuit, params, 0.0, 0.0);
}

double
DensityMatrix::trace() const
{
    double t = 0.0;
    for (std::uint64_t i = 0; i < dim_; ++i)
        t += at(i, i).real();
    return t;
}

double
DensityMatrix::purity() const
{
    // Tr(rho^2) = sum_ij |rho_ij|^2 for Hermitian rho. Chunked
    // fixed-order reduction: bit-identical across kernel threads.
    const Amplitude *data = data_.data();
    return chunkedReduce<double>(
        data_.size(), [=](std::uint64_t i0, std::uint64_t i1) {
            double partial = 0.0;
            for (std::uint64_t i = i0; i < i1; ++i)
                partial += std::norm(data[i]);
            return partial;
        });
}

std::vector<double>
DensityMatrix::probabilities() const
{
    std::vector<double> probs(dim_);
    for (std::uint64_t i = 0; i < dim_; ++i)
        probs[i] = at(i, i).real();
    return probs;
}

std::vector<double>
DensityMatrix::marginalProbabilities(
    const std::vector<int> &measured) const
{
    std::vector<double> out(1ull << measured.size(), 0.0);
    for (std::uint64_t i = 0; i < dim_; ++i)
        out[gatherBits(i, measured)] += at(i, i).real();
    return out;
}

double
DensityMatrix::expectationPauli(const PauliString &p) const
{
    if (p.numQubits() != numQubits_)
        panic("DensityMatrix::expectationPauli: width mismatch");
    // Tr(P rho) = sum_i <i|P rho|i> = sum_i P(i, a) rho(a, i) with
    // a = i ^ x and P(i, a) = ph(a).
    const std::uint64_t x = p.xMask();
    const std::uint64_t z = p.zMask();
    const int n_y = popcount(x & z);
    static const std::complex<double> i_pow[4] = {
        {1, 0}, {0, 1}, {-1, 0}, {0, -1}};
    const Amplitude base_phase = i_pow[n_y & 3];

    Amplitude acc(0.0, 0.0);
    for (std::uint64_t i = 0; i < dim_; ++i) {
        const std::uint64_t a = i ^ x;
        const Amplitude ph =
            base_phase * static_cast<double>(paritySign(a & z));
        acc += ph * at(a, i);
    }
    return acc.real();
}

} // namespace varsaw
