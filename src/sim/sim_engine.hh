/**
 * @file
 * Prefix-shared simulation engine.
 *
 * VarSaw workloads are dominated by redundancy: every circuit of an
 * objective evaluation shares the same ansatz state-prep and differs
 * only in a measurement suffix (basis rotations + measured-qubit
 * set). The SimEngine exploits this below the executor layer: it
 * splits each circuit into a prep **prefix** and a measurement
 * **suffix**, content-hashes the prefix together with the bound
 * parameter values, and caches the prepared Statevector — so N
 * basis/subset circuits per evaluation cost ONE full simulation
 * plus N cheap suffix applications and marginals.
 *
 * The suffix path is zero-allocation on the steady state: each
 * worker thread owns a reusable scratch Statevector into which the
 * prepared amplitudes are copied (Statevector::copyFrom recycles
 * the capacity), so a 20-basis evaluation performs 20 memcpys, not
 * 20 fresh 16·2^n-byte allocations. The scratch is thread-local
 * and sized to the widest register the thread has evaluated, with
 * bounded retention: a scratch holding >= 4x the needed capacity
 * (and > 64 MiB of excess) is shrunk to the current width, so one
 * wide evaluation cannot pin gigabytes under later narrow
 * workloads. The suffixScratchAllocs/Reuses counters make the
 * reuse observable.
 *
 * Circuits arrive in two shapes:
 *  - an explicit (prep, suffix) pair — the shape the estimators
 *    submit via Batch::addPrefixed();
 *  - a plain full circuit, which splitPrepSuffix() divides at the
 *    trailing run of basis-rotation gates (H/S/Sdg). Both shapes of
 *    the same work hash to the same prep key and share cache
 *    entries.
 *
 * Determinism: a prepared state is a pure function of (prefix,
 * params) with no randomness, so caching can never change results —
 * only skip work. The cache guarantees exactly one preparation per
 * key per residency even under concurrent access (see StateCache),
 * so the engine counters are thread-count-independent too. With the
 * cache disabled the engine simply runs prefix + suffix on one
 * fresh Statevector, which applies the identical gate sequence and
 * is bit-identical to simulating the full circuit in one go.
 */

#ifndef VARSAW_SIM_SIM_ENGINE_HH
#define VARSAW_SIM_SIM_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "sim/circuit.hh"
#include "sim/state_cache.hh"

namespace varsaw {

/** Where a plain circuit divides into prep prefix and suffix. */
struct PrefixSplit
{
    /** Ops [0, prefixOps) prepare the state; the rest measure it. */
    std::size_t prefixOps = 0;
};

/**
 * Split a full circuit at the trailing run of basis-change gates
 * (H, S, Sdg). The same ansatz therefore yields the same prefix
 * under every measurement basis, which is what lets the prepared
 * state be shared across them.
 */
PrefixSplit splitPrepSuffix(const Circuit &circuit);

/**
 * Prep-state identity of a circuit: the structural hash of its prep
 * prefix (the attached prep circuit's ops, or the leading
 * splitPrepSuffix() slice of a plain circuit) combined with the
 * quantized parameter hash. @p prep may be null.
 */
PrepKey prepKeyOf(const Circuit *prep, const Circuit &circuit,
                  const std::vector<double> &params);

/** Work counters of the engine (all monotonic). */
struct SimEngineStats
{
    /** Full state-prep simulations actually run. */
    std::uint64_t prepSimulations = 0;

    /** Suffix applications over a (cached or fresh) prepared state. */
    std::uint64_t suffixApplications = 0;

    /** Whole-circuit simulations on the cache-disabled path. */
    std::uint64_t fullSimulations = 0;

    /**
     * Suffix evaluations whose prepared-state copy landed in a
     * worker's existing scratch capacity — no allocation performed.
     * On the steady state this counts every suffix with gates:
     * allocations happen at most once per (worker thread, register
     * growth), never per basis.
     */
    std::uint64_t suffixScratchReuses = 0;

    /**
     * Suffix evaluations that had to (re)allocate the per-thread
     * scratch: the thread's first suffix, or a wider register than
     * any it has seen. Bounded by threads x distinct widths, not by
     * the basis count.
     */
    std::uint64_t suffixScratchAllocs = 0;

    /** Prep-cache lookup statistics. */
    StateCacheStats cache;
};

/**
 * Default prepared-state cache byte budget: the value of the
 * VARSAW_STATE_CACHE_BYTES environment variable when set to a
 * positive integer (read once; CI uses a tiny value to smoke-test
 * constant eviction), otherwise StateCache::kDefaultByteBudget
 * (2 GiB).
 */
std::uint64_t defaultCacheByteBudget();

/**
 * Override the default prepared-state cache byte budget for
 * engines constructed after this call (takes precedence over the
 * environment variable). 0 restores the environment/compiled
 * default. This is what the drivers' --cache-bytes flag plumbs
 * into; engines whose config sets cacheByteBudget explicitly are
 * unaffected.
 */
void setDefaultCacheByteBudget(std::uint64_t bytes);

/**
 * Apply the standard per-run command-line flags shared by every
 * bench and example driver:
 *
 *   --cache-bytes=N      prepared-state cache byte budget
 *                        (setDefaultCacheByteBudget)
 *   --kernel-threads=N   intra-kernel threads (setKernelThreads,
 *                        clamped to [1, kMaxKernelThreads])
 *   --simd=TIER          statevector kernel tier: scalar, avx2,
 *                        avx512, or auto (kern::setSimdTier;
 *                        clamped to the host's ceiling — results
 *                        are bit-identical at every tier)
 *   --service-threads=N  worker count of shared ExecutionServices
 *                        constructed with threads = 0
 *                        (setDefaultServiceThreads)
 *   --metrics-out=PATH   enable metrics; write a JSON snapshot of
 *                        the telemetry registry to PATH at exit
 *                        (telemetry::setMetricsOutPath)
 *   --trace-out=PATH     enable span tracing; write Chrome
 *                        trace_event JSON to PATH at exit
 *                        (telemetry::setTraceOutPath)
 *   --profile            enable phase-attribution profiling
 *                        (telemetry::setProfilerEnabled; the one
 *                        value-free flag — --profile=0 undoes an
 *                        env-armed VARSAW_PROFILE)
 *   --introspect=PATH    serve live telemetry on a unix socket at
 *                        PATH (telemetry::setIntrospectPath; the
 *                        next ExecutionService constructed attaches
 *                        the endpoint — see varsaw-top)
 *
 * All accept `--flag V` as well as `--flag=V`. The VARSAW_TELEMETRY
 * / VARSAW_METRICS_OUT / VARSAW_TRACE_OUT / VARSAW_TRACE_EVENTS /
 * VARSAW_TELEMETRY_FLUSH_MS / VARSAW_PROFILE / VARSAW_INTROSPECT
 * environment knobs are applied first
 * (telemetry::installTelemetryEnvKnobs). Consumed flags
 * (and their value arguments) are REMOVED from argv and @p argc is
 * updated, so positional argument parsing in the drivers is
 * undisturbed. Unrecognized arguments are kept in place (drivers
 * may define their own). Returns false after printing a diagnostic
 * when a recognized flag has a malformed or missing value.
 */
bool applyRuntimeFlags(int &argc, char **argv);

/** Tunables of the engine. */
struct SimEngineConfig
{
    /** Share prepared states across suffixes (on by default). */
    bool cacheEnabled = true;

    /**
     * Secondary entry cap of the prepared-state cache. The primary
     * bound is cacheByteBudget; this cap only matters for workloads
     * with many narrow states, where per-entry bookkeeping (not
     * amplitude bytes) would dominate.
     */
    std::size_t cacheMaxEntries = 32;

    /**
     * Prepared-state cache byte budget. Each entry is a dense
     * 2^n-amplitude vector charged StateCache::entryBytes(n) bytes
     * (16 B per amplitude: 1 MiB at 16 qubits, 1 GiB at
     * kMaxQubits). Exceeding the budget evicts least-recently-used
     * completed states one at a time; superseded parameter points
     * therefore age out instead of accumulating until OOM. Results
     * never depend on the budget; the engine counters stay exact
     * across thread counts as long as the per-evaluation working
     * set fits.
     */
    std::uint64_t cacheByteBudget = defaultCacheByteBudget();

    /**
     * Intra-kernel threads to apply at engine construction via
     * setKernelThreads(). The kernel pool is process-wide (see
     * util/parallel.hh), so this is a convenience knob, not
     * per-engine state: 0 (the default) leaves the current
     * process-wide setting untouched. Results never depend on it.
     */
    int kernelThreads = 0;
};

/**
 * The prefix-sharing simulation engine. Thread-safe: executors call
 * measuredMarginal() concurrently from every runtime worker.
 */
class SimEngine
{
  public:
    explicit SimEngine(SimEngineConfig config = {});

    /**
     * Exact marginal distribution over @p circuit's measured qubits
     * after preparing with @p prep (may be null for a plain
     * circuit) and applying the suffix, at parameter values
     * @p params. Entry y sums |amp|^2 over basis states whose bits
     * at the measured positions spell y.
     */
    std::vector<double>
    measuredMarginal(const Circuit *prep, const Circuit &circuit,
                     const std::vector<double> &params);

    /** Toggle prepared-state sharing (results are unaffected). */
    void setCacheEnabled(bool enabled)
    {
        cacheEnabled_.store(enabled, std::memory_order_relaxed);
    }

    /** Whether prepared states are shared. */
    bool cacheEnabled() const
    {
        return cacheEnabled_.load(std::memory_order_relaxed);
    }

    /** Snapshot of the work counters. */
    SimEngineStats stats() const;

    /** Zero the counters and statistics (entries are kept). */
    void resetStats();

    /** Drop all completed cached states (in-flight claims survive). */
    void clearCache() { cache_.clear(); }

    /** The prepared-state cache. */
    const StateCache &cache() const { return cache_; }

  private:
    std::atomic<bool> cacheEnabled_;
    StateCache cache_;
    std::atomic<std::uint64_t> prepSimulations_{0};
    std::atomic<std::uint64_t> suffixApplications_{0};
    std::atomic<std::uint64_t> fullSimulations_{0};
    std::atomic<std::uint64_t> suffixScratchReuses_{0};
    std::atomic<std::uint64_t> suffixScratchAllocs_{0};
};

} // namespace varsaw

#endif // VARSAW_SIM_SIM_ENGINE_HH
