/**
 * @file
 * Gate vocabulary of the circuit simulator.
 *
 * The set covers everything the VQA stack needs: the hardware-
 * efficient SU2 ansatz (RY/RZ + CX), basis-change gates for Pauli
 * measurements (H, S, Sdg), and the standard Paulis for noise
 * injection and test circuits.
 */

#ifndef VARSAW_SIM_GATE_HH
#define VARSAW_SIM_GATE_HH

#include <complex>

namespace varsaw {

/** Supported gate kinds. */
enum class GateKind
{
    H,    //!< Hadamard
    X,    //!< Pauli X
    Y,    //!< Pauli Y
    Z,    //!< Pauli Z
    S,    //!< sqrt(Z)
    Sdg,  //!< S-dagger
    T,    //!< fourth root of Z
    RX,   //!< X rotation by angle theta
    RY,   //!< Y rotation by angle theta
    RZ,   //!< Z rotation by angle theta
    CX,   //!< controlled-X (entangler of the SU2 ansatz)
    CZ,   //!< controlled-Z
    RZZ,  //!< exp(-i theta/2 Z(x)Z) (QAOA cost-layer entangler)
    SWAP, //!< qubit swap
};

/** Whether a gate kind acts on two qubits. */
inline bool
isTwoQubitGate(GateKind kind)
{
    return kind == GateKind::CX || kind == GateKind::CZ ||
        kind == GateKind::RZZ || kind == GateKind::SWAP;
}

/** Whether a gate kind takes a rotation angle. */
inline bool
isParameterizedGate(GateKind kind)
{
    return kind == GateKind::RX || kind == GateKind::RY ||
        kind == GateKind::RZ || kind == GateKind::RZZ;
}

/**
 * Whether a gate kind may sit in a measurement suffix / prep tail.
 * THE single definition shared by splitPrepSuffix (which divides
 * circuits at the trailing run of these gates) and the
 * Statevector's Matrix2 fusion exemptions (which must refuse to
 * fuse across any boundary that split could introduce) — the
 * determinism contract between a (prep, suffix) job and its
 * flattened twin depends on the two call sites agreeing.
 */
inline bool
isBasisChangeGate(GateKind kind)
{
    return kind == GateKind::H || kind == GateKind::S ||
        kind == GateKind::Sdg;
}

/** Printable mnemonic. */
inline const char *
gateName(GateKind kind)
{
    switch (kind) {
      case GateKind::H:    return "h";
      case GateKind::X:    return "x";
      case GateKind::Y:    return "y";
      case GateKind::Z:    return "z";
      case GateKind::S:    return "s";
      case GateKind::Sdg:  return "sdg";
      case GateKind::T:    return "t";
      case GateKind::RX:   return "rx";
      case GateKind::RY:   return "ry";
      case GateKind::RZ:   return "rz";
      case GateKind::CX:   return "cx";
      case GateKind::CZ:   return "cz";
      case GateKind::RZZ:  return "rzz";
      case GateKind::SWAP: return "swap";
    }
    return "?";
}

/**
 * One gate application in a circuit.
 *
 * Rotation angles can be bound immediately (@ref param) or refer to
 * an entry of the parameter vector supplied at simulation time
 * (@ref paramIndex >= 0), which is how the variational ansatz is
 * re-evaluated each iteration without rebuilding the circuit.
 */
struct GateOp
{
    GateKind kind = GateKind::H;
    int q0 = 0;          //!< target (or control for CX)
    int q1 = -1;         //!< second qubit for 2q gates, else -1
    double param = 0.0;  //!< bound rotation angle
    int paramIndex = -1; //!< >= 0: angle comes from parameter vector
};

/** 2x2 complex matrix in row-major order. */
struct Matrix2
{
    std::complex<double> m00, m01, m10, m11;
};

/**
 * Matrix product a * b: applying the result is applying b then a.
 * Used to fuse runs of single-qubit gates on one qubit into a
 * single kernel pass.
 */
inline Matrix2
matmul(const Matrix2 &a, const Matrix2 &b)
{
    return {a.m00 * b.m00 + a.m01 * b.m10,
            a.m00 * b.m01 + a.m01 * b.m11,
            a.m10 * b.m00 + a.m11 * b.m10,
            a.m10 * b.m01 + a.m11 * b.m11};
}

} // namespace varsaw

#endif // VARSAW_SIM_GATE_HH
