/**
 * @file
 * Dense state-vector simulation engine.
 *
 * Qubit q corresponds to bit q of the amplitude index (qubit 0 is
 * the least significant bit). This is the exact-simulation substrate
 * underneath every noisy execution: circuits are evolved exactly,
 * then noise channels and finite-shot sampling are applied to the
 * resulting distribution (see noise/ and mitigation/).
 */

#ifndef VARSAW_SIM_STATEVECTOR_HH
#define VARSAW_SIM_STATEVECTOR_HH

#include <complex>
#include <cstdint>
#include <utility>
#include <vector>

#include "pauli/pauli_string.hh"
#include "sim/circuit.hh"
#include "sim/gate.hh"
#include "sim/kernels/kernels.hh"
#include "util/aligned.hh"

namespace varsaw {

/** Dense complex state vector over up to kMaxQubits qubits. */
class Statevector
{
  public:
    using Amplitude = std::complex<double>;

    /**
     * Amplitude storage: 64-byte aligned for its whole life (see
     * util/aligned.hh) so the SIMD kernels' full-width loads never
     * straddle a cache line. Part of the storage contract — every
     * buffer a kernel touches (amps_, the applyPauli ping-pong
     * scratch, the engine's suffix scratch) is an AmpVector.
     */
    using AmpVector = AlignedVector<Amplitude>;

    /**
     * Widest simulable register: 2^26 amplitudes = 1 GiB of
     * complex<double>. Wider registers must go through sparse or
     * tensor-network methods this library does not provide.
     */
    static constexpr int kMaxQubits = 26;

    /** Initialize to |0...0> over @p num_qubits qubits. */
    explicit Statevector(int num_qubits);

    /**
     * Copies transfer the quantum state only; the ping-pong scratch
     * buffer backing applyPauli() is an allocation cache and stays
     * with its owner (and is left untouched in the assigned-to
     * object, so its capacity is reused).
     */
    Statevector(const Statevector &other)
        : numQubits_(other.numQubits_), amps_(other.amps_)
    {
    }

    Statevector &operator=(const Statevector &other)
    {
        numQubits_ = other.numQubits_;
        amps_ = other.amps_;
        return *this;
    }

    Statevector(Statevector &&) = default;
    Statevector &operator=(Statevector &&) = default;

    /** Number of qubits. */
    int numQubits() const { return numQubits_; }

    /** Amplitude vector (length 2^numQubits). */
    const AmpVector &amplitudes() const { return amps_; }

    /**
     * Allocated amplitude capacity (>= amplitudes().size()).
     * Exposed so scratch owners (the SimEngine's per-thread suffix
     * scratch) can bound how much recycled capacity they retain.
     */
    std::size_t amplitudeCapacity() const { return amps_.capacity(); }

    /** Reset to |0...0>. */
    void reset();

    /**
     * Become a copy of @p other's quantum state, recycling this
     * vector's existing allocation when its capacity suffices (the
     * zero-allocation suffix path of the SimEngine relies on this).
     * The scratch buffer is untouched, exactly like copy assignment.
     *
     * @return true when the amplitudes were copied into the
     *         existing allocation; false when a reallocation was
     *         needed (first use, or a wider register than any seen
     *         before by this object).
     */
    bool copyFrom(const Statevector &other);

    /** Apply an arbitrary one-qubit unitary to qubit @p q. */
    void apply1Q(int q, const Matrix2 &m);

    /** Apply a controlled-X with the given control and target. */
    void applyCX(int control, int target);

    /** Apply a controlled-Z (symmetric in its qubits). */
    void applyCZ(int a, int b);

    /** Apply exp(-i theta/2 Z_a Z_b). */
    void applyRZZ(int a, int b, double theta);

    /** Apply a SWAP. */
    void applySwap(int a, int b);

    /**
     * Apply one gate op, resolving parameter references against
     * @p params (may be empty if the op is fully bound).
     */
    void applyOp(const GateOp &op, const std::vector<double> &params);

    /**
     * Apply a contiguous gate sequence, with two fusions:
     *
     *  - Runs of >= 2 consecutive single-qubit gates on the *same*
     *    qubit that contain at least one non-diagonal gate AND at
     *    least one non-basis-change gate are multiplied into one
     *    Matrix2 and applied in a single kernel pass (deep RY/RZ
     *    ansatz layers do one pass per qubit instead of one per
     *    gate). Runs of only H/S/Sdg stay unfused: the engine's
     *    prep/suffix span boundary may split such runs, and the
     *    flattened twin of a (prep, suffix) job must stay
     *    bit-identical wherever the boundary lands.
     *  - Remaining consecutive runs of diagonal gates (RZ/CZ/RZZ
     *    and the fixed diagonals Z/S/Sdg/T) are fused into a single
     *    read-multiply-write pass in which each amplitude is
     *    multiplied by every phase of the run in gate order — the
     *    identical per-amplitude arithmetic of the unfused kernels,
     *    so diagonal fusion changes memory traffic, not results.
     *
     * Fusion decisions are a pure function of the op sequence, so
     * results never depend on caching, batch threads, or kernel
     * threads.
     */
    void applyOps(const GateOp *ops, std::size_t count,
                  const std::vector<double> &params);

    /**
     * Run all gates of @p circuit with the given parameter vector.
     * The circuit's measurement spec is not applied here; callers
     * extract probabilities explicitly.
     */
    void run(const Circuit &circuit, const std::vector<double> &params);

    /** Squared norm (should be 1 up to rounding). */
    double norm() const;

    /** Probability of each full basis state (length 2^n). */
    std::vector<double> probabilities() const;

    /**
     * Marginal probabilities over @p measured qubit positions:
     * entry y sums |amp(x)|^2 over all x whose bits at the measured
     * positions spell y (bit i of y = qubit measured[i]).
     */
    std::vector<double>
    marginalProbabilities(const std::vector<int> &measured) const;

    /**
     * Exact expectation value <psi|P|psi> of a Pauli string
     * (real by Hermiticity).
     */
    double expectationPauli(const PauliString &p) const;

    /** Inner product <this|other|. */
    Amplitude innerProduct(const Statevector &other) const;

    /** Apply a Pauli string in place: |psi> -> P|psi>. */
    void applyPauli(const PauliString &p);

  private:
    /** Fused single-pass application of >= 2 diagonal gates. */
    void applyDiagonalRun(const GateOp *ops, std::size_t count,
                          const std::vector<double> &params);

    /**
     * One full-sweep pass of the dispatched diagonal-table kernel:
     * every amplitude multiplied by each gate's selected factor in
     * gate order. The single funnel under applyParityPhase,
     * applyDiagonal1Q, and applyDiagonalRun — one arithmetic
     * everywhere, so fusion changes memory traffic, not results.
     */
    void applyDiagonalTables(const kern::DiagTableGate *gates,
                             std::size_t count);

    /**
     * Two-qubit parity phase: amps[i] *= (parity of bits a, b of i)
     * ? f1 : f0, via a 4-entry factor table indexed by the two bits
     * (no per-amplitude popcount or branch). The kernel underneath
     * both the standalone applyRZZ and the fused diagonal path.
     */
    void applyParityPhase(int a, int b, const Amplitude &f0,
                          const Amplitude &f1);

    /**
     * Diagonal one-qubit phase: amplitudes with bit q clear get
     * *= f0, set get *= f1, in two contiguous half-block sweeps.
     */
    void applyDiagonal1Q(int q, const Amplitude &f0,
                         const Amplitude &f1);

    int numQubits_;
    AmpVector amps_;
    /**
     * Ping-pong buffer for applyPauli's bit-permuting case:
     * allocated on first use, then swapped with amps_ each call so
     * neither vector is ever reallocated. Not part of the state —
     * copies do not transfer it. Same aligned storage as amps_, so
     * the swap preserves the alignment contract.
     */
    AmpVector scratch_;
};

/** Rotation/Clifford gate matrices. */
namespace gates {

/** Matrix for a non-parameterized one-qubit gate kind. */
Matrix2 fixedMatrix(GateKind kind);

/** RX(theta). */
Matrix2 rx(double theta);

/** RY(theta). */
Matrix2 ry(double theta);

/** RZ(theta). */
Matrix2 rz(double theta);

/**
 * The two phase factors of RZZ(theta) = exp(-i theta/2 Z(x)Z):
 * {even-parity factor, odd-parity factor}. The single source of the
 * exp() evaluations shared by applyRZZ and the fused diagonal path.
 */
std::pair<std::complex<double>, std::complex<double>>
rzzFactors(double theta);

} // namespace gates

} // namespace varsaw

#endif // VARSAW_SIM_STATEVECTOR_HH
