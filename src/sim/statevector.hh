/**
 * @file
 * Dense state-vector simulation engine.
 *
 * Qubit q corresponds to bit q of the amplitude index (qubit 0 is
 * the least significant bit). This is the exact-simulation substrate
 * underneath every noisy execution: circuits are evolved exactly,
 * then noise channels and finite-shot sampling are applied to the
 * resulting distribution (see noise/ and mitigation/).
 */

#ifndef VARSAW_SIM_STATEVECTOR_HH
#define VARSAW_SIM_STATEVECTOR_HH

#include <complex>
#include <cstdint>
#include <vector>

#include "pauli/pauli_string.hh"
#include "sim/circuit.hh"
#include "sim/gate.hh"

namespace varsaw {

/** Dense complex state vector over up to kMaxQubits qubits. */
class Statevector
{
  public:
    using Amplitude = std::complex<double>;

    /**
     * Widest simulable register: 2^26 amplitudes = 1 GiB of
     * complex<double>. Wider registers must go through sparse or
     * tensor-network methods this library does not provide.
     */
    static constexpr int kMaxQubits = 26;

    /** Initialize to |0...0> over @p num_qubits qubits. */
    explicit Statevector(int num_qubits);

    /**
     * Copies transfer the quantum state only; the ping-pong scratch
     * buffer backing applyPauli() is an allocation cache and stays
     * with its owner (and is left untouched in the assigned-to
     * object, so its capacity is reused).
     */
    Statevector(const Statevector &other)
        : numQubits_(other.numQubits_), amps_(other.amps_)
    {
    }

    Statevector &operator=(const Statevector &other)
    {
        numQubits_ = other.numQubits_;
        amps_ = other.amps_;
        return *this;
    }

    Statevector(Statevector &&) = default;
    Statevector &operator=(Statevector &&) = default;

    /** Number of qubits. */
    int numQubits() const { return numQubits_; }

    /** Amplitude vector (length 2^numQubits). */
    const std::vector<Amplitude> &amplitudes() const { return amps_; }

    /** Reset to |0...0>. */
    void reset();

    /** Apply an arbitrary one-qubit unitary to qubit @p q. */
    void apply1Q(int q, const Matrix2 &m);

    /** Apply a controlled-X with the given control and target. */
    void applyCX(int control, int target);

    /** Apply a controlled-Z (symmetric in its qubits). */
    void applyCZ(int a, int b);

    /** Apply exp(-i theta/2 Z_a Z_b). */
    void applyRZZ(int a, int b, double theta);

    /** Apply a SWAP. */
    void applySwap(int a, int b);

    /**
     * Apply one gate op, resolving parameter references against
     * @p params (may be empty if the op is fully bound).
     */
    void applyOp(const GateOp &op, const std::vector<double> &params);

    /**
     * Apply a contiguous gate sequence. Consecutive runs of
     * diagonal gates (RZ/CZ/RZZ and the fixed diagonals Z/S/Sdg/T)
     * are fused into a single pass over the amplitudes: each
     * amplitude is read once, multiplied by every phase of the run
     * in gate order, and written once. The per-amplitude arithmetic
     * sequence is identical to applying the gates one by one, so
     * fusion changes memory traffic, not results.
     */
    void applyOps(const GateOp *ops, std::size_t count,
                  const std::vector<double> &params);

    /**
     * Run all gates of @p circuit with the given parameter vector.
     * The circuit's measurement spec is not applied here; callers
     * extract probabilities explicitly.
     */
    void run(const Circuit &circuit, const std::vector<double> &params);

    /** Squared norm (should be 1 up to rounding). */
    double norm() const;

    /** Probability of each full basis state (length 2^n). */
    std::vector<double> probabilities() const;

    /**
     * Marginal probabilities over @p measured qubit positions:
     * entry y sums |amp(x)|^2 over all x whose bits at the measured
     * positions spell y (bit i of y = qubit measured[i]).
     */
    std::vector<double>
    marginalProbabilities(const std::vector<int> &measured) const;

    /**
     * Exact expectation value <psi|P|psi> of a Pauli string
     * (real by Hermiticity).
     */
    double expectationPauli(const PauliString &p) const;

    /** Inner product <this|other|. */
    Amplitude innerProduct(const Statevector &other) const;

    /** Apply a Pauli string in place: |psi> -> P|psi>. */
    void applyPauli(const PauliString &p);

  private:
    /** Fused single-pass application of >= 2 diagonal gates. */
    void applyDiagonalRun(const GateOp *ops, std::size_t count,
                          const std::vector<double> &params);

    int numQubits_;
    std::vector<Amplitude> amps_;
    /**
     * Ping-pong buffer for applyPauli's bit-permuting case:
     * allocated on first use, then swapped with amps_ each call so
     * neither vector is ever reallocated. Not part of the state —
     * copies do not transfer it.
     */
    std::vector<Amplitude> scratch_;
};

/** Rotation/Clifford gate matrices. */
namespace gates {

/** Matrix for a non-parameterized one-qubit gate kind. */
Matrix2 fixedMatrix(GateKind kind);

/** RX(theta). */
Matrix2 rx(double theta);

/** RY(theta). */
Matrix2 ry(double theta);

/** RZ(theta). */
Matrix2 rz(double theta);

} // namespace gates

} // namespace varsaw

#endif // VARSAW_SIM_STATEVECTOR_HH
