#include "sim/sim_engine.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

// The prep-identity hashes deliberately reuse the shared content
// hashing (structural circuit hash + quantized parameter hash) so
// that the engine's prep keys, the ResultCache's job keys, and the
// batch scheduler's grouping keys all agree on what "the same
// computation" means.
#include "fault/fault_injector.hh"
#include "sim/circuit_hash.hh"
#include "sim/kernels/kernels.hh"
#include "sim/statevector.hh"
#include "telemetry/exporters.hh"
#include "telemetry/introspect.hh"
#include "telemetry/metrics.hh"
#include "telemetry/profiler.hh"
#include "telemetry/trace.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace varsaw {

namespace {

/**
 * Process-wide mirror of SimEngineStats under `sim.engine.*`, plus
 * latency histograms for the three evaluation paths (the timing the
 * ad-hoc structs never had).
 */
struct EngineMetrics
{
    telemetry::Counter &prepSimulations;
    telemetry::Counter &suffixApplications;
    telemetry::Counter &fullSimulations;
    telemetry::Counter &scratchReuses;
    telemetry::Counter &scratchAllocs;
    telemetry::Histogram &prepLatencyNs;
    telemetry::Histogram &suffixLatencyNs;
    telemetry::Histogram &fullSimLatencyNs;

    static EngineMetrics &
    get()
    {
        auto &reg = telemetry::MetricsRegistry::instance();
        static EngineMetrics *m = new EngineMetrics{
            reg.counter("sim.engine.prep_simulations"),
            reg.counter("sim.engine.suffix_applications"),
            reg.counter("sim.engine.full_simulations"),
            reg.counter("sim.engine.suffix_scratch_reuses"),
            reg.counter("sim.engine.suffix_scratch_allocs"),
            reg.histogram("sim.engine.prep_latency_ns"),
            reg.histogram("sim.engine.suffix_latency_ns"),
            reg.histogram("sim.engine.full_sim_latency_ns"),
        };
        return *m;
    }
};

} // namespace

namespace {

/**
 * Per-thread reusable suffix scratch. Shared by every SimEngine on
 * the thread (it is capacity, not state — each use overwrites it
 * via copyFrom) and released at thread exit. Retention is bounded:
 * when the scratch holds at least 4x the capacity the current
 * register needs AND the excess tops kScratchSlackBytes, it is
 * dropped and reallocated at the needed size — so one wide (e.g.
 * 26-qubit, 1 GiB) evaluation cannot pin that memory for the rest
 * of a narrow-register process, while same-width and
 * mildly-mixed-width workloads keep the zero-allocation steady
 * state.
 */
thread_local std::unique_ptr<Statevector> t_suffixScratch;

/** Excess capacity tolerated before the scratch is shrunk. */
constexpr std::uint64_t kScratchSlackBytes = 64ull << 20;

/** Whether a scratch of @p capacity amps should shrink to @p need. */
bool
scratchShouldShrink(std::uint64_t capacity, std::uint64_t need)
{
    return capacity >= 4 * need &&
        (capacity - need) * sizeof(Statevector::Amplitude) >
        kScratchSlackBytes;
}

} // namespace

PrefixSplit
splitPrepSuffix(const Circuit &circuit)
{
    const auto &ops = circuit.ops();
    std::size_t k = ops.size();
    while (k > 0 && isBasisChangeGate(ops[k - 1].kind))
        --k;
    return {k};
}

PrepKey
prepKeyOf(const Circuit *prep, const Circuit &circuit,
          const std::vector<double> &params)
{
    // The prep circuit gets the same trailing-run split as a plain
    // circuit: if the ansatz itself ends with H/S/Sdg gates, those
    // belong to the suffix in BOTH shapes, so a (prep, suffix) job
    // and its flattened twin always hash to the same prep key.
    PrepKey key;
    if (prep)
        key.structure = circuitPrefixHash(
            *prep, splitPrepSuffix(*prep).prefixOps);
    else
        key.structure = circuitPrefixHash(
            circuit, splitPrepSuffix(circuit).prefixOps);
    key.params = parameterHash(params);
    return key;
}

namespace {

/** Programmatic override of the default cache budget (0 = none). */
std::atomic<std::uint64_t> g_cacheByteBudgetOverride{0};

} // namespace

void
setDefaultCacheByteBudget(std::uint64_t bytes)
{
    g_cacheByteBudgetOverride.store(bytes,
                                    std::memory_order_relaxed);
}

std::uint64_t
defaultCacheByteBudget()
{
    const std::uint64_t override_bytes =
        g_cacheByteBudgetOverride.load(std::memory_order_relaxed);
    if (override_bytes > 0)
        return override_bytes;
    static const std::uint64_t budget = [] {
        if (const char *env = std::getenv("VARSAW_STATE_CACHE_BYTES")) {
            // strtoull silently wraps negatives and clamps overflow
            // to ULLONG_MAX; both would turn a misconfiguration
            // into an unbounded cache, so reject them explicitly.
            char *end = nullptr;
            errno = 0;
            const unsigned long long parsed =
                std::strtoull(env, &end, 10);
            if (end != env && *end == '\0' && parsed > 0 &&
                errno != ERANGE && env[0] != '-')
                return static_cast<std::uint64_t>(parsed);
        }
        return StateCache::kDefaultByteBudget;
    }();
    return budget;
}

namespace {

/** Strict positive-integer parse (rejects sign, junk, overflow). */
bool
parsePositive(const char *text, std::uint64_t *out)
{
    if (!text || text[0] == '\0' || text[0] == '-')
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || parsed == 0 ||
        errno == ERANGE)
        return false;
    *out = static_cast<std::uint64_t>(parsed);
    return true;
}

} // namespace

bool
applyRuntimeFlags(int &argc, char **argv)
{
    // Referencing the telemetry env knobs here also guarantees the
    // exporter object (with its static-init env shim) is linked
    // into every driver that parses runtime flags.
    telemetry::installTelemetryEnvKnobs();
    bool ok = true;
    int keep = 1; // argv[0] always stays
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string name = arg;
        const char *value = nullptr;
        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = argv[i] + eq + 1;
        }
        const bool numericFlag = name == "--cache-bytes" ||
            name == "--kernel-threads" ||
            name == "--service-threads";
        const bool pathFlag = name == "--metrics-out" ||
            name == "--trace-out" || name == "--introspect";
        const bool simdFlag = name == "--simd";
        const bool faultsFlag = name == "--faults";
        const bool bareFlag = name == "--profile";
        if (bareFlag) {
            // Value-free switch: --profile (or --profile=0 to undo
            // an env-armed VARSAW_PROFILE).
            telemetry::setProfilerEnabled(
                !(value && value[0] == '0' && value[1] == '\0'));
            continue;
        }
        if (!numericFlag && !pathFlag && !simdFlag && !faultsFlag) {
            argv[keep++] = argv[i];
            continue;
        }
        // Recognized flag: consumed (dropped from argv) whether it
        // parses or not, so positional parsing never sees it.
        if (!value) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a %s value\n",
                             name.c_str(),
                             pathFlag        ? "file path"
                             : simdFlag      ? "scalar|avx2|avx512|auto"
                             : faultsFlag    ? "fault plan spec"
                                             : "positive integer");
                ok = false;
                continue;
            }
            value = argv[++i];
        }
        if (faultsFlag) {
            // Same spec language as VARSAW_FAULTS, applied on top
            // of the plan already installed (so the flag can refine
            // an env-armed plan).
            fault::FaultPlan plan =
                fault::FaultInjector::instance().plan();
            std::string error;
            if (!fault::parseFaultPlan(value, plan, error)) {
                std::fprintf(stderr, "--faults: %s\n",
                             error.c_str());
                ok = false;
                continue;
            }
            fault::FaultInjector::instance().configure(plan);
            continue;
        }
        if (simdFlag) {
            kern::SimdTier tier = kern::maxSupportedSimdTier();
            bool is_auto = false;
            if (!kern::parseSimdTier(value, &tier, &is_auto)) {
                std::fprintf(stderr,
                             "--simd: invalid value '%s' (want "
                             "scalar|avx2|avx512|auto)\n",
                             value);
                ok = false;
                continue;
            }
            // Forcing a tier is always safe: every tier is
            // bit-identical, and requests above the host/build
            // ceiling clamp inside setSimdTier.
            kern::setSimdTier(is_auto
                                  ? kern::maxSupportedSimdTier()
                                  : tier);
            continue;
        }
        if (pathFlag) {
            if (value[0] == '\0') {
                std::fprintf(stderr, "%s: empty path\n",
                             name.c_str());
                ok = false;
                continue;
            }
            if (name == "--metrics-out")
                telemetry::setMetricsOutPath(value);
            else if (name == "--trace-out")
                telemetry::setTraceOutPath(value);
            else
                telemetry::setIntrospectPath(value);
            continue;
        }
        std::uint64_t parsed = 0;
        if (!parsePositive(value, &parsed)) {
            std::fprintf(stderr,
                         "%s: invalid value '%s' (want a positive "
                         "integer)\n",
                         name.c_str(), value);
            ok = false;
            continue;
        }
        if (name == "--cache-bytes")
            setDefaultCacheByteBudget(parsed);
        else if (name == "--service-threads")
            setDefaultServiceThreads(static_cast<int>(
                std::min<std::uint64_t>(parsed, 1u << 10)));
        else
            setKernelThreads(static_cast<int>(
                std::min<std::uint64_t>(parsed, kMaxKernelThreads)));
    }
    argc = keep;
    argv[argc] = nullptr;
    return ok;
}

SimEngine::SimEngine(SimEngineConfig config)
    : cacheEnabled_(config.cacheEnabled),
      cache_(config.cacheByteBudget, config.cacheMaxEntries)
{
    if (config.kernelThreads > 0)
        setKernelThreads(config.kernelThreads);
}

std::vector<double>
SimEngine::measuredMarginal(const Circuit *prep,
                            const Circuit &circuit,
                            const std::vector<double> &params)
{
    if (prep && prep->numQubits() != circuit.numQubits())
        panic("SimEngine: prep/suffix width mismatch");
    const int n = circuit.numQubits();

    // Resolve the op spans for both job shapes. The prep circuit
    // gets the same trailing-run split as a plain circuit (see
    // prepKeyOf), so its trailing H/S/Sdg gates — if any — become a
    // middle "tail" span applied after the cached prefix; for
    // typical rotation-terminated ansatze the tail is empty.
    const auto &circuitOps = circuit.ops();
    const GateOp *prefixOps;
    std::size_t prefixCount;
    const GateOp *tailOps = nullptr;
    std::size_t tailCount = 0;
    const GateOp *suffixOps;
    std::size_t suffixCount;
    if (prep) {
        const PrefixSplit split = splitPrepSuffix(*prep);
        prefixOps = prep->ops().data();
        prefixCount = split.prefixOps;
        tailOps = prep->ops().data() + split.prefixOps;
        tailCount = prep->ops().size() - split.prefixOps;
        suffixOps = circuitOps.data();
        suffixCount = circuitOps.size();
    } else {
        const PrefixSplit split = splitPrepSuffix(circuit);
        prefixOps = circuitOps.data();
        prefixCount = split.prefixOps;
        suffixOps = circuitOps.data() + split.prefixOps;
        suffixCount = circuitOps.size() - split.prefixOps;
    }

    if (!cacheEnabled()) {
        // Uncached: the identical gate sequence on one fresh state.
        telemetry::ScopedSpan span("full-sim", 0);
        Statevector sv(n);
        sv.applyOps(prefixOps, prefixCount, params);
        sv.applyOps(tailOps, tailCount, params);
        sv.applyOps(suffixOps, suffixCount, params);
        fullSimulations_.fetch_add(1, std::memory_order_relaxed);
        if (telemetry::metricsEnabled()) {
            auto &m = EngineMetrics::get();
            m.fullSimulations.add();
            if (span.armed())
                m.fullSimLatencyNs.record(span.elapsedNs());
        }
        return sv.marginalProbabilities(circuit.measuredQubits());
    }

    const PrepKey key = prepKeyOf(prep, circuit, params);
    StateCache::StatePtr prepared = cache_.getOrPrepare(key, [&] {
        telemetry::ScopedSpan span("prep", 0);
        telemetry::ScopedPhase phase(telemetry::Phase::Prep);
        auto state = std::make_shared<Statevector>(n);
        state->applyOps(prefixOps, prefixCount, params);
        prepSimulations_.fetch_add(1, std::memory_order_relaxed);
        if (telemetry::metricsEnabled()) {
            auto &m = EngineMetrics::get();
            m.prepSimulations.add();
            if (span.armed())
                m.prepLatencyNs.record(span.elapsedNs());
        }
        return StateCache::StatePtr(std::move(state));
    });

    suffixApplications_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::metricsEnabled())
        EngineMetrics::get().suffixApplications.add();
    telemetry::ScopedSpan suffixSpan("suffix-eval", 0);
    telemetry::ScopedPhase suffixPhase(telemetry::Phase::Suffix);

    // All-Z bases have no suffix gates at all: answer straight from
    // the shared immutable state, skipping the dense copy.
    if (tailCount == 0 && suffixCount == 0)
        return prepared->marginalProbabilities(
            circuit.measuredQubits());

    // Each suffix works on a copy of the prepared amplitudes (the
    // shared state itself is immutable) — but the copy lands in
    // this thread's reusable scratch, so the per-basis cost is one
    // memcpy, not a fresh 16·2^n-byte allocation.
    Statevector *sv = t_suffixScratch.get();
    if (sv && scratchShouldShrink(sv->amplitudeCapacity(),
                                  1ull << n)) {
        t_suffixScratch.reset();
        sv = nullptr;
    }
    if (!sv) {
        t_suffixScratch = std::make_unique<Statevector>(*prepared);
        sv = t_suffixScratch.get();
        suffixScratchAllocs_.fetch_add(1,
                                       std::memory_order_relaxed);
        if (telemetry::metricsEnabled())
            EngineMetrics::get().scratchAllocs.add();
    } else if (sv->copyFrom(*prepared)) {
        suffixScratchReuses_.fetch_add(1,
                                       std::memory_order_relaxed);
        if (telemetry::metricsEnabled())
            EngineMetrics::get().scratchReuses.add();
    } else {
        suffixScratchAllocs_.fetch_add(1,
                                       std::memory_order_relaxed);
        if (telemetry::metricsEnabled())
            EngineMetrics::get().scratchAllocs.add();
    }
    sv->applyOps(tailOps, tailCount, params);
    sv->applyOps(suffixOps, suffixCount, params);
    if (telemetry::metricsEnabled() && suffixSpan.armed())
        EngineMetrics::get().suffixLatencyNs.record(
            suffixSpan.elapsedNs());
    return sv->marginalProbabilities(circuit.measuredQubits());
}

SimEngineStats
SimEngine::stats() const
{
    SimEngineStats out;
    out.prepSimulations =
        prepSimulations_.load(std::memory_order_relaxed);
    out.suffixApplications =
        suffixApplications_.load(std::memory_order_relaxed);
    out.fullSimulations =
        fullSimulations_.load(std::memory_order_relaxed);
    out.suffixScratchReuses =
        suffixScratchReuses_.load(std::memory_order_relaxed);
    out.suffixScratchAllocs =
        suffixScratchAllocs_.load(std::memory_order_relaxed);
    out.cache = cache_.stats();
    return out;
}

void
SimEngine::resetStats()
{
    prepSimulations_.store(0, std::memory_order_relaxed);
    suffixApplications_.store(0, std::memory_order_relaxed);
    fullSimulations_.store(0, std::memory_order_relaxed);
    suffixScratchReuses_.store(0, std::memory_order_relaxed);
    suffixScratchAllocs_.store(0, std::memory_order_relaxed);
    cache_.resetStats();
}

} // namespace varsaw
