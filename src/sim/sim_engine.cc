#include "sim/sim_engine.hh"

#include <cerrno>
#include <cstdlib>
#include <memory>

// The prep-identity hashes deliberately reuse the shared content
// hashing (structural circuit hash + quantized parameter hash) so
// that the engine's prep keys, the ResultCache's job keys, and the
// batch scheduler's grouping keys all agree on what "the same
// computation" means.
#include "sim/circuit_hash.hh"
#include "sim/statevector.hh"
#include "util/logging.hh"

namespace varsaw {

namespace {

/** Whether a gate kind may sit in the measurement suffix. */
bool
isBasisChangeGate(GateKind kind)
{
    return kind == GateKind::H || kind == GateKind::S ||
        kind == GateKind::Sdg;
}

} // namespace

PrefixSplit
splitPrepSuffix(const Circuit &circuit)
{
    const auto &ops = circuit.ops();
    std::size_t k = ops.size();
    while (k > 0 && isBasisChangeGate(ops[k - 1].kind))
        --k;
    return {k};
}

PrepKey
prepKeyOf(const Circuit *prep, const Circuit &circuit,
          const std::vector<double> &params)
{
    // The prep circuit gets the same trailing-run split as a plain
    // circuit: if the ansatz itself ends with H/S/Sdg gates, those
    // belong to the suffix in BOTH shapes, so a (prep, suffix) job
    // and its flattened twin always hash to the same prep key.
    PrepKey key;
    if (prep)
        key.structure = circuitPrefixHash(
            *prep, splitPrepSuffix(*prep).prefixOps);
    else
        key.structure = circuitPrefixHash(
            circuit, splitPrepSuffix(circuit).prefixOps);
    key.params = parameterHash(params);
    return key;
}

std::uint64_t
defaultCacheByteBudget()
{
    static const std::uint64_t budget = [] {
        if (const char *env = std::getenv("VARSAW_STATE_CACHE_BYTES")) {
            // strtoull silently wraps negatives and clamps overflow
            // to ULLONG_MAX; both would turn a misconfiguration
            // into an unbounded cache, so reject them explicitly.
            char *end = nullptr;
            errno = 0;
            const unsigned long long parsed =
                std::strtoull(env, &end, 10);
            if (end != env && *end == '\0' && parsed > 0 &&
                errno != ERANGE && env[0] != '-')
                return static_cast<std::uint64_t>(parsed);
        }
        return StateCache::kDefaultByteBudget;
    }();
    return budget;
}

SimEngine::SimEngine(SimEngineConfig config)
    : cacheEnabled_(config.cacheEnabled),
      cache_(config.cacheByteBudget, config.cacheMaxEntries)
{
}

std::vector<double>
SimEngine::measuredMarginal(const Circuit *prep,
                            const Circuit &circuit,
                            const std::vector<double> &params)
{
    if (prep && prep->numQubits() != circuit.numQubits())
        panic("SimEngine: prep/suffix width mismatch");
    const int n = circuit.numQubits();

    // Resolve the op spans for both job shapes. The prep circuit
    // gets the same trailing-run split as a plain circuit (see
    // prepKeyOf), so its trailing H/S/Sdg gates — if any — become a
    // middle "tail" span applied after the cached prefix; for
    // typical rotation-terminated ansatze the tail is empty.
    const auto &circuitOps = circuit.ops();
    const GateOp *prefixOps;
    std::size_t prefixCount;
    const GateOp *tailOps = nullptr;
    std::size_t tailCount = 0;
    const GateOp *suffixOps;
    std::size_t suffixCount;
    if (prep) {
        const PrefixSplit split = splitPrepSuffix(*prep);
        prefixOps = prep->ops().data();
        prefixCount = split.prefixOps;
        tailOps = prep->ops().data() + split.prefixOps;
        tailCount = prep->ops().size() - split.prefixOps;
        suffixOps = circuitOps.data();
        suffixCount = circuitOps.size();
    } else {
        const PrefixSplit split = splitPrepSuffix(circuit);
        prefixOps = circuitOps.data();
        prefixCount = split.prefixOps;
        suffixOps = circuitOps.data() + split.prefixOps;
        suffixCount = circuitOps.size() - split.prefixOps;
    }

    if (!cacheEnabled()) {
        // Uncached: the identical gate sequence on one fresh state.
        Statevector sv(n);
        sv.applyOps(prefixOps, prefixCount, params);
        sv.applyOps(tailOps, tailCount, params);
        sv.applyOps(suffixOps, suffixCount, params);
        fullSimulations_.fetch_add(1, std::memory_order_relaxed);
        return sv.marginalProbabilities(circuit.measuredQubits());
    }

    const PrepKey key = prepKeyOf(prep, circuit, params);
    StateCache::StatePtr prepared = cache_.getOrPrepare(key, [&] {
        auto state = std::make_shared<Statevector>(n);
        state->applyOps(prefixOps, prefixCount, params);
        prepSimulations_.fetch_add(1, std::memory_order_relaxed);
        return StateCache::StatePtr(std::move(state));
    });

    suffixApplications_.fetch_add(1, std::memory_order_relaxed);

    // All-Z bases have no suffix gates at all: answer straight from
    // the shared immutable state, skipping the dense copy.
    if (tailCount == 0 && suffixCount == 0)
        return prepared->marginalProbabilities(
            circuit.measuredQubits());

    // Each suffix works on its own copy of the prepared amplitudes;
    // the shared state itself is immutable.
    Statevector sv(*prepared);
    sv.applyOps(tailOps, tailCount, params);
    sv.applyOps(suffixOps, suffixCount, params);
    return sv.marginalProbabilities(circuit.measuredQubits());
}

SimEngineStats
SimEngine::stats() const
{
    SimEngineStats out;
    out.prepSimulations =
        prepSimulations_.load(std::memory_order_relaxed);
    out.suffixApplications =
        suffixApplications_.load(std::memory_order_relaxed);
    out.fullSimulations =
        fullSimulations_.load(std::memory_order_relaxed);
    out.cache = cache_.stats();
    return out;
}

void
SimEngine::resetStats()
{
    prepSimulations_.store(0, std::memory_order_relaxed);
    suffixApplications_.store(0, std::memory_order_relaxed);
    fullSimulations_.store(0, std::memory_order_relaxed);
    cache_.resetStats();
}

} // namespace varsaw
