/**
 * @file
 * Dense density-matrix simulation engine.
 *
 * Exact open-system substrate for small registers (<= ~10 qubits):
 * gates are conjugations, gate noise is a per-qubit depolarizing
 * channel applied after each gate (exactly the channel the
 * stochastic Pauli-trajectory mode samples), and measurement
 * probabilities are the diagonal. Used to cross-validate the fast
 * analytic noisy executor and as an alternative exact backend.
 */

#ifndef VARSAW_SIM_DENSITY_MATRIX_HH
#define VARSAW_SIM_DENSITY_MATRIX_HH

#include <complex>
#include <cstdint>
#include <vector>

#include "pauli/pauli_string.hh"
#include "sim/circuit.hh"
#include "sim/gate.hh"

namespace varsaw {

/** Dense density matrix over up to ~12 qubits. */
class DensityMatrix
{
  public:
    using Amplitude = std::complex<double>;

    /** Initialize to |0...0><0...0| over @p num_qubits qubits. */
    explicit DensityMatrix(int num_qubits);

    /** Number of qubits. */
    int numQubits() const { return numQubits_; }

    /** Matrix dimension 2^numQubits. */
    std::uint64_t dim() const { return dim_; }

    /** Element (row, col). */
    Amplitude element(std::uint64_t row, std::uint64_t col) const;

    /** Reset to |0...0><0...0|. */
    void reset();

    /** Apply a one-qubit unitary to qubit @p q: rho -> U rho U+. */
    void apply1Q(int q, const Matrix2 &m);

    /** Apply a CX conjugation. */
    void applyCX(int control, int target);

    /** Apply a CZ conjugation. */
    void applyCZ(int a, int b);

    /** Apply an RZZ(theta) conjugation. */
    void applyRZZ(int a, int b, double theta);

    /** Apply one gate op (resolving parameter references). */
    void applyOp(const GateOp &op, const std::vector<double> &params);

    /** Conjugate by a Pauli string: rho -> P rho P. */
    void conjugateByPauli(const PauliString &p);

    /**
     * Single-qubit depolarizing channel on qubit @p q:
     * rho -> (1-p) rho + p/3 (X rho X + Y rho Y + Z rho Z).
     */
    void applyDepolarizing(int q, double p);

    /**
     * Two-qubit depolarizing channel (uniform over the 15
     * non-identity two-qubit Paulis).
     */
    void applyTwoQubitDepolarizing(int q0, int q1, double p);

    /**
     * Run a circuit with per-gate local depolarizing noise:
     * after each gate, applyDepolarizing(touched qubit, error)
     * for every qubit the gate touched (matching the stochastic
     * trajectory semantics of NoisyExecutor).
     *
     * @param gate1_error Depolarizing probability per 1q gate.
     * @param gate2_error Depolarizing probability per 2q gate
     *                    (applied per touched qubit).
     */
    void runNoisy(const Circuit &circuit,
                  const std::vector<double> &params,
                  double gate1_error, double gate2_error);

    /** Run a circuit without noise. */
    void run(const Circuit &circuit,
             const std::vector<double> &params);

    /** Trace (should be 1). */
    double trace() const;

    /** Purity Tr(rho^2); 1 for pure states. */
    double purity() const;

    /** Diagonal measurement probabilities (length 2^n). */
    std::vector<double> probabilities() const;

    /** Marginal probabilities over measured qubit positions. */
    std::vector<double>
    marginalProbabilities(const std::vector<int> &measured) const;

    /** Expectation value Tr(P rho) of a Pauli string (real). */
    double expectationPauli(const PauliString &p) const;

  private:
    Amplitude &at(std::uint64_t row, std::uint64_t col);
    const Amplitude &at(std::uint64_t row, std::uint64_t col) const;

    int numQubits_;
    std::uint64_t dim_;
    std::vector<Amplitude> data_; // row-major dim x dim
};

} // namespace varsaw

#endif // VARSAW_SIM_DENSITY_MATRIX_HH
