#include "sim/circuit.hh"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/logging.hh"

namespace varsaw {

Circuit::Circuit(int num_qubits, std::string label)
    : numQubits_(num_qubits), label_(std::move(label))
{
    if (num_qubits < 1 || num_qubits > 30)
        panic("Circuit: simulable qubit count must be in [1, 30]");
}

Circuit &
Circuit::pushOp(GateKind kind, int q0, int q1, double param,
                int param_index)
{
    if (q0 < 0 || q0 >= numQubits_)
        panic("Circuit: qubit index out of range");
    if (isTwoQubitGate(kind)) {
        if (q1 < 0 || q1 >= numQubits_ || q1 == q0)
            panic("Circuit: invalid second qubit index");
    }
    GateOp op;
    op.kind = kind;
    op.q0 = q0;
    op.q1 = q1;
    op.param = param;
    op.paramIndex = param_index;
    ops_.push_back(op);
    if (param_index >= 0)
        numParams_ = std::max(numParams_, param_index + 1);
    return *this;
}

Circuit &Circuit::h(int q) { return pushOp(GateKind::H, q, -1, 0, -1); }
Circuit &Circuit::x(int q) { return pushOp(GateKind::X, q, -1, 0, -1); }
Circuit &Circuit::y(int q) { return pushOp(GateKind::Y, q, -1, 0, -1); }
Circuit &Circuit::z(int q) { return pushOp(GateKind::Z, q, -1, 0, -1); }
Circuit &Circuit::s(int q) { return pushOp(GateKind::S, q, -1, 0, -1); }

Circuit &
Circuit::sdg(int q)
{
    return pushOp(GateKind::Sdg, q, -1, 0, -1);
}

Circuit &Circuit::t(int q) { return pushOp(GateKind::T, q, -1, 0, -1); }

Circuit &
Circuit::rx(int q, double theta)
{
    return pushOp(GateKind::RX, q, -1, theta, -1);
}

Circuit &
Circuit::ry(int q, double theta)
{
    return pushOp(GateKind::RY, q, -1, theta, -1);
}

Circuit &
Circuit::rz(int q, double theta)
{
    return pushOp(GateKind::RZ, q, -1, theta, -1);
}

Circuit &
Circuit::rxParam(int q, int param_index)
{
    return pushOp(GateKind::RX, q, -1, 0, param_index);
}

Circuit &
Circuit::ryParam(int q, int param_index)
{
    return pushOp(GateKind::RY, q, -1, 0, param_index);
}

Circuit &
Circuit::rzParam(int q, int param_index)
{
    return pushOp(GateKind::RZ, q, -1, 0, param_index);
}

Circuit &
Circuit::cx(int control, int target)
{
    return pushOp(GateKind::CX, control, target, 0, -1);
}

Circuit &
Circuit::cz(int a, int b)
{
    return pushOp(GateKind::CZ, a, b, 0, -1);
}

Circuit &
Circuit::rzz(int a, int b, double theta)
{
    return pushOp(GateKind::RZZ, a, b, theta, -1);
}

Circuit &
Circuit::rzzParam(int a, int b, int param_index)
{
    return pushOp(GateKind::RZZ, a, b, 0, param_index);
}

Circuit &
Circuit::swap(int a, int b)
{
    return pushOp(GateKind::SWAP, a, b, 0, -1);
}

Circuit &
Circuit::append(const Circuit &other)
{
    if (other.numQubits_ > numQubits_)
        panic("Circuit::append: appended circuit is wider");
    for (const auto &op : other.ops_) {
        ops_.push_back(op);
        if (op.paramIndex >= 0)
            numParams_ = std::max(numParams_, op.paramIndex + 1);
    }
    return *this;
}

Circuit
Circuit::bound(const std::vector<double> &params) const
{
    if (numParams_ > static_cast<int>(params.size()))
        panic("Circuit::bound: parameter vector too short");
    Circuit out(numQubits_, label_);
    for (GateOp op : ops_) {
        if (op.paramIndex >= 0) {
            op.param = params[op.paramIndex];
            op.paramIndex = -1;
        }
        out.ops_.push_back(op);
    }
    out.measured_ = measured_;
    return out;
}

Circuit &
Circuit::appendBasisRotations(const PauliString &basis)
{
    if (basis.numQubits() != numQubits_)
        panic("Circuit::appendBasisRotations: basis width mismatch");
    for (int q = 0; q < numQubits_; ++q) {
        switch (basis.op(q)) {
          case PauliOp::X:
            h(q);
            break;
          case PauliOp::Y:
            sdg(q);
            h(q);
            break;
          case PauliOp::Z:
          case PauliOp::I:
            break;
        }
    }
    return *this;
}

Circuit &
Circuit::measure(int q)
{
    if (q < 0 || q >= numQubits_)
        panic("Circuit::measure: qubit index out of range");
    for (int m : measured_)
        if (m == q)
            panic("Circuit::measure: qubit measured twice");
    measured_.push_back(q);
    return *this;
}

Circuit &
Circuit::measureAll()
{
    for (int q = 0; q < numQubits_; ++q)
        measure(q);
    return *this;
}

Circuit &
Circuit::measureSupport(const PauliString &basis)
{
    for (int q : basis.support())
        measure(q);
    return *this;
}

int
Circuit::oneQubitGateCount() const
{
    int n = 0;
    for (const auto &op : ops_)
        if (!isTwoQubitGate(op.kind))
            ++n;
    return n;
}

int
Circuit::twoQubitGateCount() const
{
    int n = 0;
    for (const auto &op : ops_)
        if (isTwoQubitGate(op.kind))
            ++n;
    return n;
}

int
Circuit::depth() const
{
    std::vector<int> busy_until(numQubits_, 0);
    int depth = 0;
    for (const auto &op : ops_) {
        int start = busy_until[op.q0];
        if (isTwoQubitGate(op.kind))
            start = std::max(start, busy_until[op.q1]);
        const int end = start + 1;
        busy_until[op.q0] = end;
        if (isTwoQubitGate(op.kind))
            busy_until[op.q1] = end;
        depth = std::max(depth, end);
    }
    return depth;
}

std::string
Circuit::summary() const
{
    std::ostringstream out;
    out << (label_.empty() ? "circuit" : label_) << ": "
        << numQubits_ << "q, " << ops_.size() << " gates ("
        << twoQubitGateCount() << " two-qubit), depth " << depth()
        << ", " << measured_.size() << " measured";
    return out.str();
}

} // namespace varsaw
