/**
 * @file
 * AVX-512 F/DQ tier: 512-bit registers, four complex amplitudes
 * per vector, bit-identical to the scalar reference.
 *
 * Compiled with `-mavx512f -mavx512dq -mavx2 -mfma
 * -ffp-contract=off` (CMakeLists); degrades to an uncompiled stub
 * aliasing the scalar table when the toolchain can't target it.
 *
 * Same identity argument as the AVX2 tier (see kernels_avx2.cc),
 * with two AVX-512 specifics: there is no 512-bit addsub, so
 * spec::cfma's `acc -/+ t` is computed as `acc + (t ^ evenSign)` —
 * negation is exact, so the even-lane subtraction still performs
 * the spec's single rounding; and cross-lane moves (q = 0 pair
 * duplication, Pauli partner alignment, probability deinterleave)
 * use permutexvar/permutex2var, which move bits untouched.
 * Segment tails longer than one complex run through the 256-bit
 * DAG helpers below — same per-element DAG, so identity holds
 * through every mixed-width path.
 */

#include "sim/kernels/kernel_spec.hh"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>
#include <utility>

namespace varsaw::kern::detail {

namespace {

constexpr long long kSignBit =
    static_cast<long long>(0x8000000000000000ull);

// --- 256-bit DAG helpers for segment tails ----------------------

inline __m256d
swapPairs256(__m256d v)
{
    return _mm256_permute_pd(v, 0x5);
}

inline __m256d
cmulV256(__m256d a, __m256d mre, __m256d mim)
{
    return _mm256_fmaddsub_pd(
        a, mre, _mm256_mul_pd(swapPairs256(a), mim));
}

inline __m256d
cfmaV256(__m256d a, __m256d mre, __m256d mim, __m256d acc)
{
    return _mm256_fmadd_pd(
        a, mre,
        _mm256_addsub_pd(acc,
                         _mm256_mul_pd(swapPairs256(a), mim)));
}

// --- 512-bit DAG building blocks --------------------------------

inline __m512d
swapPairs(__m512d v)
{
    return _mm512_permute_pd(v, 0x55);
}

inline __m512d
dupRe(__m512d v)
{
    return _mm512_movedup_pd(v);
}

inline __m512d
dupIm(__m512d v)
{
    return _mm512_permute_pd(v, 0xFF);
}

inline __m512d
evenSignMask()
{
    return _mm512_castsi512_pd(_mm512_set_epi64(
        0, kSignBit, 0, kSignBit, 0, kSignBit, 0, kSignBit));
}

/** addsub(acc, t): even lanes acc - t, odd acc + t (exact-negate
 * emulation of the missing 512-bit addsub). */
inline __m512d
addsub512(__m512d acc, __m512d t)
{
    return _mm512_add_pd(acc,
                         _mm512_xor_pd(t, evenSignMask()));
}

/** spec::cmul per lane pair. */
inline __m512d
cmulV(__m512d a, __m512d mre, __m512d mim)
{
    return _mm512_fmaddsub_pd(
        a, mre, _mm512_mul_pd(swapPairs(a), mim));
}

/** spec::cfma per lane pair. */
inline __m512d
cfmaV(__m512d a, __m512d mre, __m512d mim, __m512d acc)
{
    return _mm512_fmadd_pd(
        a, mre,
        addsub512(acc, _mm512_mul_pd(swapPairs(a), mim)));
}

/** spec::conjMul per lane pair. */
inline __m512d
conjMulV(__m512d l, __m512d r)
{
    return _mm512_fmsubadd_pd(
        swapPairs(l), dupIm(r), _mm512_mul_pd(l, dupRe(r)));
}

inline __m512d
signMask512(const bool f[8])
{
    return _mm512_castsi512_pd(_mm512_set_epi64(
        f[7] ? kSignBit : 0, f[6] ? kSignBit : 0,
        f[5] ? kSignBit : 0, f[4] ? kSignBit : 0,
        f[3] ? kSignBit : 0, f[2] ? kSignBit : 0,
        f[1] ? kSignBit : 0, f[0] ? kSignBit : 0));
}

// --- apply1Q ----------------------------------------------------

void
apply1qAvx512(Amp *amps, int q, std::uint64_t k0, std::uint64_t k1,
              const Matrix2 &m)
{
    if (q == 0) {
        // Two adjacent (lo, hi) pairs per register.
        const __m512i idx0 =
            _mm512_set_epi64(5, 4, 5, 4, 1, 0, 1, 0);
        const __m512i idx1 =
            _mm512_set_epi64(7, 6, 7, 6, 3, 2, 3, 2);
        const __m512d are = _mm512_set_pd(
            m.m10.real(), m.m10.real(), m.m00.real(), m.m00.real(),
            m.m10.real(), m.m10.real(), m.m00.real(),
            m.m00.real());
        const __m512d aim = _mm512_set_pd(
            m.m10.imag(), m.m10.imag(), m.m00.imag(), m.m00.imag(),
            m.m10.imag(), m.m10.imag(), m.m00.imag(),
            m.m00.imag());
        const __m512d bre = _mm512_set_pd(
            m.m11.real(), m.m11.real(), m.m01.real(), m.m01.real(),
            m.m11.real(), m.m11.real(), m.m01.real(),
            m.m01.real());
        const __m512d bim = _mm512_set_pd(
            m.m11.imag(), m.m11.imag(), m.m01.imag(), m.m01.imag(),
            m.m11.imag(), m.m11.imag(), m.m01.imag(),
            m.m01.imag());
        std::uint64_t k = k0;
        for (; k + 2 <= k1; k += 2) {
            double *p = reinterpret_cast<double *>(amps + 2 * k);
            const __m512d v = _mm512_loadu_pd(p);
            const __m512d a0 = _mm512_permutexvar_pd(idx0, v);
            const __m512d a1 = _mm512_permutexvar_pd(idx1, v);
            _mm512_storeu_pd(
                p, cfmaV(a0, are, aim, cmulV(a1, bre, bim)));
        }
        for (; k < k1; ++k)
            spec::pair1q(amps[2 * k], amps[2 * k + 1], m);
        return;
    }
    const __m512d m00re = _mm512_set1_pd(m.m00.real());
    const __m512d m00im = _mm512_set1_pd(m.m00.imag());
    const __m512d m01re = _mm512_set1_pd(m.m01.real());
    const __m512d m01im = _mm512_set1_pd(m.m01.imag());
    const __m512d m10re = _mm512_set1_pd(m.m10.real());
    const __m512d m10im = _mm512_set1_pd(m.m10.imag());
    const __m512d m11re = _mm512_set1_pd(m.m11.real());
    const __m512d m11im = _mm512_set1_pd(m.m11.imag());
    // q == 1 blocks are exactly two complex long; keep them off
    // the scalar tail by finishing segments with the 256-bit DAG.
    const __m256d h00re = _mm256_set1_pd(m.m00.real());
    const __m256d h00im = _mm256_set1_pd(m.m00.imag());
    const __m256d h01re = _mm256_set1_pd(m.m01.real());
    const __m256d h01im = _mm256_set1_pd(m.m01.imag());
    const __m256d h10re = _mm256_set1_pd(m.m10.real());
    const __m256d h10im = _mm256_set1_pd(m.m10.imag());
    const __m256d h11re = _mm256_set1_pd(m.m11.real());
    const __m256d h11im = _mm256_set1_pd(m.m11.imag());
    spec::forEachPairSegment(
        amps, q, k0, k1, [&](Amp *lo, Amp *hi, std::uint64_t len) {
            std::uint64_t j = 0;
            for (; j + 4 <= len; j += 4) {
                double *pl = reinterpret_cast<double *>(lo + j);
                double *ph = reinterpret_cast<double *>(hi + j);
                const __m512d vl = _mm512_loadu_pd(pl);
                const __m512d vh = _mm512_loadu_pd(ph);
                _mm512_storeu_pd(
                    pl, cfmaV(vl, m00re, m00im,
                              cmulV(vh, m01re, m01im)));
                _mm512_storeu_pd(
                    ph, cfmaV(vl, m10re, m10im,
                              cmulV(vh, m11re, m11im)));
            }
            for (; j + 2 <= len; j += 2) {
                double *pl = reinterpret_cast<double *>(lo + j);
                double *ph = reinterpret_cast<double *>(hi + j);
                const __m256d vl = _mm256_loadu_pd(pl);
                const __m256d vh = _mm256_loadu_pd(ph);
                _mm256_storeu_pd(
                    pl, cfmaV256(vl, h00re, h00im,
                                 cmulV256(vh, h01re, h01im)));
                _mm256_storeu_pd(
                    ph, cfmaV256(vl, h10re, h10im,
                                 cmulV256(vh, h11re, h11im)));
            }
            for (; j < len; ++j)
                spec::pair1q(lo[j], hi[j], m);
        });
}

// --- fused diagonal sweep ---------------------------------------

constexpr std::size_t kDiagBatch = 12;

/** See kernels_avx2.cc: per-gate variants indexed by the 4-complex
 * group base's selector contribution h; selector bits from
 * positions < 2 come from the lane index and are folded in. */
struct PreGate8
{
    bool negate;
    int a;
    int b;
    __m512d x[4];
    __m512d y[4];
};

void
diagTablesAvx512(Amp *amps, std::uint64_t i0, std::uint64_t i1,
                 const DiagTableGate *gates, std::size_t count)
{
    for (std::size_t g0 = 0; g0 < count || g0 == 0;
         g0 += kDiagBatch) {
        const std::size_t batch =
            std::min(kDiagBatch, count - g0);
        const DiagTableGate *gs = gates + g0;
        PreGate8 pre[kDiagBatch];
        for (std::size_t g = 0; g < batch; ++g) {
            const DiagTableGate &d = gs[g];
            PreGate8 &p = pre[g];
            p.negate = d.negate;
            p.a = d.a;
            p.b = d.b;
            for (int h = 0; h < 4; ++h) {
                int sel[4];
                for (int j = 0; j < 4; ++j)
                    sel[j] = h | ((j >> d.a) & 1) |
                        (((j >> d.b) & 1) << 1);
                if (d.negate) {
                    bool f[8];
                    for (int j = 0; j < 4; ++j) {
                        f[2 * j] = sel[j] == 3;
                        f[2 * j + 1] = sel[j] == 3;
                    }
                    p.x[h] = signMask512(f);
                } else {
                    const Amp f0 = d.table[sel[0] & 3];
                    const Amp f1 = d.table[sel[1] & 3];
                    const Amp f2 = d.table[sel[2] & 3];
                    const Amp f3 = d.table[sel[3] & 3];
                    p.x[h] = _mm512_set_pd(
                        f3.real(), f3.real(), f2.real(), f2.real(),
                        f1.real(), f1.real(), f0.real(),
                        f0.real());
                    p.y[h] = _mm512_set_pd(
                        f3.imag(), f3.imag(), f2.imag(), f2.imag(),
                        f1.imag(), f1.imag(), f0.imag(),
                        f0.imag());
                }
            }
        }

        std::uint64_t i = i0;
        for (; i < i1 && (i & 3); ++i)
            amps[i] = spec::diagPoint(amps[i], i, gs, batch);
        for (; i + 4 <= i1; i += 4) {
            double *p = reinterpret_cast<double *>(amps + i);
            __m512d v = _mm512_loadu_pd(p);
            for (std::size_t g = 0; g < batch; ++g) {
                const PreGate8 &pg = pre[g];
                const int h =
                    static_cast<int>(((i >> pg.a) & 1ull) |
                                     (((i >> pg.b) & 1ull) << 1));
                v = pg.negate
                    ? _mm512_xor_pd(v, pg.x[h])
                    : cmulV(v, pg.x[h], pg.y[h]);
            }
            _mm512_storeu_pd(p, v);
        }
        for (; i < i1; ++i)
            amps[i] = spec::diagPoint(amps[i], i, gs, batch);
        if (count == 0)
            break;
    }
}

// --- two-qubit data movement ------------------------------------

void
cxQuadsAvx512(Amp *amps, int control, int target, std::uint64_t k0,
              std::uint64_t k1)
{
    const std::uint64_t tbit = 1ull << target;
    spec::forEachQuadRun(
        control, target, k0, k1, 1ull << control,
        [&](std::uint64_t i, std::uint64_t len) {
            double *p = reinterpret_cast<double *>(amps + i);
            double *q = reinterpret_cast<double *>(amps + (i | tbit));
            std::uint64_t j = 0;
            for (; j + 4 <= len; j += 4) {
                const __m512d a = _mm512_loadu_pd(p + 2 * j);
                const __m512d b = _mm512_loadu_pd(q + 2 * j);
                _mm512_storeu_pd(p + 2 * j, b);
                _mm512_storeu_pd(q + 2 * j, a);
            }
            for (; j < len; ++j)
                std::swap(amps[i + j], amps[(i + j) | tbit]);
        });
}

void
czQuadsAvx512(Amp *amps, int a, int b, std::uint64_t k0,
              std::uint64_t k1)
{
    const __m512d neg = _mm512_castsi512_pd(
        _mm512_set1_epi64(kSignBit));
    spec::forEachQuadRun(
        a, b, k0, k1, (1ull << a) | (1ull << b),
        [&](std::uint64_t i, std::uint64_t len) {
            double *p = reinterpret_cast<double *>(amps + i);
            std::uint64_t j = 0;
            for (; j + 4 <= len; j += 4)
                _mm512_storeu_pd(
                    p + 2 * j,
                    _mm512_xor_pd(_mm512_loadu_pd(p + 2 * j),
                                  neg));
            for (; j < len; ++j) {
                const Amp v = amps[i + j];
                amps[i + j] = Amp(-v.real(), -v.imag());
            }
        });
}

void
swapQuadsAvx512(Amp *amps, int a, int b, std::uint64_t k0,
                std::uint64_t k1)
{
    const std::uint64_t flip = (1ull << a) | (1ull << b);
    spec::forEachQuadRun(
        a, b, k0, k1, 1ull << a,
        [&](std::uint64_t i, std::uint64_t len) {
            double *p = reinterpret_cast<double *>(amps + i);
            double *q = reinterpret_cast<double *>(amps + (i ^ flip));
            std::uint64_t j = 0;
            for (; j + 4 <= len; j += 4) {
                const __m512d va = _mm512_loadu_pd(p + 2 * j);
                const __m512d vb = _mm512_loadu_pd(q + 2 * j);
                _mm512_storeu_pd(p + 2 * j, vb);
                _mm512_storeu_pd(q + 2 * j, va);
            }
            for (; j < len; ++j)
                std::swap(amps[i + j], amps[(i + j) ^ flip]);
        });
}

// --- reductions -------------------------------------------------

double
normChunkAvx512(const Amp *amps, std::uint64_t i0,
                std::uint64_t i1)
{
    // One accumulator register = the 8 absolute flat-double lanes,
    // seeded/drained through the scalar lane array at the aligned
    // boundaries so every lane is one unbroken fma chain.
    alignas(64) double lane[spec::kNormLanes] = {};
    std::uint64_t i = i0;
    for (; i < i1 && (i & 3); ++i) {
        const double re = amps[i].real();
        const double im = amps[i].imag();
        lane[(2 * i) & 7] = std::fma(re, re, lane[(2 * i) & 7]);
        lane[(2 * i + 1) & 7] =
            std::fma(im, im, lane[(2 * i + 1) & 7]);
    }
    __m512d acc = _mm512_loadu_pd(lane);
    const double *d = reinterpret_cast<const double *>(amps);
    for (; i + 4 <= i1; i += 4) {
        const __m512d v = _mm512_loadu_pd(d + 2 * i);
        acc = _mm512_fmadd_pd(v, v, acc);
    }
    _mm512_storeu_pd(lane, acc);
    for (; i < i1; ++i) {
        const double re = amps[i].real();
        const double im = amps[i].imag();
        lane[(2 * i) & 7] = std::fma(re, re, lane[(2 * i) & 7]);
        lane[(2 * i + 1) & 7] =
            std::fma(im, im, lane[(2 * i + 1) & 7]);
    }
    return spec::foldNorm(lane);
}

void
probChunkAvx512(const Amp *amps, double *out, std::uint64_t i0,
                std::uint64_t i1)
{
    const __m512i idxRe =
        _mm512_set_epi64(14, 12, 10, 8, 6, 4, 2, 0);
    const __m512i idxIm =
        _mm512_set_epi64(15, 13, 11, 9, 7, 5, 3, 1);
    const double *d = reinterpret_cast<const double *>(amps);
    std::uint64_t i = i0;
    for (; i + 8 <= i1; i += 8) {
        const __m512d v0 = _mm512_loadu_pd(d + 2 * i);
        const __m512d v1 = _mm512_loadu_pd(d + 2 * i + 8);
        const __m512d re = _mm512_permutex2var_pd(v0, idxRe, v1);
        const __m512d im = _mm512_permutex2var_pd(v0, idxIm, v1);
        _mm512_storeu_pd(
            out + i,
            _mm512_fmadd_pd(re, re, _mm512_mul_pd(im, im)));
    }
    for (; i < i1; ++i)
        out[i] = spec::normPoint(amps[i]);
}

Amp
innerChunkAvx512(const Amp *lhs, const Amp *rhs, std::uint64_t i0,
                 std::uint64_t i1)
{
    alignas(64) Amp lane[spec::kCplxLanes] = {};
    std::uint64_t i = i0;
    for (; i < i1 && (i & 3); ++i)
        lane[i & 3] = lane[i & 3] + spec::conjMul(lhs[i], rhs[i]);
    double *lp = reinterpret_cast<double *>(lane);
    __m512d acc = _mm512_loadu_pd(lp);
    const double *ld = reinterpret_cast<const double *>(lhs);
    const double *rd = reinterpret_cast<const double *>(rhs);
    for (; i + 4 <= i1; i += 4)
        acc = _mm512_add_pd(
            acc, conjMulV(_mm512_loadu_pd(ld + 2 * i),
                          _mm512_loadu_pd(rd + 2 * i)));
    _mm512_storeu_pd(lp, acc);
    for (; i < i1; ++i)
        lane[i & 3] = lane[i & 3] + spec::conjMul(lhs[i], rhs[i]);
    return spec::foldCplx(lane);
}

Amp
expPauliChunkAvx512(const Amp *amps, std::uint64_t x,
                    std::uint64_t z, int quadrant,
                    std::uint64_t i0, std::uint64_t i1)
{
    const bool qodd = (quadrant & 1) != 0;
    __m512d phaseMask[2];
    for (int s = 0; s < 2; ++s) {
        bool f[8];
        for (int j = 0; j < 4; ++j) {
            const bool t =
                ((s ^ parity(static_cast<std::uint64_t>(j) & z)) &
                 1) != 0;
            bool f0;
            bool f1;
            switch (quadrant & 3) {
              case 0:
                f0 = t;
                f1 = t;
                break;
              case 1:
                f0 = !t;
                f1 = t;
                break;
              case 2:
                f0 = !t;
                f1 = !t;
                break;
              default:
                f0 = t;
                f1 = !t;
                break;
            }
            f[2 * j] = f0;
            f[2 * j + 1] = f1;
        }
        phaseMask[s] = signMask512(f);
    }
    const std::uint64_t pbase = x & ~3ull;
    const int p = static_cast<int>(x & 3ull);
    const std::uint64_t zhigh = z & ~3ull;
    alignas(64) long long pidxArr[8];
    for (int j = 0; j < 4; ++j) {
        pidxArr[2 * j] = 2 * (j ^ p);
        pidxArr[2 * j + 1] = 2 * (j ^ p) + 1;
    }
    const __m512i pidx = _mm512_loadu_si512(pidxArr);

    alignas(64) Amp lane[spec::kCplxLanes] = {};
    std::uint64_t i = i0;
    for (; i < i1 && (i & 3); ++i) {
        const Amp c =
            spec::phasePoint(amps[i], quadrant, parity(i & z));
        lane[i & 3] = lane[i & 3] + spec::conjMul(amps[i ^ x], c);
    }
    double *lp = reinterpret_cast<double *>(lane);
    __m512d acc = _mm512_loadu_pd(lp);
    const double *d = reinterpret_cast<const double *>(amps);
    for (; i + 4 <= i1; i += 4) {
        const __m512d v = _mm512_loadu_pd(d + 2 * i);
        const int s = parity(i & zhigh);
        const __m512d c = _mm512_xor_pd(
            qodd ? swapPairs(v) : v, phaseMask[s]);
        __m512d bp = _mm512_loadu_pd(d + 2 * (i ^ pbase));
        if (p)
            bp = _mm512_permutexvar_pd(pidx, bp);
        acc = _mm512_add_pd(acc, conjMulV(bp, c));
    }
    _mm512_storeu_pd(lp, acc);
    for (; i < i1; ++i) {
        const Amp c =
            spec::phasePoint(amps[i], quadrant, parity(i & z));
        lane[i & 3] = lane[i & 3] + spec::conjMul(amps[i ^ x], c);
    }
    return spec::foldCplx(lane);
}

} // namespace

const KernelTable &
avx512Table()
{
    static const KernelTable table = [] {
        KernelTable t;
        t.tier = SimdTier::Avx512;
        t.apply1q = &apply1qAvx512;
        t.diagTables = &diagTablesAvx512;
        t.cxQuads = &cxQuadsAvx512;
        t.czQuads = &czQuadsAvx512;
        t.swapQuads = &swapQuadsAvx512;
        t.normChunk = &normChunkAvx512;
        t.probChunk = &probChunkAvx512;
        t.innerChunk = &innerChunkAvx512;
        t.expPauliChunk = &expPauliChunkAvx512;
        return t;
    }();
    return table;
}

bool
avx512Compiled()
{
    return true;
}

} // namespace varsaw::kern::detail

#else // !(__AVX512F__ && __AVX512DQ__)

namespace varsaw::kern::detail {

const KernelTable &
avx512Table()
{
    return scalarTable();
}

bool
avx512Compiled()
{
    return false;
}

} // namespace varsaw::kern::detail

#endif
