/**
 * @file
 * Scalar reference tier: the bit-exactness ground truth.
 *
 * Every loop below IS the specification the vector tiers must
 * reproduce — plain loops over the spec DAGs of kernel_spec.hh,
 * with reduction lanes assigned by absolute index. Compiled with
 * `-ffp-contract=off` (CMakeLists) so the std::fma calls and plain
 * multiplies written here are exactly the operations performed.
 */

#include "sim/kernels/kernel_spec.hh"

#include <utility>

namespace varsaw::kern::detail {

namespace {

void
apply1qScalar(Amp *amps, int q, std::uint64_t k0,
              std::uint64_t k1, const Matrix2 &m)
{
    if (q == 0) {
        for (std::uint64_t i = 2 * k0; i < 2 * k1; i += 2)
            spec::pair1q(amps[i], amps[i + 1], m);
        return;
    }
    spec::forEachPairSegment(
        amps, q, k0, k1, [&](Amp *lo, Amp *hi, std::uint64_t len) {
            for (std::uint64_t j = 0; j < len; ++j)
                spec::pair1q(lo[j], hi[j], m);
        });
}

void
diagTablesScalar(Amp *amps, std::uint64_t i0, std::uint64_t i1,
                 const DiagTableGate *gates, std::size_t count)
{
    for (std::uint64_t i = i0; i < i1; ++i)
        amps[i] = spec::diagPoint(amps[i], i, gates, count);
}

void
cxQuadsScalar(Amp *amps, int control, int target,
              std::uint64_t k0, std::uint64_t k1)
{
    const std::uint64_t tbit = 1ull << target;
    spec::forEachQuadRun(
        control, target, k0, k1, 1ull << control,
        [&](std::uint64_t i, std::uint64_t len) {
            for (std::uint64_t j = 0; j < len; ++j)
                std::swap(amps[i + j], amps[(i + j) | tbit]);
        });
}

void
czQuadsScalar(Amp *amps, int a, int b, std::uint64_t k0,
              std::uint64_t k1)
{
    spec::forEachQuadRun(
        a, b, k0, k1, (1ull << a) | (1ull << b),
        [&](std::uint64_t i, std::uint64_t len) {
            for (std::uint64_t j = 0; j < len; ++j) {
                const Amp v = amps[i + j];
                amps[i + j] = Amp(-v.real(), -v.imag());
            }
        });
}

void
swapQuadsScalar(Amp *amps, int a, int b, std::uint64_t k0,
                std::uint64_t k1)
{
    const std::uint64_t flip = (1ull << a) | (1ull << b);
    spec::forEachQuadRun(
        a, b, k0, k1, 1ull << a,
        [&](std::uint64_t i, std::uint64_t len) {
            for (std::uint64_t j = 0; j < len; ++j)
                std::swap(amps[i + j], amps[(i + j) ^ flip]);
        });
}

double
normChunkScalar(const Amp *amps, std::uint64_t i0,
                std::uint64_t i1)
{
    double lane[spec::kNormLanes] = {};
    for (std::uint64_t i = i0; i < i1; ++i) {
        const double re = amps[i].real();
        const double im = amps[i].imag();
        lane[(2 * i) & 7] = std::fma(re, re, lane[(2 * i) & 7]);
        lane[(2 * i + 1) & 7] =
            std::fma(im, im, lane[(2 * i + 1) & 7]);
    }
    return spec::foldNorm(lane);
}

void
probChunkScalar(const Amp *amps, double *out, std::uint64_t i0,
                std::uint64_t i1)
{
    for (std::uint64_t i = i0; i < i1; ++i)
        out[i] = spec::normPoint(amps[i]);
}

Amp
innerChunkScalar(const Amp *lhs, const Amp *rhs,
                 std::uint64_t i0, std::uint64_t i1)
{
    Amp lane[spec::kCplxLanes] = {};
    for (std::uint64_t i = i0; i < i1; ++i)
        lane[i & 3] = lane[i & 3] + spec::conjMul(lhs[i], rhs[i]);
    return spec::foldCplx(lane);
}

Amp
expPauliChunkScalar(const Amp *amps, std::uint64_t x,
                    std::uint64_t z, int quadrant,
                    std::uint64_t i0, std::uint64_t i1)
{
    Amp lane[spec::kCplxLanes] = {};
    for (std::uint64_t i = i0; i < i1; ++i) {
        const Amp c =
            spec::phasePoint(amps[i], quadrant, parity(i & z));
        lane[i & 3] = lane[i & 3] + spec::conjMul(amps[i ^ x], c);
    }
    return spec::foldCplx(lane);
}

} // namespace

const KernelTable &
scalarTable()
{
    static const KernelTable table = [] {
        KernelTable t;
        t.tier = SimdTier::Scalar;
        t.apply1q = &apply1qScalar;
        t.diagTables = &diagTablesScalar;
        t.cxQuads = &cxQuadsScalar;
        t.czQuads = &czQuadsScalar;
        t.swapQuads = &swapQuadsScalar;
        t.normChunk = &normChunkScalar;
        t.probChunk = &probChunkScalar;
        t.innerChunk = &innerChunkScalar;
        t.expPauliChunk = &expPauliChunkScalar;
        return t;
    }();
    return table;
}

} // namespace varsaw::kern::detail
