/**
 * @file
 * Runtime ISA dispatch: which kernel table the process runs.
 *
 * Resolution order for the startup tier: VARSAW_SIMD (or the
 * drivers' --simd flag, which calls setSimdTier before any kernel
 * runs), clamped to maxSupportedSimdTier() — the cpuid probe
 * intersected with what the toolchain could compile. Because every
 * tier is bit-identical, clamping can never change a result; it is
 * reported as a warning only so a forced-tier CI job notices when
 * its forcing was a no-op.
 *
 * The active table lives behind one atomic pointer. Statevector
 * fetches it once per kernel call, so a concurrent setSimdTier
 * (tests sweep tiers) never mixes ISAs within one sweep; switching
 * mid-workload is safe for the same reason it is observable only
 * in speed.
 */

#include "sim/kernels/kernels.hh"

#include <atomic>
#include <cstdlib>
#include <string>

#include "telemetry/metrics.hh"
#include "util/cpu_features.hh"
#include "util/logging.hh"

namespace varsaw::kern {

namespace {

std::atomic<const KernelTable *> &
activeSlot()
{
    static std::atomic<const KernelTable *> slot = [] {
        // Snapshot-time gauge: 0/1/2 by SimdTier. A callback (not
        // a hot-path set) so the dispatched tier is observable in
        // every snapshot with zero cost on kernel calls.
        telemetry::MetricsRegistry::instance().registerCallback(
            "sim.kernels.simd_tier", [] {
                return static_cast<double>(activeSimdTier());
            });
        return &kernelsFor(defaultSimdTier());
    }();
    return slot;
}

} // namespace

const char *
simdTierName(SimdTier tier)
{
    switch (tier) {
      case SimdTier::Avx512:
        return "avx512";
      case SimdTier::Avx2:
        return "avx2";
      default:
        return "scalar";
    }
}

bool
parseSimdTier(const char *text, SimdTier *out, bool *is_auto)
{
    const std::string s(text ? text : "");
    *is_auto = false;
    if (s == "auto") {
        *is_auto = true;
        return true;
    }
    if (s == "scalar") {
        *out = SimdTier::Scalar;
        return true;
    }
    if (s == "avx2") {
        *out = SimdTier::Avx2;
        return true;
    }
    if (s == "avx512") {
        *out = SimdTier::Avx512;
        return true;
    }
    return false;
}

SimdTier
maxSupportedSimdTier()
{
    static const SimdTier ceiling = [] {
        const CpuFeatures &f = cpuFeatures();
        if (f.avx512 && detail::avx512Compiled())
            return SimdTier::Avx512;
        if (f.avx2Fma && detail::avx2Compiled())
            return SimdTier::Avx2;
        return SimdTier::Scalar;
    }();
    return ceiling;
}

const KernelTable &
kernelsFor(SimdTier tier)
{
    switch (tier) {
      case SimdTier::Avx512:
        return detail::avx512Table();
      case SimdTier::Avx2:
        return detail::avx2Table();
      default:
        return detail::scalarTable();
    }
}

SimdTier
defaultSimdTier()
{
    static const SimdTier chosen = [] {
        const SimdTier ceiling = maxSupportedSimdTier();
        const char *env = std::getenv("VARSAW_SIMD");
        if (!env || !*env)
            return ceiling;
        SimdTier req = ceiling;
        bool is_auto = false;
        if (!parseSimdTier(env, &req, &is_auto)) {
            warn(std::string("VARSAW_SIMD: unrecognized tier '") +
                 env + "' (want scalar|avx2|avx512|auto); using " +
                 simdTierName(ceiling));
            return ceiling;
        }
        if (is_auto)
            return ceiling;
        if (req > ceiling) {
            warn(std::string("VARSAW_SIMD=") + env +
                 " exceeds this host/build's ceiling; clamping to " +
                 simdTierName(ceiling) +
                 " (results are bit-identical at every tier)");
            return ceiling;
        }
        return req;
    }();
    return chosen;
}

const KernelTable &
activeKernels()
{
    const KernelTable *t =
        activeSlot().load(std::memory_order_acquire);
    return *t;
}

SimdTier
activeSimdTier()
{
    return activeKernels().tier;
}

SimdTier
setSimdTier(SimdTier requested)
{
    SimdTier actual = requested;
    if (actual > maxSupportedSimdTier())
        actual = maxSupportedSimdTier();
    activeSlot().store(&kernelsFor(actual),
                       std::memory_order_release);
    return actual;
}

} // namespace varsaw::kern
