/**
 * @file
 * AVX2 + FMA3 tier: 256-bit registers, two complex amplitudes per
 * vector, bit-identical to the scalar reference.
 *
 * Compiled with `-mavx2 -mfma -ffp-contract=off` (CMakeLists);
 * when the toolchain cannot target AVX2 the TU degrades to a stub
 * that reports itself uncompiled and aliases the scalar table, so
 * dispatch never hands out instructions the binary doesn't have.
 *
 * Identity argument, per kernel: the per-element DAGs are the spec
 * functions' — vfmaddsub/vfmsubadd/vfmadd lanes each perform the
 * one fused rounding the scalar std::fma performs, and addsub's
 * even-lane subtraction is the spec's `acc - t` (one rounding).
 * Reduction lanes are seeded from (and drained to) the scalar lane
 * array across the head/body/tail boundary, so each absolute lane
 * sees the exact accumulation sequence of the reference. Loads are
 * unaligned-encoded throughout (free on aligned data; the aligned
 * allocator makes the common chunk boundary 64-byte aligned) —
 * alignment affects speed only, never values.
 */

#include "sim/kernels/kernel_spec.hh"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>
#include <utility>

namespace varsaw::kern::detail {

namespace {

// --- complex DAG building blocks (two complex per __m256d) ------

inline __m256d
swapPairs(__m256d v)
{
    return _mm256_permute_pd(v, 0x5);
}

inline __m256d
dupRe(__m256d v)
{
    return _mm256_movedup_pd(v);
}

inline __m256d
dupIm(__m256d v)
{
    return _mm256_permute_pd(v, 0xF);
}

/** spec::cmul per lane pair; mre/mim may differ per lane pair. */
inline __m256d
cmulV(__m256d a, __m256d mre, __m256d mim)
{
    return _mm256_fmaddsub_pd(
        a, mre, _mm256_mul_pd(swapPairs(a), mim));
}

/** spec::cfma per lane pair. */
inline __m256d
cfmaV(__m256d a, __m256d mre, __m256d mim, __m256d acc)
{
    return _mm256_fmadd_pd(
        a, mre,
        _mm256_addsub_pd(acc,
                         _mm256_mul_pd(swapPairs(a), mim)));
}

/** spec::conjMul per lane pair. */
inline __m256d
conjMulV(__m256d l, __m256d r)
{
    return _mm256_fmsubadd_pd(
        swapPairs(l), dupIm(r), _mm256_mul_pd(l, dupRe(r)));
}

inline __m256d
signMask256(bool s0, bool s1, bool s2, bool s3)
{
    const long long sb = static_cast<long long>(0x8000000000000000ull);
    return _mm256_castsi256_pd(_mm256_set_epi64x(
        s3 ? sb : 0, s2 ? sb : 0, s1 ? sb : 0, s0 ? sb : 0));
}

// --- apply1Q ----------------------------------------------------

void
apply1qAvx2(Amp *amps, int q, std::uint64_t k0, std::uint64_t k1,
            const Matrix2 &m)
{
    if (q == 0) {
        // Adjacent pairs: one (lo, hi) pair per register. Both
        // output halves come from the same cfma/cmul DAG, with the
        // matrix rows laid out per lane pair.
        const __m256d are = _mm256_set_pd(
            m.m10.real(), m.m10.real(), m.m00.real(), m.m00.real());
        const __m256d aim = _mm256_set_pd(
            m.m10.imag(), m.m10.imag(), m.m00.imag(), m.m00.imag());
        const __m256d bre = _mm256_set_pd(
            m.m11.real(), m.m11.real(), m.m01.real(), m.m01.real());
        const __m256d bim = _mm256_set_pd(
            m.m11.imag(), m.m11.imag(), m.m01.imag(), m.m01.imag());
        for (std::uint64_t k = k0; k < k1; ++k) {
            double *p = reinterpret_cast<double *>(amps + 2 * k);
            const __m256d v = _mm256_loadu_pd(p);
            const __m256d a0 = _mm256_permute2f128_pd(v, v, 0x00);
            const __m256d a1 = _mm256_permute2f128_pd(v, v, 0x11);
            _mm256_storeu_pd(
                p, cfmaV(a0, are, aim, cmulV(a1, bre, bim)));
        }
        return;
    }
    const __m256d m00re = _mm256_set1_pd(m.m00.real());
    const __m256d m00im = _mm256_set1_pd(m.m00.imag());
    const __m256d m01re = _mm256_set1_pd(m.m01.real());
    const __m256d m01im = _mm256_set1_pd(m.m01.imag());
    const __m256d m10re = _mm256_set1_pd(m.m10.real());
    const __m256d m10im = _mm256_set1_pd(m.m10.imag());
    const __m256d m11re = _mm256_set1_pd(m.m11.real());
    const __m256d m11im = _mm256_set1_pd(m.m11.imag());
    spec::forEachPairSegment(
        amps, q, k0, k1, [&](Amp *lo, Amp *hi, std::uint64_t len) {
            std::uint64_t j = 0;
            for (; j + 2 <= len; j += 2) {
                double *pl = reinterpret_cast<double *>(lo + j);
                double *ph = reinterpret_cast<double *>(hi + j);
                const __m256d vl = _mm256_loadu_pd(pl);
                const __m256d vh = _mm256_loadu_pd(ph);
                _mm256_storeu_pd(
                    pl, cfmaV(vl, m00re, m00im,
                              cmulV(vh, m01re, m01im)));
                _mm256_storeu_pd(
                    ph, cfmaV(vl, m10re, m10im,
                              cmulV(vh, m11re, m11im)));
            }
            for (; j < len; ++j)
                spec::pair1q(lo[j], hi[j], m);
        });
}

// --- fused diagonal sweep ---------------------------------------

/** Gates per precompute batch (bounds the stack-resident tables;
 * longer runs make several passes over the range, preserving gate
 * order per amplitude). */
constexpr std::size_t kDiagBatch = 12;

/**
 * One gate's four per-group register variants, indexed by the
 * group base's selector contribution h = ((base>>a)&1) |
 * ((base>>b)&1)<<1 (the base is 2-complex aligned, so selector
 * bits from positions 0 come from the lane index instead and are
 * folded into the variants).
 */
struct PreGate2
{
    bool negate;
    int a;
    int b;
    __m256d x[4]; //!< factor re-dup, or the sign mask when negate
    __m256d y[4]; //!< factor im-dup (unused when negate)
};

void
diagTablesAvx2(Amp *amps, std::uint64_t i0, std::uint64_t i1,
               const DiagTableGate *gates, std::size_t count)
{
    for (std::size_t g0 = 0; g0 < count || g0 == 0;
         g0 += kDiagBatch) {
        const std::size_t batch =
            std::min(kDiagBatch, count - g0);
        const DiagTableGate *gs = gates + g0;
        PreGate2 pre[kDiagBatch];
        for (std::size_t g = 0; g < batch; ++g) {
            const DiagTableGate &d = gs[g];
            PreGate2 &p = pre[g];
            p.negate = d.negate;
            p.a = d.a;
            p.b = d.b;
            for (int h = 0; h < 4; ++h) {
                // Lane j's selector low contribution (only bit
                // positions 0 can come from j; j < 2).
                int sel[2];
                for (int j = 0; j < 2; ++j)
                    sel[j] = h | ((j >> d.a) & 1) |
                        (((j >> d.b) & 1) << 1);
                if (d.negate) {
                    p.x[h] = signMask256(sel[0] == 3, sel[0] == 3,
                                         sel[1] == 3, sel[1] == 3);
                } else {
                    const Amp f0 = d.table[sel[0] & 3];
                    const Amp f1 = d.table[sel[1] & 3];
                    p.x[h] = _mm256_set_pd(f1.real(), f1.real(),
                                           f0.real(), f0.real());
                    p.y[h] = _mm256_set_pd(f1.imag(), f1.imag(),
                                           f0.imag(), f0.imag());
                }
            }
        }

        std::uint64_t i = i0;
        for (; i < i1 && (i & 1); ++i)
            amps[i] = spec::diagPoint(amps[i], i, gs, batch);
        for (; i + 2 <= i1; i += 2) {
            double *p = reinterpret_cast<double *>(amps + i);
            __m256d v = _mm256_loadu_pd(p);
            for (std::size_t g = 0; g < batch; ++g) {
                const PreGate2 &pg = pre[g];
                const int h =
                    static_cast<int>(((i >> pg.a) & 1ull) |
                                     (((i >> pg.b) & 1ull) << 1));
                v = pg.negate
                    ? _mm256_xor_pd(v, pg.x[h])
                    : cmulV(v, pg.x[h], pg.y[h]);
            }
            _mm256_storeu_pd(p, v);
        }
        for (; i < i1; ++i)
            amps[i] = spec::diagPoint(amps[i], i, gs, batch);
        if (count == 0)
            break;
    }
}

// --- two-qubit data movement ------------------------------------

void
cxQuadsAvx2(Amp *amps, int control, int target, std::uint64_t k0,
            std::uint64_t k1)
{
    const std::uint64_t tbit = 1ull << target;
    spec::forEachQuadRun(
        control, target, k0, k1, 1ull << control,
        [&](std::uint64_t i, std::uint64_t len) {
            double *p = reinterpret_cast<double *>(amps + i);
            double *q = reinterpret_cast<double *>(amps + (i | tbit));
            std::uint64_t j = 0;
            for (; j + 2 <= len; j += 2) {
                const __m256d a = _mm256_loadu_pd(p + 2 * j);
                const __m256d b = _mm256_loadu_pd(q + 2 * j);
                _mm256_storeu_pd(p + 2 * j, b);
                _mm256_storeu_pd(q + 2 * j, a);
            }
            for (; j < len; ++j)
                std::swap(amps[i + j], amps[(i + j) | tbit]);
        });
}

void
czQuadsAvx2(Amp *amps, int a, int b, std::uint64_t k0,
            std::uint64_t k1)
{
    const __m256d neg = signMask256(true, true, true, true);
    spec::forEachQuadRun(
        a, b, k0, k1, (1ull << a) | (1ull << b),
        [&](std::uint64_t i, std::uint64_t len) {
            double *p = reinterpret_cast<double *>(amps + i);
            std::uint64_t j = 0;
            for (; j + 2 <= len; j += 2)
                _mm256_storeu_pd(
                    p + 2 * j,
                    _mm256_xor_pd(_mm256_loadu_pd(p + 2 * j), neg));
            for (; j < len; ++j) {
                const Amp v = amps[i + j];
                amps[i + j] = Amp(-v.real(), -v.imag());
            }
        });
}

void
swapQuadsAvx2(Amp *amps, int a, int b, std::uint64_t k0,
              std::uint64_t k1)
{
    const std::uint64_t flip = (1ull << a) | (1ull << b);
    spec::forEachQuadRun(
        a, b, k0, k1, 1ull << a,
        [&](std::uint64_t i, std::uint64_t len) {
            double *p = reinterpret_cast<double *>(amps + i);
            double *q = reinterpret_cast<double *>(amps + (i ^ flip));
            std::uint64_t j = 0;
            for (; j + 2 <= len; j += 2) {
                const __m256d va = _mm256_loadu_pd(p + 2 * j);
                const __m256d vb = _mm256_loadu_pd(q + 2 * j);
                _mm256_storeu_pd(p + 2 * j, vb);
                _mm256_storeu_pd(q + 2 * j, va);
            }
            for (; j < len; ++j)
                std::swap(amps[i + j], amps[(i + j) ^ flip]);
        });
}

// --- reductions -------------------------------------------------

double
normChunkAvx2(const Amp *amps, std::uint64_t i0, std::uint64_t i1)
{
    // 8 absolute flat-double lanes: accA holds lanes 0..3, accB
    // lanes 4..7. Scalar head runs until the flat position is
    // 8-aligned, seeding the vector accumulators so every lane
    // sees one unbroken fma chain in ascending index order.
    alignas(32) double lane[spec::kNormLanes] = {};
    std::uint64_t i = i0;
    for (; i < i1 && (i & 3); ++i) {
        const double re = amps[i].real();
        const double im = amps[i].imag();
        lane[(2 * i) & 7] = std::fma(re, re, lane[(2 * i) & 7]);
        lane[(2 * i + 1) & 7] =
            std::fma(im, im, lane[(2 * i + 1) & 7]);
    }
    __m256d accA = _mm256_loadu_pd(lane);
    __m256d accB = _mm256_loadu_pd(lane + 4);
    const double *d = reinterpret_cast<const double *>(amps);
    for (; i + 4 <= i1; i += 4) {
        const __m256d vA = _mm256_loadu_pd(d + 2 * i);
        const __m256d vB = _mm256_loadu_pd(d + 2 * i + 4);
        accA = _mm256_fmadd_pd(vA, vA, accA);
        accB = _mm256_fmadd_pd(vB, vB, accB);
    }
    _mm256_storeu_pd(lane, accA);
    _mm256_storeu_pd(lane + 4, accB);
    for (; i < i1; ++i) {
        const double re = amps[i].real();
        const double im = amps[i].imag();
        lane[(2 * i) & 7] = std::fma(re, re, lane[(2 * i) & 7]);
        lane[(2 * i + 1) & 7] =
            std::fma(im, im, lane[(2 * i + 1) & 7]);
    }
    return spec::foldNorm(lane);
}

void
probChunkAvx2(const Amp *amps, double *out, std::uint64_t i0,
              std::uint64_t i1)
{
    const double *d = reinterpret_cast<const double *>(amps);
    std::uint64_t i = i0;
    for (; i + 4 <= i1; i += 4) {
        const __m256d v0 = _mm256_loadu_pd(d + 2 * i);
        const __m256d v1 = _mm256_loadu_pd(d + 2 * i + 4);
        // unpack keeps 128-bit halves: re = [r0 r2 r1 r3] — the
        // fma is elementwise, so compute then restore index order.
        const __m256d re = _mm256_unpacklo_pd(v0, v1);
        const __m256d im = _mm256_unpackhi_pd(v0, v1);
        const __m256d n =
            _mm256_fmadd_pd(re, re, _mm256_mul_pd(im, im));
        _mm256_storeu_pd(out + i, _mm256_permute4x64_pd(n, 0xD8));
    }
    for (; i < i1; ++i)
        out[i] = spec::normPoint(amps[i]);
}

Amp
innerChunkAvx2(const Amp *lhs, const Amp *rhs, std::uint64_t i0,
               std::uint64_t i1)
{
    // 4 absolute complex lanes: acc01 = lanes 0,1; acc23 = 2,3.
    alignas(32) Amp lane[spec::kCplxLanes] = {};
    std::uint64_t i = i0;
    for (; i < i1 && (i & 3); ++i)
        lane[i & 3] = lane[i & 3] + spec::conjMul(lhs[i], rhs[i]);
    double *lp = reinterpret_cast<double *>(lane);
    __m256d acc01 = _mm256_loadu_pd(lp);
    __m256d acc23 = _mm256_loadu_pd(lp + 4);
    const double *ld = reinterpret_cast<const double *>(lhs);
    const double *rd = reinterpret_cast<const double *>(rhs);
    for (; i + 4 <= i1; i += 4) {
        acc01 = _mm256_add_pd(
            acc01, conjMulV(_mm256_loadu_pd(ld + 2 * i),
                            _mm256_loadu_pd(rd + 2 * i)));
        acc23 = _mm256_add_pd(
            acc23, conjMulV(_mm256_loadu_pd(ld + 2 * i + 4),
                            _mm256_loadu_pd(rd + 2 * i + 4)));
    }
    _mm256_storeu_pd(lp, acc01);
    _mm256_storeu_pd(lp + 4, acc23);
    for (; i < i1; ++i)
        lane[i & 3] = lane[i & 3] + spec::conjMul(lhs[i], rhs[i]);
    return spec::foldCplx(lane);
}

Amp
expPauliChunkAvx2(const Amp *amps, std::uint64_t x,
                  std::uint64_t z, int quadrant, std::uint64_t i0,
                  std::uint64_t i1)
{
    const bool qodd = (quadrant & 1) != 0;
    // Per-lane phase sign masks, indexed by the 2-complex group
    // base's Z-parity s: lane j's total negation is s ^
    // parity(j & z), combined with the quadrant's component flips
    // (see spec::phasePoint — all sign-bit exact).
    __m256d phaseMask[2];
    for (int s = 0; s < 2; ++s) {
        bool f[4];
        for (int j = 0; j < 2; ++j) {
            const bool t =
                ((s ^ parity(static_cast<std::uint64_t>(j) & z)) &
                 1) != 0;
            bool f0;
            bool f1;
            switch (quadrant & 3) {
              case 0:
                f0 = t;
                f1 = t;
                break;
              case 1:
                f0 = !t;
                f1 = t;
                break;
              case 2:
                f0 = !t;
                f1 = !t;
                break;
              default:
                f0 = t;
                f1 = !t;
                break;
            }
            f[2 * j] = f0;
            f[2 * j + 1] = f1;
        }
        phaseMask[s] = signMask256(f[0], f[1], f[2], f[3]);
    }
    const std::uint64_t pbase = x & ~1ull;
    const bool pswap = (x & 1ull) != 0;
    const std::uint64_t zhigh = z & ~1ull;

    alignas(32) Amp lane[spec::kCplxLanes] = {};
    std::uint64_t i = i0;
    for (; i < i1 && (i & 3); ++i) {
        const Amp c =
            spec::phasePoint(amps[i], quadrant, parity(i & z));
        lane[i & 3] = lane[i & 3] + spec::conjMul(amps[i ^ x], c);
    }
    double *lp = reinterpret_cast<double *>(lane);
    __m256d acc01 = _mm256_loadu_pd(lp);
    __m256d acc23 = _mm256_loadu_pd(lp + 4);
    const double *d = reinterpret_cast<const double *>(amps);
    for (; i + 4 <= i1; i += 4) {
        // Two 2-complex groups per iteration, one per accumulator.
        for (int g = 0; g < 2; ++g) {
            const std::uint64_t ig = i + 2 * g;
            const __m256d v = _mm256_loadu_pd(d + 2 * ig);
            const int s = parity(ig & zhigh);
            const __m256d c = _mm256_xor_pd(
                qodd ? swapPairs(v) : v, phaseMask[s]);
            __m256d bp = _mm256_loadu_pd(d + 2 * (ig ^ pbase));
            if (pswap)
                bp = _mm256_permute2f128_pd(bp, bp, 0x01);
            const __m256d contrib = conjMulV(bp, c);
            if (g == 0)
                acc01 = _mm256_add_pd(acc01, contrib);
            else
                acc23 = _mm256_add_pd(acc23, contrib);
        }
    }
    _mm256_storeu_pd(lp, acc01);
    _mm256_storeu_pd(lp + 4, acc23);
    for (; i < i1; ++i) {
        const Amp c =
            spec::phasePoint(amps[i], quadrant, parity(i & z));
        lane[i & 3] = lane[i & 3] + spec::conjMul(amps[i ^ x], c);
    }
    return spec::foldCplx(lane);
}

} // namespace

const KernelTable &
avx2Table()
{
    static const KernelTable table = [] {
        KernelTable t;
        t.tier = SimdTier::Avx2;
        t.apply1q = &apply1qAvx2;
        t.diagTables = &diagTablesAvx2;
        t.cxQuads = &cxQuadsAvx2;
        t.czQuads = &czQuadsAvx2;
        t.swapQuads = &swapQuadsAvx2;
        t.normChunk = &normChunkAvx2;
        t.probChunk = &probChunkAvx2;
        t.innerChunk = &innerChunkAvx2;
        t.expPauliChunk = &expPauliChunkAvx2;
        return t;
    }();
    return table;
}

bool
avx2Compiled()
{
    return true;
}

} // namespace varsaw::kern::detail

#else // !(__AVX2__ && __FMA__)

namespace varsaw::kern::detail {

const KernelTable &
avx2Table()
{
    return scalarTable();
}

bool
avx2Compiled()
{
    return false;
}

} // namespace varsaw::kern::detail

#endif
