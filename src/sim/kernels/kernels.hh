/**
 * @file
 * Explicit-SIMD statevector kernels with runtime ISA dispatch.
 *
 * Every hot per-amplitude loop of the Statevector lives behind the
 * function-pointer table below, with three implementations compiled
 * into every binary as separate translation units carrying their own
 * arch flags (CMakeLists): a scalar reference (`-ffp-contract=off`,
 * explicit std::fma), an AVX2+FMA tier, and an AVX-512 tier. One
 * table is resolved at startup from the cpuid probe
 * (util/cpu_features) — or forced by `VARSAW_SIMD=
 * {scalar,avx2,avx512,auto}` / the drivers' `--simd` flag — so the
 * same binary runs on any x86-64 machine and uses the widest vectors
 * the host actually has.
 *
 * THE DETERMINISM CONTRACT — the headline guarantee and the reason
 * the three tiers are written by hand rather than left to the
 * auto-vectorizer: **every tier is bit-identical to the scalar
 * reference.** This is what keeps results a pure function of
 * (backend seed, job content) across heterogeneous machines, so the
 * shared service's cross-process caches stay pure memoization no
 * matter which host computed an entry. It holds because:
 *
 *  - Each kernel's per-element arithmetic is a fixed rounding DAG
 *    (see the spec functions in kernel_spec.hh): where a vector
 *    tier uses a fused multiply-add the scalar reference calls
 *    std::fma, and `-ffp-contract=off` on all three kernel TUs
 *    stops the compiler from fusing (or un-fusing) anything else.
 *  - Reductions keep the fixed-chunk pairwise merge of
 *    util/parallel and, inside a chunk, accumulate into a fixed
 *    number of lanes — 8 double lanes (norm) or 4 complex lanes
 *    (inner product, Pauli expectation), assigned by ABSOLUTE index
 *    (`i % lanes`) — folded in one documented order. The scalar
 *    reference maintains the same lanes, so SIMD lane-partials fold
 *    exactly like the reference's.
 *  - Data movement (CX/SWAP) and sign flips (CZ, Pauli phases) are
 *    exact in every tier by construction.
 *
 * Kernel functions operate on half-open ranges (pair, quad, or
 * amplitude index ranges) so the Statevector can keep driving them
 * through util/parallel's fixed chunk decomposition; the table is
 * fetched once per kernel call, so a concurrent tier switch never
 * mixes tiers inside one sweep.
 */

#ifndef VARSAW_SIM_KERNELS_KERNELS_HH
#define VARSAW_SIM_KERNELS_KERNELS_HH

#include <complex>
#include <cstdint>

#include "sim/gate.hh"

namespace varsaw::kern {

using Amp = std::complex<double>;

/** Dispatchable ISA tiers, widest last. */
enum class SimdTier
{
    Scalar = 0, //!< portable reference (std::fma, no intrinsics)
    Avx2 = 1,   //!< 256-bit AVX2 + FMA3
    Avx512 = 2, //!< 512-bit AVX-512 F + DQ
};

/** Printable tier name ("scalar" / "avx2" / "avx512"). */
const char *simdTierName(SimdTier tier);

/**
 * Parse a tier spelling ("scalar", "avx2", "avx512", "auto",
 * case-sensitive). "auto" sets @p is_auto and leaves @p out alone.
 * Returns false on any other string.
 */
bool parseSimdTier(const char *text, SimdTier *out, bool *is_auto);

/**
 * Widest tier this binary can run HERE: the cpuid probe intersected
 * with what the compiler could build (a toolchain without AVX-512
 * support yields a binary whose ceiling is AVX2).
 */
SimdTier maxSupportedSimdTier();

/**
 * One fused diagonal gate in branch-free table form: amplitude i is
 * multiplied by `table[((i >> a) & 1) | (((i >> b) & 1) << 1)]`
 * (a == b for one-qubit diagonals, so the selector is 0 or 3; the
 * parity pattern of RZZ is {f0, f1, f1, f0}). CZ sets @ref negate
 * instead: selector 3 negates the amplitude EXACTLY (sign-bit
 * flip), matching the standalone quad kernel bit-for-bit — a fused
 * CZ and an unfused one must stay interchangeable across the
 * engine's prep/suffix span boundaries.
 */
struct DiagTableGate
{
    int a = 0;
    int b = 0;
    Amp table[4] = {Amp(1, 0), Amp(1, 0), Amp(1, 0), Amp(1, 0)};
    bool negate = false;
};

/**
 * The per-ISA kernel set. All functions are hot-loop bodies over
 * half-open ranges; the caller owns chunking and threading.
 */
struct KernelTable
{
    SimdTier tier = SimdTier::Scalar;

    /**
     * apply1Q over pair indices [k0, k1) of target qubit q: the
     * two-level unit-stride block walk (adjacent stride-2 pairs for
     * q == 0), each pair updated as
     *   lo' = m00*lo + m01*hi,  hi' = m10*lo + m11*hi
     * with the cfma/cmul rounding DAG of kernel_spec.hh.
     */
    void (*apply1q)(Amp *amps, int q, std::uint64_t k0,
                    std::uint64_t k1, const Matrix2 &m);

    /**
     * Fused diagonal sweep over amplitude indices [i0, i1): each
     * amplitude is multiplied by every gate's selected factor in
     * gate order (or sign-flipped for negate gates). Single
     * diagonal gates, the RZZ parity-table kernel, and whole fused
     * runs all route here.
     */
    void (*diagTables)(Amp *amps, std::uint64_t i0,
                       std::uint64_t i1, const DiagTableGate *gates,
                       std::size_t count);

    /** CX over quad indices [k0, k1): swap the target pair where
     * the control bit is set. Pure data movement — exact. */
    void (*cxQuads)(Amp *amps, int control, int target,
                    std::uint64_t k0, std::uint64_t k1);

    /** CZ over quad indices [k0, k1): negate amplitudes with both
     * bits set (exact sign flip). */
    void (*czQuads)(Amp *amps, int a, int b, std::uint64_t k0,
                    std::uint64_t k1);

    /** SWAP over quad indices [k0, k1). Pure data movement. */
    void (*swapQuads)(Amp *amps, int a, int b, std::uint64_t k0,
                      std::uint64_t k1);

    /**
     * Chunk partial of the squared norm over [i0, i1): 8 absolute-
     * indexed double lanes, folded ((0+1)+(2+3)) + ((4+5)+(6+7)).
     */
    double (*normChunk)(const Amp *amps, std::uint64_t i0,
                        std::uint64_t i1);

    /** out[i] = |amps[i]|^2 = fma(re, re, im*im) over [i0, i1). */
    void (*probChunk)(const Amp *amps, double *out,
                      std::uint64_t i0, std::uint64_t i1);

    /**
     * Chunk partial of <lhs|rhs> over [i0, i1): 4 absolute-indexed
     * complex lanes, folded (0+1) + (2+3).
     */
    Amp (*innerChunk)(const Amp *lhs, const Amp *rhs,
                      std::uint64_t i0, std::uint64_t i1);

    /**
     * Chunk partial of <psi|P|psi> over [i0, i1) for the Pauli
     * string with X-mask @p x, Z-mask @p z and phase i^quadrant:
     * per element, conj(amps[i^x]) * (i^quadrant * (-1)^
     * parity(i & z) * amps[i]), phase/sign applied as EXACT
     * swaps/sign flips, accumulated into the same 4 complex lanes
     * as innerChunk.
     */
    Amp (*expPauliChunk)(const Amp *amps, std::uint64_t x,
                         std::uint64_t z, int quadrant,
                         std::uint64_t i0, std::uint64_t i1);
};

/**
 * The currently installed table. Fetch ONCE per kernel call and use
 * the same reference for the whole sweep.
 */
const KernelTable &activeKernels();

/** Tier of the currently installed table. */
SimdTier activeSimdTier();

/**
 * Install the widest supported tier <= @p requested and return what
 * was actually installed (requests above the host's ceiling clamp;
 * results are bit-identical at every tier, so this never changes
 * any output). Thread-safe; in-flight kernel calls finish on the
 * table they fetched.
 */
SimdTier setSimdTier(SimdTier requested);

/**
 * Tier selected at startup: VARSAW_SIMD when set (clamped to the
 * host ceiling, with a warning when clamping), else the ceiling.
 */
SimdTier defaultSimdTier();

/** Per-tier tables, for direct tier-vs-tier testing. */
const KernelTable &kernelsFor(SimdTier tier);

namespace detail {

/** Per-TU table factories (see kernels_{scalar,avx2,avx512}.cc). */
const KernelTable &scalarTable();
const KernelTable &avx2Table();
const KernelTable &avx512Table();

/** Whether the vector TUs were built with real intrinsics. */
bool avx2Compiled();
bool avx512Compiled();

} // namespace detail

} // namespace varsaw::kern

#endif // VARSAW_SIM_KERNELS_KERNELS_HH
