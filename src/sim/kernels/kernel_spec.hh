/**
 * @file
 * INTERNAL: the rounding-DAG specification shared by all kernel
 * tiers, plus the traversal helpers that turn qubit indices into
 * contiguous memory segments.
 *
 * Only the three per-ISA translation units in this directory may
 * include this header — they are the TUs compiled with
 * `-ffp-contract=off`, which is what makes the written DAGs below
 * the DAGs that actually execute. Everything here is `static` so
 * each TU gets its own copy compiled under its own flags; a copy
 * compiled elsewhere (under default contraction) must never be
 * chosen by the linker for a kernel TU.
 *
 * THE SPEC: every per-element operation is written once, as the
 * exact sequence of correctly-rounded IEEE-754 operations every
 * tier must perform. IEEE doubles make this sufficient for bit-
 * identity: if two implementations perform the same rounding DAG
 * per element, their results match bit for bit, regardless of lane
 * count or instruction encoding. The vector tiers implement these
 * same DAGs with the fused vfmadd/vfmaddsub family; the scalar
 * reference calls std::fma. Reductions additionally fix the lane
 * assignment (by ABSOLUTE element index, so a chunk's scalar head
 * before the vector-aligned body lands in the same lane at every
 * tier) and the lane fold order (foldNorm / foldCplx below).
 */

#ifndef VARSAW_SIM_KERNELS_KERNEL_SPEC_HH
#define VARSAW_SIM_KERNELS_KERNEL_SPEC_HH

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "sim/kernels/kernels.hh"
#include "util/bitops.hh"

namespace varsaw::kern::spec {

// ---------------------------------------------------------------
// Complex arithmetic DAGs.
// ---------------------------------------------------------------

/**
 * m * a. The canonical complex multiply of every kernel:
 *   re = fma(a.re, m.re, -(a.im * m.im))
 *   im = fma(a.im, m.re,  a.re * m.im)
 * Vector form: fmaddsub(dup(a), bcast(m.re),
 *                       mul(swapPairs(a), bcast(m.im))).
 */
static inline Amp
cmul(const Amp &a, const Amp &m)
{
    return Amp(
        std::fma(a.real(), m.real(), -(a.imag() * m.imag())),
        std::fma(a.imag(), m.real(), a.real() * m.imag()));
}

/**
 * m * a + acc:
 *   re = fma(a.re, m.re, acc.re - a.im * m.im)
 *   im = fma(a.im, m.re, acc.im + a.re * m.im)
 * Vector form: fmadd(a, bcast(m.re),
 *                    addsub(acc, mul(swapPairs(a), bcast(m.im)))).
 */
static inline Amp
cfma(const Amp &a, const Amp &m, const Amp &acc)
{
    return Amp(
        std::fma(a.real(), m.real(),
                 acc.real() - a.imag() * m.imag()),
        std::fma(a.imag(), m.real(),
                 acc.imag() + a.real() * m.imag()));
}

/**
 * conj(l) * r, the inner-product / expectation contribution:
 *   re = fma(l.im, r.im,   l.re * r.re)
 *   im = fma(l.re, r.im, -(l.im * r.re))
 * Vector form: fmsubadd(swapPairs(l), dupIm(r),
 *                       mul(l, dupRe(r))).
 */
static inline Amp
conjMul(const Amp &l, const Amp &r)
{
    return Amp(
        std::fma(l.imag(), r.imag(), l.real() * r.real()),
        std::fma(l.real(), r.imag(), -(l.imag() * r.real())));
}

/** |a|^2 = fma(re, re, im * im). */
static inline double
normPoint(const Amp &a)
{
    return std::fma(a.real(), a.real(), a.imag() * a.imag());
}

/**
 * apply1Q pair update:
 *   lo' = cfma(lo, m00, cmul(hi, m01))
 *   hi' = cfma(lo, m10, cmul(hi, m11))
 */
static inline void
pair1q(Amp &lo, Amp &hi, const Matrix2 &m)
{
    const Amp a0 = lo;
    const Amp a1 = hi;
    lo = cfma(a0, m.m00, cmul(a1, m.m01));
    hi = cfma(a0, m.m10, cmul(a1, m.m11));
}

/**
 * i^quadrant * (-1)^negate * a — EXACT (component swaps and
 * sign-bit flips only), so every tier reproduces it bit for bit,
 * including the signs of zeros.
 */
static inline Amp
phasePoint(const Amp &a, int quadrant, bool negate)
{
    double re = a.real();
    double im = a.imag();
    switch (quadrant & 3) {
      case 0:
        break;
      case 1: { // i * a
        const double t = re;
        re = -im;
        im = t;
        break;
      }
      case 2: // -a
        re = -re;
        im = -im;
        break;
      default: { // -i * a
        const double t = re;
        re = im;
        im = -t;
        break;
      }
    }
    if (negate) {
        re = -re;
        im = -im;
    }
    return Amp(re, im);
}

/** One amplitude through a fused diagonal run, in gate order. */
static inline Amp
diagPoint(Amp a, std::uint64_t i, const DiagTableGate *gates,
          std::size_t count)
{
    for (std::size_t g = 0; g < count; ++g) {
        const DiagTableGate &d = gates[g];
        const std::uint64_t sel =
            ((i >> d.a) & 1ull) | (((i >> d.b) & 1ull) << 1);
        if (d.negate) {
            if (sel == 3)
                a = Amp(-a.real(), -a.imag());
        } else {
            a = cmul(a, d.table[sel]);
        }
    }
    return a;
}

// ---------------------------------------------------------------
// Reduction lane spec.
// ---------------------------------------------------------------

/** Norm accumulates into 8 double lanes: flat double position
 * (2*i for re, 2*i+1 for im) mod 8. */
constexpr int kNormLanes = 8;

/** Complex reductions accumulate into 4 complex lanes: i mod 4. */
constexpr int kCplxLanes = 4;

/** Fixed fold of the 8 norm lanes. */
static inline double
foldNorm(const double lane[kNormLanes])
{
    return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
        ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

/** Fixed fold of the 4 complex lanes. */
static inline Amp
foldCplx(const Amp lane[kCplxLanes])
{
    return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

// ---------------------------------------------------------------
// Traversal helpers: qubit index math -> contiguous segments.
// ---------------------------------------------------------------

/**
 * Invoke seg(lo, hi, len) on each maximal contiguous run of the
 * pair range [k0, k1) of target qubit q >= 1: lo and hi point at
 * `len` unit-stride amplitudes whose indices differ by 1 << q.
 * (q == 0 has no contiguous halves — its adjacent stride-2 pairs
 * are handled by the per-tier kernels directly.)
 */
template <typename Seg>
static inline void
forEachPairSegment(Amp *amps, int q, std::uint64_t k0,
                   std::uint64_t k1, Seg seg)
{
    const std::uint64_t bit = 1ull << q;
    std::uint64_t k = k0;
    while (k < k1) {
        const std::uint64_t block = k >> q;
        const std::uint64_t off0 = k & (bit - 1);
        const std::uint64_t off_end =
            std::min<std::uint64_t>(bit, off0 + (k1 - k));
        Amp *base = amps + (block << (q + 1));
        seg(base + off0, base + bit + off0, off_end - off0);
        k += off_end - off0;
    }
}

/**
 * Invoke seg(i, len) on each maximal contiguous run of the quad
 * range [k0, k1): i = insertTwoZeroBits(k, a, b) | set, and the
 * following `len` quad indices map to i+1 .. i+len-1 (the low
 * min(a, b) bits of k pass through unshifted).
 */
template <typename Seg>
static inline void
forEachQuadRun(int a, int b, std::uint64_t k0, std::uint64_t k1,
               std::uint64_t set, Seg seg)
{
    const int mn = a < b ? a : b;
    const std::uint64_t run = 1ull << mn;
    std::uint64_t k = k0;
    while (k < k1) {
        const std::uint64_t off = k & (run - 1);
        const std::uint64_t len =
            std::min<std::uint64_t>(run - off, k1 - k);
        seg(insertTwoZeroBits(k, a, b) | set, len);
        k += len;
    }
}

} // namespace varsaw::kern::spec

#endif // VARSAW_SIM_KERNELS_KERNEL_SPEC_HH
