#include "sim/circuit_hash.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "sim/job.hh"
#include "util/rng.hh"

namespace varsaw {

namespace {

/** Incremental 64-bit hash accumulator over words. */
class HashStream
{
  public:
    void fold(std::uint64_t word) { h_ = mix64(h_, word); }

    void fold(double value)
    {
        // Canonicalize signed zero and NaN payloads so equal-valued
        // doubles hash equally.
        if (value == 0.0)
            value = 0.0;
        if (std::isnan(value))
            value = std::numeric_limits<double>::quiet_NaN();
        fold(std::bit_cast<std::uint64_t>(value));
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 0x243F6A8885A308D3ull; // pi fractional bits
};

/** Quantize an angle to a 2^-32-resolution grid. */
std::uint64_t
quantize(double value)
{
    const double scaled = value * 4294967296.0; // 2^32
    // Angles are O(1); anything outside the representable grid is
    // hashed by its raw bits instead of being clamped together.
    if (!std::isfinite(scaled) || std::abs(scaled) >= 9.0e18)
        return std::bit_cast<std::uint64_t>(value);
    return static_cast<std::uint64_t>(
        static_cast<std::int64_t>(std::llround(scaled)));
}

/** Fold one gate op into the stream. */
void
foldOp(HashStream &h, const GateOp &op)
{
    h.fold(static_cast<std::uint64_t>(op.kind));
    h.fold(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(op.q0)));
    h.fold(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(op.q1)));
    h.fold(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(op.paramIndex)));
    h.fold(op.param);
}

/** Fold the measurement spec (preceded by its separator). */
void
foldMeasurements(HashStream &h, const std::vector<int> &measured)
{
    h.fold(static_cast<std::uint64_t>(0xFEEDFACEu));
    for (int q : measured)
        h.fold(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(q)));
}

} // namespace

std::uint64_t
circuitStructuralHash(const Circuit &circuit)
{
    HashStream h;
    h.fold(static_cast<std::uint64_t>(circuit.numQubits()));
    h.fold(static_cast<std::uint64_t>(circuit.numParams()));
    for (const auto &op : circuit.ops())
        foldOp(h, op);
    foldMeasurements(h, circuit.measuredQubits());
    return h.value();
}

std::uint64_t
circuitPrefixHash(const Circuit &circuit, std::size_t count)
{
    const auto &ops = circuit.ops();
    if (count > ops.size())
        count = ops.size();
    HashStream h;
    h.fold(static_cast<std::uint64_t>(circuit.numQubits()));
    for (std::size_t i = 0; i < count; ++i)
        foldOp(h, ops[i]);
    return h.value();
}

std::uint64_t
jobCircuitHash(const CircuitJob &job)
{
    if (!job.prep)
        return circuitStructuralHash(job.circuit);
    // Mirror circuitStructuralHash over the flattened circuit:
    // width, combined parameter count, prep ops then suffix ops,
    // then the suffix's measurement spec.
    HashStream h;
    h.fold(static_cast<std::uint64_t>(job.prep->numQubits()));
    h.fold(static_cast<std::uint64_t>(std::max(
        job.prep->numParams(), job.circuit.numParams())));
    for (const auto &op : job.prep->ops())
        foldOp(h, op);
    for (const auto &op : job.circuit.ops())
        foldOp(h, op);
    foldMeasurements(h, job.circuit.measuredQubits());
    return h.value();
}

std::uint64_t
parameterHash(const std::vector<double> &params)
{
    HashStream h;
    h.fold(static_cast<std::uint64_t>(params.size()));
    for (double p : params)
        h.fold(quantize(p));
    return h.value();
}

std::size_t
JobKeyHasher::operator()(const JobKey &key) const
{
    const std::uint64_t h =
        mix64(mix64(key.circuitHash, key.paramsHash), key.shots);
    if constexpr (sizeof(std::size_t) >= sizeof(std::uint64_t)) {
        return static_cast<std::size_t>(h);
    } else {
        // 32-bit size_t: fold rather than truncate the high word.
        return static_cast<std::size_t>(h ^ (h >> 32));
    }
}

JobKey
makeJobKey(const CircuitJob &job)
{
    return {jobCircuitHash(job), parameterHash(job.params),
            job.shots};
}

std::uint64_t
jobStream(const JobKey &key)
{
    // Domain-separated from JobKeyHasher (which feeds shots in
    // unmixed) so bucket placement and sampling streams stay
    // uncorrelated even for adversarial key sequences.
    constexpr std::uint64_t kStreamDomain = 0x5374726561'6d4964ull;
    return mix64(mix64(key.circuitHash, key.paramsHash),
                 mix64(kStreamDomain, key.shots));
}

} // namespace varsaw
