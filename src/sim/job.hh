/**
 * @file
 * Units of work shared by the executors and the batched runtime.
 *
 * A CircuitJob is one (circuit, parameters, shots) submission; a
 * Batch is the ordered set of jobs one estimator tick produces.
 * Estimators build a Batch per objective evaluation and hand it to
 * BatchExecutor instead of looping over Executor::execute(). A
 * JobView is the non-owning shape of the same submission: backends
 * consume views, so the legacy serial execute() path can describe a
 * caller's circuit without deep-copying it into a transient job.
 *
 * Jobs come in two shapes:
 *  - plain: `circuit` is the complete measurement circuit;
 *  - prefix-sharing: `prep` points at a state-prep circuit shared
 *    (by shared_ptr) across many jobs, and `circuit` holds only the
 *    measurement suffix (basis rotations + measurement spec) over
 *    it. This is how one objective evaluation's N basis circuits
 *    are submitted without cloning the ansatz N times, and how the
 *    SimEngine recognizes that they share one prepared state.
 *
 * This header lives in sim/ (not runtime/) on purpose: jobs and
 * their content hashes are the vocabulary shared by sim/,
 * mitigation/, and runtime/, and the lower layers must build
 * without the runtime.
 */

#ifndef VARSAW_SIM_JOB_HH
#define VARSAW_SIM_JOB_HH

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/circuit.hh"

namespace varsaw {

/**
 * Non-owning view of one circuit submission.
 *
 * The shape backends execute: it borrows the caller's circuit and
 * parameter storage instead of copying them, so the serial
 * Executor::execute() path costs no per-call clone. The referenced
 * circuit/params must outlive the view — trivially true for the
 * synchronous backend calls this type is passed through.
 */
struct JobView
{
    /** Full circuit, or the measurement suffix when prep is set. */
    const Circuit &circuit;
    const std::vector<double> &params;
    std::uint64_t shots = 0;
    /** Shared state-prep prefix; null for a plain job. */
    const Circuit *prep = nullptr;

    /** Register width (the prep's width when one is attached). */
    int numQubits() const
    {
        return prep ? prep->numQubits() : circuit.numQubits();
    }

    /** Qubits read out, in classical-bit order. */
    const std::vector<int> &measuredQubits() const
    {
        return circuit.measuredQubits();
    }

    /** Number of measured qubits. */
    int numMeasured() const { return circuit.numMeasured(); }

    /** One-qubit gates across prep + suffix. */
    int oneQubitGateCount() const
    {
        return (prep ? prep->oneQubitGateCount() : 0) +
            circuit.oneQubitGateCount();
    }

    /** Two-qubit gates across prep + suffix. */
    int twoQubitGateCount() const
    {
        return (prep ? prep->twoQubitGateCount() : 0) +
            circuit.twoQubitGateCount();
    }

    /**
     * The complete circuit this submission denotes: the plain
     * circuit, or prep + suffix concatenated (with the suffix's
     * measurement spec). Used by backends that cannot split
     * execution (density matrix) and by diagnostics; hot paths work
     * on the two halves directly.
     */
    Circuit flattened() const
    {
        if (!prep)
            return circuit;
        Circuit full(prep->numQubits(), circuit.label());
        full.append(*prep);
        full.append(circuit);
        for (int q : circuit.measuredQubits())
            full.measure(q);
        return full;
    }
};

/** One circuit submission. */
struct CircuitJob
{
    /** Full circuit, or the measurement suffix when prep is set. */
    Circuit circuit;
    std::vector<double> params;
    std::uint64_t shots = 0;
    /** Shared state-prep prefix; null for a plain job. */
    std::shared_ptr<const Circuit> prep;

    /** Non-owning view of this job (valid while the job lives). */
    JobView view() const
    {
        return {circuit, params, shots, prep.get()};
    }

    /** Register width (the prep's width when one is attached). */
    int numQubits() const { return view().numQubits(); }

    /** Qubits read out, in classical-bit order. */
    const std::vector<int> &measuredQubits() const
    {
        return circuit.measuredQubits();
    }

    /** Number of measured qubits. */
    int numMeasured() const { return view().numMeasured(); }

    /** One-qubit gates across prep + suffix. */
    int oneQubitGateCount() const
    {
        return view().oneQubitGateCount();
    }

    /** Two-qubit gates across prep + suffix. */
    int twoQubitGateCount() const
    {
        return view().twoQubitGateCount();
    }

    /** The complete circuit this job denotes (see JobView). */
    Circuit flattened() const { return view().flattened(); }
};

/** An ordered collection of jobs submitted together. */
class Batch
{
  public:
    Batch() = default;

    /** Reserve capacity for @p n jobs. */
    void reserve(std::size_t n) { jobs_.reserve(n); }

    /**
     * Append a job; returns its index within the batch, which is
     * also the index of its result in the runtime's output vector.
     */
    std::size_t add(Circuit circuit, std::vector<double> params,
                    std::uint64_t shots)
    {
        jobs_.push_back(
            {std::move(circuit), std::move(params), shots, nullptr});
        return jobs_.size() - 1;
    }

    /**
     * Append a prefix-sharing job: @p suffix (basis rotations +
     * measurement spec) executes over the state @p prep prepares.
     * The prep circuit is shared, not copied — every basis circuit
     * of one evaluation should pass the same shared_ptr.
     */
    std::size_t addPrefixed(std::shared_ptr<const Circuit> prep,
                            Circuit suffix,
                            std::vector<double> params,
                            std::uint64_t shots)
    {
        jobs_.push_back({std::move(suffix), std::move(params), shots,
                         std::move(prep)});
        return jobs_.size() - 1;
    }

    /** The jobs, in submission order. */
    const std::vector<CircuitJob> &jobs() const { return jobs_; }

    /** Number of jobs. */
    std::size_t size() const { return jobs_.size(); }

    /** Whether the batch holds no jobs. */
    bool empty() const { return jobs_.empty(); }

    /** Sum of the shots over all jobs. */
    std::uint64_t totalShots() const
    {
        std::uint64_t total = 0;
        for (const auto &job : jobs_)
            total += job.shots;
        return total;
    }

  private:
    std::vector<CircuitJob> jobs_;
};

} // namespace varsaw

#endif // VARSAW_SIM_JOB_HH
