/**
 * @file
 * Structural hashing of circuit jobs.
 *
 * A JobKey identifies a submission by what it computes — the
 * circuit's structure (gates, qubits, measurement spec), the bound
 * parameter values (quantized to a ~2.3e-10 rad grid, far below
 * shot noise or any optimizer step this stack takes, so only
 * physically indistinguishable angles collide), and the shot
 * count. Two submissions
 * with equal keys are redundant work: the ResultCache answers the
 * later one with the earlier one's sampled result instead of
 * re-executing.
 *
 * Keys are compared by (circuitHash, paramsHash, shots) without
 * re-checking the underlying job, so an accidental collision would
 * silently alias two jobs. Distinct jobs differing in params or
 * shots need a joint 128-bit collision; the worst case — distinct
 * circuits at identical params — needs a single 64-bit circuit-hash
 * collision, i.e. ~2^32 distinct circuit structures in one cache
 * epoch before the birthday bound bites. Workloads here submit a
 * few thousand structures per run, so this is accepted rather than
 * paid for with per-entry job storage.
 */

#ifndef VARSAW_SIM_CIRCUIT_HASH_HH
#define VARSAW_SIM_CIRCUIT_HASH_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/circuit.hh"

namespace varsaw {

struct CircuitJob;

/**
 * Structural hash of a circuit: qubit count, gate sequence (kind,
 * operands, bound angles, parameter slots) and measurement spec.
 * Labels are ignored — they are diagnostics, not semantics.
 */
std::uint64_t circuitStructuralHash(const Circuit &circuit);

/**
 * Structural hash of a circuit's leading @p count ops (qubit count
 * included, measurement spec and parameter count excluded). This is
 * the prep-state identity of the prefix-sharing engine: a state-prep
 * prefix hashes the same whether it is the leading slice of a full
 * measurement circuit or a standalone shared prep circuit.
 */
std::uint64_t circuitPrefixHash(const Circuit &circuit,
                                std::size_t count);

/**
 * Hash of a parameter vector, quantized to ~2^-32 radians per slot
 * so that values closer than floating-point noise map to the same
 * key while any physically distinct angles stay apart.
 */
std::uint64_t parameterHash(const std::vector<double> &params);

/** Content identity of one job: structure + params + shots. */
struct JobKey
{
    std::uint64_t circuitHash = 0;
    std::uint64_t paramsHash = 0;
    std::uint64_t shots = 0;

    bool operator==(const JobKey &other) const
    {
        return circuitHash == other.circuitHash &&
            paramsHash == other.paramsHash && shots == other.shots;
    }
};

/** Hash functor so JobKey can key an unordered_map. */
struct JobKeyHasher
{
    std::size_t operator()(const JobKey &key) const;
};

/**
 * Structural hash of the circuit a job denotes. For a plain job
 * this is circuitStructuralHash(job.circuit); for a prefix-sharing
 * job it hashes prep ops followed by suffix ops and the suffix's
 * measurement spec, producing the SAME value as hashing the
 * flattened (prep + suffix) circuit — so prefixed and cloned
 * submissions of identical work dedupe against each other.
 */
std::uint64_t jobCircuitHash(const CircuitJob &job);

/** Compute the content key of a job. */
JobKey makeJobKey(const CircuitJob &job);

/**
 * Sampling-stream id of a job: a pure function of its content key.
 * Every execution path that samples a job — a private BatchExecutor,
 * a shared ExecutionService session, a cache-off re-execution —
 * derives the job's RNG stream from this value, so a given
 * (backend seed, circuit, params, shots) submission draws the SAME
 * shots no matter when, where, or how often it runs. This is what
 * makes result caching a pure memoization (hit or recompute,
 * identical bits) and lets independent runtimes/sessions dedupe
 * against each other without their interleaving ever being able to
 * change a result.
 */
std::uint64_t jobStream(const JobKey &key);

} // namespace varsaw

#endif // VARSAW_SIM_CIRCUIT_HASH_HH
