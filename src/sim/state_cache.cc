#include "sim/state_cache.hh"

#include <algorithm>

#include "fault/fault_injector.hh"
#include "telemetry/metrics.hh"
#include "util/logging.hh"

namespace varsaw {

namespace {

/**
 * Process-wide mirror of StateCacheStats under `sim.state_cache.*`
 * (aggregated across every StateCache instance; the byte gauges sum
 * deltas, so they too aggregate correctly).
 */
struct StateCacheMetrics
{
    telemetry::Counter &hits;
    telemetry::Counter &misses;
    telemetry::Counter &evictions;
    telemetry::Counter &clears;
    telemetry::Gauge &bytesResident;
    telemetry::Gauge &peakBytes;

    static StateCacheMetrics &
    get()
    {
        auto &reg = telemetry::MetricsRegistry::instance();
        static StateCacheMetrics *m = new StateCacheMetrics{
            reg.counter("sim.state_cache.hits"),
            reg.counter("sim.state_cache.misses"),
            reg.counter("sim.state_cache.evictions"),
            reg.counter("sim.state_cache.clears"),
            reg.gauge("sim.state_cache.bytes_resident"),
            reg.gauge("sim.state_cache.peak_bytes"),
        };
        return *m;
    }
};

} // namespace

StateCache::StateCache(std::uint64_t byte_budget,
                       std::size_t max_entries)
    : byteBudget_(byte_budget), maxEntries_(max_entries)
{
    if (maxEntries_ < 1)
        panic("StateCache: entry cap must be >= 1");
}

void
StateCache::evictOneLocked()
{
    const PrepKey victim = lru_.back();
    auto it = entries_.find(victim);
    stats_.bytesResident -= it->second.bytes;
    if (telemetry::metricsEnabled()) {
        auto &m = StateCacheMetrics::get();
        m.evictions.add();
        m.bytesResident.add(
            -static_cast<std::int64_t>(it->second.bytes));
    }
    entries_.erase(it);
    lru_.pop_back();
    ++stats_.evictions;
}

StateCache::StatePtr
StateCache::getOrPrepare(const PrepKey &key,
                         const std::function<StatePtr()> &prepare)
{
    std::shared_future<StatePtr> waitOn;
    std::promise<StatePtr> publish;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++stats_.hits;
            if (telemetry::metricsEnabled())
                StateCacheMetrics::get().hits.add();
            // Touch: a completed entry moves to the front of the
            // LRU order. In-flight entries are not in lru_ yet;
            // they enter at the front on completion, which places
            // them exactly where this touch would have.
            if (it->second.completed)
                lru_.splice(lru_.begin(), lru_, it->second.lruIt);
            waitOn = it->second.future;
        } else {
            ++stats_.misses;
            if (telemetry::metricsEnabled())
                StateCacheMetrics::get().misses.add();
            entries_.emplace(key,
                             Entry{publish.get_future().share(), 0,
                                   false, lru_.end()});
            // Secondary entry bound, paid at claim time so the map
            // cannot grow without limit even before any preparation
            // completes. Only completed entries are evictable, and
            // — like the byte-budget loop below — never the
            // most-recently-completed one, which may be mid-
            // evaluation; if the excess is in-flight claims or that
            // protected entry, the cap is temporarily exceeded
            // rather than a claim broken (completion re-checks it).
            while (entries_.size() > maxEntries_ && lru_.size() > 1)
                evictOneLocked();
        }
    }

    if (waitOn.valid())
        return waitOn.get();

    // This caller claimed the key: run the preparation and publish
    // the state for everyone waiting on the shared future.
    StatePtr state;
    try {
        state = prepare();
    } catch (...) {
        // Propagate to the waiters and retract the claim so later
        // callers retry instead of hitting a forever-broken future.
        // The entry is provably still ours: in-flight claims are
        // never evicted or cleared, and duplicate claims for a live
        // key are impossible.
        publish.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.erase(key);
        throw;
    }

    // Injected insert failure (fault::FaultSite::StateCacheInsert):
    // the prepared state fails to become resident and the cache
    // degrades to bypass — the claim is retracted so later callers
    // re-prepare, while everyone already waiting on the shared
    // future still receives this state. Keyed by the prep key alone
    // (sticky: an uncacheable key stays uncacheable), so the
    // decision is deterministic for a given plan. Results cannot
    // change: prepared states are pure functions of (prefix,
    // params).
    {
        auto &injector = fault::FaultInjector::instance();
        if (injector.enabled() &&
            injector.shouldInject(fault::FaultSite::StateCacheInsert,
                                  key.combined())) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                entries_.erase(key);
                ++stats_.insertFailures;
            }
            publish.set_value(state);
            return state;
        }
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        Entry &entry = it->second;
        entry.completed = true;
        entry.bytes = entryBytes(state->numQubits());
        lru_.push_front(key);
        entry.lruIt = lru_.begin();
        stats_.bytesResident += entry.bytes;
        stats_.peakBytes =
            std::max(stats_.peakBytes, stats_.bytesResident);
        if (telemetry::metricsEnabled()) {
            auto &m = StateCacheMetrics::get();
            m.bytesResident.add(
                static_cast<std::int64_t>(entry.bytes));
            m.peakBytes.setMax(
                m.bytesResident.value());
        }
        // Byte budget (and the entry cap deferred at claim time),
        // paid at completion (the first point the entry's width —
        // hence size — is known). The entry that just completed is
        // never its own victim: an oversized state stays resident,
        // still serving hits, until a newer completion displaces
        // it.
        while ((stats_.bytesResident > byteBudget_ ||
                entries_.size() > maxEntries_) &&
               lru_.size() > 1)
            evictOneLocked();
    }
    publish.set_value(state);
    return state;
}

void
StateCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Completed entries only: in-flight claims must survive so
    // their waiters' futures resolve and the exactly-once contract
    // holds across the clear.
    for (const PrepKey &key : lru_)
        entries_.erase(key);
    lru_.clear();
    if (telemetry::metricsEnabled()) {
        auto &m = StateCacheMetrics::get();
        m.clears.add();
        m.bytesResident.add(
            -static_cast<std::int64_t>(stats_.bytesResident));
    }
    stats_.bytesResident = 0;
    ++stats_.clears;
}

std::size_t
StateCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::uint64_t
StateCache::bytesResident() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_.bytesResident;
}

StateCacheStats
StateCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
StateCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t resident = stats_.bytesResident;
    stats_ = StateCacheStats{};
    stats_.bytesResident = resident;
    stats_.peakBytes = resident;
}

} // namespace varsaw
