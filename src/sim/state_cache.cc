#include "sim/state_cache.hh"

#include "util/logging.hh"

namespace varsaw {

StateCache::StateCache(std::size_t max_entries)
    : maxEntries_(max_entries)
{
    if (maxEntries_ < 1)
        panic("StateCache: entry cap must be >= 1");
}

StateCache::StatePtr
StateCache::getOrPrepare(const PrepKey &key,
                         const std::function<StatePtr()> &prepare)
{
    std::shared_future<StatePtr> waitOn;
    std::promise<StatePtr> publish;
    std::uint64_t epoch = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++stats_.hits;
            waitOn = it->second;
        } else {
            // Bound the map before claiming. Under concurrency the
            // clear point follows claim-arrival order, so once a
            // workload exceeds the cap within one epoch the
            // *counters* (not results — prepared states are pure)
            // can vary with worker timing; keep distinct keys per
            // evaluation under the cap to keep them exact.
            // In-flight waiters hold their own shared_future
            // copies, so clearing under them is safe.
            if (entries_.size() >= maxEntries_) {
                entries_.clear();
                ++stats_.clears;
            }
            ++stats_.misses;
            epoch = stats_.clears;
            entries_.emplace(key, publish.get_future().share());
        }
    }

    if (waitOn.valid())
        return waitOn.get();

    // This caller claimed the key: run the preparation and publish
    // the state for everyone waiting on the shared future.
    StatePtr state;
    try {
        state = prepare();
    } catch (...) {
        // Propagate to the waiters and retract the claim so later
        // callers retry instead of hitting a forever-broken future.
        // The entry is provably still ours iff no clear happened
        // since the claim (duplicate claims within an epoch are
        // impossible).
        publish.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(mutex_);
        if (stats_.clears == epoch)
            entries_.erase(key);
        throw;
    }
    publish.set_value(state);
    return state;
}

void
StateCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    ++stats_.clears;
}

std::size_t
StateCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

StateCacheStats
StateCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
StateCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = StateCacheStats{};
}

} // namespace varsaw
