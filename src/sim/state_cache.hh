/**
 * @file
 * Cache of prepared quantum states, keyed by prep-circuit content.
 *
 * The storage half of the prefix-sharing SimEngine: a prepared
 * Statevector is a deterministic pure function of (prefix gate
 * sequence, parameter values), so once one caller has simulated it,
 * every other measurement suffix over the same prep can start from
 * the cached amplitudes instead of re-running the ansatz from
 * |0...0>.
 *
 * Concurrency contract: getOrPrepare() guarantees that exactly one
 * caller runs the preparation for a given key per cache epoch —
 * later callers (including concurrent ones) block on the first
 * caller's shared future. Because preparation is deterministic,
 * worker timing can influence neither the returned states nor
 * (thanks to the exactly-once claim) the preparation counters.
 */

#ifndef VARSAW_SIM_STATE_CACHE_HH
#define VARSAW_SIM_STATE_CACHE_HH

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "sim/statevector.hh"
#include "util/rng.hh"

namespace varsaw {

/** Content identity of a prepared state: prefix structure + params. */
struct PrepKey
{
    std::uint64_t structure = 0; //!< prefix-ops structural hash
    std::uint64_t params = 0;    //!< quantized parameter hash

    bool operator==(const PrepKey &other) const
    {
        return structure == other.structure &&
            params == other.params;
    }

    /** Single-word digest (grouping key for the batch scheduler). */
    std::uint64_t combined() const
    {
        return mix64(structure, params);
    }
};

/** Hash functor so PrepKey can key an unordered_map. */
struct PrepKeyHasher
{
    std::size_t operator()(const PrepKey &key) const
    {
        return static_cast<std::size_t>(
            mix64(key.structure, key.params));
    }
};

/** Hit/miss accounting for the prepared-state cache. */
struct StateCacheStats
{
    std::uint64_t hits = 0;        //!< answered from a cached state
    std::uint64_t misses = 0;      //!< preparations run (exactly one per key per epoch)
    std::uint64_t clears = 0;      //!< bulk evictions on reaching the cap

    double hitRate() const
    {
        const std::uint64_t total = hits + misses;
        return total == 0
            ? 0.0
            : static_cast<double>(hits) / static_cast<double>(total);
    }
};

/** Thread-safe, bounded cache of prepared states. */
class StateCache
{
  public:
    using StatePtr = std::shared_ptr<const Statevector>;

    /**
     * @param max_entries Entry cap. Prepared states are dense
     * (2^n amplitudes), so the default is deliberately small; on
     * reaching the cap the cache clears in bulk (a point determined
     * purely by the key sequence, never by worker timing).
     */
    explicit StateCache(std::size_t max_entries = 32);

    /**
     * Return the prepared state for @p key, running @p prepare at
     * most once per key per epoch. Concurrent callers with the same
     * key block on the preparing caller's shared future.
     */
    StatePtr getOrPrepare(const PrepKey &key,
                          const std::function<StatePtr()> &prepare);

    /** Drop all entries (statistics are kept). */
    void clear();

    /** Current entry count (including in-flight preparations). */
    std::size_t size() const;

    /** Entry cap. */
    std::size_t maxEntries() const { return maxEntries_; }

    /** Snapshot of the statistics. */
    StateCacheStats stats() const;

    /** Zero the statistics (entries are kept). */
    void resetStats();

  private:
    mutable std::mutex mutex_;
    std::size_t maxEntries_;
    /**
     * Key -> shared future of the prepared state. Entries are
     * inserted at claim time (before preparation finishes), so the
     * map doubles as the in-flight dedupe table: whoever inserts
     * runs the preparation, everyone else waits on the future.
     */
    std::unordered_map<PrepKey, std::shared_future<StatePtr>,
                       PrepKeyHasher>
        entries_;
    StateCacheStats stats_;
};

} // namespace varsaw

#endif // VARSAW_SIM_STATE_CACHE_HH
