/**
 * @file
 * Cache of prepared quantum states, keyed by prep-circuit content.
 *
 * The storage half of the prefix-sharing SimEngine: a prepared
 * Statevector is a deterministic pure function of (prefix gate
 * sequence, parameter values), so once one caller has simulated it,
 * every other measurement suffix over the same prep can start from
 * the cached amplitudes instead of re-running the ansatz from
 * |0...0>.
 *
 * Entries are dense 2^n-amplitude vectors — 16 bytes per amplitude,
 * so 1 MiB at 16 qubits and 1 GiB at 26 — which is why the cache is
 * governed by a **byte budget**, not just an entry count: each
 * completed entry is charged entryBytes(n) = sizeof(complex<double>)
 * << n, and when the resident total exceeds the budget the
 * least-recently-used completed entries are evicted one at a time.
 * The entry cap is retained only as a secondary bound. In-flight
 * preparations (claimed promises) are never evicted — not by the
 * budget, the cap, or clear() — so the exactly-once concurrency
 * contract below survives any eviction pressure.
 *
 * Concurrency contract: getOrPrepare() guarantees that exactly one
 * caller runs the preparation for a given key per residency — later
 * callers (including concurrent ones) block on the first caller's
 * shared future. Because preparation is deterministic, worker
 * timing can influence neither the returned states nor, as long as
 * the working set fits the budget, the preparation counters.
 */

#ifndef VARSAW_SIM_STATE_CACHE_HH
#define VARSAW_SIM_STATE_CACHE_HH

#include <complex>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "sim/statevector.hh"
#include "util/rng.hh"

namespace varsaw {

/** Content identity of a prepared state: prefix structure + params. */
struct PrepKey
{
    std::uint64_t structure = 0; //!< prefix-ops structural hash
    std::uint64_t params = 0;    //!< quantized parameter hash

    bool operator==(const PrepKey &other) const
    {
        return structure == other.structure &&
            params == other.params;
    }

    /** Single-word digest (display / diagnostics; the scheduler and
     * the cache compare full keys, so digest collisions only ever
     * cost a hash-bucket probe, never correctness). */
    std::uint64_t combined() const
    {
        return mix64(structure, params);
    }
};

/** Hash functor so PrepKey can key an unordered_map. */
struct PrepKeyHasher
{
    std::size_t operator()(const PrepKey &key) const
    {
        const std::uint64_t h = mix64(key.structure, key.params);
        if constexpr (sizeof(std::size_t) >= sizeof(std::uint64_t)) {
            return static_cast<std::size_t>(h);
        } else {
            // 32-bit size_t: fold the high word in instead of
            // truncating it away, so both 64-bit inputs still
            // influence the bucket.
            return static_cast<std::size_t>(h ^ (h >> 32));
        }
    }
};

/** Hit/miss and memory accounting for the prepared-state cache. */
struct StateCacheStats
{
    std::uint64_t hits = 0;   //!< answered from a cached (or in-flight) state
    std::uint64_t misses = 0; //!< preparations run (one per key per residency)
    std::uint64_t evictions = 0; //!< completed entries evicted (LRU, one at a time)
    std::uint64_t clears = 0;    //!< explicit clear() calls
    /** Completions that failed to become resident (injected
     * cache-insert faults): the cache degraded to bypass — waiters
     * still got the state, later callers re-prepare. */
    std::uint64_t insertFailures = 0;
    std::uint64_t bytesResident = 0; //!< bytes held by completed entries now
    std::uint64_t peakBytes = 0;     //!< high-water mark of bytesResident

    double hitRate() const
    {
        const std::uint64_t total = hits + misses;
        return total == 0
            ? 0.0
            : static_cast<double>(hits) / static_cast<double>(total);
    }
};

/** Thread-safe, byte-budgeted LRU cache of prepared states. */
class StateCache
{
  public:
    using StatePtr = std::shared_ptr<const Statevector>;

    /** Default byte budget: 2 GiB of resident amplitudes. */
    static constexpr std::uint64_t kDefaultByteBudget = 2ull << 30;

    /** Bytes charged for one cached n-qubit state. */
    static std::uint64_t entryBytes(int num_qubits)
    {
        return static_cast<std::uint64_t>(
                   sizeof(std::complex<double>))
            << num_qubits;
    }

    /**
     * @param byte_budget Resident-amplitude budget. Exceeding it
     * evicts least-recently-used completed entries one at a time;
     * the most recently completed entry always stays resident, so a
     * single state wider than the budget still serves its own hits
     * until something newer displaces it.
     * @param max_entries Secondary entry cap (soft while every
     * entry is an in-flight claim, which are never evicted).
     */
    explicit StateCache(std::uint64_t byte_budget = kDefaultByteBudget,
                        std::size_t max_entries = 32);

    /**
     * Return the prepared state for @p key, running @p prepare at
     * most once per key per residency. Concurrent callers with the
     * same key block on the preparing caller's shared future; the
     * claim cannot be evicted or cleared while in flight.
     */
    StatePtr getOrPrepare(const PrepKey &key,
                          const std::function<StatePtr()> &prepare);

    /**
     * Drop all completed entries (statistics are kept). In-flight
     * claims survive: their waiters' futures stay valid and their
     * states enter the cache on completion.
     */
    void clear();

    /** Current entry count (including in-flight preparations). */
    std::size_t size() const;

    /** Byte budget for resident completed entries. */
    std::uint64_t byteBudget() const { return byteBudget_; }

    /** Secondary entry cap. */
    std::size_t maxEntries() const { return maxEntries_; }

    /** Bytes currently held by completed entries. */
    std::uint64_t bytesResident() const;

    /** Snapshot of the statistics. */
    StateCacheStats stats() const;

    /** Zero the statistics except the resident-byte gauges, which
     * keep describing the entries still held. */
    void resetStats();

  private:
    struct Entry
    {
        /**
         * Inserted at claim time (before preparation finishes), so
         * the map doubles as the in-flight dedupe table: whoever
         * inserts runs the preparation, everyone else waits on the
         * future.
         */
        std::shared_future<StatePtr> future;
        std::uint64_t bytes = 0; //!< 0 while in flight
        bool completed = false;
        /** Position in lru_; valid only once completed. */
        std::list<PrepKey>::iterator lruIt;
    };

    /** Evict the LRU completed entry. Caller holds mutex_. */
    void evictOneLocked();

    mutable std::mutex mutex_;
    std::uint64_t byteBudget_;
    std::size_t maxEntries_;
    std::unordered_map<PrepKey, Entry, PrepKeyHasher> entries_;
    /** Completed entries, most recently used first. */
    std::list<PrepKey> lru_;
    StateCacheStats stats_;
};

} // namespace varsaw

#endif // VARSAW_SIM_STATE_CACHE_HH
