/**
 * @file
 * Scoped phase-attribution profiler: where does a job's wall-clock
 * actually go?
 *
 * The metrics registry (telemetry/metrics.hh) answers "how many" —
 * circuits deduped, preps reused, shots saved. This layer answers
 * "how long, and in which stage": every job's wall time is
 * attributed to a small fixed taxonomy of phases
 *
 *   queue_wait     admission queue entry -> a worker picks it up
 *   ledger_lookup  shared-ledger claim (dedupe decision, under the
 *                  ledger mutex)
 *   prep           state-prep prefix simulation (cache miss cost)
 *   suffix         measurement-suffix application + marginal
 *   sampling       drawing shots from the exact/noisy PMF
 *   retry_backoff  deterministic backoff sleeps between attempts
 *   export         telemetry serialization/flush (the observer
 *                  observing itself)
 *
 * recorded as `profile.phase.<name>_ns` histograms in the registry
 * (per-session series append the canonical `{session=...}` label),
 * so one snapshot shows the whole stack's time breakdown and the
 * existing exporters/introspection serve it for free.
 *
 * The profiler obeys the telemetry contract: it is a PURE OBSERVER.
 * Nothing reads a phase timing to make a decision, so results are
 * bit-identical with the profiler on or off (CI-gated), and a
 * disabled ScopedPhase costs one relaxed atomic load
 * (profilerEnabled()), compiled to constant false under
 * -DVARSAW_TELEMETRY_DISABLE.
 *
 * Clock discipline: all timestamps come from telemetry::nowNs() —
 * the one sanctioned monotonic clock — so instrumented layers never
 * touch std::chrono directly (varsaw-lint's nondeterminism rule
 * keeps them honest).
 */

#ifndef VARSAW_TELEMETRY_PROFILER_HH
#define VARSAW_TELEMETRY_PROFILER_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace varsaw::telemetry {

namespace detail {
extern std::atomic<bool> g_profilerEnabled;
} // namespace detail

/**
 * Whether phase sites should record. One relaxed atomic load;
 * constant false under -DVARSAW_TELEMETRY_DISABLE.
 */
inline bool
profilerEnabled()
{
#if defined(VARSAW_TELEMETRY_DISABLE)
    return false;
#else
    return detail::g_profilerEnabled.load(std::memory_order_relaxed);
#endif
}

/** Turn phase attribution on or off (results never depend on it). */
void setProfilerEnabled(bool enabled);

/** The fixed phase taxonomy (see file comment). */
enum class Phase : int
{
    QueueWait = 0,
    LedgerLookup,
    Prep,
    Suffix,
    Sampling,
    RetryBackoff,
    Export,
};

/** Number of phases in the taxonomy. */
inline constexpr int kPhaseCount = 7;

/** Canonical snake_case name of @p phase ("queue_wait", ...). */
const char *phaseName(Phase phase);

/** Full metric name of @p phase: `profile.phase.<name>_ns`. */
std::string phaseMetricName(Phase phase);

/**
 * Record @p ns into @p phase's process-wide histogram. Cheap (the
 * histograms are cached after the first call); callers still guard
 * on profilerEnabled().
 */
void recordPhaseNs(Phase phase, std::uint64_t ns);

/**
 * The per-session series of @p phase:
 * `profile.phase.<name>_ns{session=<session>}`. Registry-mutex
 * lookup — resolve once per session and cache the reference (it is
 * stable for the life of the process), never per record.
 */
Histogram &sessionPhaseHistogram(Phase phase,
                                 const std::string &session);

/**
 * RAII phase timer: stamps begin at construction, records the
 * elapsed time into the phase histogram at destruction. A disabled
 * ScopedPhase is one relaxed load and two dead branches — same
 * budget as ScopedSpan.
 *
 * An optional extra histogram (e.g. a per-session series resolved
 * via sessionPhaseHistogram) receives the same duration.
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(Phase phase, Histogram *extra = nullptr)
    {
        if (!profilerEnabled())
            return;
        armed_ = true;
        phase_ = phase;
        extra_ = extra;
        beginNs_ = nowNs();
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

    ~ScopedPhase()
    {
        if (!armed_)
            return;
        const std::uint64_t ns = nowNs() - beginNs_;
        recordPhaseNs(phase_, ns);
        if (extra_)
            extra_->record(ns);
    }

    /** Whether this timer is recording (profiler was on at start). */
    bool armed() const { return armed_; }

  private:
    Phase phase_ = Phase::QueueWait;
    Histogram *extra_ = nullptr;
    std::uint64_t beginNs_ = 0;
    bool armed_ = false;
};

/**
 * Quantile estimate (in ns) from a snapshotted histogram: walks the
 * cumulative bucket counts to the target rank and interpolates
 * linearly inside the landing bucket (the overflow bucket reports
 * its lower bound). @p q in [0, 1]; returns 0 for an empty
 * histogram or a non-histogram value.
 */
double histogramQuantileNs(const MetricValue &value, double q);

} // namespace varsaw::telemetry

#endif // VARSAW_TELEMETRY_PROFILER_HH
