#include "telemetry/exporters.hh"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "telemetry/introspect.hh"
#include "telemetry/profiler.hh"
#include "util/logging.hh"

namespace varsaw::telemetry {

namespace {

/** JSON-escape @p s (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Format a double without trailing-zero noise for integral values. */
std::string
numberToJson(double v)
{
    char buf[64];
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        v > -1e18 && v < 1e18) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    return buf;
}

/** Split `base{k=v,...}` into base and the label list text. */
void
splitLabels(const std::string &name, std::string &base,
            std::string &labels)
{
    const auto brace = name.find('{');
    if (brace == std::string::npos || name.back() != '}') {
        base = name;
        labels.clear();
        return;
    }
    base = name.substr(0, brace);
    labels = name.substr(brace + 1, name.size() - brace - 2);
}

/** Map a metric base name to a Prometheus-legal one. */
std::string
promName(const std::string &base)
{
    std::string out = base;
    for (char &c : out)
        if (c == '.' || c == '-')
            c = '_';
    return out;
}

/**
 * Escape a label VALUE per the Prometheus text exposition format:
 * backslash, double-quote, and newline must be escaped inside the
 * quoted value (session names are caller-supplied strings).
 */
std::string
promEscapeLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

/** Re-quote `k1=v1,k2=v2` as `k1="v1",k2="v2"` (values escaped). */
std::string
promLabels(const std::string &labels)
{
    if (labels.empty())
        return {};
    std::string out;
    std::size_t pos = 0;
    while (pos < labels.size()) {
        const auto comma = labels.find(',', pos);
        const std::string pair =
            labels.substr(pos, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - pos);
        const auto eq = pair.find('=');
        if (!out.empty())
            out += ',';
        if (eq == std::string::npos) {
            out += pair;
        } else {
            out += pair.substr(0, eq);
            out += "=\"";
            out += promEscapeLabelValue(pair.substr(eq + 1));
            out += '"';
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

} // namespace

std::string
metricsToJson(const MetricsSnapshot &snap)
{
    std::string out = "{\n  \"metrics\": {\n";
    bool first = true;
    for (const auto &m : snap.metrics) {
        if (!first)
            out += ",\n";
        first = false;
        out += "    \"";
        out += jsonEscape(m.name);
        out += "\": ";
        if (m.kind == MetricValue::Kind::Histogram) {
            out += "{\"count\": ";
            out += numberToJson(static_cast<double>(m.count));
            out += ", \"sum_ns\": ";
            out += numberToJson(static_cast<double>(m.sumNs));
            out += ", \"buckets\": [";
            for (std::size_t b = 0; b < m.bucketCounts.size();
                 ++b) {
                if (b)
                    out += ", ";
                out += numberToJson(
                    static_cast<double>(m.bucketCounts[b]));
            }
            out += "]}";
        } else {
            out += numberToJson(m.value);
        }
    }
    out += "\n  }\n}\n";
    return out;
}

std::string
metricsToPrometheus(const MetricsSnapshot &snap)
{
    std::string out;
    for (const auto &m : snap.metrics) {
        std::string base, labels;
        splitLabels(m.name, base, labels);
        const std::string name = promName(base);
        const std::string lab = promLabels(labels);
        if (m.kind == MetricValue::Kind::Histogram) {
            std::uint64_t cumulative = 0;
            for (std::size_t b = 0; b < m.bucketCounts.size();
                 ++b) {
                cumulative += m.bucketCounts[b];
                out += name;
                out += "_bucket{";
                if (!lab.empty()) {
                    out += lab;
                    out += ',';
                }
                out += "le=\"";
                if (b + 1 < m.bucketCounts.size()) {
                    out += numberToJson(static_cast<double>(
                        Histogram::kBucketBoundsNs[b]));
                } else {
                    out += "+Inf";
                }
                out += "\"} ";
                out += numberToJson(static_cast<double>(cumulative));
                out += '\n';
            }
            out += name;
            out += "_sum";
            if (!lab.empty())
                out += '{' + lab + '}';
            out += ' ';
            out += numberToJson(static_cast<double>(m.sumNs));
            out += '\n';
            out += name;
            out += "_count";
            if (!lab.empty())
                out += '{' + lab + '}';
            out += ' ';
            out += numberToJson(static_cast<double>(m.count));
            out += '\n';
        } else {
            out += name;
            if (!lab.empty())
                out += '{' + lab + '}';
            out += ' ';
            out += numberToJson(m.value);
            out += '\n';
        }
    }
    return out;
}

std::string
traceToChromeJson(const std::vector<TraceEvent> &events)
{
    // Chrome's trace viewer wants microsecond timestamps; rebase to
    // the earliest event so numbers stay small and positive.
    std::uint64_t epoch = ~std::uint64_t{0};
    for (const auto &ev : events)
        if (ev.beginNs < epoch)
            epoch = ev.beginNs;
    if (events.empty())
        epoch = 0;

    std::string out = "{\"traceEvents\": [\n";
    bool first = true;
    char buf[160];
    for (const auto &ev : events) {
        if (!first)
            out += ",\n";
        first = false;
        const double tsUs =
            static_cast<double>(ev.beginNs - epoch) / 1000.0;
        out += "  {\"name\": \"";
        out += jsonEscape(ev.name);
        out += "\", \"cat\": \"varsaw\", \"ph\": \"";
        out += ev.kind == TraceEvent::Kind::Span ? 'X' : 'i';
        out += '"';
        std::snprintf(buf, sizeof(buf),
                      ", \"ts\": %.3f, \"pid\": 1, \"tid\": %u",
                      tsUs, ev.threadId);
        out += buf;
        if (ev.kind == TraceEvent::Kind::Span) {
            const double durUs =
                static_cast<double>(ev.endNs - ev.beginNs) / 1000.0;
            std::snprintf(buf, sizeof(buf), ", \"dur\": %.3f",
                          durUs);
            out += buf;
        } else {
            out += ", \"s\": \"t\"";
        }
        out += ", \"args\": {\"job\": ";
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(ev.jobId));
        out += buf;
        if (ev.detail[0] != '\0') {
            out += ", \"detail\": \"";
            out += jsonEscape(ev.detail);
            out += '"';
        }
        out += "}}";
    }
    out += "\n]}\n";
    return out;
}

bool
writeTextFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("telemetry: cannot open '" + path + "' for writing");
        return false;
    }
    const std::size_t n =
        std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    if (n != text.size()) {
        warn("telemetry: short write to '" + path + "'");
        return false;
    }
    return true;
}

bool
writeMetricsJson(const std::string &path)
{
    return writeTextFile(
        path, metricsToJson(MetricsRegistry::instance().snapshot()));
}

bool
writeMetricsPrometheus(const std::string &path)
{
    return writeTextFile(
        path,
        metricsToPrometheus(MetricsRegistry::instance().snapshot()));
}

bool
writeTraceJson(const std::string &path)
{
    return writeTextFile(
        path, traceToChromeJson(SpanTracer::instance().drain()));
}

namespace {

std::mutex &
outPathMutex()
{
    static std::mutex m;
    return m;
}

std::string &
metricsOutSlot()
{
    static std::string *s = new std::string();
    return *s;
}

std::string &
traceOutSlot()
{
    static std::string *s = new std::string();
    return *s;
}

void
exitDump()
{
    flushTelemetryOutputs();
}

void
ensureExitHook()
{
    static bool registered = [] {
        std::atexit(exitDump);
        return true;
    }();
    (void)registered;
}

} // namespace

void
setMetricsOutPath(const std::string &path)
{
    {
        std::lock_guard<std::mutex> lock(outPathMutex());
        metricsOutSlot() = path;
    }
    if (!path.empty()) {
        setMetricsEnabled(true);
        ensureExitHook();
    }
}

void
setTraceOutPath(const std::string &path)
{
    {
        std::lock_guard<std::mutex> lock(outPathMutex());
        traceOutSlot() = path;
    }
    if (!path.empty()) {
        setTracingEnabled(true);
        ensureExitHook();
    }
}

std::string
metricsOutPath()
{
    std::lock_guard<std::mutex> lock(outPathMutex());
    return metricsOutSlot();
}

std::string
traceOutPath()
{
    std::lock_guard<std::mutex> lock(outPathMutex());
    return traceOutSlot();
}

void
flushTelemetryOutputs()
{
    // The observer observing itself: serialization/IO cost lands in
    // the `export` phase so a chatty flusher can't hide.
    ScopedPhase phase(Phase::Export);
    const std::string metricsPath = metricsOutPath();
    const std::string tracePath = traceOutPath();
    if (!metricsPath.empty())
        writeMetricsJson(metricsPath);
    if (!tracePath.empty())
        writeTraceJson(tracePath);
}

struct PeriodicFlusher::Impl
{
    std::mutex mutex;
    std::condition_variable cv;
    bool stopping = false;
    std::thread thread;
};

PeriodicFlusher::PeriodicFlusher(unsigned periodMs)
    : impl_(new Impl)
{
    const auto period =
        std::chrono::milliseconds(periodMs == 0 ? 1000 : periodMs);
    impl_->thread = std::thread([this, period] {
        std::unique_lock<std::mutex> lock(impl_->mutex);
        for (;;) {
            if (impl_->cv.wait_for(
                    lock, period,
                    [this] { return impl_->stopping; }))
                return;
            lock.unlock();
            flushTelemetryOutputs();
            lock.lock();
        }
    });
}

void
PeriodicFlusher::stop()
{
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        if (impl_->stopping)
            return;
        impl_->stopping = true;
    }
    impl_->cv.notify_all();
    if (impl_->thread.joinable())
        impl_->thread.join();
}

PeriodicFlusher::~PeriodicFlusher()
{
    stop();
    delete impl_;
}

void
installTelemetryEnvKnobs()
{
    static bool done = [] {
        if (const char *env = std::getenv("VARSAW_TELEMETRY")) {
            if (env[0] != '\0' && env[0] != '0') {
                setMetricsEnabled(true);
                setTracingEnabled(true);
            }
        }
        if (const char *env =
                std::getenv("VARSAW_TRACE_EVENTS")) {
            const long n = std::strtol(env, nullptr, 10);
            if (n > 0)
                SpanTracer::instance().setCapacity(
                    static_cast<std::size_t>(n));
        }
        if (const char *env = std::getenv("VARSAW_METRICS_OUT")) {
            if (env[0] != '\0')
                setMetricsOutPath(env);
        }
        if (const char *env = std::getenv("VARSAW_TRACE_OUT")) {
            if (env[0] != '\0')
                setTraceOutPath(env);
        }
        if (const char *env = std::getenv("VARSAW_PROFILE")) {
            if (env[0] != '\0' && env[0] != '0')
                setProfilerEnabled(true);
        }
        if (const char *env = std::getenv("VARSAW_INTROSPECT")) {
            if (env[0] != '\0')
                setIntrospectPath(env);
        }
        if (const char *env =
                std::getenv("VARSAW_TELEMETRY_FLUSH_MS")) {
            const long ms = std::strtol(env, nullptr, 10);
            if (ms > 0) {
                // Immortal by design: flushes until process exit.
                static PeriodicFlusher *flusher =
                    new PeriodicFlusher(
                        static_cast<unsigned>(ms));
                (void)flusher;
            }
        }
        return true;
    }();
    (void)done;
}

namespace {

/** Static-init shim: apply env knobs in every linked binary. */
struct TelemetryEnvShim
{
    TelemetryEnvShim() { installTelemetryEnvKnobs(); }
};

TelemetryEnvShim s_telemetryEnvShim;

} // namespace

} // namespace varsaw::telemetry
