#include "telemetry/metrics.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "util/parallel.hh"

namespace varsaw::telemetry {

namespace detail {
std::atomic<bool> g_metricsEnabled{false};
} // namespace detail

void
setMetricsEnabled(bool enabled)
{
#if !defined(VARSAW_TELEMETRY_DISABLE)
    detail::g_metricsEnabled.store(enabled,
                                   std::memory_order_relaxed);
#else
    (void)enabled;
#endif
}

std::string
labeled(const std::string &base,
        std::initializer_list<std::pair<const char *, std::string>>
            labels)
{
    if (labels.size() == 0)
        return base;
    std::string out = base;
    out += '{';
    bool first = true;
    for (const auto &[key, value] : labels) {
        if (!first)
            out += ',';
        first = false;
        out += key;
        out += '=';
        out += value;
    }
    out += '}';
    return out;
}

double
MetricsSnapshot::value(const std::string &name) const
{
    for (const auto &m : metrics)
        if (m.name == name)
            return m.value;
    return 0.0;
}

const std::uint64_t Histogram::kBucketBoundsNs[Histogram::kBuckets -
                                               1] = {
    // Powers of 4 from 1 µs: 1µs, 4µs, 16µs, ..., ~4.4s. The 14th
    // bucket catches everything longer.
    1'000ull,         4'000ull,         16'000ull,
    64'000ull,        256'000ull,       1'024'000ull,
    4'096'000ull,     16'384'000ull,    65'536'000ull,
    262'144'000ull,   1'048'576'000ull, 4'194'304'000ull,
    16'777'216'000ull,
};

/**
 * Instruments live in node-stable maps (unique_ptr values), so the
 * references handed out by counter()/gauge()/histogram() survive
 * every later registration. std::map keeps names sorted, making
 * snapshots and exports deterministic in layout.
 */
struct MetricsRegistry::Impl
{
    mutable std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
    std::map<std::string, std::function<double()>> callbacks;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry &
MetricsRegistry::instance()
{
    // Heap-allocated and never destroyed: worker threads (kernel
    // pool, scheduler, flusher) may publish metrics during process
    // teardown, after static destructors would have run.
    static MetricsRegistry *registry = new MetricsRegistry();
    return *registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto &slot = impl_->counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto &slot = impl_->gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto &slot = impl_->histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

void
MetricsRegistry::registerCallback(const std::string &name,
                                  std::function<double()> fn)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->callbacks[name] = std::move(fn);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::map<std::string, std::function<double()>> callbacks;
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        snap.metrics.reserve(impl_->counters.size() +
                             impl_->gauges.size() +
                             impl_->histograms.size() +
                             impl_->callbacks.size());
        for (const auto &[name, c] : impl_->counters) {
            MetricValue v;
            v.name = name;
            v.kind = MetricValue::Kind::Counter;
            v.value = static_cast<double>(c->value());
            snap.metrics.push_back(std::move(v));
        }
        for (const auto &[name, g] : impl_->gauges) {
            MetricValue v;
            v.name = name;
            v.kind = MetricValue::Kind::Gauge;
            v.value = static_cast<double>(g->value());
            snap.metrics.push_back(std::move(v));
        }
        for (const auto &[name, h] : impl_->histograms) {
            MetricValue v;
            v.name = name;
            v.kind = MetricValue::Kind::Histogram;
            v.count = h->count();
            v.sumNs = h->sumNs();
            v.value = static_cast<double>(v.sumNs);
            v.bucketCounts.reserve(Histogram::kBuckets);
            for (int b = 0; b < Histogram::kBuckets; ++b)
                v.bucketCounts.push_back(h->bucketCount(b));
            snap.metrics.push_back(std::move(v));
        }
        callbacks = impl_->callbacks;
    }
    // Callbacks run outside the registry mutex: they may read
    // arbitrary component state whose own locks must never nest
    // under ours.
    for (const auto &[name, fn] : callbacks) {
        MetricValue v;
        v.name = name;
        v.kind = MetricValue::Kind::Gauge;
        v.value = fn ? fn() : 0.0;
        snap.metrics.push_back(std::move(v));
    }
    std::sort(snap.metrics.begin(), snap.metrics.end(),
              [](const MetricValue &a, const MetricValue &b) {
                  return a.name < b.name;
              });
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (auto &[name, c] : impl_->counters)
        c->reset();
    for (auto &[name, g] : impl_->gauges)
        g->reset();
    for (auto &[name, h] : impl_->histograms)
        h->reset();
}

namespace {

/**
 * Builtin snapshot-time views of the kernel pool's role-split work
 * counters (util/parallel.cc). The pool itself cannot publish —
 * util/ must not depend on telemetry/ — so the telemetry layer
 * reads its plain atomics lazily here.
 */
struct KernelPoolMetricsShim
{
    KernelPoolMetricsShim()
    {
        auto &reg = MetricsRegistry::instance();
        reg.registerCallback(
            "util.kernel_pool.engaged_loops", [] {
                return static_cast<double>(
                    kernelPoolStats().engagedLoops);
            });
        reg.registerCallback(
            "util.kernel_pool.caller_chunks", [] {
                return static_cast<double>(
                    kernelPoolStats().callerChunks);
            });
        reg.registerCallback(
            "util.kernel_pool.helper_chunks", [] {
                return static_cast<double>(
                    kernelPoolStats().helperChunks);
            });
        reg.registerCallback(
            "util.kernel_pool.assisted_chunks", [] {
                return static_cast<double>(
                    kernelPoolStats().assistedChunks);
            });
    }
};

KernelPoolMetricsShim s_kernelPoolMetricsShim;

} // namespace

} // namespace varsaw::telemetry
