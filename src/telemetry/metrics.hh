/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * fixed-bucket latency histograms.
 *
 * VarSaw's savings are an accounting story — circuits deduped, prep
 * states reused, shots saved — but before this layer every component
 * kept its own ad-hoc Stats struct reachable only from code that
 * holds the component instance. The registry gives the process ONE
 * queryable place: components lazily register instruments by name
 * (`layer.component.metric`, optional `{label=value}` suffix) and
 * publish into them from their existing accounting points, so a
 * snapshot of the whole stack — runtime caches, prep-state cache,
 * engine work counters, scheduler utilization, per-session dedupe —
 * can be taken at any moment without touching any component.
 *
 * Design rules:
 *  - **Lock-free hot path.** Registration (name lookup) takes a
 *    mutex once; callers cache the returned reference and every
 *    subsequent add()/set()/record() is a relaxed atomic op.
 *    Instruments are never deleted, so cached references stay valid
 *    for the life of the process.
 *  - **Snapshot-on-read.** snapshot() walks the registry under the
 *    registration mutex and reads each atomic once; concurrent
 *    writers are never blocked. Values in one snapshot are
 *    per-instrument atomic, not globally consistent — totals keep
 *    monotonicity, exactness is only guaranteed once writers quiesce.
 *  - **Telemetry never affects results.** Instruments observe;
 *    nothing in the library reads a metric to make a decision. The
 *    full suite is bit-identical with telemetry on, off, or compiled
 *    out (-DVARSAW_TELEMETRY_DISABLE).
 *  - **Near-zero cost when disabled.** Publishing sites guard on
 *    metricsEnabled() — one relaxed atomic bool load, or a
 *    compile-time `false` under VARSAW_TELEMETRY_DISABLE so the
 *    whole site folds away.
 *
 * Layering: telemetry/ depends only on util/ (CI grep-enforced);
 * every other layer may depend on telemetry/.
 */

#ifndef VARSAW_TELEMETRY_METRICS_HH
#define VARSAW_TELEMETRY_METRICS_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace varsaw::telemetry {

namespace detail {
extern std::atomic<bool> g_metricsEnabled;
} // namespace detail

/**
 * Whether metric publishing sites should record. One relaxed atomic
 * load; constant false (dead-code-eliminating every guarded site)
 * when compiled with -DVARSAW_TELEMETRY_DISABLE.
 */
inline bool
metricsEnabled()
{
#if defined(VARSAW_TELEMETRY_DISABLE)
    return false;
#else
    return detail::g_metricsEnabled.load(std::memory_order_relaxed);
#endif
}

/** Turn metric collection on or off (results never depend on it). */
void setMetricsEnabled(bool enabled);

/** Monotonic event count. */
class Counter
{
  public:
    /** Add @p n (relaxed; safe from any thread). */
    void add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Zero the counter (tests / phase fences only). */
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Instantaneous signed level (bytes resident, entries held, ...). */
class Gauge
{
  public:
    void set(std::int64_t value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    void add(std::int64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    /** Raise the gauge to @p value if it is higher (peak tracking). */
    void setMax(std::int64_t value)
    {
        std::int64_t seen = value_.load(std::memory_order_relaxed);
        while (value > seen &&
               !value_.compare_exchange_weak(
                   seen, value, std::memory_order_relaxed))
            ;
    }

    std::int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Fixed-bucket latency histogram (nanoseconds). The bucket bounds
 * are a compile-time constant shared by every histogram — 1 µs to
 * ~17 s in powers of 4 plus an overflow bucket — so recording is one
 * small loop over constants plus two relaxed adds, and snapshots
 * from different components are directly comparable.
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 14;

    /** Inclusive upper bounds (ns) of buckets [0, kBuckets - 1);
     * the last bucket is the overflow. */
    static const std::uint64_t kBucketBoundsNs[kBuckets - 1];

    /** Index of the bucket @p ns falls into. */
    static int bucketOf(std::uint64_t ns)
    {
        int b = 0;
        while (b < kBuckets - 1 && ns > kBucketBoundsNs[b])
            ++b;
        return b;
    }

    /** Record one duration (relaxed; safe from any thread). */
    void record(std::uint64_t ns)
    {
        counts_[bucketOf(ns)].fetch_add(1,
                                        std::memory_order_relaxed);
        sumNs_.fetch_add(ns, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
    }

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    std::uint64_t sumNs() const
    {
        return sumNs_.load(std::memory_order_relaxed);
    }

    std::uint64_t bucketCount(int bucket) const
    {
        return counts_[bucket].load(std::memory_order_relaxed);
    }

    void reset()
    {
        for (auto &c : counts_)
            c.store(0, std::memory_order_relaxed);
        sumNs_.store(0, std::memory_order_relaxed);
        count_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> counts_[kBuckets]{};
    std::atomic<std::uint64_t> sumNs_{0};
    std::atomic<std::uint64_t> count_{0};
};

/** One instrument's value at snapshot time. */
struct MetricValue
{
    enum class Kind { Counter, Gauge, Histogram };

    std::string name;
    Kind kind = Kind::Counter;

    /** Counter/gauge value (sum for histograms, in ns). */
    double value = 0.0;

    /** Histogram only: per-bucket counts and the total. */
    std::vector<std::uint64_t> bucketCounts;
    std::uint64_t count = 0;
    std::uint64_t sumNs = 0;
};

/** The registry's state at one moment, sorted by metric name. */
struct MetricsSnapshot
{
    std::vector<MetricValue> metrics;

    /** Value of a counter/gauge by exact name (0 when absent). */
    double value(const std::string &name) const;
};

/**
 * Canonical labeled metric name: `base{k1=v1,k2=v2}`. Labels are
 * part of the instrument identity — two label sets are two
 * instruments. Label values must not contain '}', ',' or '='.
 */
std::string
labeled(const std::string &base,
        std::initializer_list<std::pair<const char *, std::string>>
            labels);

/** The process-wide registry (see file comment). */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    /**
     * The counter named @p name, lazily registered on first use.
     * The reference is stable for the life of the process — cache
     * it; lookups take the registration mutex.
     */
    Counter &counter(const std::string &name);

    /** The gauge named @p name (same contract as counter()). */
    Gauge &gauge(const std::string &name);

    /** The histogram named @p name (same contract as counter()). */
    Histogram &histogram(const std::string &name);

    /**
     * Register a gauge evaluated lazily at snapshot time — for
     * values owned by code the registry must not hold hot-path
     * hooks into (e.g. the kernel pool's utilization counters).
     * Re-registering a name replaces the callback. @p fn must be
     * callable from any thread.
     */
    void registerCallback(const std::string &name,
                          std::function<double()> fn);

    /**
     * Read every instrument (and callback) once. Never blocks
     * writers; see the snapshot-on-read note in the file comment.
     */
    MetricsSnapshot snapshot() const;

    /**
     * Zero every registered instrument (instruments and callbacks
     * stay registered). Tests and measurement-phase fences only —
     * never changes any result.
     */
    void reset();

  private:
    MetricsRegistry();
    ~MetricsRegistry() = delete; // immortal: cached refs never dangle

    struct Impl;
    Impl *impl_;
};

} // namespace varsaw::telemetry

#endif // VARSAW_TELEMETRY_METRICS_HH
