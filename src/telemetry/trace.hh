/**
 * @file
 * Per-job span tracing into a bounded ring buffer.
 *
 * Every stage of a job's lifecycle — enqueue → admit → dedupe-hit or
 * claim → prep → suffix-eval → complete — stamps a TraceEvent with
 * monotonic-clock timestamps into a process-wide ring buffer. The
 * buffer is bounded and overwrites oldest-first, so tracing can stay
 * on for a whole VQA run at fixed memory cost; exporters
 * (telemetry/exporters.hh) drain it into Chrome `trace_event` JSON
 * for flame-graph viewers.
 *
 * Concurrency model (seqlock-lite): writers reserve a slot with one
 * relaxed fetch_add on the head counter, then write the event
 * payload guarded by a per-slot stamp — stamp is cleared (0,
 * release) before the payload write and set to index+1 (release)
 * after it. drain() computes each slot's expected stamp from the
 * head, copies the payload, and re-checks the stamp on both sides of
 * the copy; any slot a writer is mid-flight in fails the check and
 * is skipped. No writer ever blocks on a reader or another writer.
 * Payload copies are word-wise relaxed atomics (std::atomic_ref), so
 * a racing copy is *defined* — torn values are discarded by the
 * stamp re-check, never read as UB — and the scheme runs clean under
 * ThreadSanitizer (-DVARSAW_SANITIZE=thread) without suppressions.
 *
 * Determinism: tracing records what happened and when; nothing reads
 * a trace to make a decision, timestamps never feed back into
 * scheduling, and a full slot just overwrites. Results are
 * bit-identical with tracing on, off, or at any capacity — a
 * CI-gated invariant (tests/telemetry/test_bit_identity.cc).
 */

#ifndef VARSAW_TELEMETRY_TRACE_HH
#define VARSAW_TELEMETRY_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace varsaw::telemetry {

namespace detail {
extern std::atomic<bool> g_tracingEnabled;
} // namespace detail

/**
 * Whether span sites should record. One relaxed atomic load;
 * constant false under -DVARSAW_TELEMETRY_DISABLE.
 */
inline bool
tracingEnabled()
{
#if defined(VARSAW_TELEMETRY_DISABLE)
    return false;
#else
    return detail::g_tracingEnabled.load(std::memory_order_relaxed);
#endif
}

/** Turn span tracing on or off (results never depend on it). */
void setTracingEnabled(bool enabled);

/** Monotonic nanoseconds since an arbitrary process-local epoch. */
inline std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Small dense id of the calling thread (stable per thread). */
std::uint32_t currentThreadId();

/** One recorded span or instant. */
struct TraceEvent
{
    enum class Kind : std::uint8_t {
        Span,   ///< Duration [beginNs, endNs] ("X" in Chrome JSON).
        Instant ///< Point event at beginNs ("i" in Chrome JSON).
    };

    /** Truncated copy bound for name/detail (keeps slots POD-sized
     * and writer copies bounded). */
    static constexpr std::size_t kMaxName = 48;

    Kind kind = Kind::Span;
    char name[kMaxName] = {};   ///< Stage name ("job", "prep", ...).
    char detail[kMaxName] = {}; ///< Free-form arg (key hash, ...).
    std::uint64_t beginNs = 0;
    std::uint64_t endNs = 0;
    std::uint64_t jobId = 0;   ///< Correlates stages of one job.
    std::uint32_t threadId = 0;

    void setName(const char *s);
    void setDetail(const char *s);
};

/**
 * The process-wide bounded trace ring (see file comment). Capacity
 * is set before or between runs (setCapacity is NOT safe concurrent
 * with recording); record() and drain() are safe from any thread at
 * any time.
 */
class SpanTracer
{
  public:
    static SpanTracer &instance();

    static constexpr std::size_t kDefaultCapacity = 1 << 16;

    /**
     * Resize the ring (rounded up to a power of two, min 8) and
     * discard recorded events. Call only while no thread is
     * recording; the previous buffer is retired, never freed, so a
     * stale writer cannot fault.
     */
    void setCapacity(std::size_t capacity);

    std::size_t capacity() const;

    /** Record one event (overwrites oldest when full). */
    void record(const TraceEvent &ev);

    /** Record an instant event with the current timestamp. */
    void instant(const char *name, std::uint64_t jobId,
                 const char *detail = nullptr);

    /**
     * Copy out every completely-written event, oldest first.
     * Mid-flight slots are skipped (see file comment).
     */
    std::vector<TraceEvent> drain() const;

    /** Total record() calls so far (events recorded, kept or not). */
    std::uint64_t recorded() const;

    /** Discard recorded events; capacity unchanged. */
    void clear();

  private:
    SpanTracer();
    ~SpanTracer() = delete; // immortal, like the registry

    struct Impl;
    Impl *impl_;
};

/** Process-unique id for correlating one job's spans. */
std::uint64_t nextTraceJobId();

/**
 * RAII span: stamps begin at construction, records at destruction.
 * All cost is behind tracingEnabled() — a disabled ScopedSpan is one
 * relaxed load and two dead branches.
 */
class ScopedSpan
{
  public:
    ScopedSpan(const char *name, std::uint64_t jobId,
               const char *detail = nullptr)
    {
        if (!tracingEnabled())
            return;
        armed_ = true;
        ev_.kind = TraceEvent::Kind::Span;
        ev_.setName(name);
        if (detail)
            ev_.setDetail(detail);
        ev_.jobId = jobId;
        ev_.beginNs = nowNs();
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ~ScopedSpan()
    {
        if (!armed_)
            return;
        ev_.endNs = nowNs();
        ev_.threadId = currentThreadId();
        SpanTracer::instance().record(ev_);
    }

    /** Duration so far in ns (0 when tracing was off at start). */
    std::uint64_t elapsedNs() const
    {
        return armed_ ? nowNs() - ev_.beginNs : 0;
    }

    /** Whether this span is recording (tracing was on at start). */
    bool armed() const { return armed_; }

    /** Set/replace the detail string (no-op when disarmed). */
    void setDetail(const char *detail)
    {
        if (armed_)
            ev_.setDetail(detail);
    }

  private:
    TraceEvent ev_;
    bool armed_ = false;
};

} // namespace varsaw::telemetry

#endif // VARSAW_TELEMETRY_TRACE_HH
