#include "telemetry/profiler.hh"

namespace varsaw::telemetry {

namespace detail {
std::atomic<bool> g_profilerEnabled{false};
} // namespace detail

void
setProfilerEnabled(bool enabled)
{
    detail::g_profilerEnabled.store(enabled,
                                    std::memory_order_relaxed);
}

namespace {

const char *const kPhaseNames[kPhaseCount] = {
    "queue_wait", "ledger_lookup", "prep",   "suffix",
    "sampling",   "retry_backoff", "export",
};

/** The seven process-wide phase histograms, resolved once. */
struct PhaseHistograms
{
    Histogram *h[kPhaseCount];

    static PhaseHistograms &
    get()
    {
        static PhaseHistograms *m = [] {
            auto *p = new PhaseHistograms;
            auto &reg = MetricsRegistry::instance();
            for (int i = 0; i < kPhaseCount; ++i)
                p->h[i] = &reg.histogram(
                    phaseMetricName(static_cast<Phase>(i)));
            return p;
        }();
        return *m;
    }
};

} // namespace

const char *
phaseName(Phase phase)
{
    const int i = static_cast<int>(phase);
    if (i < 0 || i >= kPhaseCount)
        return "unknown";
    return kPhaseNames[i];
}

std::string
phaseMetricName(Phase phase)
{
    return std::string("profile.phase.") + phaseName(phase) + "_ns";
}

void
recordPhaseNs(Phase phase, std::uint64_t ns)
{
    const int i = static_cast<int>(phase);
    if (i < 0 || i >= kPhaseCount)
        return;
    PhaseHistograms::get().h[i]->record(ns);
}

Histogram &
sessionPhaseHistogram(Phase phase, const std::string &session)
{
    return MetricsRegistry::instance().histogram(
        labeled(phaseMetricName(phase), {{"session", session}}));
}

double
histogramQuantileNs(const MetricValue &value, double q)
{
    if (value.kind != MetricValue::Kind::Histogram ||
        value.count == 0 || value.bucketCounts.empty())
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    const double rank = q * static_cast<double>(value.count);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < value.bucketCounts.size(); ++b) {
        const std::uint64_t in_bucket = value.bucketCounts[b];
        if (in_bucket == 0)
            continue;
        const double before = static_cast<double>(cumulative);
        cumulative += in_bucket;
        if (static_cast<double>(cumulative) < rank)
            continue;
        // Landing bucket: interpolate between its bounds. The
        // first bucket's lower bound is 0; the overflow bucket has
        // no upper bound, so report its lower bound.
        const double lo = b == 0
            ? 0.0
            : static_cast<double>(
                  Histogram::kBucketBoundsNs[b - 1]);
        if (b + 1 >= value.bucketCounts.size())
            return lo;
        const double hi =
            static_cast<double>(Histogram::kBucketBoundsNs[b]);
        const double frac =
            (rank - before) / static_cast<double>(in_bucket);
        return lo + (hi - lo) * (frac < 0.0 ? 0.0 : frac);
    }
    return 0.0;
}

} // namespace varsaw::telemetry
