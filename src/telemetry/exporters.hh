/**
 * @file
 * Telemetry exporters: JSON metric snapshots, Prometheus-style text,
 * Chrome trace_event JSON, and an optional periodic flusher thread.
 *
 * Exporters are pull-only: they take a MetricsSnapshot / drain the
 * SpanTracer and serialize it — they never touch component state, so
 * exporting (like all telemetry) cannot perturb results.
 *
 * Knob wiring (installTelemetryEnvKnobs, run once at static init):
 *   VARSAW_TELEMETRY=1        enable metrics + tracing
 *   VARSAW_METRICS_OUT=PATH   enable metrics; JSON snapshot at exit
 *   VARSAW_TRACE_OUT=PATH     enable tracing; Chrome JSON at exit
 *   VARSAW_TRACE_EVENTS=N     trace ring capacity (events)
 *   VARSAW_TELEMETRY_FLUSH_MS=N  periodic snapshot flusher
 *   VARSAW_PROFILE=1          enable phase attribution (profiler.hh)
 *   VARSAW_INTROSPECT=PATH    unix-socket introspection endpoint
 *                             (introspect.hh; served by services)
 * The drivers' --metrics-out / --trace-out / --profile /
 * --introspect flags (applyRuntimeFlags) plumb into the same
 * setMetricsOutPath / setTraceOutPath / setProfilerEnabled /
 * setIntrospectPath entry points.
 */

#ifndef VARSAW_TELEMETRY_EXPORTERS_HH
#define VARSAW_TELEMETRY_EXPORTERS_HH

#include <cstdio>
#include <string>
#include <vector>

#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace varsaw::telemetry {

/** Serialize @p snap as a JSON object (stable key order). */
std::string metricsToJson(const MetricsSnapshot &snap);

/**
 * Serialize @p snap in Prometheus text exposition format. Metric
 * names have '.' mapped to '_' and labels re-quoted; histograms
 * become cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
 */
std::string metricsToPrometheus(const MetricsSnapshot &snap);

/**
 * Serialize trace events as Chrome trace_event JSON (the
 * `{"traceEvents": [...]}` object form; open in a flame viewer).
 * Spans become "X" (complete) events, instants "i"; timestamps are
 * µs from the earliest event; each event carries pid=1, tid, name,
 * and args.job / args.detail.
 */
std::string traceToChromeJson(const std::vector<TraceEvent> &events);

/** Write @p text to @p path (warn + false on failure). */
bool writeTextFile(const std::string &path, const std::string &text);

/**
 * Snapshot the registry and write JSON to @p path.
 * Convenience: writeTextFile(path, metricsToJson(snapshot())).
 */
bool writeMetricsJson(const std::string &path);

/** Snapshot the registry and write Prometheus text to @p path. */
bool writeMetricsPrometheus(const std::string &path);

/** Drain the tracer and write Chrome trace JSON to @p path. */
bool writeTraceJson(const std::string &path);

/**
 * Arrange for a metrics JSON snapshot to be written to @p path at
 * normal process exit (and enable metrics now). Empty path cancels.
 * The exit hook is registered once; the latest path wins.
 */
void setMetricsOutPath(const std::string &path);

/** As setMetricsOutPath, for the Chrome trace JSON (enables
 * tracing now). */
void setTraceOutPath(const std::string &path);

/** Configured exit-dump paths (empty when unset). */
std::string metricsOutPath();
std::string traceOutPath();

/**
 * Write both configured exit dumps immediately (no-op for unset
 * paths). Benches call this before reporting so the files exist
 * even if the process is long-lived.
 */
void flushTelemetryOutputs();

/**
 * Background thread that rewrites the configured metrics/trace
 * output files every @p periodMs until stopped. Purely an observer:
 * holds no component locks, only registry snapshots.
 */
class PeriodicFlusher
{
  public:
    explicit PeriodicFlusher(unsigned periodMs);
    ~PeriodicFlusher();

    PeriodicFlusher(const PeriodicFlusher &) = delete;
    PeriodicFlusher &operator=(const PeriodicFlusher &) = delete;

    void stop();

  private:
    struct Impl;
    Impl *impl_;
};

/**
 * Read the VARSAW_TELEMETRY / VARSAW_METRICS_OUT / VARSAW_TRACE_OUT /
 * VARSAW_TRACE_EVENTS / VARSAW_TELEMETRY_FLUSH_MS environment knobs
 * and apply them. Runs once (idempotent); invoked from a static
 * initializer in exporters.cc so every binary that links telemetry
 * honors the env without code changes.
 */
void installTelemetryEnvKnobs();

} // namespace varsaw::telemetry

#endif // VARSAW_TELEMETRY_EXPORTERS_HH
