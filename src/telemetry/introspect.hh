/**
 * @file
 * Live introspection endpoint: a unix-socket server exposing the
 * telemetry of a RUNNING process.
 *
 * Exporters dump snapshots at exit; this server answers while the
 * work is still going — the first out-of-process surface of the
 * stack, and the deliberate stepping stone toward the ROADMAP's
 * RPC service front end. One instance lives inside ExecutionService
 * when a socket path is configured (`VARSAW_INTROSPECT=PATH` or
 * `--introspect=PATH`); `varsaw-top` (tools/top/) is the reference
 * client.
 *
 * Protocol (deliberately trivial — netcat is a valid client):
 * connect, send ONE command line terminated by '\n', read the
 * response until the server closes the connection.
 *
 *   json      metrics snapshot as JSON (metricsToJson)
 *   prom      metrics snapshot as Prometheus text exposition
 *   sessions  per-session status rows as a JSON array
 *   top       human-readable status page (sessions, queue depth and
 *             age, phase breakdown with p50/p95/p99, SLO classes)
 *
 * Unknown commands answer `ERR unknown command`.
 *
 * The server is an observer like the rest of telemetry: it holds no
 * component locks (per-session rows come from an injected provider
 * callback that snapshots under the owner's own locking), and
 * nothing in the library reads anything back from it — results are
 * bit-identical with the endpoint attached or not (CI-gated).
 *
 * Layering: telemetry/ depends only on util/. The server knows
 * nothing about sessions or services — the owner injects a
 * StatusProvider that returns plain SessionStatusRow values.
 */

#ifndef VARSAW_TELEMETRY_INTROSPECT_HH
#define VARSAW_TELEMETRY_INTROSPECT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace varsaw::telemetry {

/** One session's live status, as reported by the owning service. */
struct SessionStatusRow
{
    std::string session;      //!< label (name or "s<id>")
    std::string latencyClass; //!< "interactive" or "bulk"
    std::uint64_t jobsSubmitted = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t crossSessionHits = 0;
    std::uint64_t shedJobs = 0;
    std::uint64_t inlineJobs = 0;
    std::uint64_t queueDepth = 0; //!< chunks waiting in admission
};

/** Snapshot callback the owner injects (called from the server
 * thread; must be safe from any thread). */
using StatusProvider =
    std::function<std::vector<SessionStatusRow>()>;

/** The unix-socket introspection server (see file comment). */
class IntrospectServer
{
  public:
    IntrospectServer();

    /** stop() if still running. */
    ~IntrospectServer();

    IntrospectServer(const IntrospectServer &) = delete;
    IntrospectServer &operator=(const IntrospectServer &) = delete;

    /**
     * Bind @p socket_path (an existing socket file is replaced) and
     * start the accept thread. Returns false — after a warning —
     * when the bind fails (e.g. a second service on the same path);
     * the process continues unaffected either way.
     */
    bool start(const std::string &socket_path);

    /** Stop the accept thread and remove the socket file.
     * Idempotent. */
    void stop();

    bool running() const;

    /** The bound socket path ("" when not running). */
    std::string socketPath() const;

    /** Install/replace the per-session status provider. */
    void setStatusProvider(StatusProvider provider);

    /**
     * Build the response for one protocol command — the exact bytes
     * a socket client would receive. Exposed so tests (and the
     * "top" page) don't need a live socket.
     */
    std::string respond(const std::string &command) const;

  private:
    struct Impl;
    Impl *impl_;
};

/**
 * Process-wide introspection socket path, set by the
 * VARSAW_INTROSPECT env knob or the --introspect flag. Services
 * read it at construction and attach a server when non-empty.
 */
void setIntrospectPath(const std::string &path);
std::string introspectPath();

} // namespace varsaw::telemetry

#endif // VARSAW_TELEMETRY_INTROSPECT_HH
