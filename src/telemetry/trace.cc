#include "telemetry/trace.hh"

#include <cstring>
#include <mutex>
#include <type_traits>

namespace varsaw::telemetry {

namespace detail {
std::atomic<bool> g_tracingEnabled{false};
} // namespace detail

void
setTracingEnabled(bool enabled)
{
#if !defined(VARSAW_TELEMETRY_DISABLE)
    detail::g_tracingEnabled.store(enabled,
                                   std::memory_order_relaxed);
#else
    (void)enabled;
#endif
}

std::uint32_t
currentThreadId()
{
    static std::atomic<std::uint32_t> next{1};
    thread_local std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

std::uint64_t
nextTraceJobId()
{
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

void
TraceEvent::setName(const char *s)
{
    if (!s) {
        name[0] = '\0';
        return;
    }
    std::strncpy(name, s, kMaxName - 1);
    name[kMaxName - 1] = '\0';
}

void
TraceEvent::setDetail(const char *s)
{
    if (!s) {
        detail[0] = '\0';
        return;
    }
    std::strncpy(detail, s, kMaxName - 1);
    detail[kMaxName - 1] = '\0';
}

namespace {

/**
 * One ring slot: payload plus the seqlock-lite stamp. The payload
 * is stored as 64-bit words and copied with relaxed atomic_ref
 * ops — on x86-64 these compile to the same plain moves as a
 * struct assignment, but unlike one they are DEFINED under a
 * writer/reader race: a torn copy yields stale word values that
 * the stamp re-check discards, never undefined behavior. This is
 * what lets the whole suite run clean under ThreadSanitizer with
 * no suppressions.
 */
struct Slot
{
    static_assert(std::is_trivially_copyable_v<TraceEvent>,
                  "payload is copied wordwise");
    static constexpr std::size_t kWords =
        (sizeof(TraceEvent) + sizeof(std::uint64_t) - 1) /
        sizeof(std::uint64_t);

    // Natural 8-byte alignment satisfies
    // std::atomic_ref<std::uint64_t>::required_alignment.
    std::uint64_t words[kWords] = {};
    /** 0 = being written; otherwise 1 + the head index that wrote
     * it, so a reader can tell which generation it sees. */
    std::atomic<std::uint64_t> stamp{0};

    /** Publish @p ev (stamp handling is the caller's). */
    void storePayload(const TraceEvent &ev)
    {
        std::uint64_t src[kWords] = {};
        std::memcpy(src, &ev, sizeof(TraceEvent));
        for (std::size_t w = 0; w < kWords; ++w)
            std::atomic_ref<std::uint64_t>(words[w]).store(
                src[w], std::memory_order_relaxed);
    }

    /** Copy the payload out (possibly torn; caller re-checks the
     * stamp and discards). */
    TraceEvent loadPayload() const
    {
        std::uint64_t dst[kWords];
        for (std::size_t w = 0; w < kWords; ++w)
            dst[w] =
                std::atomic_ref<const std::uint64_t>(words[w])
                    .load(std::memory_order_relaxed);
        TraceEvent ev;
        std::memcpy(&ev, dst, sizeof(TraceEvent));
        return ev;
    }
};

struct Ring
{
    explicit Ring(std::size_t n) : slots(n), mask(n - 1) {}
    std::vector<Slot> slots;
    std::size_t mask;
    std::atomic<std::uint64_t> head{0};
};

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 8;
    while (p < n && p < (std::size_t{1} << 30))
        p <<= 1;
    return p;
}

} // namespace

struct SpanTracer::Impl
{
    /** Current ring; replaced (never freed) by setCapacity. */
    std::atomic<Ring *> ring;
    /** Guards replacement and keeps retired rings reachable (leaked
     * deliberately: a racing writer may hold a stale pointer
     * indefinitely, and rings are few and small). */
    std::mutex swapMutex;
    std::vector<Ring *> retired;
};

SpanTracer::SpanTracer() : impl_(new Impl)
{
    impl_->ring.store(new Ring(kDefaultCapacity),
                      std::memory_order_release);
}

SpanTracer &
SpanTracer::instance()
{
    static SpanTracer *tracer = new SpanTracer();
    return *tracer;
}

void
SpanTracer::setCapacity(std::size_t capacity)
{
    Ring *fresh = new Ring(roundUpPow2(capacity));
    std::lock_guard<std::mutex> lock(impl_->swapMutex);
    impl_->retired.push_back(
        impl_->ring.exchange(fresh, std::memory_order_acq_rel));
}

std::size_t
SpanTracer::capacity() const
{
    return impl_->ring.load(std::memory_order_acquire)
               ->slots.size();
}

void
SpanTracer::record(const TraceEvent &ev)
{
    Ring *ring = impl_->ring.load(std::memory_order_acquire);
    const std::uint64_t idx =
        ring->head.fetch_add(1, std::memory_order_relaxed);
    Slot &slot = ring->slots[idx & ring->mask];
    // Clear the stamp first so a concurrent drain() never treats a
    // half-overwritten payload as the event of either generation;
    // the release fence keeps the clear visible before any payload
    // word (a release STORE would only order what precedes it).
    slot.stamp.store(0, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    slot.storePayload(ev);
    slot.stamp.store(idx + 1, std::memory_order_release);
}

void
SpanTracer::instant(const char *name, std::uint64_t jobId,
                    const char *detail)
{
    if (!tracingEnabled())
        return;
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::Instant;
    ev.setName(name);
    if (detail)
        ev.setDetail(detail);
    ev.jobId = jobId;
    ev.beginNs = ev.endNs = nowNs();
    ev.threadId = currentThreadId();
    record(ev);
}

std::vector<TraceEvent>
SpanTracer::drain() const
{
    Ring *ring = impl_->ring.load(std::memory_order_acquire);
    const std::uint64_t head =
        ring->head.load(std::memory_order_acquire);
    const std::uint64_t n = ring->slots.size();
    const std::uint64_t first = head > n ? head - n : 0;
    std::vector<TraceEvent> out;
    out.reserve(static_cast<std::size_t>(head - first));
    for (std::uint64_t i = first; i < head; ++i) {
        Slot &slot = ring->slots[i & ring->mask];
        const std::uint64_t want = i + 1;
        if (slot.stamp.load(std::memory_order_acquire) != want)
            continue; // mid-write or already overwritten
        TraceEvent copy = slot.loadPayload();
        // Re-check: if a writer started after our first check, the
        // copy may be torn — drop it. The acquire fence orders the
        // payload loads before this stamp load.
        std::atomic_thread_fence(std::memory_order_acquire);
        if (slot.stamp.load(std::memory_order_relaxed) != want)
            continue;
        out.push_back(copy);
    }
    return out;
}

std::uint64_t
SpanTracer::recorded() const
{
    return impl_->ring.load(std::memory_order_acquire)
        ->head.load(std::memory_order_relaxed);
}

void
SpanTracer::clear()
{
    // Reuse the swap path: a fresh ring of the same capacity.
    setCapacity(capacity());
}

} // namespace varsaw::telemetry
