#include "telemetry/introspect.hh"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>

#include "telemetry/exporters.hh"
#include "telemetry/metrics.hh"
#include "telemetry/profiler.hh"
#include "util/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#define VARSAW_HAVE_UNIX_SOCKETS 1
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace varsaw::telemetry {

namespace {

/** Minimal JSON string escape for session labels/class names. */
std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    out += '"';
    return out;
}

std::string
sessionsToJson(const std::vector<SessionStatusRow> &rows)
{
    std::string out = "[\n";
    bool first = true;
    char buf[256];
    for (const auto &r : rows) {
        if (!first)
            out += ",\n";
        first = false;
        out += "  {\"session\": " + jsonQuote(r.session) +
            ", \"class\": " + jsonQuote(r.latencyClass);
        std::snprintf(
            buf, sizeof(buf),
            ", \"jobs_submitted\": %llu, \"cache_hits\": %llu"
            ", \"cross_session_hits\": %llu, \"shed_jobs\": %llu"
            ", \"inline_jobs\": %llu, \"queue_depth\": %llu}",
            static_cast<unsigned long long>(r.jobsSubmitted),
            static_cast<unsigned long long>(r.cacheHits),
            static_cast<unsigned long long>(r.crossSessionHits),
            static_cast<unsigned long long>(r.shedJobs),
            static_cast<unsigned long long>(r.inlineJobs),
            static_cast<unsigned long long>(r.queueDepth));
        out += buf;
    }
    out += "\n]\n";
    return out;
}

/** `profile.phase.<name>_ns` (unlabeled) -> phase display name. */
bool
phaseDisplayName(const std::string &metric, std::string *out)
{
    const std::string prefix = "profile.phase.";
    const std::string suffix = "_ns";
    if (metric.rfind(prefix, 0) != 0 ||
        metric.find('{') != std::string::npos ||
        metric.size() <= prefix.size() + suffix.size() ||
        metric.compare(metric.size() - suffix.size(),
                       suffix.size(), suffix) != 0)
        return false;
    *out = metric.substr(prefix.size(), metric.size() -
                                            prefix.size() -
                                            suffix.size());
    return true;
}

/** `service.latency_ns{class=X}` -> X. */
bool
sloClassName(const std::string &metric, std::string *out)
{
    const std::string prefix = "service.latency_ns{class=";
    if (metric.rfind(prefix, 0) != 0 || metric.back() != '}')
        return false;
    *out = metric.substr(prefix.size(),
                         metric.size() - prefix.size() - 1);
    return true;
}

std::string
renderTopPage(const std::vector<SessionStatusRow> &rows)
{
    const MetricsSnapshot snap =
        MetricsRegistry::instance().snapshot();
    char buf[256];
    std::string out;

    std::snprintf(
        buf, sizeof(buf),
        "jobs %llu  xhits %llu  shed %llu  retries %llu  "
        "queue depth %lld  queue age %lld us\n",
        static_cast<unsigned long long>(
            snap.value("service.jobs_submitted")),
        static_cast<unsigned long long>(
            snap.value("service.cross_session_hits")),
        static_cast<unsigned long long>(snap.value("service.shed")),
        static_cast<unsigned long long>(
            snap.value("service.retries")),
        static_cast<long long>(snap.value("service.queue_depth")),
        static_cast<long long>(
            snap.value("service.queue_age_us")));
    out += buf;

    out += "\nsessions:\n";
    std::snprintf(buf, sizeof(buf),
                  "  %-20s %-12s %8s %10s %8s %8s %6s %7s\n",
                  "SESSION", "CLASS", "QUEUED", "JOBS", "HITS",
                  "XHITS", "SHED", "INLINE");
    out += buf;
    for (const auto &r : rows) {
        std::snprintf(
            buf, sizeof(buf),
            "  %-20s %-12s %8llu %10llu %8llu %8llu %6llu %7llu\n",
            r.session.c_str(), r.latencyClass.c_str(),
            static_cast<unsigned long long>(r.queueDepth),
            static_cast<unsigned long long>(r.jobsSubmitted),
            static_cast<unsigned long long>(r.cacheHits),
            static_cast<unsigned long long>(r.crossSessionHits),
            static_cast<unsigned long long>(r.shedJobs),
            static_cast<unsigned long long>(r.inlineJobs));
        out += buf;
    }
    if (rows.empty())
        out += "  (none)\n";

    out += "\nphases:\n";
    std::snprintf(buf, sizeof(buf),
                  "  %-14s %10s %12s %10s %10s %10s\n", "PHASE",
                  "COUNT", "TOTAL_MS", "P50_US", "P95_US",
                  "P99_US");
    out += buf;
    bool any_phase = false;
    for (const auto &m : snap.metrics) {
        std::string phase;
        if (!phaseDisplayName(m.name, &phase))
            continue;
        any_phase = true;
        std::snprintf(
            buf, sizeof(buf),
            "  %-14s %10llu %12.3f %10.1f %10.1f %10.1f\n",
            phase.c_str(),
            static_cast<unsigned long long>(m.count),
            static_cast<double>(m.sumNs) / 1e6,
            histogramQuantileNs(m, 0.50) / 1e3,
            histogramQuantileNs(m, 0.95) / 1e3,
            histogramQuantileNs(m, 0.99) / 1e3);
        out += buf;
    }
    if (!any_phase)
        out += "  (profiler off: set VARSAW_PROFILE=1 or pass "
               "--profile)\n";

    out += "\nslo:\n";
    std::snprintf(buf, sizeof(buf),
                  "  %-14s %10s %10s %10s %10s %8s\n", "CLASS",
                  "COUNT", "P50_US", "P95_US", "P99_US", "BURN");
    out += buf;
    bool any_slo = false;
    for (const auto &m : snap.metrics) {
        std::string cls;
        if (!sloClassName(m.name, &cls))
            continue;
        any_slo = true;
        const double burn = snap.value(
            "service.slo_burn{class=" + cls + "}");
        std::snprintf(
            buf, sizeof(buf),
            "  %-14s %10llu %10.1f %10.1f %10.1f %8llu\n",
            cls.c_str(), static_cast<unsigned long long>(m.count),
            histogramQuantileNs(m, 0.50) / 1e3,
            histogramQuantileNs(m, 0.95) / 1e3,
            histogramQuantileNs(m, 0.99) / 1e3,
            static_cast<unsigned long long>(burn));
        out += buf;
    }
    if (!any_slo)
        out += "  (no batch completed yet)\n";
    return out;
}

} // namespace

struct IntrospectServer::Impl
{
    mutable std::mutex mutex;
    std::string path;
    StatusProvider provider;
    std::thread thread;
    std::atomic<bool> running{false};
    std::atomic<bool> stopping{false};
    int listenFd = -1;
};

IntrospectServer::IntrospectServer() : impl_(new Impl) {}

IntrospectServer::~IntrospectServer()
{
    stop();
    delete impl_;
}

void
IntrospectServer::setStatusProvider(StatusProvider provider)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->provider = std::move(provider);
}

bool
IntrospectServer::running() const
{
    return impl_->running.load(std::memory_order_acquire);
}

std::string
IntrospectServer::socketPath() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->running.load(std::memory_order_acquire)
        ? impl_->path
        : std::string{};
}

std::string
IntrospectServer::respond(const std::string &command) const
{
    if (command == "json")
        return metricsToJson(MetricsRegistry::instance().snapshot());
    if (command == "prom")
        return metricsToPrometheus(
            MetricsRegistry::instance().snapshot());
    if (command == "sessions" || command == "top") {
        StatusProvider provider;
        {
            std::lock_guard<std::mutex> lock(impl_->mutex);
            provider = impl_->provider;
        }
        std::vector<SessionStatusRow> rows;
        if (provider)
            rows = provider();
        return command == "sessions" ? sessionsToJson(rows)
                                     : renderTopPage(rows);
    }
    return "ERR unknown command (want json|prom|sessions|top)\n";
}

#if VARSAW_HAVE_UNIX_SOCKETS

namespace {

/** Read one '\n'-terminated command (bounded, 2 s timeout). */
std::string
readCommand(int fd)
{
    struct timeval tv;
    tv.tv_sec = 2;
    tv.tv_usec = 0;
    (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    std::string cmd;
    char c = 0;
    while (cmd.size() < 64) {
        const ssize_t n = recv(fd, &c, 1, 0);
        if (n <= 0 || c == '\n')
            break;
        if (c != '\r')
            cmd += c;
    }
    return cmd;
}

void
sendAll(int fd, const std::string &text)
{
    std::size_t sent = 0;
    while (sent < text.size()) {
        const ssize_t n = send(fd, text.data() + sent,
                               text.size() - sent, 0);
        if (n <= 0)
            return;
        sent += static_cast<std::size_t>(n);
    }
}

} // namespace

bool
IntrospectServer::start(const std::string &socket_path)
{
    if (socket_path.empty() ||
        impl_->running.load(std::memory_order_acquire))
        return false;
    sockaddr_un addr{};
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        warn("introspect: socket path too long: " + socket_path);
        return false;
    }
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        warn("introspect: socket() failed");
        return false;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);
    (void)::unlink(socket_path.c_str());
    if (bind(fd, reinterpret_cast<sockaddr *>(&addr),
             sizeof(addr)) != 0 ||
        listen(fd, 8) != 0) {
        warn("introspect: cannot bind '" + socket_path + "'");
        ::close(fd);
        return false;
    }
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->path = socket_path;
        impl_->listenFd = fd;
    }
    impl_->stopping.store(false, std::memory_order_release);
    impl_->running.store(true, std::memory_order_release);
    impl_->thread = std::thread([this, fd] {
        while (!impl_->stopping.load(std::memory_order_acquire)) {
            pollfd pfd{};
            pfd.fd = fd;
            pfd.events = POLLIN;
            const int ready = poll(&pfd, 1, 200);
            if (ready <= 0 || !(pfd.revents & POLLIN))
                continue;
            const int client = accept(fd, nullptr, nullptr);
            if (client < 0)
                continue;
            sendAll(client, respond(readCommand(client)));
            ::close(client);
        }
    });
    return true;
}

void
IntrospectServer::stop()
{
    if (!impl_->running.exchange(false, std::memory_order_acq_rel))
        return;
    impl_->stopping.store(true, std::memory_order_release);
    if (impl_->thread.joinable())
        impl_->thread.join();
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->listenFd >= 0) {
        ::close(impl_->listenFd);
        impl_->listenFd = -1;
    }
    if (!impl_->path.empty())
        (void)::unlink(impl_->path.c_str());
}

#else // !VARSAW_HAVE_UNIX_SOCKETS

bool
IntrospectServer::start(const std::string &socket_path)
{
    warn("introspect: unix sockets unavailable on this platform; "
         "'" + socket_path + "' not served");
    return false;
}

void
IntrospectServer::stop()
{
    impl_->running.store(false, std::memory_order_release);
}

#endif // VARSAW_HAVE_UNIX_SOCKETS

namespace {

std::mutex &
introspectPathMutex()
{
    static std::mutex m;
    return m;
}

std::string &
introspectPathSlot()
{
    static std::string *s = new std::string();
    return *s;
}

} // namespace

void
setIntrospectPath(const std::string &path)
{
    std::lock_guard<std::mutex> lock(introspectPathMutex());
    introspectPathSlot() = path;
}

std::string
introspectPath()
{
    std::lock_guard<std::mutex> lock(introspectPathMutex());
    return introspectPathSlot();
}

} // namespace varsaw::telemetry
