/**
 * @file
 * The batched, parallel, cached execution runtime.
 *
 * BatchExecutor sits between the estimators and an Executor
 * backend: estimators describe a tick's worth of circuits as a
 * Batch; the runtime runs the jobs across a fixed thread pool,
 * answers repeats from the ResultCache, and returns results in
 * submission order (futures for async consumers, a plain vector for
 * the common blocking case).
 *
 * Determinism: every job samples from an RNG stream derived purely
 * from its content key — jobStream(makeJobKey(job)) — so a given
 * (backend, circuit, params, shots) submission draws the same shots
 * no matter which thread runs it, when, or how often. Worker
 * scheduling therefore cannot affect any result, caching is pure
 * memoization (a hit returns exactly what re-execution would
 * compute), and independent runtimes or service sessions over one
 * backend agree bit for bit on shared work instead of replaying
 * uncorrelated streams. With the cache on, the JobLedger admits one
 * primary per key (in submission order) and defers duplicates onto
 * its future, keeping backend cost counters and hit/miss statistics
 * thread-count-independent as well.
 */

#ifndef VARSAW_RUNTIME_BATCH_EXECUTOR_HH
#define VARSAW_RUNTIME_BATCH_EXECUTOR_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "mitigation/executor.hh"
#include "runtime/job_ledger.hh"
#include "runtime/result_cache.hh"
#include "runtime/submitter.hh"
#include "runtime/thread_pool.hh"
#include "sim/state_cache.hh"

namespace varsaw {

/**
 * Latency expectation a submitter declares for its jobs. Purely an
 * accounting label: the runtime and service never reorder or
 * prioritize by it — results and scheduling are class-independent.
 * Under a shared service each class gets its own
 * `service.latency_ns{class=...}` histogram and SLO burn counter
 * (see ServiceConfig::interactiveSloNs / bulkSloNs).
 */
enum class LatencyClass : int
{
    Interactive = 0, //!< human in the loop — tight latency target
    Bulk = 1,        //!< throughput-oriented sweeps — loose target
};

/** Telemetry label value of a latency class ("interactive"/"bulk"). */
const char *latencyClassName(LatencyClass latency_class);

/** Tunables of the execution runtime. */
struct RuntimeConfig
{
    /**
     * Worker threads. 1 (the default) runs every job inline on the
     * submitting thread — no pool is created, and behaviour matches
     * a plain serial loop over executeJob(). Ignored when the jobs
     * run through a shared service (the service's workers are the
     * thread supply).
     */
    int threads = 1;

    /** Dedupe identical submissions through the result cache.
     * Honored per session under a shared service too: a cache-off
     * session bypasses the shared ledger entirely. */
    bool cacheResults = false;

    /**
     * Tracked-key cap of the dedupe ledger / result cache. Ignored
     * under a shared service — the cap of the SHARED ledger is
     * ServiceConfig::cacheMaxEntries, fixed when the service is
     * built.
     */
    std::size_t cacheMaxEntries = 1 << 16;

    /**
     * Prefix-aware scheduling (threads > 1): jobs of one batch that
     * share a prep key are grouped so that, when there are at least
     * as many distinct preps as workers, each prep's jobs run on
     * one worker — its first job populates the SimEngine's state
     * cache and the rest hit it without ever contending with other
     * threads. With fewer preps than workers the groups are split
     * into contiguous chunks to keep every worker busy (the engine
     * tolerates the resulting cross-thread sharing; its cache
     * guarantees exactly one preparation per key either way).
     * Purely a placement policy — results and streams are assigned
     * at submission and cannot change.
     */
    bool prefixAwareScheduling = true;

    /**
     * Intra-kernel threads to apply at runtime construction via
     * setKernelThreads() (see util/parallel.hh). The kernel pool is
     * process-wide, so this is a convenience knob rather than
     * per-runtime state: 0 (the default) leaves the current setting
     * untouched. Results never depend on it. Applied only when a
     * private BatchExecutor is built — under a shared service use
     * ServiceConfig::kernelThreads (the admission cap then shares
     * the service's own workers, so no batchThreads x kernelThreads
     * sizing is needed); for private runtimes keep
     * threads * kernelThreads <= cores.
     */
    int kernelThreads = 0;

    /**
     * Shared execution service to open a session on instead of
     * building a private runtime (see runtime/submitter.hh and
     * src/service/execution_service.hh). Null — the default — keeps
     * the historical estimator-owned BatchExecutor. Non-owning: the
     * service must outlive every estimator using it.
     */
    ExecutionBackplane *service = nullptr;

    /**
     * Declared latency class of this runtime's submissions. Pure
     * accounting — see LatencyClass. Private BatchExecutors ignore
     * it today; under a shared service it selects the session's
     * `service.latency_ns{class=...}` series and SLO target.
     */
    LatencyClass latencyClass = LatencyClass::Bulk;
};

/**
 * Partition indices [0, keys.size()) into scheduler groups of equal
 * prep identity, preserving first-appearance order of the groups
 * and index order within each group. Groups compare **full**
 * PrepKeys, never their 64-bit combined() digest: two distinct
 * preps whose digests collide share at most a hash bucket — they
 * can never be merged into (or corrupt) one group, and equal keys
 * always serialize into the same group. Exposed for tests.
 */
std::vector<std::vector<std::size_t>>
groupByPrepKey(const std::vector<PrepKey> &keys);

/**
 * Grouping keys for the prefix-aware scheduler: one PrepKey per job
 * of @p jobs, memoizing the prep structural hash per distinct
 * shared prep circuit. Shared by BatchExecutor and the service
 * sessions.
 */
std::vector<PrepKey>
prepKeysOf(const std::vector<CircuitJob> &jobs);

/**
 * Prefix-aware placement: partition @p tasks (submission-ordered,
 * tagged by @p keys) into sequential chunks. With at least
 * @p threads prep groups, one chunk per group — a prep's jobs stay
 * on one worker and its cached state is never shared across
 * threads. With fewer groups, each is split into enough contiguous
 * chunks to keep every worker busy (the engine tolerates the
 * resulting cross-thread sharing via its shared futures). Chunk
 * composition is a pure function of (keys, threads); purely a
 * placement policy — results and streams are assigned at
 * submission and cannot change.
 */
std::vector<std::vector<std::function<void()>>>
prefixScheduleChunks(const std::vector<PrepKey> &keys,
                     std::vector<std::function<void()>> tasks,
                     std::size_t threads);

/**
 * Index form of prefixScheduleChunks: the same pure chunking
 * decision, returned as indices into @p keys instead of moved task
 * closures. Callers that must keep per-job metadata alongside each
 * chunk (the service's shed/abandon path needs the jobs' ledger
 * claims and result promises) chunk by index and look the metadata
 * up themselves. prefixScheduleChunks is implemented on top of
 * this, so the two can never disagree.
 */
std::vector<std::vector<std::size_t>>
prefixScheduleIndexChunks(const std::vector<PrepKey> &keys,
                          std::size_t threads);

/** Batched front-end over an Executor backend. */
class BatchExecutor : public JobSubmitter
{
  public:
    /**
     * @param backend Executor that runs (and cost-counts) jobs.
     * @param config  Runtime tunables (config.service is ignored
     *                here — routing happens in makeSubmitter()).
     */
    explicit BatchExecutor(Executor &backend,
                           RuntimeConfig config = {});

    /**
     * Submit every job of @p batch; the returned futures are
     * aligned with the batch's job indices. With threads == 1 the
     * jobs run inline before this returns.
     */
    std::vector<std::future<Pmf>> submit(const Batch &batch) override;

    /** The wrapped backend (cost counters live there). */
    Executor &backend() override { return backend_; }
    const Executor &backend() const override { return backend_; }

    /** Runtime configuration in use. */
    const RuntimeConfig &config() const { return config_; }

    /** The result cache (hit/miss statistics). */
    const ResultCache &cache() const { return cache_; }
    ResultCache &cache() { return cache_; }

    /** Shorthand for cache().stats(). */
    CacheStats cacheStats() const override { return cache_.stats(); }

    /** Jobs submitted through this runtime since construction. */
    std::uint64_t jobsSubmitted() const override
    {
        return nextJobIndex_.load(std::memory_order_relaxed);
    }

  private:
    /** A pooled task not yet enqueued, tagged for prep grouping. */
    struct PendingTask
    {
        PrepKey prepKey;
        std::function<void()> run;
    };

    /**
     * Submit one job. @p owned shares ownership of the job's
     * storage with the task closures (null on the inline path,
     * where execution finishes before this returns). When
     * @p pending is non-null, pooled tasks are collected there for
     * prefix-aware placement instead of being enqueued directly,
     * tagged with @p prep_key.
     */
    std::future<Pmf>
    submitOne(const CircuitJob &job,
              const std::shared_ptr<const std::vector<CircuitJob>>
                  &owned,
              std::vector<PendingTask> *pending,
              const PrepKey &prep_key);

    /** Enqueue collected tasks, grouping same-prep jobs together. */
    void schedulePending(std::vector<PendingTask> pending);

    /** Create the worker pool on first parallel use. */
    void ensurePool();

    Executor &backend_;
    RuntimeConfig config_;
    ResultCache cache_;
    /**
     * Cache mode only: submission-order dedupe + LRU over cache_.
     * Exactly one backend execution happens per tracked key
     * regardless of thread timing; duplicates wait on the primary's
     * future. Eviction past cacheMaxEntries removes the
     * least-recently-claimed key (see runtime/job_ledger.hh) — hot
     * keys survive, and re-executing an evicted key reproduces its
     * result bit for bit because streams are content-derived.
     */
    JobLedger ledger_;
    std::mutex poolMutex_;
    /** Jobs submitted (statistics only; streams are content-derived). */
    std::atomic<std::uint64_t> nextJobIndex_{0};
    /**
     * Declared last on purpose: ~ThreadPool drains and joins the
     * workers first, so no in-flight task can touch the cache,
     * ledger, or mutexes after they are destroyed.
     */
    std::unique_ptr<ThreadPool> pool_; //!< created on first submit
};

} // namespace varsaw

#endif // VARSAW_RUNTIME_BATCH_EXECUTOR_HH
