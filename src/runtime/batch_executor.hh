/**
 * @file
 * The batched, parallel, cached execution runtime.
 *
 * BatchExecutor sits between the estimators and an Executor
 * backend: estimators describe a tick's worth of circuits as a
 * Batch; the runtime runs the jobs across a fixed thread pool,
 * answers repeats from the ResultCache, and returns results in
 * submission order (futures for async consumers, a plain vector for
 * the common blocking case).
 *
 * Determinism: every job samples from an RNG stream derived from
 * (backend seed, runtime salt, job index), where the index is a
 * per-runtime sequence number assigned on the submitting thread in
 * submission order and the salt distinguishes runtimes sharing one
 * backend. Worker scheduling therefore cannot affect any result: a
 * 4-thread run is bit-identical to the 1-thread run of the same
 * submission sequence. Repeated identical submissions get fresh
 * indices, hence fresh samples — unless the cache is on, in which
 * case only the first submission of a key ever executes and later
 * ones wait for (or reuse) its result, keeping results, cost
 * counters, and hit/miss statistics all thread-count-independent.
 */

#ifndef VARSAW_RUNTIME_BATCH_EXECUTOR_HH
#define VARSAW_RUNTIME_BATCH_EXECUTOR_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mitigation/executor.hh"
#include "runtime/result_cache.hh"
#include "runtime/thread_pool.hh"
#include "sim/state_cache.hh"

namespace varsaw {

/** Tunables of the execution runtime. */
struct RuntimeConfig
{
    /**
     * Worker threads. 1 (the default) runs every job inline on the
     * submitting thread — no pool is created, and behaviour matches
     * a plain serial loop over executeJob().
     */
    int threads = 1;

    /** Dedupe identical submissions through the result cache. */
    bool cacheResults = false;

    /** Entry cap of the result cache. */
    std::size_t cacheMaxEntries = 1 << 16;

    /**
     * Prefix-aware scheduling (threads > 1): jobs of one batch that
     * share a prep key are grouped so that, when there are at least
     * as many distinct preps as workers, each prep's jobs run on
     * one worker — its first job populates the SimEngine's state
     * cache and the rest hit it without ever contending with other
     * threads. With fewer preps than workers the groups are split
     * into contiguous chunks to keep every worker busy (the engine
     * tolerates the resulting cross-thread sharing; its cache
     * guarantees exactly one preparation per key either way).
     * Purely a placement policy — results and streams are assigned
     * at submission and cannot change.
     */
    bool prefixAwareScheduling = true;

    /**
     * Intra-kernel threads to apply at runtime construction via
     * setKernelThreads() (see util/parallel.hh). The kernel pool is
     * process-wide, so this is a convenience knob rather than
     * per-runtime state: 0 (the default) leaves the current setting
     * untouched. Results never depend on it; for throughput keep
     * threads * kernelThreads <= cores.
     */
    int kernelThreads = 0;
};

/**
 * Partition indices [0, keys.size()) into scheduler groups of equal
 * prep identity, preserving first-appearance order of the groups
 * and index order within each group. Groups compare **full**
 * PrepKeys, never their 64-bit combined() digest: two distinct
 * preps whose digests collide share at most a hash bucket — they
 * can never be merged into (or corrupt) one group, and equal keys
 * always serialize into the same group. Exposed for tests.
 */
std::vector<std::vector<std::size_t>>
groupByPrepKey(const std::vector<PrepKey> &keys);

/** Batched front-end over an Executor backend. */
class BatchExecutor
{
  public:
    /**
     * @param backend Executor that runs (and cost-counts) jobs.
     * @param config  Runtime tunables.
     */
    explicit BatchExecutor(Executor &backend,
                           RuntimeConfig config = {});

    /**
     * Submit every job of @p batch; the returned futures are
     * aligned with the batch's job indices. With threads == 1 the
     * jobs run inline before this returns.
     */
    std::vector<std::future<Pmf>> submit(const Batch &batch);

    /** Submit and wait: results aligned with the job indices. */
    std::vector<Pmf> run(const Batch &batch);

    /** Convenience: run a single job through the runtime. */
    Pmf runOne(const Circuit &circuit,
               const std::vector<double> &params,
               std::uint64_t shots);

    /** The wrapped backend (cost counters live there). */
    Executor &backend() { return backend_; }
    const Executor &backend() const { return backend_; }

    /** Runtime configuration in use. */
    const RuntimeConfig &config() const { return config_; }

    /** The result cache (hit/miss statistics). */
    const ResultCache &cache() const { return cache_; }
    ResultCache &cache() { return cache_; }

    /** Shorthand for cache().stats(). */
    CacheStats cacheStats() const { return cache_.stats(); }

    /** Jobs submitted through this runtime since construction. */
    std::uint64_t jobsSubmitted() const
    {
        return nextJobIndex_.load(std::memory_order_relaxed);
    }

  private:
    /** A pooled task not yet enqueued, tagged for prep grouping. */
    struct PendingTask
    {
        PrepKey prepKey;
        std::function<void()> run;
    };

    /**
     * Submit one job. @p owned shares ownership of the job's
     * storage with the task closures (null on the inline path,
     * where execution finishes before this returns). When
     * @p pending is non-null, pooled tasks are collected there for
     * prefix-aware placement instead of being enqueued directly,
     * tagged with @p prep_key (computed by submit(), which memoizes
     * the prep hash per distinct shared prep; a default PrepKey
     * when the prefix-aware scheduler is off).
     */
    std::future<Pmf>
    submitOne(const CircuitJob &job,
              const std::shared_ptr<const std::vector<CircuitJob>>
                  &owned,
              std::vector<PendingTask> *pending,
              const PrepKey &prep_key);

    /** Enqueue collected tasks, grouping same-prep jobs together. */
    void schedulePending(std::vector<PendingTask> pending);

    /**
     * Cache-aware execution of one job on stream @p stream.
     * @p epoch is the cache epoch the job was submitted in; if the
     * epoch has rolled (bulk clear) by the time the job runs, the
     * job executes uncached so it can neither revive stale entries
     * nor be answered by a newer epoch's insert of the same key.
     */
    Pmf executeCached(const CircuitJob &job, const JobKey &key,
                      std::uint64_t stream, std::uint64_t epoch);

    /** Create the worker pool on first parallel use. */
    void ensurePool();

    Executor &backend_;
    RuntimeConfig config_;
    ResultCache cache_;
    std::mutex poolMutex_;
    /** Salt distinguishing this runtime's streams on the backend. */
    std::uint64_t streamSalt_;
    /** Next job index; streams are mix64(salt, index). */
    std::atomic<std::uint64_t> nextJobIndex_{0};
    /**
     * Cache mode only: the in-flight/completed result of each key's
     * first (primary) submission. Duplicates never execute — they
     * wait on the primary's future — so exactly one backend
     * execution happens per key regardless of thread timing.
     *
     * Bounded together with the cache: when this map reaches
     * cacheMaxEntries (a point that depends only on the submitted
     * key sequence, never on worker timing), both are cleared, so
     * the cache itself never overflows into its timing-sensitive
     * LRU eviction and runs stay reproducible across thread
     * counts.
     */
    std::unordered_map<JobKey, std::shared_future<Pmf>, JobKeyHasher>
        primaries_;
    std::mutex primariesMutex_;
    /** Bumped on every bulk clear; guards late old-epoch tasks. */
    std::atomic<std::uint64_t> cacheEpoch_{0};
    /**
     * Declared last on purpose: ~ThreadPool drains and joins the
     * workers first, so no in-flight task can touch the cache,
     * primaries map, mutexes, or epoch after they are destroyed.
     */
    std::unique_ptr<ThreadPool> pool_; //!< created on first submit
};

} // namespace varsaw

#endif // VARSAW_RUNTIME_BATCH_EXECUTOR_HH
