/**
 * @file
 * Content-addressed cache of circuit execution results.
 *
 * The runtime analogue of VarSaw's spatial redundancy elimination:
 * identical (circuit, params, shots) submissions — within a batch
 * or across estimator ticks — execute once; later submissions are
 * answered with the first submission's sampled result instead of
 * drawing fresh shots. On a workload with no duplicate submissions
 * the cache is inert (every lookup misses) and results are
 * bit-identical to cache-off; on redundant workloads it removes
 * quantum work, which the hit/miss statistics quantify next to the
 * paper's circuit/shot cost counters.
 */

#ifndef VARSAW_RUNTIME_RESULT_CACHE_HH
#define VARSAW_RUNTIME_RESULT_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "sim/circuit_hash.hh"
#include "util/pmf.hh"

namespace varsaw {

/** Hit/miss and avoided-cost accounting. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;

    /** Circuit executions avoided (== hits). */
    std::uint64_t circuitsSaved = 0;

    /** Shots avoided across all hits. */
    std::uint64_t shotsSaved = 0;

    /** hits / (hits + misses); 0 when no lookups happened. */
    double hitRate() const
    {
        const std::uint64_t total = hits + misses;
        return total == 0
            ? 0.0
            : static_cast<double>(hits) / static_cast<double>(total);
    }
};

/**
 * Thread-safe LRU-bounded result cache keyed by job content.
 *
 * Eviction is least-recently-used, where a lookup hit counts as a
 * use: VQA loops re-touch the same job keys every iteration, so the
 * hot working set survives the cap while keys from superseded
 * parameter points age out. (The previous FIFO policy evicted the
 * oldest *insertion* first — exactly the hottest keys in such
 * loops.)
 */
class ResultCache
{
  public:
    /** @param max_entries Entry cap; least-recently-used evict first. */
    explicit ResultCache(std::size_t max_entries = 1 << 16);

    /**
     * Look up a job key. A hit also credits the avoided circuit and
     * key.shots to the saved-cost statistics, and marks the entry
     * most-recently-used.
     */
    std::optional<Pmf> lookup(const JobKey &key);

    /**
     * Record a hit that was answered outside the map (a duplicate
     * submission deduped onto its primary's future): credits one
     * avoided circuit and @p shots to the statistics.
     */
    void creditHit(std::uint64_t shots);

    /**
     * Record a miss that was decided outside the map (a submission
     * the integrated dedupe path admitted as a key's primary without
     * performing a lookup here).
     */
    void creditMiss();

    /** Store a result (no-op if the key is already present). */
    void insert(const JobKey &key, const Pmf &result);

    /**
     * Drop one entry (no-op when absent; counts as an eviction when
     * present). The integrated dedupe ledger uses this to keep the
     * store in lockstep with its submission-order LRU.
     */
    void erase(const JobKey &key);

    /** Drop all entries (statistics are kept; each dropped entry
     * counts as an eviction, so insertions - evictions always
     * matches the resident count). */
    void clear();

    /** Current entry count. */
    std::size_t size() const;

    /** Entry cap. */
    std::size_t maxEntries() const { return maxEntries_; }

    /** Snapshot of the statistics. */
    CacheStats stats() const;

    /** Zero the statistics (entries are kept). */
    void resetStats();

  private:
    struct Entry
    {
        Pmf result;
        /** Position in lru_ (spliced to the front on every use). */
        std::list<JobKey>::iterator lruIt;
    };

    mutable std::mutex mutex_;
    std::size_t maxEntries_;
    std::unordered_map<JobKey, Entry, JobKeyHasher> entries_;
    /** Keys ordered most-recently-used first. */
    std::list<JobKey> lru_;
    CacheStats stats_;
};

} // namespace varsaw

#endif // VARSAW_RUNTIME_RESULT_CACHE_HH
