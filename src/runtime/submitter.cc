#include "runtime/submitter.hh"

#include <atomic>

#include "runtime/batch_executor.hh"

namespace varsaw {

std::vector<Pmf>
JobSubmitter::run(const Batch &batch)
{
    auto futures = submit(batch);
    std::vector<Pmf> results;
    results.reserve(futures.size());
    for (auto &future : futures)
        results.push_back(future.get());
    return results;
}

Pmf
JobSubmitter::runOne(const Circuit &circuit,
                     const std::vector<double> &params,
                     std::uint64_t shots)
{
    Batch batch;
    batch.add(circuit, params, shots);
    return run(batch).front();
}

namespace {

using BackplaneFactory =
    std::unique_ptr<JobSubmitter> (*)(Executor &,
                                      const RuntimeConfig &);

std::atomic<BackplaneFactory> processBackplane{nullptr};

} // namespace

void
setProcessBackplane(BackplaneFactory factory)
{
    processBackplane.store(factory, std::memory_order_release);
}

std::unique_ptr<JobSubmitter>
makeSubmitter(Executor &backend, const RuntimeConfig &config)
{
    if (config.service)
        return config.service->openSession(backend, config);
    if (auto factory =
            processBackplane.load(std::memory_order_acquire)) {
        if (auto session = factory(backend, config))
            return session;
    }
    return std::make_unique<BatchExecutor>(backend, config);
}

} // namespace varsaw
