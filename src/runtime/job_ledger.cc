#include "runtime/job_ledger.hh"

#include <utility>

#include "mitigation/executor.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"
#include "util/logging.hh"

namespace varsaw {

namespace {

/**
 * Dedupe-ledger mirror under `runtime.ledger.*` plus the per-job
 * execution latency histogram. Trace events correlate stages of one
 * job by jobStream(key) — a pure content function, so the same
 * submission carries the same id across runs and sessions.
 */
struct LedgerMetrics
{
    telemetry::Counter &dedupeHits;
    telemetry::Counter &claims;
    telemetry::Counter &evictions;
    telemetry::Counter &quarantined;
    telemetry::Histogram &jobLatencyNs;

    static LedgerMetrics &
    get()
    {
        auto &reg = telemetry::MetricsRegistry::instance();
        static LedgerMetrics *m = new LedgerMetrics{
            reg.counter("runtime.ledger.dedupe_hits"),
            reg.counter("runtime.ledger.claims"),
            reg.counter("runtime.ledger.evictions"),
            reg.counter("service.quarantined"),
            reg.histogram("runtime.job_latency_ns"),
        };
        return *m;
    }
};

} // namespace

JobLedger::JobLedger(std::size_t max_entries)
    : maxEntries_(max_entries)
{
    if (maxEntries_ == 0)
        panic("JobLedger: max_entries must be positive");
}

JobLedger::Claim
JobLedger::claim(const JobKey &key, std::uint64_t shots,
                 ResultCache &cache, std::uint64_t owner,
                 std::uint64_t *primary_owner)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.lruIt);
        cache.creditHit(shots);
        ++stats_.dedupeHits;
        if (telemetry::metricsEnabled())
            LedgerMetrics::get().dedupeHits.add();
        if (telemetry::tracingEnabled())
            telemetry::SpanTracer::instance().instant(
                "dedupe-hit", jobStream(key));
        if (primary_owner)
            *primary_owner = it->second.owner;
        return {it->second.primary, nullptr};
    }

    // New primary. Evict least-recently-claimed keys first so the
    // tracked set never exceeds the cap; both the eviction point and
    // the victim depend only on the claimed key sequence. An evicted
    // in-flight primary keeps running — its waiters hold shared
    // futures — but its result is no longer stored.
    while (entries_.size() >= maxEntries_) {
        const JobKey victim = lru_.back();
        lru_.pop_back();
        entries_.erase(victim);
        cache.erase(victim);
        ++stats_.evictions;
        if (telemetry::metricsEnabled())
            LedgerMetrics::get().evictions.add();
    }
    auto publish = std::make_shared<std::promise<Pmf>>();
    Entry entry{publish->get_future().share(), owner, {}};
    lru_.push_front(key);
    entry.lruIt = lru_.begin();
    entries_.emplace(key, std::move(entry));
    cache.creditMiss();
    ++stats_.claims;
    if (telemetry::metricsEnabled())
        LedgerMetrics::get().claims.add();
    if (telemetry::tracingEnabled())
        telemetry::SpanTracer::instance().instant("claim",
                                                  jobStream(key));
    return {{}, std::move(publish)};
}

void
JobLedger::store(const JobKey &key, const Pmf &result,
                 ResultCache &cache)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.find(key) == entries_.end())
        return; // evicted while in flight; waiters use the future
    cache.insert(key, result);
}

std::future<Pmf>
JobLedger::deferToPrimary(Claim claim)
{
    return std::async(std::launch::deferred,
                      [primary = std::move(claim.primary)] {
                          return primary.get();
                      });
}

Pmf
JobLedger::executeAndPublish(
    Executor &backend, const CircuitJob &job, const JobKey &key,
    ResultCache *cache,
    const std::shared_ptr<std::promise<Pmf>> &publish)
{
    // Quarantine fast path: a poisoned key never reaches the
    // backend again until clearQuarantine(). The claimed entry (if
    // any) is retracted so a post-clearQuarantine resubmission gets
    // a fresh primary.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (quarantine_.count(key) != 0) {
            ++stats_.quarantineRejections;
            dropEntryLocked(key);
            Status status = failedPreconditionError(
                "job key is quarantined after a failed execution "
                "(clearQuarantine() to re-admit)");
            if (publish)
                publish->set_exception(std::make_exception_ptr(
                    StatusError(status)));
            throw StatusError(std::move(status));
        }
    }

    telemetry::ScopedSpan span("job", jobStream(key));
    StatusOr<Pmf> result =
        backend.tryExecuteJob(job.view(), jobStream(key));
    if (!result.ok()) {
        // Poison job: retries exhausted (or permanently invalid).
        // Quarantine the key, retract its entry — shared-cache
        // state stays untouched — and fail the primary's future so
        // waiting duplicates see the same typed error.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (quarantine_.insert(key).second)
                ++stats_.quarantined;
            dropEntryLocked(key);
        }
        if (telemetry::metricsEnabled())
            LedgerMetrics::get().quarantined.add();
        if (telemetry::tracingEnabled())
            telemetry::SpanTracer::instance().instant(
                "quarantine", jobStream(key));
        warn("JobLedger: quarantining job (stream=" +
             std::to_string(jobStream(key)) +
             "): " + result.status().toString());
        if (publish)
            publish->set_exception(std::make_exception_ptr(
                StatusError(result.status())));
        throw StatusError(result.status());
    }
    if (telemetry::metricsEnabled() && span.armed())
        LedgerMetrics::get().jobLatencyNs.record(span.elapsedNs());
    if (cache)
        store(key, *result, *cache);
    if (publish)
        publish->set_value(*result);
    if (telemetry::tracingEnabled())
        telemetry::SpanTracer::instance().instant(
            "complete", jobStream(key));
    return std::move(result).value();
}

void
JobLedger::abandon(const JobKey &key,
                   const std::shared_ptr<std::promise<Pmf>> &publish,
                   const Status &status)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        dropEntryLocked(key);
        ++stats_.abandoned;
    }
    if (publish)
        publish->set_exception(
            std::make_exception_ptr(StatusError(status)));
}

bool
JobLedger::isQuarantined(const JobKey &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return quarantine_.count(key) != 0;
}

std::size_t
JobLedger::quarantinedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return quarantine_.size();
}

void
JobLedger::clearQuarantine()
{
    std::lock_guard<std::mutex> lock(mutex_);
    quarantine_.clear();
}

JobLedgerStats
JobLedger::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
JobLedger::dropEntryLocked(const JobKey &key)
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return;
    lru_.erase(it->second.lruIt);
    entries_.erase(it);
}

void
JobLedger::clear(ResultCache &cache)
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    lru_.clear();
    cache.clear();
}

std::size_t
JobLedger::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

} // namespace varsaw
