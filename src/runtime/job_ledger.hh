/**
 * @file
 * Submission-order-deterministic dedupe ledger over a ResultCache.
 *
 * The integrated cache path shared by BatchExecutor and the
 * ExecutionService sessions: each submitted job key is claimed here
 * BEFORE execution, in submission order, under one lock. The first
 * claim of a key becomes its **primary** (the submission that
 * executes and publishes); every later claim while the key is
 * tracked is a **duplicate** answered from the primary's shared
 * future. Tracked keys form an LRU list maintained at claim time —
 * a point that depends only on the submitted key sequence, never on
 * worker timing — so when the ledger reaches its entry cap it
 * evicts exactly the least-recently-claimed key instead of bulk
 * clearing everything: hot keys (a VQA loop's per-iteration
 * working set) survive the boundary, and which keys are resident is
 * reproducible across thread counts for a given submission
 * sequence.
 *
 * Because sampling streams are content-derived (see jobStream), an
 * evicted key's re-execution reproduces the evicted result bit for
 * bit; eviction therefore trades only work, never results. The old
 * epoch counter that guarded cross-clear races is gone with the
 * bulk clear that needed it.
 */

#ifndef VARSAW_RUNTIME_JOB_LEDGER_HH
#define VARSAW_RUNTIME_JOB_LEDGER_HH

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "runtime/result_cache.hh"
#include "sim/job.hh"
#include "util/pmf.hh"
#include "util/status.hh"

namespace varsaw {

class Executor;

/** Ledger bookkeeping counters (see JobLedger::stats()). */
struct JobLedgerStats
{
    /** Primary claims admitted (one per executed key). */
    std::uint64_t claims = 0;

    /** Duplicate claims answered from a primary's future. */
    std::uint64_t dedupeHits = 0;

    /** Keys evicted past the entry cap (claim-time LRU). */
    std::uint64_t evictions = 0;

    /** Keys quarantined after a failed execution. */
    std::uint64_t quarantined = 0;

    /** Submissions refused because their key was quarantined. */
    std::uint64_t quarantineRejections = 0;

    /** Claims abandoned before execution (admission shed). */
    std::uint64_t abandoned = 0;
};

/** Dedupe decision + LRU bookkeeping for cached execution paths. */
class JobLedger
{
  public:
    /**
     * @param max_entries Tracked-key cap; claiming past it evicts
     *                    the least-recently-claimed key (and its
     *                    cached result) one at a time.
     */
    explicit JobLedger(std::size_t max_entries);

    /** Outcome of claiming one submission. */
    struct Claim
    {
        /** Valid iff this submission is a duplicate: the result (or
         * in-flight future) of the key's primary. */
        std::shared_future<Pmf> primary;

        /** Set iff this submission is the key's primary: execute the
         * job, publish() the result here, and store() it. */
        std::shared_ptr<std::promise<Pmf>> publish;

        bool duplicate() const { return primary.valid(); }
    };

    /**
     * Claim @p key in submission order: touch it in the LRU, decide
     * primary vs duplicate, and evict past the cap (evicted keys are
     * dropped from @p cache too, keeping store and ledger in
     * lockstep). Hit/miss statistics are credited to @p cache
     * (@p shots is the submission's shot count, for the saved-cost
     * accounting).
     *
     * @p owner tags a new primary with the claiming party (a
     * service session id; private runtimes pass 0). On a duplicate,
     * @p primary_owner (when non-null) receives the primary's tag —
     * how the service counts cross-session hits.
     */
    Claim claim(const JobKey &key, std::uint64_t shots,
                ResultCache &cache, std::uint64_t owner = 0,
                std::uint64_t *primary_owner = nullptr);

    /**
     * Record the primary's computed result: inserted into @p cache
     * unless the key was evicted while the primary was in flight
     * (waiting duplicates still resolve through the shared future
     * either way).
     */
    void store(const JobKey &key, const Pmf &result,
               ResultCache &cache);

    /**
     * The future a duplicate submission returns: a deferred wait on
     * its primary's shared future, executed on the CONSUMER's
     * thread at get() time — no pool worker ever blocks on another
     * task. The one definition of the deferral policy, shared by
     * BatchExecutor and the service sessions.
     */
    static std::future<Pmf> deferToPrimary(Claim claim);

    /**
     * Execute a submission on @p backend with stream jobStream(key)
     * and run the primary-side bookkeeping in its one canonical
     * order: execute, store into the ledger/@p cache (when @p cache
     * is non-null — pass null on cache-off paths, which never
     * claimed), resolve @p publish (when non-null), return the
     * result. Shared by BatchExecutor and the service sessions so
     * dedupe semantics cannot drift between them.
     *
     * Fault tolerance: execution goes through
     * Executor::tryExecuteJob (deadline + bounded retry). A
     * quarantined key fails fast with FailedPrecondition before
     * touching the backend. When every attempt fails, the key is
     * quarantined, its ledger entry is dropped (shared-cache state
     * is untouched), the failure is published to @p publish (so
     * waiting duplicates see the same StatusError), and a
     * StatusError is thrown to the caller.
     */
    Pmf executeAndPublish(
        Executor &backend, const CircuitJob &job, const JobKey &key,
        ResultCache *cache,
        const std::shared_ptr<std::promise<Pmf>> &publish);

    /**
     * Retract a claimed-but-never-executed primary (admission shed
     * under backpressure): drop the key's ledger entry and publish
     * @p status as a StatusError on @p publish so every duplicate
     * already deferred to this primary fails with the same typed
     * error instead of waiting forever. Does NOT quarantine — the
     * job was never executed, so resubmission is expected to work.
     */
    void abandon(const JobKey &key,
                 const std::shared_ptr<std::promise<Pmf>> &publish,
                 const Status &status);

    /** Whether @p key is quarantined (poisoned by a failed
     * execution; submissions fail fast until clearQuarantine()). */
    bool isQuarantined(const JobKey &key) const;

    /** Number of quarantined keys. */
    std::size_t quarantinedCount() const;

    /**
     * Release every quarantined key (operator intervention after
     * the underlying fault is fixed). Quarantine survives clear():
     * clearing dedupe state must not silently re-admit poison jobs.
     */
    void clearQuarantine();

    /** Snapshot of the bookkeeping counters. */
    JobLedgerStats stats() const;

    /**
     * Drop every tracked key (and the matching @p cache entries).
     * Safe at any time, including with primaries in flight:
     * duplicates already deferred keep their shared futures, and a
     * cleared in-flight primary simply skips its store(). Because
     * results are pure functions of job content, clearing can only
     * cost re-execution, never change a result — use it to release
     * memory or to isolate measurement phases that must not share
     * work (e.g. comparing methods under a circuit budget).
     */
    void clear(ResultCache &cache);

    /** Tracked-key cap. */
    std::size_t maxEntries() const { return maxEntries_; }

    /** Currently tracked keys (in-flight and completed). */
    std::size_t size() const;

  private:
    struct Entry
    {
        std::shared_future<Pmf> primary;
        /** Claiming party of the primary (session id; 0 private). */
        std::uint64_t owner = 0;
        /** Position in lru_ (spliced to the front on every claim). */
        std::list<JobKey>::iterator lruIt;
    };

    /** Drop @p key's entry (and LRU slot) if tracked. Caller holds
     * mutex_. */
    void dropEntryLocked(const JobKey &key);

    mutable std::mutex mutex_;
    std::size_t maxEntries_;
    std::unordered_map<JobKey, Entry, JobKeyHasher> entries_;
    /** Tracked keys, most recently claimed first. */
    std::list<JobKey> lru_;
    /** Poisoned keys (failed execution); not cleared by clear(). */
    std::unordered_set<JobKey, JobKeyHasher> quarantine_;
    JobLedgerStats stats_;
};

} // namespace varsaw

#endif // VARSAW_RUNTIME_JOB_LEDGER_HH
