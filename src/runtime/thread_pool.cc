#include "runtime/thread_pool.hh"

#include "util/logging.hh"

#include <utility>

namespace varsaw {

ThreadPool::ThreadPool(int threads)
{
    if (threads < 1)
        panic("ThreadPool: thread count must be >= 1");
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    available_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(std::move(task));
    }
    available_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            available_.wait(lock, [this] {
                return stopping_ || !tasks_.empty();
            });
            if (tasks_.empty())
                return; // stopping and drained
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
    }
}

} // namespace varsaw
