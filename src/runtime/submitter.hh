/**
 * @file
 * The submission interface estimators program against.
 *
 * A JobSubmitter turns Batches into result futures. Two
 * implementations exist:
 *
 *  - BatchExecutor (runtime/batch_executor.hh): the private,
 *    estimator-owned runtime — its own worker pool and caches;
 *  - Session (src/service/execution_service.hh): a cheap handle
 *    onto the process-wide ExecutionService, sharing one scheduler
 *    and one set of caches with every other session.
 *
 * Estimators hold a JobSubmitter and never know which one they got:
 * makeSubmitter() picks based on RuntimeConfig::service (and the
 * VARSAW_SHARED_SERVICE test shim). Both implementations derive
 * every job's sampling stream from its content key (jobStream), so
 * the two paths — and any mix of them — produce bit-identical
 * results for the same backend.
 *
 * Layering: this header lives in runtime/ so estimators depend only
 * on runtime/; service/ implements the interface from above
 * (service/ may include runtime/, never the reverse — the
 * ExecutionBackplane indirection is what keeps the arrow pointing
 * one way).
 */

#ifndef VARSAW_RUNTIME_SUBMITTER_HH
#define VARSAW_RUNTIME_SUBMITTER_HH

#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "runtime/result_cache.hh"
#include "sim/job.hh"
#include "util/pmf.hh"

namespace varsaw {

class Executor;
struct RuntimeConfig;

/** Batched circuit-submission front-end (see file comment). */
class JobSubmitter
{
  public:
    virtual ~JobSubmitter() = default;

    /**
     * Submit every job of @p batch; the returned futures are aligned
     * with the batch's job indices.
     */
    virtual std::vector<std::future<Pmf>>
    submit(const Batch &batch) = 0;

    /** The backend jobs execute on (cost counters live there). */
    virtual Executor &backend() = 0;
    virtual const Executor &backend() const = 0;

    /**
     * Result-cache statistics as seen by this submitter: the private
     * cache's stats for a BatchExecutor, this session's share of the
     * service-wide cache for a Session.
     */
    virtual CacheStats cacheStats() const = 0;

    /** Jobs submitted through this submitter since construction. */
    virtual std::uint64_t jobsSubmitted() const = 0;

    /** Submit and wait: results aligned with the job indices. */
    std::vector<Pmf> run(const Batch &batch);

    /** Convenience: run a single job through the submitter. */
    Pmf runOne(const Circuit &circuit,
               const std::vector<double> &params,
               std::uint64_t shots);
};

/**
 * A source of sessions: something that can open a JobSubmitter onto
 * a backend. Implemented by service::ExecutionService; referenced
 * (as a pointer in RuntimeConfig) from runtime/ without depending on
 * the service layer.
 */
class ExecutionBackplane
{
  public:
    virtual ~ExecutionBackplane() = default;

    /**
     * Open a session for an estimator whose jobs run on @p backend.
     * Implementations reject (panic) backends other than their own:
     * cached results are meaningless across different backends.
     */
    virtual std::unique_ptr<JobSubmitter>
    openSession(Executor &backend, const RuntimeConfig &config) = 0;
};

/**
 * Build the submitter an estimator should use: a session of
 * config.service when one is set; otherwise a session of the
 * process-wide backplane when one is installed (the
 * VARSAW_SHARED_SERVICE=1 test shim routes every estimator through
 * shared services this way); otherwise a private BatchExecutor.
 */
std::unique_ptr<JobSubmitter> makeSubmitter(Executor &backend,
                                            const RuntimeConfig &config);

/**
 * Install/clear the process-wide backplane factory consulted by
 * makeSubmitter() when RuntimeConfig::service is unset. Receives
 * the backend and config; returns a session or null (null falls
 * back to a private BatchExecutor). Used by the service layer's
 * env-var shim; not a general extension point.
 */
void setProcessBackplane(
    std::unique_ptr<JobSubmitter> (*factory)(Executor &,
                                             const RuntimeConfig &));

} // namespace varsaw

#endif // VARSAW_RUNTIME_SUBMITTER_HH
