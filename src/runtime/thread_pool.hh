/**
 * @file
 * Fixed-size worker pool for the batch execution runtime.
 *
 * Deliberately minimal: a locked deque of type-erased tasks drained
 * by N workers. Result plumbing (futures) lives in BatchExecutor;
 * determinism lives in the per-job RNG streams — the pool makes no
 * ordering promises and does not need to.
 */

#ifndef VARSAW_RUNTIME_THREAD_POOL_HH
#define VARSAW_RUNTIME_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace varsaw {

/** Fixed pool of worker threads draining a shared task queue. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (at least one). */
    explicit ThreadPool(int threads);

    /** Drains remaining tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Queue a task for execution on some worker. */
    void enqueue(std::function<void()> task);

    /** Number of worker threads. */
    int threadCount() const
    {
        return static_cast<int>(workers_.size());
    }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable available_;
    bool stopping_ = false;
};

} // namespace varsaw

#endif // VARSAW_RUNTIME_THREAD_POOL_HH
