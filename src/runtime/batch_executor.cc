#include "runtime/batch_executor.hh"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "sim/sim_engine.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"
#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

namespace varsaw {

namespace {

/** Submission-side mirror under `runtime.batch_executor.*`. */
struct BatchMetrics
{
    telemetry::Counter &jobsSubmitted;
    telemetry::Counter &batchesSubmitted;
    telemetry::Counter &inlineJobs;

    static BatchMetrics &
    get()
    {
        auto &reg = telemetry::MetricsRegistry::instance();
        static BatchMetrics *m = new BatchMetrics{
            reg.counter("runtime.batch_executor.jobs_submitted"),
            reg.counter(
                "runtime.batch_executor.batches_submitted"),
            reg.counter("runtime.batch_executor.inline_jobs"),
        };
        return *m;
    }
};

} // namespace

const char *
latencyClassName(LatencyClass latency_class)
{
    return latency_class == LatencyClass::Interactive
        ? "interactive"
        : "bulk";
}

BatchExecutor::BatchExecutor(Executor &backend, RuntimeConfig config)
    : backend_(backend), config_(config),
      cache_(config.cacheMaxEntries),
      ledger_(config.cacheMaxEntries)
{
    if (config_.threads < 1)
        panic("BatchExecutor: thread count must be >= 1");
    if (config_.kernelThreads > 0)
        setKernelThreads(config_.kernelThreads);
}

void
BatchExecutor::ensurePool()
{
    if (config_.threads <= 1)
        return;
    std::lock_guard<std::mutex> lock(poolMutex_);
    if (!pool_)
        pool_ = std::make_unique<ThreadPool>(config_.threads);
}

std::vector<std::vector<std::size_t>>
groupByPrepKey(const std::vector<PrepKey> &keys)
{
    std::vector<std::vector<std::size_t>> groups;
    std::unordered_map<PrepKey, std::size_t, PrepKeyHasher> group_of;
    for (std::size_t i = 0; i < keys.size(); ++i) {
        auto [it, inserted] =
            group_of.try_emplace(keys[i], groups.size());
        if (inserted)
            groups.emplace_back();
        groups[it->second].push_back(i);
    }
    return groups;
}

std::vector<PrepKey>
prepKeysOf(const std::vector<CircuitJob> &jobs)
{
    std::vector<PrepKey> keys;
    keys.reserve(jobs.size());
    // The prep structural hash is memoized per distinct shared prep
    // — safe to key by pointer because the jobs' shared_ptrs keep
    // every prep alive for the whole loop.
    std::unordered_map<const Circuit *, std::uint64_t> prep_hash;
    for (const CircuitJob &job : jobs) {
        if (job.prep) {
            auto [it, inserted] =
                prep_hash.try_emplace(job.prep.get(), 0);
            if (inserted)
                it->second = circuitPrefixHash(
                    *job.prep,
                    splitPrepSuffix(*job.prep).prefixOps);
            keys.push_back(
                PrepKey{it->second, parameterHash(job.params)});
        } else {
            keys.push_back(
                prepKeyOf(nullptr, job.circuit, job.params));
        }
    }
    return keys;
}

std::future<Pmf>
BatchExecutor::submitOne(
    const CircuitJob &job,
    const std::shared_ptr<const std::vector<CircuitJob>> &owned,
    std::vector<PendingTask> *pending, const PrepKey &prep_key)
{
    const JobKey key = makeJobKey(job);
    nextJobIndex_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::metricsEnabled()) {
        auto &m = BatchMetrics::get();
        m.jobsSubmitted.add();
        if (config_.threads <= 1)
            m.inlineJobs.add();
    }
    if (telemetry::tracingEnabled())
        telemetry::SpanTracer::instance().instant("enqueue",
                                                  jobStream(key));

    // Cache mode: the ledger decides — in submission order —
    // whether this submission is the key's primary (the one that
    // executes) or a duplicate deferred onto the primary's result.
    // Duplicates never execute, so backend cost counters and hit
    // statistics are exact and independent of worker timing.
    std::shared_ptr<std::promise<Pmf>> publish;
    if (config_.cacheResults) {
        auto claim = ledger_.claim(key, job.shots, cache_);
        if (claim.duplicate())
            return JobLedger::deferToPrimary(std::move(claim));
        publish = std::move(claim.publish);
    }
    ResultCache *cache =
        config_.cacheResults ? &cache_ : nullptr;

    if (config_.threads <= 1) {
        // Inline: execute on the submitting thread, no job copy. A
        // failed execution (StatusError: quarantine, retries
        // exhausted, invalid job) fails THIS job's future and
        // nothing else — the submitting loop continues.
        std::promise<Pmf> done;
        try {
            done.set_value(ledger_.executeAndPublish(
                backend_, job, key, cache, publish));
        } catch (...) {
            done.set_exception(std::current_exception());
        }
        return done.get_future();
    }

    ensurePool();
    // Pooled tasks reference the job through shared batch storage
    // (one copy per submit(), not per task), so futures stay valid
    // even if the caller drops the Batch before they resolve.
    const CircuitJob *job_ptr = &job;
    auto task = std::make_shared<std::packaged_task<Pmf()>>(
        [this, owned, job_ptr, key, cache, publish] {
            return ledger_.executeAndPublish(backend_, *job_ptr,
                                             key, cache, publish);
        });
    std::future<Pmf> future = task->get_future();
    if (pending)
        pending->push_back({prep_key, [task] { (*task)(); }});
    else
        pool_->enqueue([task] { (*task)(); });
    return future;
}

std::vector<std::vector<std::size_t>>
prefixScheduleIndexChunks(const std::vector<PrepKey> &keys,
                          std::size_t threads)
{
    // Group indices by full prep key (digest collisions cannot
    // merge distinct preps), preserving first-appearance order of
    // the groups and submission order within each group.
    const auto groups = groupByPrepKey(keys);

    std::vector<std::vector<std::size_t>> chunks;
    const std::size_t per_group_chunks =
        groups.empty() || groups.size() >= threads
            ? 1
            : (threads + groups.size() - 1) / groups.size();
    for (const auto &group : groups) {
        const std::size_t chunk_size = std::max<std::size_t>(
            1, (group.size() + per_group_chunks - 1) /
                   per_group_chunks);
        for (std::size_t begin = 0; begin < group.size();
             begin += chunk_size) {
            const std::size_t end =
                std::min(group.size(), begin + chunk_size);
            chunks.emplace_back(group.begin() + begin,
                                group.begin() + end);
        }
    }
    return chunks;
}

std::vector<std::vector<std::function<void()>>>
prefixScheduleChunks(const std::vector<PrepKey> &keys,
                     std::vector<std::function<void()>> tasks,
                     std::size_t threads)
{
    std::vector<std::vector<std::function<void()>>> chunks;
    for (const auto &indices :
         prefixScheduleIndexChunks(keys, threads)) {
        chunks.emplace_back();
        chunks.back().reserve(indices.size());
        for (std::size_t i : indices)
            chunks.back().push_back(std::move(tasks[i]));
    }
    return chunks;
}

void
BatchExecutor::schedulePending(std::vector<PendingTask> pending)
{
    if (pending.empty())
        return;
    if (!config_.prefixAwareScheduling) {
        for (auto &p : pending)
            pool_->enqueue(std::move(p.run));
        return;
    }

    std::vector<PrepKey> keys;
    std::vector<std::function<void()>> tasks;
    keys.reserve(pending.size());
    tasks.reserve(pending.size());
    for (auto &p : pending) {
        keys.push_back(p.prepKey);
        tasks.push_back(std::move(p.run));
    }
    for (auto &chunk : prefixScheduleChunks(
             keys, std::move(tasks),
             static_cast<std::size_t>(config_.threads))) {
        auto shared = std::make_shared<
            std::vector<std::function<void()>>>(std::move(chunk));
        pool_->enqueue([shared] {
            for (auto &run : *shared)
                run();
        });
    }
}

std::vector<std::future<Pmf>>
BatchExecutor::submit(const Batch &batch)
{
    std::vector<std::future<Pmf>> futures;
    futures.reserve(batch.size());
    if (telemetry::metricsEnabled())
        BatchMetrics::get().batchesSubmitted.add();
    if (config_.threads <= 1) {
        // Inline execution completes before submit() returns; no
        // shared copy of the batch is needed.
        for (const CircuitJob &job : batch.jobs())
            futures.push_back(
                submitOne(job, nullptr, nullptr, PrepKey{}));
        return futures;
    }
    auto owned = std::make_shared<const std::vector<CircuitJob>>(
        batch.jobs());
    std::vector<PendingTask> pending;
    pending.reserve(owned->size());
    std::vector<PrepKey> prep_keys;
    if (config_.prefixAwareScheduling)
        prep_keys = prepKeysOf(*owned);
    for (std::size_t i = 0; i < owned->size(); ++i)
        futures.push_back(submitOne(
            (*owned)[i], owned, &pending,
            config_.prefixAwareScheduling ? prep_keys[i]
                                          : PrepKey{}));
    schedulePending(std::move(pending));
    return futures;
}

} // namespace varsaw
