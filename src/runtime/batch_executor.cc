#include "runtime/batch_executor.hh"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "sim/sim_engine.hh"
#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

namespace varsaw {

BatchExecutor::BatchExecutor(Executor &backend, RuntimeConfig config)
    : backend_(backend), config_(config),
      cache_(config.cacheMaxEntries),
      streamSalt_(backend.acquireStreamSalt())
{
    if (config_.threads < 1)
        panic("BatchExecutor: thread count must be >= 1");
    if (config_.kernelThreads > 0)
        setKernelThreads(config_.kernelThreads);
}

void
BatchExecutor::ensurePool()
{
    if (config_.threads <= 1)
        return;
    std::lock_guard<std::mutex> lock(poolMutex_);
    if (!pool_)
        pool_ = std::make_unique<ThreadPool>(config_.threads);
}

Pmf
BatchExecutor::executeCached(const CircuitJob &job,
                             const JobKey &key, std::uint64_t stream,
                             std::uint64_t epoch)
{
    // Epoch checks and cache access are atomic under the primaries
    // lock (clears bump the epoch under the same lock). A job whose
    // epoch rolled between submission and execution runs uncached:
    // its lookup could otherwise hit a NEW epoch's insert of the
    // same key (skipping an execution the serial order performs),
    // and its insert would plant a stale result in the cleared
    // cache — either would make results or counters depend on
    // worker timing. Within an epoch a primary's lookup always
    // misses (the primaries map gates execution), so the lookup
    // only records the miss statistic.
    if (config_.cacheResults) {
        std::lock_guard<std::mutex> lock(primariesMutex_);
        if (epoch == cacheEpoch_.load(std::memory_order_relaxed)) {
            if (auto hit = cache_.lookup(key))
                return std::move(*hit);
        }
    }
    Pmf result = backend_.executeJob(job, stream);
    if (config_.cacheResults) {
        std::lock_guard<std::mutex> lock(primariesMutex_);
        // Within the integrated path duplicates are answered from
        // the primaries map's futures, so these entries are the
        // persistent, inspectable record of computed results (and
        // the store standalone ResultCache users read from) rather
        // than the hot dedupe path.
        if (epoch == cacheEpoch_.load(std::memory_order_relaxed))
            cache_.insert(key, result);
    }
    return result;
}

std::vector<std::vector<std::size_t>>
groupByPrepKey(const std::vector<PrepKey> &keys)
{
    std::vector<std::vector<std::size_t>> groups;
    std::unordered_map<PrepKey, std::size_t, PrepKeyHasher> group_of;
    for (std::size_t i = 0; i < keys.size(); ++i) {
        auto [it, inserted] =
            group_of.try_emplace(keys[i], groups.size());
        if (inserted)
            groups.emplace_back();
        groups[it->second].push_back(i);
    }
    return groups;
}

std::future<Pmf>
BatchExecutor::submitOne(
    const CircuitJob &job,
    const std::shared_ptr<const std::vector<CircuitJob>> &owned,
    std::vector<PendingTask> *pending, const PrepKey &prep_key)
{
    const JobKey key = makeJobKey(job);
    const std::uint64_t index =
        nextJobIndex_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t stream = mix64(streamSalt_, index);

    // Duplicates take the primary's published result directly — a
    // cache lookup here could cross an epoch clear and return a
    // NEWER submission's sample instead of the primary's. The hit
    // is credited to the statistics explicitly.
    auto wait_for_primary =
        [this, shots = job.shots](
            const std::shared_future<Pmf> &primary) -> Pmf {
        cache_.creditHit(shots);
        return primary.get();
    };

    // Cache mode: decide under the lock — in submission order —
    // whether this submission is the key's primary (the one that
    // executes) or a duplicate deferred onto the primary's result.
    // Duplicates never execute, so backend cost counters and hit
    // statistics are exact and independent of worker timing.
    std::shared_ptr<std::promise<Pmf>> publish;
    std::shared_future<Pmf> primary;
    std::uint64_t epoch = 0;
    if (config_.cacheResults) {
        std::lock_guard<std::mutex> lock(primariesMutex_);
        // Bound both maps at a point that depends only on the key
        // sequence, never on worker timing, so runs stay
        // reproducible across thread counts and the cache never
        // reaches its own (completion-order) LRU eviction.
        if (primaries_.size() >= config_.cacheMaxEntries) {
            primaries_.clear();
            cache_.clear();
            cacheEpoch_.fetch_add(1, std::memory_order_release);
        }
        epoch = cacheEpoch_.load(std::memory_order_relaxed);
        auto it = primaries_.find(key);
        if (it != primaries_.end()) {
            primary = it->second;
        } else {
            publish = std::make_shared<std::promise<Pmf>>();
            primaries_.emplace(key, publish->get_future().share());
        }
    }

    if (primary.valid()) {
        // Duplicate: no task is enqueued at all — the deferred
        // future runs the wait on the consumer's thread at get()
        // time, so no pool worker ever blocks on another task.
        return std::async(std::launch::deferred,
                          [wait_for_primary, primary] {
                              return wait_for_primary(primary);
                          });
    }

    if (config_.threads <= 1) {
        // Inline: execute on the submitting thread, no job copy.
        std::promise<Pmf> done;
        Pmf result = executeCached(job, key, stream, epoch);
        if (publish)
            publish->set_value(result);
        done.set_value(std::move(result));
        return done.get_future();
    }

    ensurePool();
    // Pooled tasks reference the job through shared batch storage
    // (one copy per submit(), not per task), so futures stay valid
    // even if the caller drops the Batch before they resolve.
    const CircuitJob *job_ptr = &job;
    auto task = std::make_shared<std::packaged_task<Pmf()>>(
        [this, owned, job_ptr, key, stream, epoch, publish] {
            Pmf result = executeCached(*job_ptr, key, stream, epoch);
            if (publish)
                publish->set_value(result);
            return result;
        });
    std::future<Pmf> future = task->get_future();
    if (pending)
        pending->push_back({prep_key, [task] { (*task)(); }});
    else
        pool_->enqueue([task] { (*task)(); });
    return future;
}

void
BatchExecutor::schedulePending(std::vector<PendingTask> pending)
{
    if (pending.empty())
        return;
    if (!config_.prefixAwareScheduling) {
        for (auto &p : pending)
            pool_->enqueue(std::move(p.run));
        return;
    }

    // Group tasks by full prep key (digest collisions cannot merge
    // distinct preps), preserving first-appearance order of the
    // groups and submission order within each group.
    std::vector<PrepKey> keys;
    keys.reserve(pending.size());
    for (const auto &p : pending)
        keys.push_back(p.prepKey);
    std::vector<std::vector<std::function<void()>>> groups;
    for (const auto &indices : groupByPrepKey(keys)) {
        groups.emplace_back();
        groups.back().reserve(indices.size());
        for (std::size_t i : indices)
            groups.back().push_back(std::move(pending[i].run));
    }

    // Enough groups to feed every worker: one sequential task per
    // group, so a prep's jobs stay on one worker and its cached
    // state is never shared across threads. Otherwise split the
    // groups into contiguous chunks so the pool is not starved —
    // the first job of each chunk may wait on another chunk's
    // in-flight preparation, which the engine resolves via its
    // shared futures.
    const std::size_t threads =
        static_cast<std::size_t>(config_.threads);
    const std::size_t per_group_chunks =
        groups.size() >= threads
            ? 1
            : (threads + groups.size() - 1) / groups.size();
    for (auto &group : groups) {
        const std::size_t chunk_size = std::max<std::size_t>(
            1, (group.size() + per_group_chunks - 1) /
                   per_group_chunks);
        for (std::size_t begin = 0; begin < group.size();
             begin += chunk_size) {
            const std::size_t end =
                std::min(group.size(), begin + chunk_size);
            auto chunk = std::make_shared<
                std::vector<std::function<void()>>>();
            chunk->reserve(end - begin);
            for (std::size_t i = begin; i < end; ++i)
                chunk->push_back(std::move(group[i]));
            pool_->enqueue([chunk] {
                for (auto &run : *chunk)
                    run();
            });
        }
    }
}

std::vector<std::future<Pmf>>
BatchExecutor::submit(const Batch &batch)
{
    std::vector<std::future<Pmf>> futures;
    futures.reserve(batch.size());
    if (config_.threads <= 1) {
        // Inline execution completes before submit() returns; no
        // shared copy of the batch is needed.
        for (const CircuitJob &job : batch.jobs())
            futures.push_back(
                submitOne(job, nullptr, nullptr, PrepKey{}));
        return futures;
    }
    auto owned = std::make_shared<const std::vector<CircuitJob>>(
        batch.jobs());
    std::vector<PendingTask> pending;
    pending.reserve(owned->size());
    // Grouping keys for the prefix-aware scheduler. The prep
    // structural hash is memoized per distinct shared prep — safe
    // to key by pointer here because the shared_ptrs in `owned`
    // keep every prep alive for the whole loop.
    std::unordered_map<const Circuit *, std::uint64_t> prep_hash;
    for (const CircuitJob &job : *owned) {
        PrepKey prep_key;
        if (config_.prefixAwareScheduling) {
            if (job.prep) {
                auto [it, inserted] =
                    prep_hash.try_emplace(job.prep.get(), 0);
                if (inserted)
                    it->second = circuitPrefixHash(
                        *job.prep,
                        splitPrepSuffix(*job.prep).prefixOps);
                prep_key =
                    PrepKey{it->second, parameterHash(job.params)};
            } else {
                prep_key =
                    prepKeyOf(nullptr, job.circuit, job.params);
            }
        }
        futures.push_back(submitOne(job, owned, &pending, prep_key));
    }
    schedulePending(std::move(pending));
    return futures;
}

std::vector<Pmf>
BatchExecutor::run(const Batch &batch)
{
    auto futures = submit(batch);
    std::vector<Pmf> results;
    results.reserve(futures.size());
    for (auto &future : futures)
        results.push_back(future.get());
    return results;
}

Pmf
BatchExecutor::runOne(const Circuit &circuit,
                      const std::vector<double> &params,
                      std::uint64_t shots)
{
    if (config_.threads <= 1) {
        CircuitJob job{circuit, params, shots, nullptr};
        return submitOne(job, nullptr, nullptr, PrepKey{}).get();
    }
    auto owned = std::make_shared<const std::vector<CircuitJob>>(
        std::vector<CircuitJob>{{circuit, params, shots, nullptr}});
    return submitOne(owned->front(), owned, nullptr, PrepKey{})
        .get();
}

} // namespace varsaw
