/**
 * @file
 * Units of work for the batched execution runtime.
 *
 * A CircuitJob is one (circuit, parameters, shots) submission; a
 * Batch is the ordered set of jobs one estimator tick produces.
 * Estimators build a Batch per objective evaluation and hand it to
 * BatchExecutor instead of looping over Executor::execute().
 */

#ifndef VARSAW_RUNTIME_JOB_HH
#define VARSAW_RUNTIME_JOB_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/circuit.hh"

namespace varsaw {

/** One circuit submission. */
struct CircuitJob
{
    Circuit circuit;
    std::vector<double> params;
    std::uint64_t shots = 0;
};

/** An ordered collection of jobs submitted together. */
class Batch
{
  public:
    Batch() = default;

    /** Reserve capacity for @p n jobs. */
    void reserve(std::size_t n) { jobs_.reserve(n); }

    /**
     * Append a job; returns its index within the batch, which is
     * also the index of its result in the runtime's output vector.
     */
    std::size_t add(Circuit circuit, std::vector<double> params,
                    std::uint64_t shots)
    {
        jobs_.push_back(
            {std::move(circuit), std::move(params), shots});
        return jobs_.size() - 1;
    }

    /** The jobs, in submission order. */
    const std::vector<CircuitJob> &jobs() const { return jobs_; }

    /** Number of jobs. */
    std::size_t size() const { return jobs_.size(); }

    /** Whether the batch holds no jobs. */
    bool empty() const { return jobs_.empty(); }

    /** Sum of the shots over all jobs. */
    std::uint64_t totalShots() const
    {
        std::uint64_t total = 0;
        for (const auto &job : jobs_)
            total += job.shots;
        return total;
    }

  private:
    std::vector<CircuitJob> jobs_;
};

} // namespace varsaw

#endif // VARSAW_RUNTIME_JOB_HH
