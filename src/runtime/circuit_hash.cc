#include "runtime/circuit_hash.hh"

#include <bit>
#include <cmath>
#include <limits>

#include "util/rng.hh"

namespace varsaw {

namespace {

/** Incremental 64-bit hash accumulator over words. */
class HashStream
{
  public:
    void fold(std::uint64_t word) { h_ = mix64(h_, word); }

    void fold(double value)
    {
        // Canonicalize signed zero and NaN payloads so equal-valued
        // doubles hash equally.
        if (value == 0.0)
            value = 0.0;
        if (std::isnan(value))
            value = std::numeric_limits<double>::quiet_NaN();
        fold(std::bit_cast<std::uint64_t>(value));
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 0x243F6A8885A308D3ull; // pi fractional bits
};

/** Quantize an angle to a 2^-32-resolution grid. */
std::uint64_t
quantize(double value)
{
    const double scaled = value * 4294967296.0; // 2^32
    // Angles are O(1); anything outside the representable grid is
    // hashed by its raw bits instead of being clamped together.
    if (!std::isfinite(scaled) || std::abs(scaled) >= 9.0e18)
        return std::bit_cast<std::uint64_t>(value);
    return static_cast<std::uint64_t>(
        static_cast<std::int64_t>(std::llround(scaled)));
}

} // namespace

std::uint64_t
circuitStructuralHash(const Circuit &circuit)
{
    HashStream h;
    h.fold(static_cast<std::uint64_t>(circuit.numQubits()));
    h.fold(static_cast<std::uint64_t>(circuit.numParams()));
    for (const auto &op : circuit.ops()) {
        h.fold(static_cast<std::uint64_t>(op.kind));
        h.fold(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(op.q0)));
        h.fold(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(op.q1)));
        h.fold(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(op.paramIndex)));
        h.fold(op.param);
    }
    // Separate the ops from the measurement spec.
    h.fold(static_cast<std::uint64_t>(0xFEEDFACEu));
    for (int q : circuit.measuredQubits())
        h.fold(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(q)));
    return h.value();
}

std::uint64_t
parameterHash(const std::vector<double> &params)
{
    HashStream h;
    h.fold(static_cast<std::uint64_t>(params.size()));
    for (double p : params)
        h.fold(quantize(p));
    return h.value();
}

std::size_t
JobKeyHasher::operator()(const JobKey &key) const
{
    return static_cast<std::size_t>(
        mix64(mix64(key.circuitHash, key.paramsHash), key.shots));
}

JobKey
makeJobKey(const CircuitJob &job)
{
    return {circuitStructuralHash(job.circuit),
            parameterHash(job.params), job.shots};
}

} // namespace varsaw
