#include "runtime/result_cache.hh"

#include "util/logging.hh"

namespace varsaw {

ResultCache::ResultCache(std::size_t max_entries)
    : maxEntries_(max_entries)
{
    if (maxEntries_ == 0)
        panic("ResultCache: max_entries must be positive");
}

std::optional<Pmf>
ResultCache::lookup(const JobKey &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++stats_.misses;
        return std::nullopt;
    }
    ++stats_.hits;
    ++stats_.circuitsSaved;
    stats_.shotsSaved += key.shots;
    return it->second;
}

void
ResultCache::creditHit(std::uint64_t shots)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    ++stats_.circuitsSaved;
    stats_.shotsSaved += shots;
}

void
ResultCache::insert(const JobKey &key, const Pmf &result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!entries_.emplace(key, result).second)
        return; // concurrent miss already stored the same result
    insertionOrder_.push_back(key);
    ++stats_.insertions;
    while (entries_.size() > maxEntries_) {
        entries_.erase(insertionOrder_.front());
        insertionOrder_.pop_front();
        ++stats_.evictions;
    }
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    insertionOrder_.clear();
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
ResultCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = CacheStats{};
}

} // namespace varsaw
