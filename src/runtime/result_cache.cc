#include "runtime/result_cache.hh"

#include "telemetry/metrics.hh"
#include "util/logging.hh"

namespace varsaw {

namespace {

/**
 * Process-wide mirror of CacheStats under `runtime.result_cache.*`
 * (aggregated across every ResultCache instance). References are
 * cached once; each publish is one relaxed add behind the
 * metricsEnabled() guard.
 */
struct CacheMetrics
{
    telemetry::Counter &hits;
    telemetry::Counter &misses;
    telemetry::Counter &insertions;
    telemetry::Counter &evictions;
    telemetry::Counter &shotsSaved;

    static CacheMetrics &
    get()
    {
        auto &reg = telemetry::MetricsRegistry::instance();
        static CacheMetrics *m = new CacheMetrics{
            reg.counter("runtime.result_cache.hits"),
            reg.counter("runtime.result_cache.misses"),
            reg.counter("runtime.result_cache.insertions"),
            reg.counter("runtime.result_cache.evictions"),
            reg.counter("runtime.result_cache.shots_saved"),
        };
        return *m;
    }
};

} // namespace

ResultCache::ResultCache(std::size_t max_entries)
    : maxEntries_(max_entries)
{
    if (maxEntries_ == 0)
        panic("ResultCache: max_entries must be positive");
}

std::optional<Pmf>
ResultCache::lookup(const JobKey &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++stats_.misses;
        if (telemetry::metricsEnabled())
            CacheMetrics::get().misses.add();
        return std::nullopt;
    }
    ++stats_.hits;
    ++stats_.circuitsSaved;
    stats_.shotsSaved += key.shots;
    if (telemetry::metricsEnabled()) {
        auto &m = CacheMetrics::get();
        m.hits.add();
        m.shotsSaved.add(key.shots);
    }
    lru_.splice(lru_.begin(), lru_, it->second.lruIt);
    return it->second.result;
}

void
ResultCache::creditHit(std::uint64_t shots)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    ++stats_.circuitsSaved;
    stats_.shotsSaved += shots;
    if (telemetry::metricsEnabled()) {
        auto &m = CacheMetrics::get();
        m.hits.add();
        m.shotsSaved.add(shots);
    }
}

void
ResultCache::creditMiss()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    if (telemetry::metricsEnabled())
        CacheMetrics::get().misses.add();
}

void
ResultCache::erase(const JobKey &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end())
        return;
    lru_.erase(it->second.lruIt);
    entries_.erase(it);
    ++stats_.evictions;
    if (telemetry::metricsEnabled())
        CacheMetrics::get().evictions.add();
}

void
ResultCache::insert(const JobKey &key, const Pmf &result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = entries_.emplace(key, Entry{result, {}});
    if (!inserted)
        return; // concurrent miss already stored the same result
    lru_.push_front(key);
    it->second.lruIt = lru_.begin();
    ++stats_.insertions;
    if (telemetry::metricsEnabled())
        CacheMetrics::get().insertions.add();
    while (entries_.size() > maxEntries_) {
        entries_.erase(lru_.back());
        lru_.pop_back();
        ++stats_.evictions;
        if (telemetry::metricsEnabled())
            CacheMetrics::get().evictions.add();
    }
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Dropped entries are evictions like any other: without this,
    // insertions - evictions stops matching the resident count
    // after a clear and the erase-then-reexecute accounting drifts.
    const std::uint64_t dropped = entries_.size();
    stats_.evictions += dropped;
    if (telemetry::metricsEnabled() && dropped > 0)
        CacheMetrics::get().evictions.add(dropped);
    entries_.clear();
    lru_.clear();
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
ResultCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = CacheStats{};
}

} // namespace varsaw
