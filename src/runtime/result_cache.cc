#include "runtime/result_cache.hh"

#include "util/logging.hh"

namespace varsaw {

ResultCache::ResultCache(std::size_t max_entries)
    : maxEntries_(max_entries)
{
    if (maxEntries_ == 0)
        panic("ResultCache: max_entries must be positive");
}

std::optional<Pmf>
ResultCache::lookup(const JobKey &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++stats_.misses;
        return std::nullopt;
    }
    ++stats_.hits;
    ++stats_.circuitsSaved;
    stats_.shotsSaved += key.shots;
    lru_.splice(lru_.begin(), lru_, it->second.lruIt);
    return it->second.result;
}

void
ResultCache::creditHit(std::uint64_t shots)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    ++stats_.circuitsSaved;
    stats_.shotsSaved += shots;
}

void
ResultCache::creditMiss()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
}

void
ResultCache::erase(const JobKey &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end())
        return;
    lru_.erase(it->second.lruIt);
    entries_.erase(it);
    ++stats_.evictions;
}

void
ResultCache::insert(const JobKey &key, const Pmf &result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = entries_.emplace(key, Entry{result, {}});
    if (!inserted)
        return; // concurrent miss already stored the same result
    lru_.push_front(key);
    it->second.lruIt = lru_.begin();
    ++stats_.insertions;
    while (entries_.size() > maxEntries_) {
        entries_.erase(lru_.back());
        lru_.pop_back();
        ++stats_.evictions;
    }
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    lru_.clear();
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
ResultCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = CacheStats{};
}

} // namespace varsaw
