/**
 * @file
 * Deterministic, process-wide fault injection for the execution
 * stack.
 *
 * Real NISQ backends fail constantly — transient errors, latency
 * spikes, wedged workers — and a service that assumes success falls
 * over on first contact. The FaultInjector lets the test suite, the
 * chaos CI job, and the degradation bench throw exactly those
 * failures at the runtime/service layers, REPRODUCIBLY: every
 * injection decision is a pure function of (plan seed, fault site,
 * content key, attempt number), never of thread timing or call
 * order. Two runs with the same plan and the same submissions
 * inject the same faults at the same jobs.
 *
 * Fault sites (where the stack consults the injector):
 *
 *   ExecutorTransient  Executor::tryExecuteJob, before the backend
 *                      runs — the attempt fails with Unavailable
 *                      (and is NOT cost-counted: no circuit ran).
 *   LatencySpike       Executor::tryExecuteJob, before the backend
 *                      runs — the attempt is delayed by
 *                      latencySpikeNs (virtual or real time).
 *   WorkerStall        ExecutionService admission — the chunk's
 *                      worker is "wedged"; the service degrades to
 *                      inline execution on the submitting thread.
 *   StateCacheInsert   StateCache completion — the prepared state
 *                      fails to become resident; the cache degrades
 *                      to bypass (waiters still get the state).
 *   ResultCorruption   Executor::tryExecuteJob, after the backend
 *                      ran — the result is corrupted "on the wire",
 *                      the digest check detects it, and the attempt
 *                      fails with DataLoss.
 *
 * The `burst` cap bounds CONSECUTIVE injected failures per job key
 * (attempts >= burst never fail), so with retryAttempts > burst
 * every job converges deterministically — this is what lets the
 * chaos CI job run the full suite at nonzero rates and still demand
 * bit-identical results: content-derived sampling streams make the
 * surviving attempt identical to what a fault-free run computes.
 *
 * Zero-rate contract: with every rate at 0 (the default), enabled()
 * is false and no execution path diverges by a single branch worth
 * of observable behaviour from a build without injection.
 *
 * Time: the injector owns the stack's only failure-handling clock
 * (deadlines, backoff, spikes). In virtual-time mode (`virtual_time`
 * in the plan) sleepFor() advances a process-wide virtual clock
 * instead of sleeping, making deadline/backoff tests instantaneous
 * and deterministic. src/fault/ is deliberately exempt from the
 * `nondeterminism` lint rule's wall-clock ban — it is the one
 * sanctioned clock supplier for fault handling, and no result ever
 * depends on what it returns.
 *
 * Configuration: VARSAW_FAULTS env var or the --faults runtime
 * flag, both taking a comma-separated spec, e.g.
 *
 *   VARSAW_FAULTS="seed=7,exec_transient=0.05,latency_spike=0.02,\
 *                  latency_ns=100000,burst=2"
 *
 * Keys: seed, exec_transient, latency_spike, latency_ns,
 * worker_stall, cache_insert, corrupt, burst, virtual_time,
 * retries, backoff_ns, max_backoff_ns, deadline_ns.
 */

#ifndef VARSAW_FAULT_FAULT_INJECTOR_HH
#define VARSAW_FAULT_FAULT_INJECTOR_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace varsaw::fault {

/** Where in the stack a fault can be injected (see file doc). */
enum class FaultSite
{
    ExecutorTransient = 0,
    LatencySpike,
    WorkerStall,
    StateCacheInsert,
    ResultCorruption,
};

/** Number of FaultSite values (for stats arrays). */
inline constexpr int kFaultSiteCount = 5;

/** Human-readable site name (matches the telemetry suffix). */
const char *faultSiteName(FaultSite site);

/**
 * A complete, seeded fault schedule plus the retry-policy defaults
 * that make it survivable. Value type: configure() installs a copy.
 */
struct FaultPlan
{
    /** Seed of every injection decision. */
    std::uint64_t seed = 1;

    /** P(transient failure) per execution attempt. */
    double executorTransientRate = 0.0;

    /** P(latency spike) per execution attempt. */
    double latencySpikeRate = 0.0;

    /** Duration of an injected latency spike. */
    std::uint64_t latencySpikeNs = 200'000;

    /** P(worker stall) per admitted chunk. */
    double workerStallRate = 0.0;

    /** P(insert failure) per state-cache key (sticky per key: a
     * key that fails insertion always fails — "this state is
     * uncacheable", deterministically). */
    double stateCacheInsertRate = 0.0;

    /** P(wire corruption) per completed execution attempt. */
    double corruptionRate = 0.0;

    /**
     * Max CONSECUTIVE injected failures per (site, key): attempts
     * numbered >= burst never fail. Keep burst < retryAttempts and
     * every job converges despite nonzero rates.
     */
    int burst = 2;

    /** Advance a virtual clock instead of sleeping. */
    bool virtualTime = false;

    /** Default Executor retry attempts (total tries per job). */
    int retryAttempts = 5;

    /** Default base backoff: wait base << (attempt-1) before retry
     * attempt N, capped at retryMaxBackoffNs. */
    std::uint64_t retryBackoffNs = 1'000'000;

    /** Default backoff cap. */
    std::uint64_t retryMaxBackoffNs = 8'000'000;

    /** Default per-job deadline (0 = none). */
    std::uint64_t deadlineNs = 0;

    /** Whether any fault rate is nonzero. */
    bool enabled() const
    {
        return executorTransientRate > 0.0 ||
            latencySpikeRate > 0.0 || workerStallRate > 0.0 ||
            stateCacheInsertRate > 0.0 || corruptionRate > 0.0;
    }
};

/**
 * Bounded-retry policy of an execution path. Defaults come from the
 * installed FaultPlan (defaultRetryPolicy()), so VARSAW_FAULTS can
 * tune retries for a whole run; Executor::setRetryPolicy overrides
 * per backend.
 */
struct RetryPolicy
{
    /** Total attempts per job (>= 1; 1 disables retries). */
    int maxAttempts = 5;

    /** Base of the deterministic exponential backoff. */
    std::uint64_t baseBackoffNs = 1'000'000;

    /** Backoff cap. */
    std::uint64_t maxBackoffNs = 8'000'000;

    /** Per-job deadline across all attempts (0 = none). */
    std::uint64_t deadlineNs = 0;
};

/** Injections performed so far, by site. */
struct FaultStats
{
    std::uint64_t injected[kFaultSiteCount] = {};

    std::uint64_t total() const
    {
        std::uint64_t sum = 0;
        for (int i = 0; i < kFaultSiteCount; ++i)
            sum += injected[i];
        return sum;
    }
};

/**
 * Parse a comma-separated plan spec (see file doc) into @p plan,
 * starting from the given plan's current values. Returns false and
 * fills @p error on a malformed spec (unknown key, bad number).
 */
bool parseFaultPlan(const std::string &spec, FaultPlan &plan,
                    std::string &error);

/** The process-wide injector (see file doc). */
class FaultInjector
{
  public:
    /** The singleton; first use installs VARSAW_FAULTS if set. */
    static FaultInjector &instance();

    /** Install @p plan (replaces the previous plan; resets the
     * virtual clock). Not a data-path call — configure between
     * workloads, not concurrently with shouldInject decisions you
     * expect to be coherent. */
    void configure(const FaultPlan &plan);

    /** Snapshot of the installed plan. */
    FaultPlan plan() const;

    /**
     * Fast path: whether any fault rate is nonzero. When false,
     * shouldInject() returns false without further work — the
     * zero-rate bit-identity contract costs one relaxed load.
     */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Deterministic injection decision for @p site at content key
     * @p key, attempt @p attempt — a pure function of (plan seed,
     * site, key, attempt). Counts the injection (stats + the
     * `service.faults.<site>` telemetry counter) when true.
     */
    bool shouldInject(FaultSite site, std::uint64_t key,
                      std::uint64_t attempt = 0);

    /** Injection counts so far. */
    FaultStats stats() const;

    /** Zero the injection counts. */
    void resetStats();

    /**
     * The fault-handling clock: virtual nanoseconds under a
     * virtual-time plan, monotonic wall time otherwise. Feeds
     * deadlines and backoff only — never results.
     */
    std::uint64_t nowNs() const;

    /**
     * Wait @p ns on the fault-handling clock: advances the virtual
     * clock under a virtual-time plan, sleeps (capped at 50 ms per
     * call, so a misconfigured plan cannot hang a worker) otherwise.
     */
    void sleepFor(std::uint64_t ns);

  private:
    FaultInjector();

    mutable std::mutex mutex_;
    FaultPlan plan_;
    std::atomic<bool> enabled_{false};
    std::atomic<bool> virtualTime_{false};
    std::atomic<std::uint64_t> virtualNowNs_{0};
    std::atomic<std::uint64_t> injected_[kFaultSiteCount] = {};
};

/**
 * The retry policy executors use unless overridden: the installed
 * plan's retryAttempts/backoff/deadline fields.
 */
RetryPolicy defaultRetryPolicy();

} // namespace varsaw::fault

#endif // VARSAW_FAULT_FAULT_INJECTOR_HH
