#include "fault/fault_injector.hh"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "telemetry/metrics.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace varsaw::fault {

namespace {

/** Injection mirror under `service.faults.*` (one per site). */
struct FaultMetrics
{
    telemetry::Counter *bySite[kFaultSiteCount];

    static FaultMetrics &
    get()
    {
        auto &reg = telemetry::MetricsRegistry::instance();
        static FaultMetrics *m = new FaultMetrics{{
            &reg.counter("service.faults.executor_transient"),
            &reg.counter("service.faults.latency_spike"),
            &reg.counter("service.faults.worker_stall"),
            &reg.counter("service.faults.cache_insert"),
            &reg.counter("service.faults.corruption"),
        }};
        return *m;
    }
};

/** Per-site salt so the same key draws independently per site. */
constexpr std::uint64_t kSiteSalt[kFaultSiteCount] = {
    0x7458f0d1a5e3c6b9ull, 0x2c8a91d74b6f03e5ull,
    0x91b3d5f708a2c4e6ull, 0x5d0e2f4a6c8b91d3ull,
    0xe6a4c2908b6d4f21ull,
};

/** Longest real sleep one injected wait may cost a worker. */
constexpr std::uint64_t kMaxRealSleepNs = 50'000'000;

bool
parseU64(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        return false;
    out = static_cast<std::uint64_t>(v);
    return true;
}

bool
parseRate(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == nullptr || *end != '\0' || v < 0.0 || v > 1.0)
        return false;
    out = v;
    return true;
}

} // namespace

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::ExecutorTransient:
        return "executor_transient";
      case FaultSite::LatencySpike:
        return "latency_spike";
      case FaultSite::WorkerStall:
        return "worker_stall";
      case FaultSite::StateCacheInsert:
        return "cache_insert";
      case FaultSite::ResultCorruption:
        return "corruption";
    }
    return "unknown";
}

bool
parseFaultPlan(const std::string &spec, FaultPlan &plan,
               std::string &error)
{
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            error = "fault plan item without '=': '" + item + "'";
            return false;
        }
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        bool ok = true;
        std::uint64_t u = 0;
        if (key == "seed") {
            ok = parseU64(value, plan.seed);
        } else if (key == "exec_transient") {
            ok = parseRate(value, plan.executorTransientRate);
        } else if (key == "latency_spike") {
            ok = parseRate(value, plan.latencySpikeRate);
        } else if (key == "latency_ns") {
            ok = parseU64(value, plan.latencySpikeNs);
        } else if (key == "worker_stall") {
            ok = parseRate(value, plan.workerStallRate);
        } else if (key == "cache_insert") {
            ok = parseRate(value, plan.stateCacheInsertRate);
        } else if (key == "corrupt") {
            ok = parseRate(value, plan.corruptionRate);
        } else if (key == "burst") {
            ok = parseU64(value, u) && u >= 1;
            if (ok)
                plan.burst = static_cast<int>(u);
        } else if (key == "virtual_time") {
            ok = value == "0" || value == "1";
            if (ok)
                plan.virtualTime = value == "1";
        } else if (key == "retries") {
            ok = parseU64(value, u) && u >= 1;
            if (ok)
                plan.retryAttempts = static_cast<int>(u);
        } else if (key == "backoff_ns") {
            ok = parseU64(value, plan.retryBackoffNs);
        } else if (key == "max_backoff_ns") {
            ok = parseU64(value, plan.retryMaxBackoffNs);
        } else if (key == "deadline_ns") {
            ok = parseU64(value, plan.deadlineNs);
        } else {
            error = "unknown fault plan key '" + key + "'";
            return false;
        }
        if (!ok) {
            error = "bad value for fault plan key '" + key +
                "': '" + value + "'";
            return false;
        }
    }
    return true;
}

FaultInjector::FaultInjector()
{
    const char *env = std::getenv("VARSAW_FAULTS");
    if (env == nullptr || env[0] == '\0')
        return;
    FaultPlan plan;
    std::string error;
    if (!parseFaultPlan(env, plan, error))
        fatal("VARSAW_FAULTS: " + error);
    configure(plan);
    inform("fault injection armed from VARSAW_FAULTS: " +
           std::string(env));
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector *injector = new FaultInjector();
    return *injector;
}

void
FaultInjector::configure(const FaultPlan &plan)
{
    std::lock_guard<std::mutex> lock(mutex_);
    plan_ = plan;
    virtualNowNs_.store(0, std::memory_order_relaxed);
    virtualTime_.store(plan.virtualTime, std::memory_order_relaxed);
    enabled_.store(plan.enabled(), std::memory_order_relaxed);
}

FaultPlan
FaultInjector::plan() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return plan_;
}

bool
FaultInjector::shouldInject(FaultSite site, std::uint64_t key,
                            std::uint64_t attempt)
{
    if (!enabled())
        return false;
    double rate = 0.0;
    std::uint64_t seed = 0;
    int burst = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        seed = plan_.seed;
        burst = plan_.burst;
        switch (site) {
          case FaultSite::ExecutorTransient:
            rate = plan_.executorTransientRate;
            break;
          case FaultSite::LatencySpike:
            rate = plan_.latencySpikeRate;
            break;
          case FaultSite::WorkerStall:
            rate = plan_.workerStallRate;
            break;
          case FaultSite::StateCacheInsert:
            rate = plan_.stateCacheInsertRate;
            break;
          case FaultSite::ResultCorruption:
            rate = plan_.corruptionRate;
            break;
        }
    }
    if (rate <= 0.0)
        return false;
    // The burst cap bounds consecutive RETRIED failures per key:
    // attempts past it always succeed, so retryAttempts > burst
    // guarantees convergence. Only the sites whose injection costs
    // a retry are capped — spikes and degradations don't re-fail.
    const bool retried_failure =
        site == FaultSite::ExecutorTransient ||
        site == FaultSite::ResultCorruption;
    if (retried_failure &&
        attempt >= static_cast<std::uint64_t>(burst))
        return false;
    // Pure function of (seed, site, key, attempt): thread timing,
    // call order, and repetition cannot change the decision.
    const std::uint64_t draw = mix64(
        seed ^ kSiteSalt[static_cast<int>(site)],
        mix64(key, attempt));
    const bool inject = rate >= 1.0 ||
        static_cast<double>(draw >> 11) * 0x1.0p-53 < rate;
    if (!inject)
        return false;
    injected_[static_cast<int>(site)].fetch_add(
        1, std::memory_order_relaxed);
    if (telemetry::metricsEnabled())
        FaultMetrics::get().bySite[static_cast<int>(site)]->add();
    return true;
}

FaultStats
FaultInjector::stats() const
{
    FaultStats stats;
    for (int i = 0; i < kFaultSiteCount; ++i)
        stats.injected[i] =
            injected_[i].load(std::memory_order_relaxed);
    return stats;
}

void
FaultInjector::resetStats()
{
    for (int i = 0; i < kFaultSiteCount; ++i)
        injected_[i].store(0, std::memory_order_relaxed);
}

std::uint64_t
FaultInjector::nowNs() const
{
    if (virtualTime_.load(std::memory_order_relaxed))
        return virtualNowNs_.load(std::memory_order_relaxed);
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
FaultInjector::sleepFor(std::uint64_t ns)
{
    if (ns == 0)
        return;
    if (virtualTime_.load(std::memory_order_relaxed)) {
        virtualNowNs_.fetch_add(ns, std::memory_order_relaxed);
        return;
    }
    std::this_thread::sleep_for(std::chrono::nanoseconds(
        ns < kMaxRealSleepNs ? ns : kMaxRealSleepNs));
}

RetryPolicy
defaultRetryPolicy()
{
    const FaultPlan plan = FaultInjector::instance().plan();
    return RetryPolicy{plan.retryAttempts, plan.retryBackoffNs,
                       plan.retryMaxBackoffNs, plan.deadlineNs};
}

} // namespace varsaw::fault
