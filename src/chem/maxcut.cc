#include "chem/maxcut.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/rng.hh"

namespace varsaw {

Graph
randomGraph(int num_vertices, double edge_probability,
            std::uint64_t seed)
{
    Rng rng(seed);
    Graph g;
    g.numVertices = num_vertices;
    for (int i = 0; i < num_vertices; ++i)
        for (int j = i + 1; j < num_vertices; ++j)
            if (rng.bernoulli(edge_probability))
                g.edges.push_back({i, j, 1.0});
    // Guarantee connectivity of the vertex set in the trivial sense:
    // isolated vertices are legal for MaxCut, but an empty edge set
    // makes the workload degenerate, so chain up if needed.
    if (g.edges.empty())
        for (int i = 0; i + 1 < num_vertices; ++i)
            g.edges.push_back({i, i + 1, 1.0});
    return g;
}

Graph
ringGraph(int num_vertices)
{
    Graph g;
    g.numVertices = num_vertices;
    for (int i = 0; i < num_vertices; ++i)
        g.edges.push_back({i, (i + 1) % num_vertices, 1.0});
    return g;
}

Graph
completeGraph(int num_vertices)
{
    Graph g;
    g.numVertices = num_vertices;
    for (int i = 0; i < num_vertices; ++i)
        for (int j = i + 1; j < num_vertices; ++j)
            g.edges.push_back({i, j, 1.0});
    return g;
}

Hamiltonian
maxcutHamiltonian(const Graph &graph)
{
    if (graph.numVertices < 2)
        fatal("maxcutHamiltonian: need at least two vertices");
    Hamiltonian h(graph.numVertices,
                  "MaxCut-" + std::to_string(graph.numVertices));
    for (const auto &edge : graph.edges) {
        PauliString zz(graph.numVertices);
        zz.setOp(edge.a, PauliOp::Z);
        zz.setOp(edge.b, PauliOp::Z);
        h.addTerm(zz, edge.weight / 2.0);
        h.addTerm(PauliString(graph.numVertices), -edge.weight / 2.0);
    }
    return h;
}

double
cutValue(const Graph &graph, std::uint64_t bits)
{
    double value = 0.0;
    for (const auto &edge : graph.edges) {
        const bool side_a = (bits >> edge.a) & 1ull;
        const bool side_b = (bits >> edge.b) & 1ull;
        if (side_a != side_b)
            value += edge.weight;
    }
    return value;
}

double
maxcutBruteForce(const Graph &graph)
{
    if (graph.numVertices > 24)
        fatal("maxcutBruteForce: refusing beyond 24 vertices");
    double best = 0.0;
    const std::uint64_t total = 1ull << graph.numVertices;
    for (std::uint64_t bits = 0; bits < total; ++bits)
        best = std::max(best, cutValue(graph, bits));
    return best;
}

} // namespace varsaw
