#include "chem/exact_solver.hh"

#include <algorithm>
#include <cmath>

#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "vqa/estimator.hh"
#include "vqa/optimizer.hh"

namespace varsaw {

void
applyHamiltonian(const Hamiltonian &h,
                 const std::vector<std::complex<double>> &x,
                 std::vector<std::complex<double>> &y)
{
    const std::uint64_t dim = 1ull << h.numQubits();
    if (x.size() != dim || y.size() != dim)
        panic("applyHamiltonian: dimension mismatch");

    static const std::complex<double> i_pow[4] = {
        {1, 0}, {0, 1}, {-1, 0}, {0, -1}};

    if (h.identityOffset() != 0.0)
        for (std::uint64_t i = 0; i < dim; ++i)
            y[i] += h.identityOffset() * x[i];

    for (const auto &term : h.terms()) {
        const std::uint64_t xm = term.string.xMask();
        const std::uint64_t zm = term.string.zMask();
        const std::complex<double> phase =
            i_pow[popcount(xm & zm) & 3] * term.coefficient;
        for (std::uint64_t i = 0; i < dim; ++i) {
            const double sign = paritySign(i & zm);
            y[i ^ xm] += phase * sign * x[i];
        }
    }
}

double
tridiagonalSmallestEigenvalue(const std::vector<double> &diag,
                              const std::vector<double> &off)
{
    const std::size_t n = diag.size();
    if (n == 0)
        panic("tridiagonalSmallestEigenvalue: empty matrix");
    if (off.size() + 1 != n)
        panic("tridiagonalSmallestEigenvalue: off-diagonal size");

    // Gershgorin bounds.
    double lo = diag[0], hi = diag[0];
    for (std::size_t i = 0; i < n; ++i) {
        double radius = 0.0;
        if (i > 0)
            radius += std::abs(off[i - 1]);
        if (i + 1 < n)
            radius += std::abs(off[i]);
        lo = std::min(lo, diag[i] - radius);
        hi = std::max(hi, diag[i] + radius);
    }

    // Sturm count: number of eigenvalues < x.
    auto count_below = [&](double x) {
        int count = 0;
        double d = 1.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double offsq =
                i > 0 ? off[i - 1] * off[i - 1] : 0.0;
            d = diag[i] - x - (d == 0.0 ? offsq / 1e-300 : offsq / d);
            if (d < 0.0)
                ++count;
        }
        return count;
    };

    for (int iter = 0; iter < 200 && hi - lo > 1e-12; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (count_below(mid) >= 1)
            hi = mid;
        else
            lo = mid;
    }
    return 0.5 * (lo + hi);
}

double
groundStateEnergy(const Hamiltonian &h, int max_iters,
                  std::uint64_t seed)
{
    if (h.numQubits() > 16)
        fatal("groundStateEnergy: refusing beyond 16 qubits; "
              "use the cost model for larger workloads");
    const std::uint64_t dim = 1ull << h.numQubits();
    using Cvec = std::vector<std::complex<double>>;

    Rng rng(seed);
    Cvec v(dim);
    double norm = 0.0;
    for (auto &a : v) {
        a = {rng.normal(), rng.normal()};
        norm += std::norm(a);
    }
    norm = std::sqrt(norm);
    for (auto &a : v)
        a /= norm;

    std::vector<Cvec> basis; // kept for full reorthogonalization
    std::vector<double> alpha, beta;
    Cvec w(dim);

    const int m = std::min<std::uint64_t>(max_iters, dim);
    double best = 0.0;
    for (int j = 0; j < m; ++j) {
        basis.push_back(v);

        std::fill(w.begin(), w.end(), std::complex<double>(0, 0));
        applyHamiltonian(h, v, w);

        std::complex<double> a_c(0, 0);
        for (std::uint64_t i = 0; i < dim; ++i)
            a_c += std::conj(v[i]) * w[i];
        alpha.push_back(a_c.real());

        // w -= alpha_j v_j + beta_{j-1} v_{j-1}; then full
        // reorthogonalization to control Lanczos ghost eigenvalues.
        for (const auto &u : basis) {
            std::complex<double> proj(0, 0);
            for (std::uint64_t i = 0; i < dim; ++i)
                proj += std::conj(u[i]) * w[i];
            for (std::uint64_t i = 0; i < dim; ++i)
                w[i] -= proj * u[i];
        }

        double b = 0.0;
        for (const auto &a : w)
            b += std::norm(a);
        b = std::sqrt(b);

        best = tridiagonalSmallestEigenvalue(alpha, beta);
        if (b < 1e-10)
            break; // invariant subspace found: exact answer
        beta.push_back(b);
        for (std::uint64_t i = 0; i < dim; ++i)
            v[i] = w[i] / b;
    }
    return best;
}

IdealVqeResult
idealOptimalParameters(const Hamiltonian &h, const EfficientSU2 &ansatz,
                       int restarts, int iters, std::uint64_t seed)
{
    ExactEstimator estimator(h, ansatz.circuit());
    Objective objective = [&](const std::vector<double> &p) {
        return estimator.estimate(p);
    };

    IdealVqeResult best;
    bool have = false;
    for (int r = 0; r < restarts; ++r) {
        Spsa::Config config;
        config.seed = seed + 1000ull * r;
        // Exact objective: larger steps converge faster.
        config.a = 0.3;
        config.c = 0.12;
        Spsa spsa(config);
        auto x0 = ansatz.initialParameters(seed + 77ull * r);
        OptResult res = spsa.minimize(objective, x0, iters, {});

        // Polish with implicit filtering from SPSA's best point.
        ImplicitFiltering::Config ifc;
        ifc.initialStep = 0.15;
        ImplicitFiltering imfil(ifc);
        OptResult polished = imfil.minimize(
            objective, res.bestParams, std::max(20, iters / 8), {});

        const double e = std::min(res.bestValue, polished.bestValue);
        const auto &p = polished.bestValue <= res.bestValue
            ? polished.bestParams : res.bestParams;
        if (!have || e < best.energy) {
            best.energy = e;
            best.parameters = p;
            have = true;
        }
    }
    return best;
}

} // namespace varsaw
