/**
 * @file
 * Molecular VQE workloads (Table 2 of the paper).
 *
 * The paper builds molecular Hamiltonians with PySCF, which is not
 * available offline. Two substitutes are provided (see DESIGN.md):
 *
 *  - H2 (4 qubits, 15 terms): the exact STO-3G Jordan-Wigner
 *    Hamiltonian at 0.7414 A from the literature (Seeley, Richard &
 *    Love / O'Malley et al.), coefficients included verbatim;
 *  - every other molecule: a deterministic synthetic electronic-
 *    structure-shaped Hamiltonian reproducing the exact
 *    (qubits, Pauli-term count) signature of Table 2 with realistic
 *    term structure — Z singles/doubles plus Jordan-Wigner hopping
 *    and double-excitation strings with Z chains.
 *
 * Ground-truth reference energies come from the in-repo Lanczos
 * solver, so ideal-vs-noisy-vs-mitigated comparisons remain exact.
 */

#ifndef VARSAW_CHEM_MOLECULES_HH
#define VARSAW_CHEM_MOLECULES_HH

#include <string>
#include <vector>

#include "pauli/hamiltonian.hh"

namespace varsaw {

/** One row of Table 2. */
struct MoleculeSpec
{
    std::string name;  //!< e.g. "CH4-6"
    int qubits = 0;    //!< register width
    int pauliTerms = 0; //!< non-identity Pauli term count
    bool temporal = false; //!< used in temporal-redundancy evaluation
};

/** All 13 workloads of Table 2 (name, qubits, terms, temporal?). */
const std::vector<MoleculeSpec> &table2Workloads();

/** Look up a Table 2 spec by name; fatal if unknown. */
const MoleculeSpec &moleculeSpec(const std::string &name);

/**
 * Exact 4-qubit H2 (STO-3G, Jordan-Wigner, bond length 0.7414 A).
 * 15 terms incl. identity; electronic ground energy -1.8572750 Ha.
 */
Hamiltonian h2Sto3g();

/**
 * Build the Hamiltonian for a Table 2 workload: the literature H2
 * for "H2-4", otherwise the synthetic generator with that row's
 * signature.
 */
Hamiltonian molecule(const std::string &name);

/**
 * Synthetic electronic-structure-shaped Hamiltonian.
 *
 * Terms are emitted in a fixed physical order until exactly
 * @p num_terms non-identity terms exist:
 *   1. Z_i singles (number operators),
 *   2. Z_i Z_j pairs (Coulomb/exchange),
 *   3. hopping strings X_i Z..Z X_j and Y_i Z..Z Y_j,
 *   4. double-excitation strings (8 X/Y patterns per ordered
 *      quadruple, with Z chains inside each pair).
 * Coefficients decay with interaction distance and are drawn
 * deterministically from @p seed; diagonal terms dominate, as in
 * real molecular Hamiltonians.
 */
Hamiltonian syntheticMolecule(const std::string &name, int num_qubits,
                              int num_terms, std::uint64_t seed);

} // namespace varsaw

#endif // VARSAW_CHEM_MOLECULES_HH
