/**
 * @file
 * Exact reference solutions: sparse Hamiltonian application, a
 * Lanczos ground-state solver, and ideal-VQE parameter search.
 *
 * These provide the "Ref. Energy" column of Table 1 and the Ideal
 * curves of Figs. 9 and 13 without any external chemistry package.
 */

#ifndef VARSAW_CHEM_EXACT_SOLVER_HH
#define VARSAW_CHEM_EXACT_SOLVER_HH

#include <complex>
#include <cstdint>
#include <vector>

#include "pauli/hamiltonian.hh"
#include "vqa/ansatz.hh"

namespace varsaw {

/**
 * y += H x for complex state vectors of dimension 2^numQubits.
 * Each Pauli term acts as a signed permutation with an i^{#Y} phase,
 * so the whole product costs O(terms * 2^n).
 */
void applyHamiltonian(const Hamiltonian &h,
                      const std::vector<std::complex<double>> &x,
                      std::vector<std::complex<double>> &y);

/**
 * Ground-state (lowest eigenvalue) energy via Lanczos with full
 * reorthogonalization. Practical up to ~16 qubits; the evaluation
 * needs at most 12.
 *
 * @param h         The Hamiltonian.
 * @param max_iters Krylov dimension cap (default 120).
 * @param seed      Seed for the random start vector.
 */
double groundStateEnergy(const Hamiltonian &h, int max_iters = 120,
                         std::uint64_t seed = 11);

/**
 * Smallest eigenvalue of a symmetric tridiagonal matrix via Sturm
 * bisection (exposed for testing).
 *
 * @param diag Diagonal entries (size n).
 * @param off  Off-diagonal entries (size n-1).
 */
double tridiagonalSmallestEigenvalue(const std::vector<double> &diag,
                                     const std::vector<double> &off);

/** Result of an ideal (noise-free, exact-expectation) VQE run. */
struct IdealVqeResult
{
    std::vector<double> parameters;
    double energy = 0.0;
};

/**
 * Find near-optimal ansatz parameters by running noise-free VQE
 * with exact expectations (multiple seeded restarts, best kept).
 * This realizes the paper's "ansatz parameterized with optimal
 * parameters known from ideal simulation" (Table 1, Fig. 19).
 *
 * @param h        The Hamiltonian.
 * @param ansatz   The ansatz to optimize.
 * @param restarts Number of random restarts.
 * @param iters    Optimizer iterations per restart.
 * @param seed     Base seed.
 */
IdealVqeResult idealOptimalParameters(const Hamiltonian &h,
                                      const EfficientSU2 &ansatz,
                                      int restarts = 3,
                                      int iters = 400,
                                      std::uint64_t seed = 3);

} // namespace varsaw

#endif // VARSAW_CHEM_EXACT_SOLVER_HH
