#include "chem/molecules.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace varsaw {

const std::vector<MoleculeSpec> &
table2Workloads()
{
    static const std::vector<MoleculeSpec> specs = {
        {"H2-4",    4,  15,    true},
        {"LiH-6",   6,  118,   true},
        {"LiH-8",   8,  193,   true},
        {"H2O-6",   6,  62,    true},
        {"H2O-8",   8,  193,   true},
        {"H2O-12",  12, 670,   false},
        {"CH4-6",   6,  94,    true},
        {"CH4-8",   8,  241,   true},
        {"H6-10",   10, 919,   false},
        {"BeH2-12", 12, 670,   false},
        {"N2-12",   12, 660,   false},
        {"C2H4-20", 20, 10510, false},
        {"Cr2-34",  34, 32699, false},
    };
    return specs;
}

const MoleculeSpec &
moleculeSpec(const std::string &name)
{
    for (const auto &spec : table2Workloads())
        if (spec.name == name)
            return spec;
    fatal("moleculeSpec: unknown workload '" + name + "'");
}

Hamiltonian
h2Sto3g()
{
    // Jordan-Wigner H2/STO-3G at R = 0.7414 A; coefficients from
    // Seeley, Richard & Love (J. Chem. Phys. 137, 224109, 2012).
    // Note the counted "15 Pauli terms" of Table 2 include the
    // identity, which this library folds into the constant offset.
    Hamiltonian h(4, "H2-4");
    h.addTerm("IIII", -0.81261);
    h.addTerm("ZIII", 0.171201);
    h.addTerm("IZII", 0.171201);
    h.addTerm("IIZI", -0.2227965);
    h.addTerm("IIIZ", -0.2227965);
    h.addTerm("ZZII", 0.16862325);
    h.addTerm("ZIZI", 0.12054625);
    h.addTerm("ZIIZ", 0.165868);
    h.addTerm("IZZI", 0.165868);
    h.addTerm("IZIZ", 0.12054625);
    h.addTerm("IIZZ", 0.17434925);
    h.addTerm("XXYY", -0.04532175);
    h.addTerm("XYYX", 0.04532175);
    h.addTerm("YXXY", 0.04532175);
    h.addTerm("YYXX", -0.04532175);
    return h;
}

namespace {

/** Z-chain string between two qubits (exclusive) with caps. */
PauliString
hoppingString(int num_qubits, int i, int j, PauliOp cap)
{
    PauliString s(num_qubits);
    s.setOp(i, cap);
    s.setOp(j, cap);
    for (int q = i + 1; q < j; ++q)
        s.setOp(q, PauliOp::Z);
    return s;
}

/**
 * Double-excitation string: the given X/Y caps on the ordered
 * quadruple (i < j < k < l), Z chains inside (i, j) and (k, l).
 */
PauliString
doubleExcitationString(int num_qubits, int i, int j, int k, int l,
                       PauliOp ci, PauliOp cj, PauliOp ck, PauliOp cl)
{
    PauliString s(num_qubits);
    s.setOp(i, ci);
    s.setOp(j, cj);
    s.setOp(k, ck);
    s.setOp(l, cl);
    for (int q = i + 1; q < j; ++q)
        s.setOp(q, PauliOp::Z);
    for (int q = k + 1; q < l; ++q)
        s.setOp(q, PauliOp::Z);
    return s;
}

} // namespace

Hamiltonian
syntheticMolecule(const std::string &name, int num_qubits,
                  int num_terms, std::uint64_t seed)
{
    Hamiltonian h(num_qubits, name);
    Rng rng(seed);

    // Constant offset: core + nuclear-repulsion-like energy.
    h.addTerm(PauliString(num_qubits), rng.uniform(-8.0, -2.0));

    auto done = [&]() {
        return static_cast<int>(h.numTerms()) >= num_terms;
    };
    auto coeff = [&](int span, double scale) {
        const double magnitude =
            scale * std::exp(-0.25 * span) * rng.uniform(0.5, 1.5);
        return rng.bernoulli(0.5) ? magnitude : -magnitude;
    };

    // 1. Number operators: Z_i, diagonal-dominant coefficients.
    for (int i = 0; i < num_qubits && !done(); ++i) {
        PauliString s(num_qubits);
        s.setOp(i, PauliOp::Z);
        h.addTerm(s, coeff(0, 1.0));
    }

    // 2. Coulomb/exchange: Z_i Z_j.
    for (int i = 0; i < num_qubits && !done(); ++i)
        for (int j = i + 1; j < num_qubits && !done(); ++j) {
            PauliString s(num_qubits);
            s.setOp(i, PauliOp::Z);
            s.setOp(j, PauliOp::Z);
            h.addTerm(s, coeff(j - i, 0.4));
        }

    // 3. Hopping: (XZ..ZX + YZ..ZY) / 2 pairs share a coefficient.
    for (int i = 0; i < num_qubits && !done(); ++i)
        for (int j = i + 1; j < num_qubits && !done(); ++j) {
            const double c = coeff(j - i, 0.15);
            h.addTerm(hoppingString(num_qubits, i, j, PauliOp::X), c);
            if (done())
                break;
            h.addTerm(hoppingString(num_qubits, i, j, PauliOp::Y), c);
        }

    // 4. Double excitations: 8 even-Y-parity cap patterns per
    // quadruple (the Jordan-Wigner image of a^i a^j a_k a_l + h.c.).
    static const PauliOp patterns[8][4] = {
        {PauliOp::X, PauliOp::X, PauliOp::X, PauliOp::X},
        {PauliOp::X, PauliOp::X, PauliOp::Y, PauliOp::Y},
        {PauliOp::X, PauliOp::Y, PauliOp::X, PauliOp::Y},
        {PauliOp::X, PauliOp::Y, PauliOp::Y, PauliOp::X},
        {PauliOp::Y, PauliOp::X, PauliOp::X, PauliOp::Y},
        {PauliOp::Y, PauliOp::X, PauliOp::Y, PauliOp::X},
        {PauliOp::Y, PauliOp::Y, PauliOp::X, PauliOp::X},
        {PauliOp::Y, PauliOp::Y, PauliOp::Y, PauliOp::Y},
    };
    for (int i = 0; i < num_qubits && !done(); ++i)
        for (int j = i + 1; j < num_qubits && !done(); ++j)
            for (int k = j + 1; k < num_qubits && !done(); ++k)
                for (int l = k + 1; l < num_qubits && !done(); ++l) {
                    const double c = coeff(l - i, 0.05);
                    for (const auto &p : patterns) {
                        if (done())
                            break;
                        h.addTerm(
                            doubleExcitationString(
                                num_qubits, i, j, k, l,
                                p[0], p[1], p[2], p[3]),
                            c * rng.uniform(0.5, 1.0));
                    }
                }

    if (static_cast<int>(h.numTerms()) != num_terms)
        fatal("syntheticMolecule: '" + name +
              "' cannot reach requested term count");
    return h;
}

Hamiltonian
molecule(const std::string &name)
{
    const MoleculeSpec &spec = moleculeSpec(name);
    if (spec.name == "H2-4")
        return h2Sto3g();

    // Stable per-molecule seed derived from the name.
    std::uint64_t seed = 0xC0FFEE;
    for (char c : spec.name)
        seed = seed * 131 + static_cast<unsigned char>(c);
    // The generator folds identity into the offset, so the stored
    // non-identity count equals the Table 2 count minus the identity
    // term PySCF emits. Keep Table 2's number as non-identity terms:
    // the comparison metrics count measurable Paulis.
    return syntheticMolecule(spec.name, spec.qubits, spec.pauliTerms,
                             seed);
}

} // namespace varsaw
