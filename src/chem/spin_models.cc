#include "chem/spin_models.hh"

namespace varsaw {

namespace {

/** Two-site coupling string P_i P_{i+1}. */
PauliString
bond(int num_qubits, int i, PauliOp op)
{
    PauliString s(num_qubits);
    s.setOp(i, op);
    s.setOp(i + 1, op);
    return s;
}

/** Single-site string P_i. */
PauliString
site(int num_qubits, int i, PauliOp op)
{
    PauliString s(num_qubits);
    s.setOp(i, op);
    return s;
}

} // namespace

Hamiltonian
tfim(int num_qubits, double j, double h)
{
    Hamiltonian ham(num_qubits, "TFIM-" + std::to_string(num_qubits));
    for (int i = 0; i + 1 < num_qubits; ++i)
        ham.addTerm(bond(num_qubits, i, PauliOp::Z), -j);
    for (int i = 0; i < num_qubits; ++i)
        ham.addTerm(site(num_qubits, i, PauliOp::X), -h);
    return ham;
}

Hamiltonian
isingChain(int num_qubits, double j, double hz)
{
    Hamiltonian ham(num_qubits,
                    "Ising-" + std::to_string(num_qubits));
    for (int i = 0; i + 1 < num_qubits; ++i)
        ham.addTerm(bond(num_qubits, i, PauliOp::Z), -j);
    for (int i = 0; i < num_qubits; ++i)
        ham.addTerm(site(num_qubits, i, PauliOp::Z), -hz);
    return ham;
}

Hamiltonian
heisenbergChain(int num_qubits, double j)
{
    Hamiltonian ham(num_qubits,
                    "Heisenberg-" + std::to_string(num_qubits));
    for (int i = 0; i + 1 < num_qubits; ++i) {
        ham.addTerm(bond(num_qubits, i, PauliOp::X), j);
        ham.addTerm(bond(num_qubits, i, PauliOp::Y), j);
        ham.addTerm(bond(num_qubits, i, PauliOp::Z), j);
    }
    return ham;
}

Hamiltonian
xyChain(int num_qubits, double j)
{
    Hamiltonian ham(num_qubits, "XY-" + std::to_string(num_qubits));
    for (int i = 0; i + 1 < num_qubits; ++i) {
        ham.addTerm(bond(num_qubits, i, PauliOp::X), j);
        ham.addTerm(bond(num_qubits, i, PauliOp::Y), j);
    }
    return ham;
}

} // namespace varsaw
