/**
 * @file
 * Spin-model Hamiltonians.
 *
 * The paper's real-device experiment (Fig. 16) runs VQE on a
 * 5-qubit Transverse-Field Ising Model; Section 7.3 names the Ising,
 * Heisenberg and XY models as the natural VarSaw extension targets,
 * so all are provided.
 */

#ifndef VARSAW_CHEM_SPIN_MODELS_HH
#define VARSAW_CHEM_SPIN_MODELS_HH

#include "pauli/hamiltonian.hh"

namespace varsaw {

/**
 * Transverse-Field Ising Model on an open chain:
 * H = -J sum Z_i Z_{i+1} - h sum X_i.
 *
 * After cover reduction this needs very few measurement bases
 * (the paper's TFIM instance reports 3 grouped Pauli terms).
 */
Hamiltonian tfim(int num_qubits, double j, double h);

/** Classical Ising chain (no transverse field, plus longitudinal
 *  field hz): H = -J sum Z_i Z_{i+1} - hz sum Z_i. */
Hamiltonian isingChain(int num_qubits, double j, double hz);

/**
 * Heisenberg XXX chain:
 * H = J sum (X_i X_{i+1} + Y_i Y_{i+1} + Z_i Z_{i+1}).
 */
Hamiltonian heisenbergChain(int num_qubits, double j);

/** XY chain: H = J sum (X_i X_{i+1} + Y_i Y_{i+1}). */
Hamiltonian xyChain(int num_qubits, double j);

} // namespace varsaw

#endif // VARSAW_CHEM_SPIN_MODELS_HH
