/**
 * @file
 * MaxCut workloads for QAOA (the optimization-domain VQA of
 * Sections 2.4 / 7.3).
 *
 * For a weighted graph, the cut value of an assignment z is
 * sum_{(i,j)} w_ij (1 - z_i z_j) / 2 with z in {-1, +1}. Maximizing
 * the cut equals minimizing C = sum w_ij/2 (Z_i Z_j - 1), so the
 * QAOA/VQE machinery applies unchanged.
 */

#ifndef VARSAW_CHEM_MAXCUT_HH
#define VARSAW_CHEM_MAXCUT_HH

#include <cstdint>
#include <vector>

#include "pauli/hamiltonian.hh"

namespace varsaw {

/** A weighted undirected edge. */
struct Edge
{
    int a = 0;
    int b = 0;
    double weight = 1.0;
};

/** A weighted undirected graph on [0, numVertices) vertices. */
struct Graph
{
    int numVertices = 0;
    std::vector<Edge> edges;
};

/** Erdos-Renyi-style random graph with unit weights, seeded. */
Graph randomGraph(int num_vertices, double edge_probability,
                  std::uint64_t seed);

/** Ring graph (cycle) with unit weights. */
Graph ringGraph(int num_vertices);

/** Complete graph with unit weights. */
Graph completeGraph(int num_vertices);

/**
 * MaxCut cost Hamiltonian: C = sum_(i,j) w/2 (Z_i Z_j - 1).
 * Its ground-state energy is minus the maximum cut value.
 */
Hamiltonian maxcutHamiltonian(const Graph &graph);

/** Cut value of the assignment encoded in @p bits (bit i = side). */
double cutValue(const Graph &graph, std::uint64_t bits);

/** Exact maximum cut by enumeration (vertices <= 24). */
double maxcutBruteForce(const Graph &graph);

} // namespace varsaw

#endif // VARSAW_CHEM_MAXCUT_HH
