/**
 * @file
 * Deterministic intra-kernel parallelism primitives.
 *
 * The batch runtime (src/runtime/) parallelizes *across* jobs; this
 * layer parallelizes *inside* one dense kernel — a single 2^n-amplitude
 * sweep — without ever changing results:
 *
 *  - Loops are partitioned into **fixed chunks** whose size depends
 *    only on the loop's total item count (`parallelChunkSize`),
 *    never on the thread count. An elementwise chunk writes disjoint
 *    state, so placement is free; a reduction computes one partial
 *    per chunk and merges the partials in fixed chunk order
 *    (`pairwiseReduce`), so the floating-point association — and
 *    therefore every output bit — is identical whether the chunks
 *    ran on 1 thread or 8.
 *  - The kernel pool is process-global and lazily started: nothing
 *    is spawned until the first engaged call with
 *    `kernelThreads() > 1`. The calling thread always participates
 *    (it claims chunks from the same atomic counter as the
 *    helpers), so a busy pool degrades to inline execution instead
 *    of blocking, and nested/concurrent callers (one per batch
 *    worker) cannot deadlock.
 *  - Engagement is thresholded: loops below `kParallelEngage` items
 *    run as plain serial loops — small registers never pay chunking
 *    or scheduling overhead. The threshold compares the *item*
 *    count, so a full 2^n sweep engages at n >= 16 and a 2^(n-1)
 *    pair kernel at n >= 17.
 *
 * Thread-count policy: `kernelThreads()` is a process-wide setting
 * (the pool is shared by every Statevector/DensityMatrix in the
 * process), defaulting to the VARSAW_KERNEL_THREADS environment
 * variable when set to a positive integer, else 1 (serial).
 * `SimEngineConfig::kernelThreads` / `RuntimeConfig::kernelThreads`
 * and the drivers' `--kernel-threads` flag plumb into
 * `setKernelThreads()`. Guidance: keep
 * batchThreads * kernelThreads <= cores — the pool holds at most
 * `kernelThreads() - 1` helpers and each invocation admits at most
 * that many, so concurrent batch workers share (not multiply) the
 * helper budget, but the two pools still compete for the same
 * cores.
 */

#ifndef VARSAW_UTIL_PARALLEL_HH
#define VARSAW_UTIL_PARALLEL_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace varsaw {

/** Hard cap on kernel threads (admission and pool size). */
constexpr int kMaxKernelThreads = 64;

/**
 * Minimum items per chunk. Chunks are the unit of scheduling AND of
 * reduction order, so this must stay a fixed constant: it is part
 * of the numeric contract, not a tunable.
 */
constexpr std::uint64_t kParallelGrain = 1ull << 15;

/**
 * Engagement threshold: loops with fewer items than this run as
 * plain serial loops (callers branch on it; see chunkedReduce).
 * Equal to two grains so an engaged loop always has >= 2 chunks.
 */
constexpr std::uint64_t kParallelEngage = 2 * kParallelGrain;

/**
 * Upper bound on the chunk count of one loop (bounds the partials
 * array of a chunked reduction). Like the grain, a fixed constant.
 */
constexpr std::uint64_t kMaxParallelChunks = 1024;

/**
 * Chunk sizes are rounded up to this multiple (power of two) so
 * every chunk boundary except the loop's final one falls on an
 * 8-item line — the widest SIMD reduction lane group (kNormLanes
 * doubles = 4 complex amplitudes; see sim/kernels/kernel_spec.hh).
 * Aligned boundaries keep the vector kernels' scalar head loops
 * empty for every interior chunk. Values are unchanged either way
 * (lane assignment is by absolute index), so this is a throughput
 * constant — but like the grain it is part of the numeric contract,
 * because chunk size determines reduction association.
 */
constexpr std::uint64_t kParallelChunkAlign = 8;

/**
 * Default kernel-thread count: VARSAW_KERNEL_THREADS when set to a
 * positive integer (read once, clamped to kMaxKernelThreads),
 * otherwise 1.
 */
int defaultKernelThreads();

/** Current process-wide kernel-thread setting (>= 1). */
int kernelThreads();

/**
 * Set the process-wide kernel-thread count, clamped to
 * [1, kMaxKernelThreads]. Values <= 0 select
 * defaultKernelThreads(). Never changes results — only how many
 * helpers may pick up chunks of engaged loops.
 */
void setKernelThreads(int threads);

/**
 * Fixed chunk size for a loop of @p total items:
 * max(kParallelGrain, ceil(total / kMaxParallelChunks) rounded up
 * to a multiple of kParallelChunkAlign). A pure function of
 * @p total — this is what makes chunked reductions
 * thread-count-invariant.
 */
std::uint64_t parallelChunkSize(std::uint64_t total);

/** Number of fixed chunks for a loop of @p total items. */
std::uint64_t parallelChunkCount(std::uint64_t total);

/**
 * Default worker count of a shared ExecutionService:
 * VARSAW_SERVICE_THREADS when set to a positive integer, overridden
 * by setDefaultServiceThreads() (the drivers' --service-threads
 * flag), otherwise 0 — meaning "auto", which
 * resolveServiceThreads() maps to the hardware concurrency.
 */
int defaultServiceThreads();

/**
 * Override the default service worker count for services
 * constructed after this call. <= 0 restores the
 * environment/auto default.
 */
void setDefaultServiceThreads(int threads);

/**
 * Resolve a ServiceConfig::threads value: @p configured when
 * positive, else defaultServiceThreads() when positive, else the
 * hardware concurrency (at least 1). Results never depend on it.
 */
int resolveServiceThreads(int configured);

/**
 * Cumulative kernel-pool work accounting, split by WHO ran each
 * chunk. The three chunk counters partition every chunk ever run —
 * caller + pool helpers + lent assist hosts — so worker utilization
 * adds up: before this split, chunks run by lent scheduler workers
 * (addKernelAssistHost) were invisible in every stats struct.
 * Counters are plain relaxed atomics read here (util/ must not
 * depend on telemetry/); the telemetry layer surfaces them as
 * registry gauges at snapshot time.
 */
struct KernelPoolStats
{
    std::uint64_t engagedLoops = 0;   ///< Pool-run loop invocations.
    std::uint64_t callerChunks = 0;   ///< Run by the invoking thread.
    std::uint64_t helperChunks = 0;   ///< Run by pool worker threads.
    std::uint64_t assistedChunks = 0; ///< Run by lent assist hosts.
};

/** Snapshot of the process-wide kernel-pool counters. */
KernelPoolStats kernelPoolStats();

namespace detail {

/**
 * Run an already-engaged loop's chunks on the shared pool:
 * >= 2 chunks and kernelThreads() >= 2, checked by the callers.
 * The std::function wraps a std::reference_wrapper built by the
 * template front-ends, so no heap allocation happens even here.
 */
void runOnPool(std::uint64_t total, std::uint64_t chunkSize,
               std::uint64_t numChunks,
               const std::function<void(std::uint64_t,
                                        std::uint64_t,
                                        std::uint64_t)> &fn);

/**
 * Lend the calling thread to one engaged kernel loop, if any is
 * active with unclaimed chunks and a free admission slot: claim and
 * run chunks until the loop is exhausted, then return the number of
 * chunks this thread ran (counted as assistedChunks in
 * kernelPoolStats()). Returns 0 (without blocking) when there is
 * nothing to help with. This is how a unified scheduler's idle
 * batch workers are lent to engaged kernels; chunk decomposition is
 * fixed, so WHO runs a chunk can never change a result.
 */
std::uint64_t assistOneKernelJob();

/**
 * Register an external helper host (a unified scheduler): @p wake
 * is invoked — cheaply, possibly concurrently — whenever an engaged
 * kernel loop is published, so the host can route idle workers into
 * assistOneKernelJob(). While at least one host is registered the
 * process-global kernel pool spawns no helper threads of its own:
 * the hosts' workers ARE the helper supply, which is what removes
 * the batchThreads x kernelThreads <= cores sizing rule. Returns a
 * handle for removeKernelAssistHost().
 */
int addKernelAssistHost(std::function<void()> wake);

/**
 * Unregister a helper host. On return the host's @p wake callback
 * is guaranteed not to be running and will never be invoked again
 * (safe to destroy the scheduler it points into).
 */
void removeKernelAssistHost(int handle);

} // namespace detail

/**
 * Run @p fn(chunkIndex, begin, end) over every fixed chunk of
 * [0, total). Chunks may run concurrently and in any order on any
 * thread (the caller included); @p fn must confine its writes to
 * per-chunk state (disjoint slices, or partials[chunkIndex]).
 * Returns after every chunk has completed. Runs inline, in chunk
 * order, when kernelThreads() == 1 or there is only one chunk —
 * with no type erasure or allocation, so small registers pay only
 * the branch.
 */
template <typename Fn>
void
parallelForChunks(std::uint64_t total, Fn &&fn)
{
    if (total == 0)
        return;
    const std::uint64_t chunkSize = parallelChunkSize(total);
    const std::uint64_t numChunks =
        (total + chunkSize - 1) / chunkSize;
    if (numChunks == 1 || kernelThreads() < 2) {
        for (std::uint64_t c = 0; c < numChunks; ++c) {
            const std::uint64_t begin = c * chunkSize;
            const std::uint64_t end = begin + chunkSize;
            fn(c, begin, end < total ? end : total);
        }
        return;
    }
    detail::runOnPool(
        total, chunkSize, numChunks,
        std::function<void(std::uint64_t, std::uint64_t,
                           std::uint64_t)>(std::ref(fn)));
}

/**
 * Elementwise helper: run @p fn(begin, end) over [0, total) in
 * disjoint ranges, parallel only when the loop is engaged
 * (total >= kParallelEngage) and kernelThreads() > 1, else as one
 * inline fn(0, total) call. Only for loops whose per-item work is
 * order-independent (disjoint writes); reductions must use
 * chunkedReduce so their merge order stays fixed.
 */
template <typename Fn>
void
parallelForItems(std::uint64_t total, Fn &&fn)
{
    if (total == 0)
        return;
    if (total < kParallelEngage || kernelThreads() < 2) {
        fn(std::uint64_t{0}, total);
        return;
    }
    parallelForChunks(total,
                      [&fn](std::uint64_t, std::uint64_t begin,
                            std::uint64_t end) { fn(begin, end); });
}

/**
 * Merge chunk partials in fixed pairwise order: adjacent pairs are
 * summed repeatedly ((p0+p1), (p2+p3), ... then recurse) until one
 * value remains. The association is a pure function of the partial
 * count, so the result is bit-identical across thread counts.
 * @p v is consumed as scratch. Requires !v.empty().
 */
template <typename T>
T
pairwiseReduce(std::vector<T> &v)
{
    std::size_t m = v.size();
    while (m > 1) {
        std::size_t w = 0;
        for (std::size_t i = 0; i + 1 < m; i += 2) {
            v[w] = v[i] + v[i + 1];
            ++w;
        }
        if (m & 1) {
            v[w] = v[m - 1];
            ++w;
        }
        m = w;
    }
    return v[0];
}

/**
 * Deterministic chunked reduction over [0, total): @p chunk(begin,
 * end) returns the partial for one range, accumulated internally in
 * ascending index order. Below the engagement threshold this is a
 * single chunk(0, total) call — the plain serial loop. At or above
 * it, one partial per fixed chunk is computed (possibly in
 * parallel) and merged with pairwiseReduce. For a given @p total
 * the algorithm — and so every output bit — is independent of the
 * kernel-thread count.
 */
template <typename T, typename ChunkFn>
T
chunkedReduce(std::uint64_t total, ChunkFn chunk)
{
    if (total < kParallelEngage)
        return chunk(std::uint64_t{0}, total);
    const std::uint64_t chunks = parallelChunkCount(total);
    std::vector<T> partials(static_cast<std::size_t>(chunks));
    parallelForChunks(total,
                      [&](std::uint64_t c, std::uint64_t begin,
                          std::uint64_t end) {
                          partials[static_cast<std::size_t>(c)] =
                              chunk(begin, end);
                      });
    return pairwiseReduce(partials);
}

} // namespace varsaw

#endif // VARSAW_UTIL_PARALLEL_HH
