/**
 * @file
 * Sparse probability mass functions over measurement outcomes.
 *
 * Pmf is the central currency of the mitigation pipeline: circuit
 * execution produces a Pmf (via Counts), JigSaw subsets produce
 * marginal (local) Pmfs, and Bayesian reconstruction rewrites a
 * global Pmf to agree with the local ones.
 *
 * Outcomes are packed words: bit i corresponds to measured qubit
 * slot i. Storage is sparse (hash map), which matches both sampled
 * histograms (support bounded by shot count) and the small dense
 * distributions produced by exact simulation.
 */

#ifndef VARSAW_UTIL_PMF_HH
#define VARSAW_UTIL_PMF_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace varsaw {

class Rng;
class Counts;

/** Sparse probability mass function over packed bit-string outcomes. */
class Pmf
{
  public:
    Pmf() = default;

    /** Construct an all-zero PMF over @p num_bits measured bits. */
    explicit Pmf(int num_bits) : numBits_(num_bits) {}

    /**
     * Construct from a dense probability vector.
     *
     * @param num_bits Number of measured bits.
     * @param dense    Vector of length 2^num_bits; entries below
     *                 @p prune are dropped from the sparse support.
     */
    static Pmf fromDense(int num_bits, const std::vector<double> &dense,
                         double prune = 0.0);

    /** Number of measured bits each outcome spans. */
    int numBits() const { return numBits_; }

    /** Probability of @p outcome (0 if outside the support). */
    double prob(std::uint64_t outcome) const;

    /** Set the probability of @p outcome (overwrites). */
    void set(std::uint64_t outcome, double p);

    /** Add @p p to the probability of @p outcome. */
    void accumulate(std::uint64_t outcome, double p);

    /** Number of outcomes in the support. */
    std::size_t supportSize() const { return probs_.size(); }

    /** Sum of all stored probabilities. */
    double totalMass() const;

    /** Rescale so the total mass is 1 (no-op on an empty PMF). */
    void normalize();

    /** Expand into a dense vector of length 2^numBits. */
    std::vector<double> toDense() const;

    /**
     * Marginal distribution over a subset of this PMF's bits.
     *
     * @param positions Bit positions within this PMF; position
     *                  positions[i] becomes bit i of the marginal.
     */
    Pmf marginal(const std::vector<int> &positions) const;

    /**
     * Expectation of a tensor product of Z operators.
     *
     * @param mask Bits where a Z factor acts.
     * @return Sum over outcomes of p(x) * (-1)^popcount(x & mask).
     */
    double expectationParity(std::uint64_t mask) const;

    /** Sample @p shots outcomes into a Counts histogram. */
    Counts sample(Rng &rng, std::uint64_t shots) const;

    /** Most probable outcome (0 for an empty PMF). */
    std::uint64_t argmax() const;

    /** Total variation distance to another PMF on the same bits. */
    static double tvDistance(const Pmf &a, const Pmf &b);

    /**
     * Classical (Bhattacharyya-squared) fidelity between PMFs:
     * (sum_x sqrt(a(x) b(x)))^2. 1 means identical distributions.
     */
    static double fidelity(const Pmf &a, const Pmf &b);

    /** Hellinger distance: sqrt(1 - sqrt(fidelity)). */
    static double hellingerDistance(const Pmf &a, const Pmf &b);

    /** Read-only access to the sparse support. */
    const std::unordered_map<std::uint64_t, double> &
    raw() const
    {
        return probs_;
    }

    /** Mutable access for in-place reweighting (reconstruction). */
    std::unordered_map<std::uint64_t, double> &
    rawMutable()
    {
        return probs_;
    }

  private:
    int numBits_ = 0;
    std::unordered_map<std::uint64_t, double> probs_;
};

} // namespace varsaw

#endif // VARSAW_UTIL_PMF_HH
