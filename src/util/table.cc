#include "util/table.hh"

#include <cstdio>
#include <sstream>
#include <utility>

#include "util/logging.hh"

namespace varsaw {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title))
{
}

void
TablePrinter::setHeader(const std::vector<std::string> &header)
{
    header_ = header;
}

void
TablePrinter::addRow(const std::vector<std::string> &row)
{
    if (!header_.empty() && row.size() != header_.size())
        panic("TablePrinter::addRow: row width != header width");
    rows_.push_back(row);
}

std::string
TablePrinter::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
TablePrinter::num(long long value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", value);
    return buf;
}

std::string
TablePrinter::ratio(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", precision, value);
    return buf;
}

std::string
TablePrinter::percent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

std::string
TablePrinter::render() const
{
    // Compute the width of every column from header and rows.
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c >= widths.size())
                widths.resize(c + 1, 0);
            widths[c] = std::max(widths[c], row[c].size());
        }

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &row) {
        out << "|";
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < row.size() ? row[c] : "";
            out << " " << cell;
            out << std::string(widths[c] - cell.size(), ' ') << " |";
        }
        out << "\n";
    };
    auto emit_rule = [&]() {
        out << "+";
        for (std::size_t c = 0; c < widths.size(); ++c)
            out << std::string(widths[c] + 2, '-') << "+";
        out << "\n";
    };

    if (!title_.empty())
        out << "== " << title_ << " ==\n";
    emit_rule();
    if (!header_.empty()) {
        emit_row(header_);
        emit_rule();
    }
    for (const auto &row : rows_)
        emit_row(row);
    emit_rule();
    return out.str();
}

void
TablePrinter::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

} // namespace varsaw
