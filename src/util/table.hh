/**
 * @file
 * ASCII table rendering for benchmark harness output.
 *
 * Every bench binary prints the same rows/series the paper reports;
 * TablePrinter handles column alignment and numeric formatting so
 * the harness code reads like the table it reproduces.
 */

#ifndef VARSAW_UTIL_TABLE_HH
#define VARSAW_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace varsaw {

/** Column-aligned ASCII table builder. */
class TablePrinter
{
  public:
    /** Construct with a table title printed above the header. */
    explicit TablePrinter(std::string title);

    /** Set the column headers (defines the column count). */
    void setHeader(const std::vector<std::string> &header);

    /** Append a preformatted row; must match the header width. */
    void addRow(const std::vector<std::string> &row);

    /** Format a double with @p precision digits after the point. */
    static std::string num(double value, int precision = 2);

    /** Format an integer count. */
    static std::string num(long long value);

    /** Format a ratio like "25.3x". */
    static std::string ratio(double value, int precision = 1);

    /** Format a percentage like "45.2%". */
    static std::string percent(double fraction, int precision = 1);

    /** Render the full table to a string. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace varsaw

#endif // VARSAW_UTIL_TABLE_HH
