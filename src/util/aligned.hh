/**
 * @file
 * Over-aligned storage for the dense simulation state.
 *
 * The SIMD statevector kernels (src/sim/kernels/) issue full-width
 * vector loads from every chunk boundary the kernel pool hands out.
 * Backing the amplitude vectors with a 64-byte-aligned allocator
 * guarantees those accesses never straddle a cache line (or a
 * 64-byte AVX-512 register's worth of memory), independent of what
 * the default allocator happens to return. Alignment is part of the
 * Statevector storage contract: construction, copyFrom() capacity
 * recycling, and the ping-pong/suffix scratch buffers all preserve
 * it (pinned by tests/sim/test_simd_kernels.cc).
 */

#ifndef VARSAW_UTIL_ALIGNED_HH
#define VARSAW_UTIL_ALIGNED_HH

#include <cstddef>
#include <new>
#include <vector>

namespace varsaw {

/** Alignment of all dense amplitude storage (one cache line). */
constexpr std::size_t kStateAlignment = 64;

/**
 * Minimal std::allocator drop-in whose allocations are @p Align
 * aligned. Stateless: all instances are interchangeable, so vector
 * moves/swaps behave exactly as with std::allocator.
 */
template <typename T, std::size_t Align = kStateAlignment>
class AlignedAllocator
{
    static_assert((Align & (Align - 1)) == 0,
                  "alignment must be a power of two");
    static_assert(Align >= alignof(T),
                  "alignment must not weaken the type's own");

  public:
    using value_type = T;

    AlignedAllocator() noexcept = default;

    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &) noexcept
    {
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t{Align}));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t{Align});
    }
};

template <typename T, typename U, std::size_t A>
bool
operator==(const AlignedAllocator<T, A> &,
           const AlignedAllocator<U, A> &) noexcept
{
    return true;
}

template <typename T, typename U, std::size_t A>
bool
operator!=(const AlignedAllocator<T, A> &,
           const AlignedAllocator<U, A> &) noexcept
{
    return false;
}

/** Vector whose data() is 64-byte aligned for its whole life. */
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

} // namespace varsaw

#endif // VARSAW_UTIL_ALIGNED_HH
