#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace varsaw {

namespace {

/** splitmix64 step, used only for seeding. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
    // All-zero state would be a fixed point; splitmix64 cannot emit
    // four zeros in a row, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    if (n == 0)
        panic("Rng::uniformInt called with n == 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1 = 0.0;
    while (u1 == 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

int
Rng::rademacher()
{
    return (next() & 1) ? 1 : -1;
}

std::size_t
Rng::discrete(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w;
    if (total <= 0.0)
        panic("Rng::discrete called with non-positive total weight");
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target <= 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xA5A5A5A55A5A5A5Aull);
}

Rng
Rng::forStream(std::uint64_t seed, std::uint64_t stream)
{
    return Rng(mix64(seed, stream));
}

std::uint64_t
mix64(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t x = a + 0x9E3779B97F4A7C15ull * (b + 1);
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace varsaw
