#include "util/statistics.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace varsaw {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double total = 0.0;
    for (double x : xs)
        total += x;
    return total / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double ss = 0.0;
    for (double x : xs)
        ss += (x - m) * (x - m);
    return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double
median(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const std::size_t n = xs.size();
    if (n % 2 == 1)
        return xs[n / 2];
    return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double
geometricMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            return 0.0;
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
minOf(const std::vector<double> &xs)
{
    double m = std::numeric_limits<double>::infinity();
    for (double x : xs)
        m = std::min(m, x);
    return m;
}

double
maxOf(const std::vector<double> &xs)
{
    double m = -std::numeric_limits<double>::infinity();
    for (double x : xs)
        m = std::max(m, x);
    return m;
}

LineFit
fitLine(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size() || xs.size() < 2)
        panic("fitLine: need two equal-length samples of size >= 2");
    const double n = static_cast<double>(xs.size());
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    LineFit fit;
    if (sxx == 0.0)
        return fit;
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    if (syy > 0.0)
        fit.r2 = (sxy * sxy) / (sxx * syy);
    else
        fit.r2 = 1.0;
    (void)n;
    return fit;
}

LineFit
fitPowerLaw(const std::vector<double> &xs, const std::vector<double> &ys)
{
    std::vector<double> lx, ly;
    lx.reserve(xs.size());
    ly.reserve(ys.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (xs[i] <= 0.0 || ys[i] <= 0.0)
            panic("fitPowerLaw: inputs must be strictly positive");
        lx.push_back(std::log(xs[i]));
        ly.push_back(std::log(ys[i]));
    }
    return fitLine(lx, ly);
}

double
Ewma::update(double x)
{
    if (!initialized_) {
        value_ = x;
        initialized_ = true;
    } else {
        value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
    return value_;
}

} // namespace varsaw
