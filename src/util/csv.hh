/**
 * @file
 * Minimal CSV writer so bench harnesses can dump machine-readable
 * series (for external plotting) alongside their ASCII tables.
 */

#ifndef VARSAW_UTIL_CSV_HH
#define VARSAW_UTIL_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace varsaw {

/** Streaming CSV writer with RFC-4180 style quoting. */
class CsvWriter
{
  public:
    /**
     * Open @p path for writing; the file is truncated.
     * Writing is best-effort: if the file cannot be opened a warning
     * is emitted and rows are silently dropped (benches must not
     * fail because an output directory is read-only).
     */
    explicit CsvWriter(const std::string &path);

    /** Whether the output file opened successfully. */
    bool ok() const { return out_.is_open(); }

    /** Write one row of cells. */
    void writeRow(const std::vector<std::string> &cells);

    /** Convenience: write a row of doubles with full precision. */
    void writeNumericRow(const std::vector<double> &values);

  private:
    static std::string escape(const std::string &cell);

    std::ofstream out_;
};

} // namespace varsaw

#endif // VARSAW_UTIL_CSV_HH
