/**
 * @file
 * The structured error taxonomy of the execution stack.
 *
 * Before this header, runtime/ and service/ had exactly two failure
 * modes: panic (abort the process) and silence. Neither survives a
 * flaky backend. Status gives execution paths a third option — a
 * typed, inspectable error that travels through StatusOr returns,
 * thrown StatusError wrappers, and promise exceptions — so a failed
 * job reports instead of wedging its session or killing the process.
 *
 * Taxonomy (a deliberately small subset of the canonical gRPC set):
 *
 *   InvalidArgument    the submission itself is malformed (no
 *                      measurements, width mismatch); permanent.
 *   FailedPrecondition the system refuses the submission (e.g. the
 *                      key is quarantined); permanent until the
 *                      operator intervenes.
 *   DeadlineExceeded   the per-job deadline elapsed before an
 *                      attempt succeeded.
 *   ResourceExhausted  admission shed the job (bounded session
 *                      queue full); safe to resubmit later.
 *   Unavailable        a transient executor failure; retryable.
 *   DataLoss           result corruption detected on the wire
 *                      (digest mismatch); retryable.
 *   Internal           an invariant failed inside the stack.
 *
 * transient() marks the codes a bounded retry loop may absorb
 * (Unavailable, DataLoss). Everything else fails fast.
 *
 * Invariant violations (programming bugs) still panic — Status is
 * for DATA-dependent and ENVIRONMENT-dependent failures only. The
 * varsaw-lint `status-taxonomy` rule enforces that src/runtime/ and
 * src/service/ throw nothing but StatusError.
 */

#ifndef VARSAW_UTIL_STATUS_HH
#define VARSAW_UTIL_STATUS_HH

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace varsaw {

/** Error classification of a failed operation (Ok == success). */
enum class StatusCode
{
    Ok = 0,
    InvalidArgument,
    FailedPrecondition,
    DeadlineExceeded,
    ResourceExhausted,
    Unavailable,
    DataLoss,
    Internal,
};

/** Human-readable name of @p code ("ok", "unavailable", ...). */
inline const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:
        return "ok";
      case StatusCode::InvalidArgument:
        return "invalid-argument";
      case StatusCode::FailedPrecondition:
        return "failed-precondition";
      case StatusCode::DeadlineExceeded:
        return "deadline-exceeded";
      case StatusCode::ResourceExhausted:
        return "resource-exhausted";
      case StatusCode::Unavailable:
        return "unavailable";
      case StatusCode::DataLoss:
        return "data-loss";
      case StatusCode::Internal:
        return "internal";
    }
    return "unknown";
}

/** A success-or-typed-error value (code + message). */
class Status
{
  public:
    /** Success. */
    Status() = default;

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    bool ok() const { return code_ == StatusCode::Ok; }

    StatusCode code() const { return code_; }

    const std::string &message() const { return message_; }

    /**
     * Whether a bounded retry loop may absorb this failure:
     * transient backend unavailability and detected wire corruption
     * retry; malformed submissions, quarantine refusals, deadline
     * and admission failures do not.
     */
    bool transient() const
    {
        return code_ == StatusCode::Unavailable ||
            code_ == StatusCode::DataLoss;
    }

    /** "<code-name>: <message>" (just the name when no message). */
    std::string toString() const
    {
        if (message_.empty())
            return statusCodeName(code_);
        return std::string(statusCodeName(code_)) + ": " + message_;
    }

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

inline Status
invalidArgumentError(std::string message)
{
    return {StatusCode::InvalidArgument, std::move(message)};
}

inline Status
failedPreconditionError(std::string message)
{
    return {StatusCode::FailedPrecondition, std::move(message)};
}

inline Status
deadlineExceededError(std::string message)
{
    return {StatusCode::DeadlineExceeded, std::move(message)};
}

inline Status
resourceExhaustedError(std::string message)
{
    return {StatusCode::ResourceExhausted, std::move(message)};
}

inline Status
unavailableError(std::string message)
{
    return {StatusCode::Unavailable, std::move(message)};
}

inline Status
dataLossError(std::string message)
{
    return {StatusCode::DataLoss, std::move(message)};
}

inline Status
internalError(std::string message)
{
    return {StatusCode::Internal, std::move(message)};
}

/**
 * The exception form of a non-ok Status — the ONE exception type
 * execution paths in runtime/ and service/ are allowed to throw
 * (enforced by the `status-taxonomy` lint rule). Futures carry it
 * to consumers via promise::set_exception / packaged_task.
 */
class StatusError : public std::runtime_error
{
  public:
    explicit StatusError(Status status)
        : std::runtime_error(status.toString()),
          status_(std::move(status))
    {
    }

    const Status &status() const { return status_; }

    StatusCode code() const { return status_.code(); }

  private:
    Status status_;
};

/**
 * Either a value or the Status explaining its absence.
 *
 * Usage on execution paths:
 *
 *     StatusOr<Pmf> r = backend.tryExecuteJob(job, stream);
 *     if (!r.ok())
 *         return r.status();   // or throw StatusError(r.status())
 *     use(*r);
 *
 * value()/operator* on an error throws StatusError — never call
 * them without checking ok() unless propagation-by-exception is the
 * intent.
 */
template <typename T> class StatusOr
{
  public:
    /** Success. */
    StatusOr(T value) : value_(std::move(value)) {}

    /** Failure; @p status must be non-ok. */
    StatusOr(Status status) : status_(std::move(status))
    {
        if (status_.ok())
            status_ = internalError(
                "StatusOr constructed from an ok Status");
    }

    bool ok() const { return value_.has_value(); }

    /** The error (ok Status when a value is present). */
    const Status &status() const { return status_; }

    const T &value() const &
    {
        ensure();
        return *value_;
    }

    T &value() &
    {
        ensure();
        return *value_;
    }

    T &&value() &&
    {
        ensure();
        return std::move(*value_);
    }

    const T &operator*() const & { return value(); }
    T &operator*() & { return value(); }
    T &&operator*() && { return std::move(*this).value(); }

    const T *operator->() const { return &value(); }
    T *operator->() { return &value(); }

  private:
    void ensure() const
    {
        if (!value_.has_value())
            throw StatusError(status_);
    }

    std::optional<T> value_;
    Status status_;
};

} // namespace varsaw

#endif // VARSAW_UTIL_STATUS_HH
