#include "util/cpu_features.hh"

namespace varsaw {

namespace {

CpuFeatures
probe()
{
    CpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
    // __builtin_cpu_supports consults libgcc's cpuid snapshot,
    // which already masks out features whose register state the OS
    // does not save (XCR0), so a "yes" here means the instructions
    // are actually executable.
    __builtin_cpu_init();
    f.avx2Fma = __builtin_cpu_supports("avx2") &&
        __builtin_cpu_supports("fma");
    f.avx512 = f.avx2Fma && __builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq");
#endif
    return f;
}

} // namespace

const CpuFeatures &
cpuFeatures()
{
    static const CpuFeatures cached = probe();
    return cached;
}

} // namespace varsaw
