/**
 * @file
 * Minimal status/error reporting helpers.
 *
 * Follows the gem5 convention: inform() for status, warn() for
 * suspicious-but-survivable conditions, fatal() for user errors
 * (clean exit) and panic() for internal invariant violations (abort).
 */

#ifndef VARSAW_UTIL_LOGGING_HH
#define VARSAW_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace varsaw {

/** Print an informational message to stdout. */
inline void
inform(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

/** Print a warning message to stderr; execution continues. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/**
 * Report an unrecoverable user-level error (bad configuration,
 * invalid argument) and exit with status 1.
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

/**
 * Report an internal invariant violation (a library bug) and abort,
 * so a debugger or core dump can capture the state.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace varsaw

#endif // VARSAW_UTIL_LOGGING_HH
