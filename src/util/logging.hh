/**
 * @file
 * Minimal status/error reporting helpers.
 *
 * Follows the gem5 convention: inform() for status, warn() for
 * suspicious-but-survivable conditions, fatal() for user errors
 * (clean exit) and panic() for internal invariant violations (abort).
 *
 * Output is serialized: each message is composed into one buffer and
 * written with a single stdio call under a process-wide mutex, so
 * concurrent warn() calls from scheduler/kernel workers can never
 * interleave mid-line (they used to).
 *
 * Filtering: VARSAW_LOG_LEVEL selects the minimum emitted severity
 * — "debug", "info" (default), "warn", or "none"/"fatal" (suppress
 * warn too; fatal/panic always print, they precede process death).
 * The debug level additionally compiles out entirely in release
 * (NDEBUG) builds: use the VARSAW_DEBUG(msg) macro, whose argument
 * is not evaluated when compiled out.
 */

#ifndef VARSAW_UTIL_LOGGING_HH
#define VARSAW_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

namespace varsaw {

/** Message severities, ordered; VARSAW_LOG_LEVEL names these. */
enum class LogLevel : int {
    Debug = 0,
    Info = 1,
    Warn = 2,
    None = 3, ///< Suppress everything suppressible.
};

namespace logdetail {

/** Serializes every emitted line across all threads. */
inline std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

/** Minimum emitted severity (VARSAW_LOG_LEVEL, read once). */
inline LogLevel
logLevel()
{
    static const LogLevel level = [] {
        const char *env = std::getenv("VARSAW_LOG_LEVEL");
        if (!env)
            return LogLevel::Info;
        if (!std::strcmp(env, "debug") || !std::strcmp(env, "0"))
            return LogLevel::Debug;
        if (!std::strcmp(env, "info") || !std::strcmp(env, "1"))
            return LogLevel::Info;
        if (!std::strcmp(env, "warn") || !std::strcmp(env, "2"))
            return LogLevel::Warn;
        if (!std::strcmp(env, "none") ||
            !std::strcmp(env, "fatal") || !std::strcmp(env, "3"))
            return LogLevel::None;
        return LogLevel::Info;
    }();
    return level;
}

/**
 * Compose "prefix: msg\n" and write it with ONE stdio call under
 * the log mutex — the serialization point for every helper below.
 */
inline void
emitLine(std::FILE *stream, const char *prefix,
         const std::string &msg)
{
    std::string line;
    line.reserve(std::strlen(prefix) + msg.size() + 3);
    line += prefix;
    line += ": ";
    line += msg;
    line += '\n';
    std::lock_guard<std::mutex> lock(logMutex());
    std::fwrite(line.data(), 1, line.size(), stream);
    std::fflush(stream);
}

} // namespace logdetail

/** Whether messages at @p level are emitted under the current
 * VARSAW_LOG_LEVEL filter. */
inline bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) >=
        static_cast<int>(logdetail::logLevel()) &&
        level != LogLevel::None;
}

/** Print an informational message to stdout. */
inline void
inform(const std::string &msg)
{
    if (logEnabled(LogLevel::Info))
        logdetail::emitLine(stdout, "info", msg);
}

/** Print a warning message to stderr; execution continues. */
inline void
warn(const std::string &msg)
{
    if (logEnabled(LogLevel::Warn))
        logdetail::emitLine(stderr, "warn", msg);
}

/**
 * Print a debug message to stderr (debug builds only — release
 * builds compile the body away; prefer the VARSAW_DEBUG macro,
 * which also skips evaluating the message argument).
 */
inline void
debugLog(const std::string &msg)
{
#if !defined(NDEBUG)
    if (logEnabled(LogLevel::Debug))
        logdetail::emitLine(stderr, "debug", msg);
#else
    (void)msg;
#endif
}

/**
 * Report an unrecoverable user-level error (bad configuration,
 * invalid argument) and exit with status 1. Never filtered.
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    logdetail::emitLine(stderr, "fatal", msg);
    std::exit(1);
}

/**
 * Report an internal invariant violation (a library bug) and abort,
 * so a debugger or core dump can capture the state. Never filtered.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    logdetail::emitLine(stderr, "panic", msg);
    std::abort();
}

} // namespace varsaw

/**
 * Debug-build-only logging whose argument is not evaluated in
 * release builds: VARSAW_DEBUG("chunk " + std::to_string(i)).
 */
#if !defined(NDEBUG)
#define VARSAW_DEBUG(msg) ::varsaw::debugLog(msg)
#else
#define VARSAW_DEBUG(msg) ((void)0)
#endif

#endif // VARSAW_UTIL_LOGGING_HH
