#include "util/pmf.hh"

#include <algorithm>
#include <cmath>

#include "util/bitops.hh"
#include "util/counts.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace varsaw {

Pmf
Pmf::fromDense(int num_bits, const std::vector<double> &dense,
               double prune)
{
    if (dense.size() != (1ull << num_bits))
        panic("Pmf::fromDense: vector length is not 2^num_bits");
    Pmf pmf(num_bits);
    for (std::uint64_t x = 0; x < dense.size(); ++x)
        if (dense[x] > prune)
            pmf.probs_[x] = dense[x];
    return pmf;
}

double
Pmf::prob(std::uint64_t outcome) const
{
    auto it = probs_.find(outcome);
    return it == probs_.end() ? 0.0 : it->second;
}

void
Pmf::set(std::uint64_t outcome, double p)
{
    probs_[outcome] = p;
}

void
Pmf::accumulate(std::uint64_t outcome, double p)
{
    probs_[outcome] += p;
}

double
Pmf::totalMass() const
{
    double total = 0.0;
    for (const auto &[outcome, p] : probs_)
        total += p;
    return total;
}

void
Pmf::normalize()
{
    const double total = totalMass();
    if (total <= 0.0)
        return;
    const double inv = 1.0 / total;
    for (auto &[outcome, p] : probs_)
        p *= inv;
}

std::vector<double>
Pmf::toDense() const
{
    if (numBits_ > 30)
        panic("Pmf::toDense: too many bits for dense expansion");
    std::vector<double> dense(1ull << numBits_, 0.0);
    for (const auto &[outcome, p] : probs_)
        dense[outcome] += p;
    return dense;
}

Pmf
Pmf::marginal(const std::vector<int> &positions) const
{
    Pmf out(static_cast<int>(positions.size()));
    for (const auto &[outcome, p] : probs_)
        out.accumulate(gatherBits(outcome, positions), p);
    return out;
}

double
Pmf::expectationParity(std::uint64_t mask) const
{
    double e = 0.0;
    for (const auto &[outcome, p] : probs_)
        e += p * paritySign(outcome & mask);
    return e;
}

Counts
Pmf::sample(Rng &rng, std::uint64_t shots) const
{
    Counts counts(numBits_);
    if (probs_.empty())
        return counts;

    // Build a cumulative table once; per-shot lookup is a binary
    // search. This dominates runtime for high-shot experiments, so
    // keep the hot loop allocation-free.
    std::vector<std::uint64_t> outcomes;
    std::vector<double> cumulative;
    outcomes.reserve(probs_.size());
    cumulative.reserve(probs_.size());
    double running = 0.0;
    for (const auto &[outcome, p] : probs_) {
        if (p <= 0.0)
            continue;
        running += p;
        outcomes.push_back(outcome);
        cumulative.push_back(running);
    }
    if (running <= 0.0)
        return counts;

    for (std::uint64_t s = 0; s < shots; ++s) {
        const double target = rng.uniform() * running;
        auto it = std::lower_bound(cumulative.begin(), cumulative.end(),
                                   target);
        std::size_t idx = static_cast<std::size_t>(
            it - cumulative.begin());
        if (idx >= outcomes.size())
            idx = outcomes.size() - 1;
        counts.add(outcomes[idx]);
    }
    return counts;
}

std::uint64_t
Pmf::argmax() const
{
    std::uint64_t best = 0;
    double best_p = -1.0;
    for (const auto &[outcome, p] : probs_) {
        if (p > best_p) {
            best_p = p;
            best = outcome;
        }
    }
    return best;
}

double
Pmf::tvDistance(const Pmf &a, const Pmf &b)
{
    double d = 0.0;
    for (const auto &[outcome, p] : a.probs_)
        d += std::abs(p - b.prob(outcome));
    for (const auto &[outcome, p] : b.probs_)
        if (a.probs_.find(outcome) == a.probs_.end())
            d += std::abs(p);
    return 0.5 * d;
}

double
Pmf::fidelity(const Pmf &a, const Pmf &b)
{
    double bc = 0.0;
    for (const auto &[outcome, p] : a.probs_) {
        const double q = b.prob(outcome);
        if (p > 0.0 && q > 0.0)
            bc += std::sqrt(p * q);
    }
    return bc * bc;
}

double
Pmf::hellingerDistance(const Pmf &a, const Pmf &b)
{
    const double bc = std::sqrt(fidelity(a, b));
    return std::sqrt(std::max(0.0, 1.0 - bc));
}

} // namespace varsaw
