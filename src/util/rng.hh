/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the library (shot sampling, SPSA
 * perturbations, synthetic Hamiltonian construction, noise-model
 * presets) draw from this generator so that every experiment is
 * reproducible from a single seed.
 */

#ifndef VARSAW_UTIL_RNG_HH
#define VARSAW_UTIL_RNG_HH

#include <cstdint>
#include <vector>

namespace varsaw {

/**
 * xoshiro256** pseudo-random generator (Blackman & Vigna).
 *
 * Small, fast, high-quality, and fully deterministic given a seed.
 * The state is seeded through splitmix64 so that nearby seeds give
 * uncorrelated streams.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n) for n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /** Standard normal variate (Box-Muller, cached pair). */
    double normal();

    /** Normal variate with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Rademacher variate: +1 or -1 with equal probability. */
    int rademacher();

    /**
     * Sample an index from an unnormalized weight vector.
     *
     * @param weights Non-negative weights (need not sum to one).
     * @return Index in [0, weights.size()).
     */
    std::size_t discrete(const std::vector<double> &weights);

    /** Derive an independent child generator (for parallel streams). */
    Rng split();

    /**
     * Deterministic stream generator: an Rng seeded purely by
     * (base seed, stream id), independent of any generator state.
     * Parallel runtimes use this to give every job its own stream so
     * results do not depend on execution order or thread count.
     */
    static Rng forStream(std::uint64_t seed, std::uint64_t stream);

  private:
    std::uint64_t s_[4];
    bool hasCachedNormal_ = false;
    double cachedNormal_ = 0.0;
};

/**
 * Strong 64-bit mix of two words (splitmix64 finalizer over a
 * golden-ratio combination). Used to derive stream seeds and to
 * combine structural hashes; nearby inputs give uncorrelated
 * outputs.
 */
std::uint64_t mix64(std::uint64_t a, std::uint64_t b);

} // namespace varsaw

#endif // VARSAW_UTIL_RNG_HH
