/**
 * @file
 * Bit-string helpers shared across the library.
 *
 * Measurement outcomes are packed into 64-bit words with qubit q at
 * bit position q (qubit 0 is the least significant bit). These helpers
 * gather/scatter bits between the full-register indexing and the
 * compact indexing over a subset of measured qubits.
 */

#ifndef VARSAW_UTIL_BITOPS_HH
#define VARSAW_UTIL_BITOPS_HH

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace varsaw {

/** Number of set bits in x. */
inline int
popcount(std::uint64_t x)
{
    return std::popcount(x);
}

/** Parity (0/1) of the number of set bits in x. */
inline int
parity(std::uint64_t x)
{
    return std::popcount(x) & 1;
}

/** +1 if parity of x is even, -1 if odd. */
inline int
paritySign(std::uint64_t x)
{
    return parity(x) ? -1 : 1;
}

/**
 * Gather the bits of @p value at @p positions into a compact word.
 *
 * Bit positions[i] of @p value becomes bit i of the result, so a
 * 2-qubit subset over qubits {3, 5} maps outcome bit 3 to compact
 * bit 0 and outcome bit 5 to compact bit 1.
 */
inline std::uint64_t
gatherBits(std::uint64_t value, const std::vector<int> &positions)
{
    std::uint64_t out = 0;
    for (std::size_t i = 0; i < positions.size(); ++i)
        out |= ((value >> positions[i]) & 1ull) << i;
    return out;
}

/**
 * Scatter compact word @p value back to the full register positions.
 *
 * Inverse of gatherBits over the same position list: bit i of
 * @p value becomes bit positions[i] of the result.
 */
inline std::uint64_t
scatterBits(std::uint64_t value, const std::vector<int> &positions)
{
    std::uint64_t out = 0;
    for (std::size_t i = 0; i < positions.size(); ++i)
        out |= ((value >> i) & 1ull) << positions[i];
    return out;
}

/**
 * Insert a zero bit at position @p pos: bits at positions >= pos
 * shift up by one, bits below stay. The workhorse of pair-iteration
 * state-vector kernels: enumerating k over [0, 2^(n-1)) and
 * inserting a zero at the target qubit visits every amplitude pair
 * (i, i | 1<<pos) exactly once without scanning the skipped half.
 */
inline std::uint64_t
insertZeroBit(std::uint64_t value, int pos)
{
    const std::uint64_t low = value & ((1ull << pos) - 1ull);
    return ((value >> pos) << (pos + 1)) | low;
}

/**
 * Insert zero bits at two distinct positions (final coordinates).
 * Positions are sorted internally; insertion proceeds lowest-first
 * so both indices refer to the resulting word.
 */
inline std::uint64_t
insertTwoZeroBits(std::uint64_t value, int a, int b)
{
    const int lo = a < b ? a : b;
    const int hi = a < b ? b : a;
    return insertZeroBit(insertZeroBit(value, lo), hi);
}

/** Mask with bits at all listed positions set. */
inline std::uint64_t
positionsMask(const std::vector<int> &positions)
{
    std::uint64_t out = 0;
    for (int p : positions)
        out |= 1ull << p;
    return out;
}

/**
 * Render the low @p width bits of @p value as a bit string with
 * qubit 0 leftmost (matching the Pauli-string convention used in
 * the paper's figures).
 */
inline std::string
bitsToString(std::uint64_t value, int width)
{
    std::string s(width, '0');
    for (int q = 0; q < width; ++q)
        if ((value >> q) & 1ull)
            s[q] = '1';
    return s;
}

} // namespace varsaw

#endif // VARSAW_UTIL_BITOPS_HH
