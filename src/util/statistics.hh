/**
 * @file
 * Small statistics helpers used by benches and tests: summary
 * statistics, geometric means, and log-log slope fits used to verify
 * the asymptotic scaling claims of Fig. 8.
 */

#ifndef VARSAW_UTIL_STATISTICS_HH
#define VARSAW_UTIL_STATISTICS_HH

#include <cstddef>
#include <vector>

namespace varsaw {

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &xs);

/** Sample standard deviation (n-1 denominator); 0 if n < 2. */
double stddev(const std::vector<double> &xs);

/** Median (average of middle two for even n); 0 for empty input. */
double median(std::vector<double> xs);

/** Geometric mean of strictly positive values; 0 otherwise. */
double geometricMean(const std::vector<double> &xs);

/** Minimum; +inf for empty input. */
double minOf(const std::vector<double> &xs);

/** Maximum; -inf for empty input. */
double maxOf(const std::vector<double> &xs);

/** Result of an ordinary least squares line fit y = slope*x + b. */
struct LineFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination. */
    double r2 = 0.0;
};

/** Least-squares line fit; requires xs.size() == ys.size() >= 2. */
LineFit fitLine(const std::vector<double> &xs,
                const std::vector<double> &ys);

/**
 * Fit the exponent of a power law y ~ x^k via a log-log line fit.
 * All inputs must be strictly positive.
 */
LineFit fitPowerLaw(const std::vector<double> &xs,
                    const std::vector<double> &ys);

/**
 * Exponentially weighted moving average tracker, used by the
 * temporal scheduler's energy smoothing.
 */
class Ewma
{
  public:
    /** @param alpha Weight of the newest observation, in (0, 1]. */
    explicit Ewma(double alpha) : alpha_(alpha) {}

    /** Fold in a new observation and return the updated average. */
    double update(double x);

    /** Current average (0 before any observation). */
    double value() const { return value_; }

    /** Whether at least one observation has been folded in. */
    bool initialized() const { return initialized_; }

  private:
    double alpha_;
    double value_ = 0.0;
    bool initialized_ = false;
};

} // namespace varsaw

#endif // VARSAW_UTIL_STATISTICS_HH
