#include "util/csv.hh"

#include <cstdio>

#include "util/logging.hh"

namespace varsaw {

CsvWriter::CsvWriter(const std::string &path) : out_(path)
{
    if (!out_.is_open())
        warn("CsvWriter: could not open '" + path + "', output dropped");
}

std::string
CsvWriter::escape(const std::string &cell)
{
    bool needs_quotes = false;
    for (char c : cell)
        if (c == ',' || c == '"' || c == '\n')
            needs_quotes = true;
    if (!needs_quotes)
        return cell;
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    if (!out_.is_open())
        return;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << escape(cells[i]);
    }
    out_ << '\n';
}

void
CsvWriter::writeNumericRow(const std::vector<double> &values)
{
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.10g", v);
        cells.emplace_back(buf);
    }
    writeRow(cells);
}

} // namespace varsaw
