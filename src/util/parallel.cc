#include "util/parallel.hh"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

namespace varsaw {

namespace {

/**
 * External helper hosts (unified schedulers). hostCount mirrors the
 * map size so the hot publish path can skip the lock when no host
 * exists.
 */
std::mutex hostMutex;
std::unordered_map<int, std::function<void()>> assistHosts;
std::atomic<int> assistHostCount{0};
int nextAssistHostId = 0;

/**
 * Process-wide work accounting (see KernelPoolStats). Split by the
 * role of the thread that ran each chunk so assist-host lending is
 * visible: callerChunks + helperChunks + assistedChunks equals the
 * total chunk count of every engaged loop ever run.
 */
std::atomic<std::uint64_t> statEngagedLoops{0};
std::atomic<std::uint64_t> statCallerChunks{0};
std::atomic<std::uint64_t> statHelperChunks{0};
std::atomic<std::uint64_t> statAssistedChunks{0};

/** Invoke every registered host's wake callback. */
void
wakeAssistHosts()
{
    if (assistHostCount.load(std::memory_order_acquire) == 0)
        return;
    // Under the registry lock so removeKernelAssistHost() can
    // guarantee no callback runs after it returns.
    std::lock_guard<std::mutex> lock(hostMutex);
    for (auto &[id, wake] : assistHosts)
        wake();
}

/**
 * One engaged loop: chunks are claimed from `next` by the caller
 * and by admitted helpers; `done` counts completions. `helpers`
 * enforces the per-invocation admission cap so a freshly lowered
 * kernelThreads() setting takes effect even while the pool still
 * holds threads from a higher one.
 */
struct KernelJob
{
    std::uint64_t total = 0;
    std::uint64_t chunkSize = 0;
    std::uint64_t numChunks = 0;
    int maxHelpers = 0;
    const std::function<void(std::uint64_t, std::uint64_t,
                             std::uint64_t)> *fn = nullptr;
    std::atomic<std::uint64_t> next{0};
    std::atomic<std::uint64_t> done{0};
    std::atomic<int> helpers{0};
    std::mutex doneMutex;
    std::condition_variable doneCv;
};

/**
 * Claim-and-run chunks of @p job until none remain; returns how
 * many chunks this thread ran. @p roleCounter attributes that work
 * to the running thread's role (caller / pool helper / lent assist
 * host) — one relaxed add per engagement, not per chunk, so the
 * accounting never shows up in kernel throughput.
 */
std::uint64_t
runChunks(KernelJob &job, std::atomic<std::uint64_t> &roleCounter)
{
    std::uint64_t ran = 0;
    for (;;) {
        const std::uint64_t c =
            job.next.fetch_add(1, std::memory_order_relaxed);
        if (c >= job.numChunks)
            break;
        const std::uint64_t begin = c * job.chunkSize;
        const std::uint64_t end =
            std::min(job.total, begin + job.chunkSize);
        (*job.fn)(c, begin, end);
        ++ran;
        // acq_rel: publishes this chunk's writes to whoever observes
        // the final count (the waiting caller).
        if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            job.numChunks) {
            std::lock_guard<std::mutex> lock(job.doneMutex);
            job.doneCv.notify_all();
        }
    }
    if (ran > 0)
        roleCounter.fetch_add(ran, std::memory_order_relaxed);
    return ran;
}

/**
 * The lazily-started, process-global helper pool. Workers scan the
 * active-job list for a job with unclaimed chunks and a free
 * admission slot; callers always work on their own job too, so the
 * pool being busy (or empty) never blocks anyone.
 */
class KernelPool
{
  public:
    static KernelPool &
    instance()
    {
        static KernelPool pool;
        return pool;
    }

    void
    run(KernelJob &job)
    {
        ensureWorkers(job.maxHelpers);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            jobs_.push_back(&job);
        }
        wake_.notify_all();
        wakeAssistHosts();
        statEngagedLoops.fetch_add(1, std::memory_order_relaxed);
        runChunks(job, statCallerChunks);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (auto it = jobs_.begin(); it != jobs_.end(); ++it)
                if (*it == &job) {
                    jobs_.erase(it);
                    break;
                }
        }
        // Two conditions before the stack-allocated job may die:
        // every chunk completed (the acq_rel done increments pair
        // with this acquire load, publishing the chunks' writes),
        // and every admitted helper has fully left the job (claims
        // are serialized with the erase above by mutex_, so no new
        // helper can appear once we are here).
        std::unique_lock<std::mutex> lock(job.doneMutex);
        job.doneCv.wait(lock, [&] {
            return job.done.load(std::memory_order_acquire) ==
                job.numChunks &&
                job.helpers.load(std::memory_order_acquire) == 0;
        });
    }

    /** See detail::assistOneKernelJob(). */
    std::uint64_t
    assistOne()
    {
        KernelJob *job = nullptr;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (KernelJob *j : jobs_) {
                if (j->next.load(std::memory_order_relaxed) >=
                    j->numChunks)
                    continue;
                if (j->helpers.load(std::memory_order_relaxed) >=
                    j->maxHelpers)
                    continue;
                j->helpers.fetch_add(1, std::memory_order_relaxed);
                job = j;
                break;
            }
        }
        if (!job)
            return 0;
        const std::uint64_t ran =
            runChunks(*job, statAssistedChunks);
        {
            // Under the job mutex so the caller's wait cannot miss
            // the decrement and destroy the job while this thread
            // still holds a reference.
            std::lock_guard<std::mutex> lock(job->doneMutex);
            job->helpers.fetch_sub(1, std::memory_order_release);
            job->doneCv.notify_all();
        }
        // An admission slot opened for other helpers.
        wake_.notify_all();
        wakeAssistHosts();
        return ran;
    }

    ~KernelPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        wake_.notify_all();
        for (auto &w : workers_)
            w.join();
    }

  private:
    KernelPool() = default;

    void
    ensureWorkers(int count)
    {
        if (count <= 0)
            return;
        // While a unified scheduler is registered, its workers are
        // the helper supply: the pool spawns no threads of its own,
        // so the process never holds two competing thread sets.
        // Helpers spawned before the host registered keep running —
        // admission caps still bound how many join any one loop.
        if (assistHostCount.load(std::memory_order_acquire) > 0)
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        while (static_cast<int>(workers_.size()) < count &&
               static_cast<int>(workers_.size()) <
                   kMaxKernelThreads - 1)
            workers_.emplace_back([this] { workerLoop(); });
    }

    void
    workerLoop()
    {
        for (;;) {
            KernelJob *job = nullptr;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock, [&] {
                    if (stopping_)
                        return true;
                    for (KernelJob *j : jobs_) {
                        if (j->next.load(
                                std::memory_order_relaxed) >=
                            j->numChunks)
                            continue;
                        if (j->helpers.load(
                                std::memory_order_relaxed) >=
                            j->maxHelpers)
                            continue;
                        j->helpers.fetch_add(
                            1, std::memory_order_relaxed);
                        job = j;
                        return true;
                    }
                    return false;
                });
                if (stopping_)
                    return;
            }
            runChunks(*job, statHelperChunks);
            {
                // Under the job mutex so the caller's wait cannot
                // miss the decrement and destroy the job while this
                // thread still holds a reference.
                std::lock_guard<std::mutex> lock(job->doneMutex);
                job->helpers.fetch_sub(1,
                                       std::memory_order_release);
                job->doneCv.notify_all();
            }
            // An admission slot opened: another idle worker — pool
            // thread or registered host — may now join this (or
            // another) job.
            wake_.notify_all();
            wakeAssistHosts();
        }
    }

    std::mutex mutex_;
    std::condition_variable wake_;
    std::vector<std::thread> workers_;
    std::deque<KernelJob *> jobs_;
    bool stopping_ = false;
};

std::atomic<int> &
kernelThreadSetting()
{
    static std::atomic<int> setting{defaultKernelThreads()};
    return setting;
}

std::atomic<int> &
serviceThreadOverride()
{
    static std::atomic<int> setting{0};
    return setting;
}

int
clampThreads(int threads)
{
    if (threads < 1)
        return 1;
    if (threads > kMaxKernelThreads)
        return kMaxKernelThreads;
    return threads;
}

} // namespace

int
defaultKernelThreads()
{
    static const int dflt = [] {
        if (const char *env = std::getenv("VARSAW_KERNEL_THREADS")) {
            const long parsed = std::strtol(env, nullptr, 10);
            if (parsed > 0)
                return clampThreads(static_cast<int>(parsed));
        }
        return 1;
    }();
    return dflt;
}

int
kernelThreads()
{
    return kernelThreadSetting().load(std::memory_order_relaxed);
}

void
setKernelThreads(int threads)
{
    const int value =
        threads <= 0 ? defaultKernelThreads() : clampThreads(threads);
    kernelThreadSetting().store(value, std::memory_order_relaxed);
}

int
defaultServiceThreads()
{
    static const int envDefault = [] {
        if (const char *env =
                std::getenv("VARSAW_SERVICE_THREADS")) {
            const long parsed = std::strtol(env, nullptr, 10);
            if (parsed > 0)
                return static_cast<int>(parsed);
        }
        return 0;
    }();
    const int overridden =
        serviceThreadOverride().load(std::memory_order_relaxed);
    return overridden > 0 ? overridden : envDefault;
}

void
setDefaultServiceThreads(int threads)
{
    serviceThreadOverride().store(threads > 0 ? threads : 0,
                                  std::memory_order_relaxed);
}

int
resolveServiceThreads(int configured)
{
    if (configured > 0)
        return configured;
    const int dflt = defaultServiceThreads();
    if (dflt > 0)
        return dflt;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

std::uint64_t
parallelChunkSize(std::uint64_t total)
{
    std::uint64_t spread =
        (total + kMaxParallelChunks - 1) / kMaxParallelChunks;
    spread = (spread + kParallelChunkAlign - 1) &
        ~(kParallelChunkAlign - 1);
    return spread > kParallelGrain ? spread : kParallelGrain;
}

std::uint64_t
parallelChunkCount(std::uint64_t total)
{
    const std::uint64_t size = parallelChunkSize(total);
    return (total + size - 1) / size;
}

KernelPoolStats
kernelPoolStats()
{
    KernelPoolStats out;
    out.engagedLoops =
        statEngagedLoops.load(std::memory_order_relaxed);
    out.callerChunks =
        statCallerChunks.load(std::memory_order_relaxed);
    out.helperChunks =
        statHelperChunks.load(std::memory_order_relaxed);
    out.assistedChunks =
        statAssistedChunks.load(std::memory_order_relaxed);
    return out;
}

namespace detail {

void
runOnPool(std::uint64_t total, std::uint64_t chunkSize,
          std::uint64_t numChunks,
          const std::function<void(std::uint64_t, std::uint64_t,
                                   std::uint64_t)> &fn)
{
    KernelJob job;
    job.total = total;
    job.chunkSize = chunkSize;
    job.numChunks = numChunks;
    job.maxHelpers = kernelThreads() - 1;
    job.fn = &fn;
    KernelPool::instance().run(job);
}

std::uint64_t
assistOneKernelJob()
{
    return KernelPool::instance().assistOne();
}

int
addKernelAssistHost(std::function<void()> wake)
{
    std::lock_guard<std::mutex> lock(hostMutex);
    const int id = nextAssistHostId++;
    assistHosts.emplace(id, std::move(wake));
    assistHostCount.store(static_cast<int>(assistHosts.size()),
                          std::memory_order_release);
    return id;
}

void
removeKernelAssistHost(int handle)
{
    std::lock_guard<std::mutex> lock(hostMutex);
    assistHosts.erase(handle);
    assistHostCount.store(static_cast<int>(assistHosts.size()),
                          std::memory_order_release);
}

} // namespace detail

} // namespace varsaw
