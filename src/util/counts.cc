#include "util/counts.hh"

#include "util/logging.hh"
#include "util/pmf.hh"

namespace varsaw {

void
Counts::add(std::uint64_t outcome, std::uint64_t n)
{
    histogram_[outcome] += n;
    totalShots_ += n;
}

std::uint64_t
Counts::count(std::uint64_t outcome) const
{
    auto it = histogram_.find(outcome);
    return it == histogram_.end() ? 0 : it->second;
}

void
Counts::merge(const Counts &other)
{
    if (other.numBits_ != numBits_)
        panic("Counts::merge: bit-width mismatch");
    for (const auto &[outcome, n] : other.histogram_)
        add(outcome, n);
}

Pmf
Counts::toPmf() const
{
    Pmf pmf(numBits_);
    if (totalShots_ == 0)
        return pmf;
    const double inv = 1.0 / static_cast<double>(totalShots_);
    for (const auto &[outcome, n] : histogram_)
        pmf.set(outcome, static_cast<double>(n) * inv);
    return pmf;
}

} // namespace varsaw
