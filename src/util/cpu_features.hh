/**
 * @file
 * Runtime CPU ISA capability probe.
 *
 * The SIMD kernel dispatch (src/sim/kernels/) picks the widest
 * vector tier the *running* machine supports, so one binary runs
 * anywhere: compiled-in AVX2/AVX-512 translation units are only
 * ever entered after this probe says the instructions exist (and
 * the OS saves their register state — the compiler builtin folds
 * XGETBV into the check). Non-x86 builds report no vector support
 * and the dispatch stays on the scalar reference tier.
 */

#ifndef VARSAW_UTIL_CPU_FEATURES_HH
#define VARSAW_UTIL_CPU_FEATURES_HH

namespace varsaw {

/** What the running CPU (and OS) can execute. */
struct CpuFeatures
{
    /** AVX2 with FMA3 — the 256-bit kernel tier's requirement. */
    bool avx2Fma = false;

    /** AVX-512 F + DQ — the 512-bit kernel tier's requirement. */
    bool avx512 = false;
};

/** Probe once, cached for the life of the process. */
const CpuFeatures &cpuFeatures();

} // namespace varsaw

#endif // VARSAW_UTIL_CPU_FEATURES_HH
