/**
 * @file
 * Measurement-count histograms.
 *
 * A Counts object is the raw result of executing a circuit for a
 * number of shots: a map from packed measurement outcomes (qubit i of
 * the measured subset at bit i) to the number of times that outcome
 * was observed.
 */

#ifndef VARSAW_UTIL_COUNTS_HH
#define VARSAW_UTIL_COUNTS_HH

#include <cstdint>
#include <unordered_map>

namespace varsaw {

class Pmf;

/** Histogram of measurement outcomes over a set of measured bits. */
class Counts
{
  public:
    Counts() = default;

    /** Construct an empty histogram over @p num_bits measured bits. */
    explicit Counts(int num_bits) : numBits_(num_bits) {}

    /** Number of measured bits each outcome spans. */
    int numBits() const { return numBits_; }

    /** Total number of recorded shots. */
    std::uint64_t totalShots() const { return totalShots_; }

    /** Record @p n observations of @p outcome. */
    void add(std::uint64_t outcome, std::uint64_t n = 1);

    /** Observed count for @p outcome (0 if never seen). */
    std::uint64_t count(std::uint64_t outcome) const;

    /** Number of distinct outcomes observed. */
    std::size_t numOutcomes() const { return histogram_.size(); }

    /** Merge another histogram over the same bits into this one. */
    void merge(const Counts &other);

    /** Convert to a normalized probability mass function. */
    Pmf toPmf() const;

    /** Read-only access to the underlying histogram. */
    const std::unordered_map<std::uint64_t, std::uint64_t> &
    raw() const
    {
        return histogram_;
    }

  private:
    int numBits_ = 0;
    std::uint64_t totalShots_ = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> histogram_;
};

} // namespace varsaw

#endif // VARSAW_UTIL_COUNTS_HH
