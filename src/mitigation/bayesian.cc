#include "mitigation/bayesian.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace varsaw {

Pmf
bayesianReconstruct(const Pmf &global,
                    const std::vector<LocalPmf> &locals, int passes)
{
    if (passes < 1)
        panic("bayesianReconstruct: passes must be >= 1");

    Pmf out = global;
    out.normalize();

    for (int pass = 0; pass < passes; ++pass) {
        for (const auto &local : locals) {
            if (local.pmf.supportSize() == 0)
                continue;

            // Current marginal of the evolving joint on this subset.
            Pmf marg = out.marginal(local.positions);

            // Scale each joint outcome by L(s)/M(s).
            for (auto &[outcome, p] : out.rawMutable()) {
                const std::uint64_t s =
                    gatherBits(outcome, local.positions);
                const double m = marg.prob(s);
                if (m <= 0.0) {
                    // Outcome had zero mass on this subset before the
                    // update; leave untouched (p is zero anyway).
                    continue;
                }
                p *= local.pmf.prob(s) / m;
            }
            out.normalize();
        }
    }
    return out;
}

} // namespace varsaw
