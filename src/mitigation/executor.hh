/**
 * @file
 * Circuit execution backends.
 *
 * An Executor turns (circuit, parameters, shots) into a measured
 * probability distribution, and counts every submitted circuit —
 * the paper's quantum computational cost metric is exactly this
 * counter. Two backends are provided: an ideal one and the noisy
 * simulated-device one used throughout the evaluation.
 *
 * Both exact backends simulate through the prefix-sharing SimEngine
 * (src/sim/sim_engine.hh): each job's state-prep prefix is
 * simulated once per unique (prefix, params) key and shared across
 * every measurement suffix, whether the job arrived as an explicit
 * (prep, suffix) pair or as a plain circuit the engine splits
 * itself. Prepared states are deterministic, so the engine changes
 * cost, never results; simEngine().setCacheEnabled(false) restores
 * the one-full-simulation-per-circuit behaviour bit for bit.
 */

#ifndef VARSAW_MITIGATION_EXECUTOR_HH
#define VARSAW_MITIGATION_EXECUTOR_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "fault/fault_injector.hh"
#include "noise/device_model.hh"
#include "sim/circuit.hh"
#include "sim/job.hh"
#include "sim/sim_engine.hh"
#include "sim/statevector.hh"
#include "util/pmf.hh"
#include "util/rng.hh"
#include "util/status.hh"

namespace varsaw {

/**
 * Abstract circuit-execution backend with cost accounting.
 *
 * Every call to execute()/executeJob() increments the circuit
 * counter by one and the shot counter by the requested shots,
 * regardless of backend. Counters are atomic so concurrent
 * submissions through the batch runtime account exactly.
 *
 * Two entry points:
 *  - execute() draws samples from the executor's own serial RNG
 *    stream (the historical behaviour; not thread-safe);
 *  - executeJob() draws from a stream derived purely from
 *    (executor seed, stream id) and touches no mutable sampling
 *    state, so any number of jobs may run concurrently and results
 *    are independent of execution order.
 */
class Executor
{
  public:
    virtual ~Executor() = default;

    /**
     * Execute a circuit and return the distribution over its
     * measured qubits (bit i of an outcome = measured qubit i).
     *
     * @param circuit Circuit with a non-empty measurement spec.
     * @param params  Values for the circuit's symbolic parameters.
     * @param shots   Number of samples; 0 requests the exact
     *                (infinite-shot) distribution of this backend.
     */
    Pmf execute(const Circuit &circuit,
                const std::vector<double> &params,
                std::uint64_t shots);

    /**
     * Thread-safe execution with an explicit RNG stream id: samples
     * are drawn from Rng::forStream(seed(), stream). Two calls with
     * the same (circuit, params, shots, stream) return bit-identical
     * results no matter which thread runs them or in what order —
     * this is what makes batched execution reproducible.
     */
    Pmf executeJob(const Circuit &circuit,
                   const std::vector<double> &params,
                   std::uint64_t shots, std::uint64_t stream);

    /**
     * Thread-safe execution of a (possibly prefix-sharing) job.
     * Equivalent to flattening the job into one circuit, but lets
     * the SimEngine reuse the shared prepared state directly.
     */
    Pmf executeJob(const CircuitJob &job, std::uint64_t stream);

    /**
     * Thread-safe execution of a non-owning job view: the borrowed
     * circuit/params are only read for the duration of the call.
     * This is the zero-copy entry the other overloads funnel into.
     * Failures surface as a thrown StatusError (the Pmf-returning
     * interface cannot carry a Status); prefer tryExecuteJob() on
     * paths that want to branch on the error.
     */
    Pmf executeJob(const JobView &job, std::uint64_t stream);

    /**
     * Fault-tolerant execution core: validate, then run up to
     * retryPolicy().maxAttempts attempts with deterministic
     * exponential backoff (base << (attempt-1), capped) between
     * them, under the policy's per-job deadline (measured on the
     * fault-handling clock — virtual under a virtual-time plan).
     * Injected transient failures (fault::FaultSite) and detected
     * wire corruption are absorbed by the retry loop; the attempt
     * that succeeds samples from Rng::forStream(seed(), stream)
     * exactly like a first-try success, so a retried job's result
     * is bit-identical to an unfaulted run by construction.
     *
     * Error taxonomy (util/status.hh): InvalidArgument for
     * malformed submissions (checked before any attempt),
     * DeadlineExceeded when the deadline elapses, Unavailable /
     * DataLoss when every attempt failed transiently.
     *
     * Cost accounting: only attempts that actually reach the
     * backend are counted (an injected transient fails BEFORE
     * execution), so at chaos-CI rates (transient + latency only)
     * circuit/shot counters match the fault-free run exactly.
     */
    StatusOr<Pmf> tryExecuteJob(const JobView &job,
                                std::uint64_t stream);

    /**
     * Override the retry policy for this executor (defaults to
     * fault::defaultRetryPolicy(), i.e. the installed FaultPlan's
     * retry fields, re-read at every call so late plan changes
     * apply). NOT thread-safe: call before submitting jobs.
     */
    void setRetryPolicy(fault::RetryPolicy policy)
    {
        retry_ = policy;
    }

    /** Drop the per-executor override (back to the plan default). */
    void clearRetryPolicy() { retry_.reset(); }

    /** The effective retry policy (override or plan default). */
    fault::RetryPolicy retryPolicy() const
    {
        return retry_ ? *retry_ : fault::defaultRetryPolicy();
    }

    /** Retry attempts performed since construction / reset — every
     * attempt after a job's first (successful or not). */
    std::uint64_t retriesPerformed() const
    {
        return retries_.load(std::memory_order_relaxed);
    }

    /** Total circuits submitted since construction / reset. */
    std::uint64_t circuitsExecuted() const
    {
        return circuits_.load(std::memory_order_relaxed);
    }

    /** Total shots submitted since construction / reset. */
    std::uint64_t shotsExecuted() const
    {
        return shots_.load(std::memory_order_relaxed);
    }

    /** Reset the cost counters. */
    void resetCounters();

    /** The base seed of this executor's sampling streams. */
    std::uint64_t seed() const { return seed_; }

    /**
     * The prefix-sharing simulation engine backing exact state
     * evolution (prep cache, work counters). Shared by every job
     * this executor runs; internally synchronized.
     */
    SimEngine &simEngine() { return *simEngine_; }
    const SimEngine &simEngine() const { return *simEngine_; }

    /**
     * Replace the engine with one built from @p config — the way to
     * size the prepared-state cache for the register width in play
     * (each entry is a dense 2^n-amplitude vector). Discards the
     * current engine's cache and counters. NOT thread-safe: call
     * before submitting jobs, never concurrently with them.
     */
    void configureSimEngine(SimEngineConfig config)
    {
        simEngine_ = std::make_shared<SimEngine>(config);
    }

    /**
     * Shared handle on the engine, so a holder (the shared
     * ExecutionService, a cross-backend prep-sharing setup) can
     * outlive this executor or install the same engine into several
     * executors via setSimEngine(). Prepared states are pure
     * functions of (prefix, params) — independent of any backend's
     * noise or seed — so sharing one engine across backends shares
     * the StateCache without ever being able to change a result.
     */
    std::shared_ptr<SimEngine> sharedSimEngine() const
    {
        return simEngine_;
    }

    /**
     * Adopt @p engine as this executor's simulation engine (see
     * sharedSimEngine()). NOT thread-safe: call before submitting
     * jobs, never concurrently with them.
     */
    void setSimEngine(std::shared_ptr<SimEngine> engine)
    {
        if (!engine)
            return;
        simEngine_ = std::move(engine);
    }

  protected:
    /** @param seed Base seed for all sampling streams. */
    explicit Executor(std::uint64_t seed);

    /**
     * Backend-specific execution over a non-owning view (no job
     * copy is ever made on the way down). Must be const w.r.t.
     * backend state apart from @p rng and the (internally
     * synchronized) SimEngine: executeJob() calls this concurrently
     * from multiple threads.
     */
    virtual Pmf executeImpl(const JobView &job, Rng &rng) = 0;

    /**
     * Backend-specific submission validation, run once per job
     * before any execution attempt (data-dependent checks belong
     * here, as Status returns, never as panics: a malformed job
     * must fail ITS future, not the process).
     */
    virtual Status validateJob(const JobView &job) const;

  private:
    std::atomic<std::uint64_t> circuits_{0};
    std::atomic<std::uint64_t> shots_{0};
    std::atomic<std::uint64_t> retries_{0};
    std::optional<fault::RetryPolicy> retry_;
    std::uint64_t seed_;
    Rng rng_; //!< serial stream backing the legacy execute() path
    std::shared_ptr<SimEngine> simEngine_;
};

/** Noise-free backend: exact simulation plus optional sampling. */
class IdealExecutor : public Executor
{
  public:
    /** @param seed Seed for the shot-sampling stream. */
    explicit IdealExecutor(std::uint64_t seed = 1);

  protected:
    Pmf executeImpl(const JobView &job, Rng &rng) override;
};

/**
 * Noisy simulated-device backend.
 *
 * Pipeline: exact state-vector evolution (prefix-shared through the
 * SimEngine) -> gate-noise channel (analytic depolarizing mix or
 * stochastic Pauli trajectories) -> per-qubit readout confusion
 * with crosstalk scaling and best-qubit mapping for partial
 * measurements -> finite-shot sampling. The trajectory mode cannot
 * share prepared states (noise is injected inside the prefix), but
 * keeps the per-trajectory RNG stream structure.
 */
class NoisyExecutor : public Executor
{
  public:
    /**
     * @param device Device model supplying all error rates.
     * @param mode   Gate-noise treatment (default analytic).
     * @param seed   Seed for sampling / trajectory streams.
     * @param trajectories Trajectory count for PauliTrajectories.
     */
    explicit NoisyExecutor(
        DeviceModel device,
        GateNoiseMode mode = GateNoiseMode::AnalyticDepolarizing,
        std::uint64_t seed = 1, int trajectories = 64);

    /** The device model in use. */
    const DeviceModel &device() const { return device_; }

    /** The gate-noise mode in use. */
    GateNoiseMode gateNoiseMode() const { return mode_; }

    /**
     * Enable/disable mapping of partial measurements onto the
     * device's best-readout qubits (on by default; disabling is an
     * ablation that removes one of the two subset-fidelity
     * mechanisms).
     */
    void setBestMapping(bool enabled) { bestMapping_ = enabled; }

    /** Whether best-qubit subset mapping is enabled. */
    bool bestMapping() const { return bestMapping_; }

  protected:
    Pmf executeImpl(const JobView &job, Rng &rng) override;

    /** Adds the device-width check (InvalidArgument when the job is
     * wider than the device). */
    Status validateJob(const JobView &job) const override;

  protected:
    /** Exact measured-qubit distribution with gate noise folded in. */
    virtual std::vector<double> noisyMarginal(const JobView &job);

  private:

    /** Trajectory-averaged measured-qubit distribution. */
    std::vector<double> trajectoryMarginal(const JobView &job,
                                           Rng &rng);

    DeviceModel device_;
    GateNoiseMode mode_;
    int trajectories_;
    bool bestMapping_ = true;
};

/**
 * Exact open-system backend: identical to NoisyExecutor except that
 * gate noise is simulated exactly as per-qubit depolarizing
 * channels on a density matrix (the channel the trajectory mode
 * samples) instead of the global-depolarizing approximation.
 * Quadratically more memory — use for cross-validation and small
 * registers (<= 12 qubits).
 */
class DensityMatrixExecutor : public NoisyExecutor
{
  public:
    /** @param device Device model; @param seed sampling stream. */
    explicit DensityMatrixExecutor(DeviceModel device,
                                   std::uint64_t seed = 1);

  protected:
    std::vector<double> noisyMarginal(const JobView &job) override;
};

} // namespace varsaw

#endif // VARSAW_MITIGATION_EXECUTOR_HH
