#include "mitigation/zne.hh"

#include <cmath>
#include <utility>

#include "util/logging.hh"

namespace varsaw {

GateOp
inverseOp(const GateOp &op)
{
    if (op.paramIndex >= 0)
        panic("inverseOp: bind parameters before folding");
    GateOp inv = op;
    switch (op.kind) {
      case GateKind::H:
      case GateKind::X:
      case GateKind::Y:
      case GateKind::Z:
      case GateKind::CX:
      case GateKind::CZ:
      case GateKind::SWAP:
        break; // self-inverse
      case GateKind::S:
        inv.kind = GateKind::Sdg;
        break;
      case GateKind::Sdg:
        inv.kind = GateKind::S;
        break;
      case GateKind::T:
        inv.kind = GateKind::RZ;
        inv.param = -M_PI / 4.0;
        break;
      case GateKind::RX:
      case GateKind::RY:
      case GateKind::RZ:
      case GateKind::RZZ:
        inv.param = -op.param;
        break;
    }
    return inv;
}

Circuit
foldCircuit(const Circuit &circuit, int factor)
{
    if (factor < 1 || factor % 2 == 0)
        fatal("foldCircuit: fold factor must be odd and >= 1");
    if (circuit.numParams() != 0)
        panic("foldCircuit: bind parameters before folding");

    Circuit folded(circuit.numQubits(),
                   circuit.label() + "-fold" +
                       std::to_string(factor));
    auto push = [&](const GateOp &op) {
        switch (op.kind) {
          case GateKind::RX:
            folded.rx(op.q0, op.param);
            break;
          case GateKind::RY:
            folded.ry(op.q0, op.param);
            break;
          case GateKind::RZ:
            folded.rz(op.q0, op.param);
            break;
          case GateKind::RZZ:
            folded.rzz(op.q0, op.q1, op.param);
            break;
          case GateKind::CX:
            folded.cx(op.q0, op.q1);
            break;
          case GateKind::CZ:
            folded.cz(op.q0, op.q1);
            break;
          case GateKind::SWAP:
            folded.swap(op.q0, op.q1);
            break;
          case GateKind::H:
            folded.h(op.q0);
            break;
          case GateKind::X:
            folded.x(op.q0);
            break;
          case GateKind::Y:
            folded.y(op.q0);
            break;
          case GateKind::Z:
            folded.z(op.q0);
            break;
          case GateKind::S:
            folded.s(op.q0);
            break;
          case GateKind::Sdg:
            folded.sdg(op.q0);
            break;
          case GateKind::T:
            folded.t(op.q0);
            break;
        }
    };

    const auto &ops = circuit.ops();
    // U ...
    for (const auto &op : ops)
        push(op);
    // ... then (U+ U) repeated (factor - 1) / 2 times.
    for (int rep = 0; rep < (factor - 1) / 2; ++rep) {
        for (auto it = ops.rbegin(); it != ops.rend(); ++it)
            push(inverseOp(*it));
        for (const auto &op : ops)
            push(op);
    }
    for (int q : circuit.measuredQubits())
        folded.measure(q);
    return folded;
}

double
richardsonExtrapolate(
    const std::vector<std::pair<double, double>> &lambda_value)
{
    if (lambda_value.empty())
        panic("richardsonExtrapolate: no points");
    // Lagrange interpolation evaluated at lambda = 0.
    double result = 0.0;
    for (std::size_t i = 0; i < lambda_value.size(); ++i) {
        double weight = 1.0;
        for (std::size_t j = 0; j < lambda_value.size(); ++j) {
            if (i == j)
                continue;
            const double li = lambda_value[i].first;
            const double lj = lambda_value[j].first;
            if (li == lj)
                panic("richardsonExtrapolate: duplicate lambda");
            weight *= lj / (lj - li);
        }
            result += weight * lambda_value[i].second;
    }
    return result;
}

} // namespace varsaw
