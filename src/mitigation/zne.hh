/**
 * @file
 * Zero-Noise Extrapolation (ZNE) for gate errors.
 *
 * The related-work mitigation the paper cites (Kandala et al. 2019):
 * run the circuit at artificially amplified noise levels via global
 * unitary folding U -> U (U+ U)^k, giving odd scale factors
 * lambda = 1, 3, 5, ..., then Richardson-extrapolate the observable
 * to lambda = 0. Orthogonal to measurement-error mitigation: ZNE
 * attacks gate noise, VarSaw attacks readout noise; the extension
 * bench stacks them.
 */

#ifndef VARSAW_MITIGATION_ZNE_HH
#define VARSAW_MITIGATION_ZNE_HH

#include <utility>
#include <vector>

#include "sim/circuit.hh"

namespace varsaw {

/**
 * Inverse of a *bound* gate op (panics on symbolic parameters).
 * Self-inverse gates map to themselves; S <-> Sdg; rotations negate
 * their angle; T maps to RZ(-pi/4).
 */
GateOp inverseOp(const GateOp &op);

/**
 * Globally fold a bound circuit by an odd @p factor >= 1:
 * U -> U (U+ U)^((factor-1)/2). Gate count scales by the factor,
 * so depolarizing gate noise scales likewise while the ideal
 * unitary is unchanged. Measurements are preserved.
 */
Circuit foldCircuit(const Circuit &circuit, int factor);

/**
 * Richardson extrapolation to lambda = 0 through the given
 * (lambda, value) points (Lagrange evaluation at 0; exact for
 * polynomials of degree points-1).
 */
double
richardsonExtrapolate(const std::vector<std::pair<double, double>> &
                          lambda_value);

} // namespace varsaw

#endif // VARSAW_MITIGATION_ZNE_HH
