#include "mitigation/mbm.hh"

#include <algorithm>
#include <utility>

#include "util/logging.hh"

namespace varsaw {

MbmCalibration::MbmCalibration(std::vector<ReadoutError> errors)
    : errors_(std::move(errors))
{
}

MbmCalibration
MbmCalibration::calibrate(Executor &executor, int num_qubits,
                          std::uint64_t shots)
{
    // |0...0>: any bit reading 1 is a p01 flip. A bare circuit has no
    // gates, but needs at least one op for clarity; use identity-free
    // construction (no gates at all is valid for the simulator).
    Circuit zeros(num_qubits, "mbm-cal-zeros");
    zeros.measureAll();
    Pmf zeros_pmf = executor.execute(zeros, {}, shots);

    // |1...1>: any bit reading 0 is a p10 flip.
    Circuit ones(num_qubits, "mbm-cal-ones");
    for (int q = 0; q < num_qubits; ++q)
        ones.x(q);
    ones.measureAll();
    Pmf ones_pmf = executor.execute(ones, {}, shots);

    MbmCalibration cal;
    cal.errors_.resize(num_qubits);
    for (int q = 0; q < num_qubits; ++q) {
        // Marginal probability of reading 1 (resp. 0) on qubit q.
        double p01 = 0.0;
        for (const auto &[outcome, p] : zeros_pmf.raw())
            if ((outcome >> q) & 1ull)
                p01 += p;
        double p10 = 0.0;
        for (const auto &[outcome, p] : ones_pmf.raw())
            if (!((outcome >> q) & 1ull))
                p10 += p;
        cal.errors_[q].p01 = p01;
        cal.errors_[q].p10 = p10;
    }
    return cal;
}

Pmf
MbmCalibration::apply(const Pmf &measured) const
{
    if (measured.numBits() != numQubits())
        panic("MbmCalibration::apply: width mismatch");

    std::vector<double> dense = measured.toDense();
    if (!applyInverseReadoutConfusion(dense, errors_)) {
        warn("MbmCalibration: singular confusion matrix; "
             "returning input unchanged");
        return measured;
    }
    for (auto &p : dense)
        p = std::max(0.0, p);

    Pmf out = Pmf::fromDense(measured.numBits(), dense, 1e-14);
    out.normalize();
    return out;
}

} // namespace varsaw
