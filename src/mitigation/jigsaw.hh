/**
 * @file
 * The JigSaw measurement-error-mitigation pipeline (MICRO'21),
 * reimplemented as the baseline VarSaw improves upon.
 *
 * For one prepared circuit and one measurement basis, JigSaw:
 *  1. builds "Circuits with Partial Measurement" (CPMs) — sliding-
 *     window subsets of the measured qubits,
 *  2. executes the CPMs (high-fidelity Local PMFs) and the original
 *     circuit (low-fidelity, fully-correlated Global PMF),
 *  3. fuses them with Bayesian reconstruction into the Output PMF.
 */

#ifndef VARSAW_MITIGATION_JIGSAW_HH
#define VARSAW_MITIGATION_JIGSAW_HH

#include <cstdint>
#include <vector>

#include "mitigation/bayesian.hh"
#include "mitigation/executor.hh"
#include "pauli/pauli_string.hh"
#include "sim/circuit.hh"
#include "util/pmf.hh"

namespace varsaw {

/** Tunables of the JigSaw pipeline. */
struct JigsawConfig
{
    /** Subset (sliding window) size; the paper finds 2 optimal. */
    int subsetSize = 2;

    /** Shots per Global execution. */
    std::uint64_t globalShots = 4096;

    /** Shots per subset execution. */
    std::uint64_t subsetShots = 2048;

    /** Bayesian reconstruction sweeps over the locals. */
    int reconstructionPasses = 1;
};

/**
 * Build the Global circuit for a basis: prepared circuit + basis
 * rotations + measurement of every qubit.
 */
Circuit makeGlobalCircuit(const Circuit &prepared,
                          const PauliString &basis);

/**
 * Build a subset circuit (CPM): prepared circuit + basis rotations
 * on the subset's support only + measurement of the support.
 * (Rotations on unmeasured qubits cannot affect the measured
 * marginal, so they are omitted.)
 */
Circuit makeSubsetCircuit(const Circuit &prepared,
                          const PauliString &subset);

/**
 * Measurement suffix of a Global: basis rotations + measurement of
 * every qubit, with NO prepared circuit attached. Submitted via
 * Batch::addPrefixed() against a shared prep, this denotes exactly
 * the circuit makeGlobalCircuit() builds — without cloning the
 * ansatz per basis.
 */
Circuit makeGlobalSuffix(const PauliString &basis);

/**
 * Measurement suffix of a CPM: rotations on the subset's support +
 * measurement of the support, no prepared circuit attached.
 */
Circuit makeSubsetSuffix(const PauliString &subset);

/**
 * Execute one subset circuit and wrap its distribution as a
 * LocalPmf positioned at the subset's support qubits.
 */
LocalPmf runSubset(Executor &executor, const Circuit &prepared,
                   const std::vector<double> &params,
                   const PauliString &subset, std::uint64_t shots);

/**
 * The circuits one JigSaw mitigation needs, separated from their
 * execution so a batch runtime can run them (alongside the circuit
 * sets of every other basis) in parallel.
 */
struct JigsawCircuitSet
{
    /** Sliding-window subsets of the basis. */
    std::vector<PauliString> windows;

    /** CPM circuits, aligned with windows. */
    std::vector<Circuit> subsetCircuits;

    /** The fully-measured Global circuit. */
    Circuit globalCircuit;
};

/** Build the CPM + Global circuits for one (prepared, basis) pair. */
JigsawCircuitSet makeJigsawCircuits(const Circuit &prepared,
                                    const PauliString &basis,
                                    int subset_size);

/**
 * Suffix-only variant of makeJigsawCircuits(): the same windows,
 * but subsetCircuits/globalCircuit hold measurement suffixes to be
 * submitted against a shared prep via Batch::addPrefixed(). The
 * reconstruction half (reconstructJigsaw) is shape-agnostic — it
 * only reads the windows.
 */
JigsawCircuitSet makeJigsawSuffixes(const PauliString &basis,
                                    int subset_size);

/**
 * Reconstruction half of the pipeline: fuse already-executed subset
 * PMFs (aligned with @p set.windows) and the Global PMF into the
 * Output PMF.
 */
Pmf reconstructJigsaw(const JigsawCircuitSet &set,
                      const std::vector<Pmf> &subset_pmfs,
                      const Pmf &global_pmf,
                      int reconstruction_passes);

/**
 * Full JigSaw mitigation of one (prepared circuit, basis) pair:
 * run Global + all sliding-window CPMs through @p executor and
 * return the reconstructed Output PMF over all qubits.
 */
Pmf jigsawMitigate(Executor &executor, const Circuit &prepared,
                   const std::vector<double> &params,
                   const PauliString &basis,
                   const JigsawConfig &config);

} // namespace varsaw

#endif // VARSAW_MITIGATION_JIGSAW_HH
