#include "mitigation/executor.hh"

#include <cmath>
#include <cstring>
#include <utility>

#include "sim/density_matrix.hh"
#include "telemetry/metrics.hh"
#include "telemetry/profiler.hh"
#include "util/counts.hh"
#include "util/logging.hh"

namespace varsaw {

namespace {

/** Retry/deadline mirror under `service.*`. */
struct RetryMetrics
{
    telemetry::Counter &retries;
    telemetry::Counter &deadlineExceeded;

    static RetryMetrics &
    get()
    {
        auto &reg = telemetry::MetricsRegistry::instance();
        static RetryMetrics *m = new RetryMetrics{
            reg.counter("service.retries"),
            reg.counter("service.deadline_exceeded"),
        };
        return *m;
    }
};

/**
 * Order-independent content digest of a Pmf — the "wire" integrity
 * check of the corruption fault point. Commutative fold over the
 * sparse support, so the unordered iteration order cannot change
 * the digest; any single flipped probability bit changes it.
 */
std::uint64_t
pmfDigest(const Pmf &pmf)
{
    std::uint64_t acc = 0;
    // varsaw-lint: allow(unordered-iter) commutative (addition) fold: iteration order cannot change the digest
    for (const auto &entry : pmf.raw()) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &entry.second, sizeof bits);
        acc += mix64(entry.first, bits);
    }
    return mix64(static_cast<std::uint64_t>(pmf.numBits()), acc);
}

/**
 * Simulated wire corruption: flip the low mantissa bit of the most
 * probable outcome's probability. The corrupted copy exists only to
 * be caught by the digest check — it is dropped either way, so the
 * corruption shape can never reach a consumer.
 */
Pmf
corruptPmf(const Pmf &pmf)
{
    Pmf copy = pmf;
    if (copy.supportSize() == 0) {
        copy.set(0, 1e-12);
        return copy;
    }
    const std::uint64_t target = copy.argmax();
    double p = copy.prob(target);
    std::uint64_t bits = 0;
    std::memcpy(&bits, &p, sizeof bits);
    bits ^= 1ull;
    std::memcpy(&p, &bits, sizeof p);
    copy.set(target, p);
    return copy;
}

/** Deterministic exponential backoff: base << (attempt-1), capped. */
std::uint64_t
backoffNs(const fault::RetryPolicy &policy, int attempt)
{
    std::uint64_t wait = policy.baseBackoffNs;
    for (int k = 1; k < attempt && wait < policy.maxBackoffNs; ++k)
        wait <<= 1;
    return wait < policy.maxBackoffNs ? wait : policy.maxBackoffNs;
}

} // namespace

Executor::Executor(std::uint64_t seed)
    : seed_(seed), rng_(seed),
      simEngine_(std::make_shared<SimEngine>())
{
}

Pmf
Executor::execute(const Circuit &circuit,
                  const std::vector<double> &params,
                  std::uint64_t shots)
{
    // Non-owning view: the caller's circuit and params are borrowed
    // for the duration of the call, never deep-copied into a
    // transient job.
    const JobView job{circuit, params, shots, nullptr};
    if (job.numMeasured() == 0)
        throw StatusError(invalidArgumentError(
            "Executor::execute: circuit has no measurements"));
    if (Status invalid = validateJob(job); !invalid.ok())
        throw StatusError(std::move(invalid));
    // The legacy serial path: no fault injection or retries — it
    // predates content-derived streams, so a retry here could NOT
    // be bit-identical (rng_ is mutated per attempt). All service
    // and runtime traffic goes through tryExecuteJob().
    circuits_.fetch_add(1, std::memory_order_relaxed);
    shots_.fetch_add(shots, std::memory_order_relaxed);
    return executeImpl(job, rng_);
}

Pmf
Executor::executeJob(const Circuit &circuit,
                     const std::vector<double> &params,
                     std::uint64_t shots, std::uint64_t stream)
{
    return executeJob(JobView{circuit, params, shots, nullptr},
                      stream);
}

Pmf
Executor::executeJob(const CircuitJob &job, std::uint64_t stream)
{
    return executeJob(job.view(), stream);
}

Pmf
Executor::executeJob(const JobView &job, std::uint64_t stream)
{
    StatusOr<Pmf> result = tryExecuteJob(job, stream);
    if (!result.ok())
        throw StatusError(result.status());
    return std::move(result).value();
}

Status
Executor::validateJob(const JobView &) const
{
    return Status{};
}

StatusOr<Pmf>
Executor::tryExecuteJob(const JobView &job, std::uint64_t stream)
{
    // Malformed submissions fail fast, before any attempt: these
    // are permanent (InvalidArgument), never retried. They used to
    // panic — a typed error keeps one bad job from taking down a
    // multi-tenant service.
    if (job.numMeasured() == 0)
        return invalidArgumentError(
            "Executor::executeJob: circuit has no measurements");
    if (job.prep && job.prep->numQubits() != job.circuit.numQubits())
        return invalidArgumentError(
            "Executor::executeJob: prep/suffix width mismatch");
    if (Status invalid = validateJob(job); !invalid.ok())
        return invalid;

    auto &injector = fault::FaultInjector::instance();
    const fault::RetryPolicy policy = retryPolicy();
    const int attempts =
        policy.maxAttempts < 1 ? 1 : policy.maxAttempts;
    const std::uint64_t start =
        policy.deadlineNs > 0 ? injector.nowNs() : 0;
    Status last = unavailableError("no execution attempt ran");
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            retries_.fetch_add(1, std::memory_order_relaxed);
            if (telemetry::metricsEnabled())
                RetryMetrics::get().retries.add();
            telemetry::ScopedPhase phase(
                telemetry::Phase::RetryBackoff);
            injector.sleepFor(backoffNs(policy, attempt));
        }
        if (policy.deadlineNs > 0 &&
            injector.nowNs() - start > policy.deadlineNs) {
            if (telemetry::metricsEnabled())
                RetryMetrics::get().deadlineExceeded.add();
            return deadlineExceededError(
                "per-job deadline elapsed after " +
                std::to_string(attempt) + " attempt(s); last: " +
                last.toString());
        }
        const bool faults = injector.enabled();
        if (faults &&
            injector.shouldInject(fault::FaultSite::LatencySpike,
                                  stream, attempt))
            injector.sleepFor(injector.plan().latencySpikeNs);
        if (faults &&
            injector.shouldInject(
                fault::FaultSite::ExecutorTransient, stream,
                attempt)) {
            // The attempt fails BEFORE the backend runs: no circuit
            // executed, so the cost counters stay exact under
            // injection (chaos CI depends on this).
            last = unavailableError(
                "injected transient executor failure");
            continue;
        }
        circuits_.fetch_add(1, std::memory_order_relaxed);
        shots_.fetch_add(job.shots, std::memory_order_relaxed);
        // A fresh stream-derived Rng per attempt: the attempt that
        // succeeds draws exactly the samples a first-try success
        // would have — retry idempotence by construction.
        Rng rng = Rng::forStream(seed_, stream);
        Pmf result = executeImpl(job, rng);
        if (faults &&
            injector.shouldInject(
                fault::FaultSite::ResultCorruption, stream,
                attempt)) {
            // Corrupt a copy "on the wire" and verify the digest
            // catches it; the corrupted copy is dropped either way
            // (a corruption the digest misses would be a real DataLoss
            // escape — surface it as Internal, loudly).
            if (pmfDigest(corruptPmf(result)) != pmfDigest(result)) {
                last = dataLossError("result corruption detected "
                                     "on the wire (digest "
                                     "mismatch)");
                continue;
            }
            return internalError(
                "injected corruption evaded the result digest");
        }
        return result;
    }
    return last;
}

void
Executor::resetCounters()
{
    circuits_.store(0, std::memory_order_relaxed);
    shots_.store(0, std::memory_order_relaxed);
    retries_.store(0, std::memory_order_relaxed);
}

IdealExecutor::IdealExecutor(std::uint64_t seed) : Executor(seed)
{
}

Pmf
IdealExecutor::executeImpl(const JobView &job, Rng &rng)
{
    auto probs = simEngine().measuredMarginal(
        job.prep, job.circuit, job.params);
    Pmf exact = Pmf::fromDense(job.numMeasured(), probs, 1e-14);
    if (job.shots == 0)
        return exact;
    telemetry::ScopedPhase phase(telemetry::Phase::Sampling);
    Pmf sampled = exact.sample(rng, job.shots).toPmf();
    return sampled;
}

NoisyExecutor::NoisyExecutor(DeviceModel device, GateNoiseMode mode,
                             std::uint64_t seed, int trajectories)
    : Executor(seed), device_(std::move(device)), mode_(mode),
      trajectories_(trajectories)
{
    if (trajectories_ < 1)
        panic("NoisyExecutor: trajectory count must be >= 1");
}

std::vector<double>
NoisyExecutor::noisyMarginal(const JobView &job)
{
    auto probs = simEngine().measuredMarginal(
        job.prep, job.circuit, job.params);

    if (mode_ == GateNoiseMode::AnalyticDepolarizing) {
        // Survival probability of the whole gate sequence (prep +
        // suffix); the lost weight becomes the maximally mixed
        // state, which marginalizes to the uniform distribution
        // over the measured bits.
        const double survive =
            std::pow(1.0 - device_.gate1Error(),
                     job.oneQubitGateCount()) *
            std::pow(1.0 - device_.gate2Error(),
                     job.twoQubitGateCount());
        const double lambda = 1.0 - survive;
        if (lambda > 0.0) {
            const double uniform =
                1.0 / static_cast<double>(probs.size());
            for (auto &p : probs)
                p = (1.0 - lambda) * p + lambda * uniform;
        }
    }
    return probs;
}

std::vector<double>
NoisyExecutor::trajectoryMarginal(const JobView &job, Rng &rng)
{
    const auto &measured = job.measuredQubits();
    std::vector<double> acc(1ull << measured.size(), 0.0);

    // Noise kicks are injected inside the prep too, so trajectories
    // cannot share a prepared state; the statevector itself is
    // still reused across trajectories via reset() instead of
    // reconstructing (and re-allocating 2^n amplitudes) every time.
    Statevector sv(job.numQubits());
    const auto applyNoisy = [&](const GateOp &op) {
        sv.applyOp(op, job.params);
        const double err = isTwoQubitGate(op.kind)
            ? device_.gate2Error() : device_.gate1Error();
        if (err <= 0.0)
            return;
        // Independent per-touched-qubit depolarizing: with
        // probability err insert a uniformly random X/Y/Z.
        // This is exactly the channel DensityMatrixExecutor
        // applies, so the two backends agree in the limit.
        auto kick = [&](int q) {
            if (!rng.bernoulli(err))
                return;
            switch (rng.uniformInt(3)) {
              case 0:
                sv.apply1Q(q, gates::fixedMatrix(GateKind::X));
                break;
              case 1:
                sv.apply1Q(q, gates::fixedMatrix(GateKind::Y));
                break;
              default:
                sv.apply1Q(q, gates::fixedMatrix(GateKind::Z));
                break;
            }
        };
        kick(op.q0);
        if (isTwoQubitGate(op.kind))
            kick(op.q1);
    };

    for (int t = 0; t < trajectories_; ++t) {
        if (t > 0)
            sv.reset();
        if (job.prep)
            for (const auto &op : job.prep->ops())
                applyNoisy(op);
        for (const auto &op : job.circuit.ops())
            applyNoisy(op);
        auto probs = sv.marginalProbabilities(measured);
        for (std::size_t i = 0; i < acc.size(); ++i)
            acc[i] += probs[i];
    }
    const double inv = 1.0 / static_cast<double>(trajectories_);
    for (auto &p : acc)
        p *= inv;
    return acc;
}

Status
NoisyExecutor::validateJob(const JobView &job) const
{
    // Data-dependent, so a Status (not a fatal): one oversized job
    // must fail its own future, not exit the process under every
    // other tenant.
    if (job.numQubits() > device_.numQubits())
        return invalidArgumentError(
            "NoisyExecutor: circuit is wider than device '" +
            device_.name() + "'");
    return Status{};
}

Pmf
NoisyExecutor::executeImpl(const JobView &job, Rng &rng)
{
    std::vector<double> probs =
        mode_ == GateNoiseMode::PauliTrajectories
            ? trajectoryMarginal(job, rng)
            : noisyMarginal(job);

    // Readout error: subsets (partial measurement) are mapped onto
    // the device's best-readout qubits; full measurement keeps the
    // default physical assignment. Crosstalk scales with the number
    // of simultaneously measured qubits in both cases.
    const int m = job.numMeasured();
    const bool partial = bestMapping_ && m < job.numQubits();
    auto errors = device_.effectiveReadout(m, partial);
    applyReadoutConfusion(probs, errors);

    Pmf noisy = Pmf::fromDense(m, probs, 1e-14);
    if (job.shots == 0)
        return noisy;
    telemetry::ScopedPhase phase(telemetry::Phase::Sampling);
    return noisy.sample(rng, job.shots).toPmf();
}

DensityMatrixExecutor::DensityMatrixExecutor(DeviceModel device,
                                             std::uint64_t seed)
    : NoisyExecutor(std::move(device),
                    GateNoiseMode::AnalyticDepolarizing, seed)
{
}

std::vector<double>
DensityMatrixExecutor::noisyMarginal(const JobView &job)
{
    // The density-matrix evolution interleaves noise channels with
    // every gate, so it cannot reuse a pure prepared state; run the
    // flattened circuit.
    const Circuit full = job.flattened();
    DensityMatrix dm(full.numQubits());
    dm.runNoisy(full, job.params, device().gate1Error(),
                device().gate2Error());
    return dm.marginalProbabilities(full.measuredQubits());
}

} // namespace varsaw
