#include "mitigation/executor.hh"

#include <cmath>
#include <utility>

#include "sim/density_matrix.hh"
#include "util/counts.hh"
#include "util/logging.hh"

namespace varsaw {

Executor::Executor(std::uint64_t seed)
    : seed_(seed), rng_(seed),
      simEngine_(std::make_shared<SimEngine>())
{
}

Pmf
Executor::execute(const Circuit &circuit,
                  const std::vector<double> &params,
                  std::uint64_t shots)
{
    if (circuit.numMeasured() == 0)
        panic("Executor::execute: circuit has no measurements");
    circuits_.fetch_add(1, std::memory_order_relaxed);
    shots_.fetch_add(shots, std::memory_order_relaxed);
    // Non-owning view: the caller's circuit and params are borrowed
    // for the duration of the call, never deep-copied into a
    // transient job.
    const JobView job{circuit, params, shots, nullptr};
    return executeImpl(job, rng_);
}

Pmf
Executor::executeJob(const Circuit &circuit,
                     const std::vector<double> &params,
                     std::uint64_t shots, std::uint64_t stream)
{
    return executeJob(JobView{circuit, params, shots, nullptr},
                      stream);
}

Pmf
Executor::executeJob(const CircuitJob &job, std::uint64_t stream)
{
    return executeJob(job.view(), stream);
}

Pmf
Executor::executeJob(const JobView &job, std::uint64_t stream)
{
    if (job.numMeasured() == 0)
        panic("Executor::executeJob: circuit has no measurements");
    if (job.prep && job.prep->numQubits() != job.circuit.numQubits())
        panic("Executor::executeJob: prep/suffix width mismatch");
    circuits_.fetch_add(1, std::memory_order_relaxed);
    shots_.fetch_add(job.shots, std::memory_order_relaxed);
    Rng rng = Rng::forStream(seed_, stream);
    return executeImpl(job, rng);
}

void
Executor::resetCounters()
{
    circuits_.store(0, std::memory_order_relaxed);
    shots_.store(0, std::memory_order_relaxed);
}

IdealExecutor::IdealExecutor(std::uint64_t seed) : Executor(seed)
{
}

Pmf
IdealExecutor::executeImpl(const JobView &job, Rng &rng)
{
    auto probs = simEngine().measuredMarginal(
        job.prep, job.circuit, job.params);
    Pmf exact = Pmf::fromDense(job.numMeasured(), probs, 1e-14);
    if (job.shots == 0)
        return exact;
    Pmf sampled = exact.sample(rng, job.shots).toPmf();
    return sampled;
}

NoisyExecutor::NoisyExecutor(DeviceModel device, GateNoiseMode mode,
                             std::uint64_t seed, int trajectories)
    : Executor(seed), device_(std::move(device)), mode_(mode),
      trajectories_(trajectories)
{
    if (trajectories_ < 1)
        panic("NoisyExecutor: trajectory count must be >= 1");
}

std::vector<double>
NoisyExecutor::noisyMarginal(const JobView &job)
{
    auto probs = simEngine().measuredMarginal(
        job.prep, job.circuit, job.params);

    if (mode_ == GateNoiseMode::AnalyticDepolarizing) {
        // Survival probability of the whole gate sequence (prep +
        // suffix); the lost weight becomes the maximally mixed
        // state, which marginalizes to the uniform distribution
        // over the measured bits.
        const double survive =
            std::pow(1.0 - device_.gate1Error(),
                     job.oneQubitGateCount()) *
            std::pow(1.0 - device_.gate2Error(),
                     job.twoQubitGateCount());
        const double lambda = 1.0 - survive;
        if (lambda > 0.0) {
            const double uniform =
                1.0 / static_cast<double>(probs.size());
            for (auto &p : probs)
                p = (1.0 - lambda) * p + lambda * uniform;
        }
    }
    return probs;
}

std::vector<double>
NoisyExecutor::trajectoryMarginal(const JobView &job, Rng &rng)
{
    const auto &measured = job.measuredQubits();
    std::vector<double> acc(1ull << measured.size(), 0.0);

    // Noise kicks are injected inside the prep too, so trajectories
    // cannot share a prepared state; the statevector itself is
    // still reused across trajectories via reset() instead of
    // reconstructing (and re-allocating 2^n amplitudes) every time.
    Statevector sv(job.numQubits());
    const auto applyNoisy = [&](const GateOp &op) {
        sv.applyOp(op, job.params);
        const double err = isTwoQubitGate(op.kind)
            ? device_.gate2Error() : device_.gate1Error();
        if (err <= 0.0)
            return;
        // Independent per-touched-qubit depolarizing: with
        // probability err insert a uniformly random X/Y/Z.
        // This is exactly the channel DensityMatrixExecutor
        // applies, so the two backends agree in the limit.
        auto kick = [&](int q) {
            if (!rng.bernoulli(err))
                return;
            switch (rng.uniformInt(3)) {
              case 0:
                sv.apply1Q(q, gates::fixedMatrix(GateKind::X));
                break;
              case 1:
                sv.apply1Q(q, gates::fixedMatrix(GateKind::Y));
                break;
              default:
                sv.apply1Q(q, gates::fixedMatrix(GateKind::Z));
                break;
            }
        };
        kick(op.q0);
        if (isTwoQubitGate(op.kind))
            kick(op.q1);
    };

    for (int t = 0; t < trajectories_; ++t) {
        if (t > 0)
            sv.reset();
        if (job.prep)
            for (const auto &op : job.prep->ops())
                applyNoisy(op);
        for (const auto &op : job.circuit.ops())
            applyNoisy(op);
        auto probs = sv.marginalProbabilities(measured);
        for (std::size_t i = 0; i < acc.size(); ++i)
            acc[i] += probs[i];
    }
    const double inv = 1.0 / static_cast<double>(trajectories_);
    for (auto &p : acc)
        p *= inv;
    return acc;
}

Pmf
NoisyExecutor::executeImpl(const JobView &job, Rng &rng)
{
    if (job.numQubits() > device_.numQubits())
        fatal("NoisyExecutor: circuit is wider than device '" +
              device_.name() + "'");

    std::vector<double> probs =
        mode_ == GateNoiseMode::PauliTrajectories
            ? trajectoryMarginal(job, rng)
            : noisyMarginal(job);

    // Readout error: subsets (partial measurement) are mapped onto
    // the device's best-readout qubits; full measurement keeps the
    // default physical assignment. Crosstalk scales with the number
    // of simultaneously measured qubits in both cases.
    const int m = job.numMeasured();
    const bool partial = bestMapping_ && m < job.numQubits();
    auto errors = device_.effectiveReadout(m, partial);
    applyReadoutConfusion(probs, errors);

    Pmf noisy = Pmf::fromDense(m, probs, 1e-14);
    if (job.shots == 0)
        return noisy;
    return noisy.sample(rng, job.shots).toPmf();
}

DensityMatrixExecutor::DensityMatrixExecutor(DeviceModel device,
                                             std::uint64_t seed)
    : NoisyExecutor(std::move(device),
                    GateNoiseMode::AnalyticDepolarizing, seed)
{
}

std::vector<double>
DensityMatrixExecutor::noisyMarginal(const JobView &job)
{
    // The density-matrix evolution interleaves noise channels with
    // every gate, so it cannot reuse a pure prepared state; run the
    // flattened circuit.
    const Circuit full = job.flattened();
    DensityMatrix dm(full.numQubits());
    dm.runNoisy(full, job.params, device().gate1Error(),
                device().gate2Error());
    return dm.marginalProbabilities(full.measuredQubits());
}

} // namespace varsaw
