/**
 * @file
 * M3-style subspace readout mitigation (Nation et al., "Scalable
 * mitigation of measurement errors on quantum computers" — the
 * method behind Qiskit's mthree).
 *
 * Instead of inverting the full 2^n tensored confusion matrix (MBM),
 * M3 restricts the linear system to the *observed* bitstrings: with
 * S the sampled outcomes, solve A x = p where
 * A(s, t) = prod_q P(read s_q | true t_q) for s, t in S. The
 * restricted system is tiny (|S| <= shots), making readout
 * mitigation tractable at large qubit counts. Provided as the
 * mainstream generic-mitigation comparison point alongside MBM.
 */

#ifndef VARSAW_MITIGATION_M3_HH
#define VARSAW_MITIGATION_M3_HH

#include <vector>

#include "mitigation/executor.hh"
#include "noise/readout_error.hh"
#include "util/pmf.hh"

namespace varsaw {

/** Subspace-restricted readout-error corrector. */
class M3Mitigator
{
  public:
    /** Construct from per-qubit readout error rates. */
    explicit M3Mitigator(std::vector<ReadoutError> errors);

    /**
     * Calibrate against an executor (|0...0> / |1...1> circuits,
     * same protocol as MBM).
     */
    static M3Mitigator calibrate(Executor &executor, int num_qubits,
                                 std::uint64_t shots);

    /** Per-qubit error rates in use. */
    const std::vector<ReadoutError> &errors() const
    {
        return errors_;
    }

    /**
     * Correct a measured distribution within its own support.
     * Direct Gaussian elimination up to @p direct_limit outcomes;
     * larger supports use preconditioned Richardson iteration
     * (the matrix is strongly diagonally dominant for realistic
     * error rates). Output is clamped non-negative and normalized.
     */
    Pmf apply(const Pmf &measured, std::size_t direct_limit = 256)
        const;

  private:
    /** P(read s | true t) restricted to the calibrated qubits. */
    double transitionProbability(std::uint64_t s,
                                 std::uint64_t t) const;

    std::vector<ReadoutError> errors_;
};

} // namespace varsaw

#endif // VARSAW_MITIGATION_M3_HH
