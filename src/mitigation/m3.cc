#include "mitigation/m3.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "mitigation/mbm.hh"
#include "util/logging.hh"

namespace varsaw {

M3Mitigator::M3Mitigator(std::vector<ReadoutError> errors)
    : errors_(std::move(errors))
{
    if (errors_.empty())
        panic("M3Mitigator: need at least one qubit");
}

M3Mitigator
M3Mitigator::calibrate(Executor &executor, int num_qubits,
                       std::uint64_t shots)
{
    MbmCalibration cal =
        MbmCalibration::calibrate(executor, num_qubits, shots);
    return M3Mitigator(cal.errors());
}

double
M3Mitigator::transitionProbability(std::uint64_t s,
                                   std::uint64_t t) const
{
    double p = 1.0;
    for (std::size_t q = 0; q < errors_.size(); ++q) {
        const int sq = static_cast<int>((s >> q) & 1ull);
        const int tq = static_cast<int>((t >> q) & 1ull);
        const double p01 = errors_[q].p01;
        const double p10 = errors_[q].p10;
        if (tq == 0)
            p *= sq == 0 ? 1.0 - p01 : p01;
        else
            p *= sq == 1 ? 1.0 - p10 : p10;
        if (p == 0.0)
            return 0.0;
    }
    return p;
}

Pmf
M3Mitigator::apply(const Pmf &measured,
                   std::size_t direct_limit) const
{
    const std::size_t n = measured.supportSize();
    if (n == 0)
        return measured;

    std::vector<std::uint64_t> outcomes;
    std::vector<double> p;
    outcomes.reserve(n);
    p.reserve(n);
    for (const auto &[outcome, prob] : measured.raw()) {
        outcomes.push_back(outcome);
        p.push_back(prob);
    }

    // Restricted transition matrix A(s, t), column-normalized over
    // the subspace so probability leaking to unobserved outcomes is
    // reassigned proportionally (the M3 convention).
    std::vector<double> a(n * n);
    for (std::size_t col = 0; col < n; ++col) {
        double col_sum = 0.0;
        for (std::size_t row = 0; row < n; ++row) {
            a[row * n + col] =
                transitionProbability(outcomes[row], outcomes[col]);
            col_sum += a[row * n + col];
        }
        if (col_sum > 0.0)
            for (std::size_t row = 0; row < n; ++row)
                a[row * n + col] /= col_sum;
    }

    std::vector<double> x = p;
    if (n <= direct_limit) {
        // Gaussian elimination with partial pivoting on [A | p].
        std::vector<double> m = a;
        std::vector<double> rhs = p;
        std::vector<std::size_t> perm(n);
        for (std::size_t i = 0; i < n; ++i)
            perm[i] = i;
        bool singular = false;
        for (std::size_t col = 0; col < n && !singular; ++col) {
            std::size_t pivot = col;
            for (std::size_t row = col + 1; row < n; ++row)
                if (std::abs(m[row * n + col]) >
                    std::abs(m[pivot * n + col]))
                    pivot = row;
            if (std::abs(m[pivot * n + col]) < 1e-14) {
                singular = true;
                break;
            }
            if (pivot != col) {
                for (std::size_t k = 0; k < n; ++k)
                    std::swap(m[pivot * n + k], m[col * n + k]);
                std::swap(rhs[pivot], rhs[col]);
            }
            for (std::size_t row = col + 1; row < n; ++row) {
                const double factor =
                    m[row * n + col] / m[col * n + col];
                if (factor == 0.0)
                    continue;
                for (std::size_t k = col; k < n; ++k)
                    m[row * n + k] -= factor * m[col * n + k];
                rhs[row] -= factor * rhs[col];
            }
        }
        if (!singular) {
            for (std::size_t i = n; i-- > 0;) {
                double acc = rhs[i];
                for (std::size_t k = i + 1; k < n; ++k)
                    acc -= m[i * n + k] * x[k];
                x[i] = acc / m[i * n + i];
            }
        } else {
            warn("M3Mitigator: singular restricted matrix; "
                 "falling back to iteration");
        }
    }
    if (n > direct_limit) {
        // Richardson iteration x <- x + (p - A x); converges since
        // the column-normalized A is close to the identity for
        // realistic readout errors.
        x = p;
        std::vector<double> ax(n);
        for (int iter = 0; iter < 100; ++iter) {
            std::fill(ax.begin(), ax.end(), 0.0);
            for (std::size_t col = 0; col < n; ++col)
                for (std::size_t row = 0; row < n; ++row)
                    ax[row] += a[row * n + col] * x[col];
            double residual = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                const double r = p[i] - ax[i];
                x[i] += r;
                residual += std::abs(r);
            }
            if (residual < 1e-12)
                break;
        }
    }

    Pmf out(measured.numBits());
    for (std::size_t i = 0; i < n; ++i)
        if (x[i] > 0.0)
            out.set(outcomes[i], x[i]);
    out.normalize();
    return out;
}

} // namespace varsaw
