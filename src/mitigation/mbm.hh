/**
 * @file
 * Matrix-based measurement mitigation (MBM), IBM's standard
 * tensored readout-error mitigation, reproduced for the Fig. 18
 * stacking experiment (VarSaw + MBM).
 *
 * Calibration runs two circuits — prepare |0...0> and |1...1> and
 * measure everything — to estimate each qubit's confusion matrix
 * under full simultaneous readout. Mitigation applies the inverse
 * per-qubit matrices to a measured distribution, clamping negative
 * entries and renormalizing.
 */

#ifndef VARSAW_MITIGATION_MBM_HH
#define VARSAW_MITIGATION_MBM_HH

#include <cstdint>
#include <vector>

#include "mitigation/executor.hh"
#include "noise/readout_error.hh"
#include "util/pmf.hh"

namespace varsaw {

/** Tensored readout-error calibration + correction. */
class MbmCalibration
{
  public:
    /**
     * Calibrate against @p executor by running the |0...0> and
     * |1...1> preparation circuits over @p num_qubits qubits.
     *
     * @param shots Shots per calibration circuit (0 = exact).
     */
    static MbmCalibration calibrate(Executor &executor, int num_qubits,
                                    std::uint64_t shots);

    /** Construct from known per-qubit error rates (tests). */
    explicit MbmCalibration(std::vector<ReadoutError> errors);

    /** Estimated per-qubit readout errors. */
    const std::vector<ReadoutError> &errors() const { return errors_; }

    /** Number of calibrated qubits. */
    int numQubits() const
    {
        return static_cast<int>(errors_.size());
    }

    /**
     * Correct a measured distribution over all calibrated qubits:
     * apply the inverse confusion matrices, clamp negatives to zero,
     * renormalize.
     */
    Pmf apply(const Pmf &measured) const;

  private:
    MbmCalibration() = default;

    std::vector<ReadoutError> errors_;
};

} // namespace varsaw

#endif // VARSAW_MITIGATION_MBM_HH
