/**
 * @file
 * Bayesian reconstruction (the fusion step of JigSaw / VarSaw).
 *
 * Given a low-fidelity Global PMF over all measured qubits and a set
 * of high-fidelity Local PMFs over small qubit subsets, rewrite the
 * Global so its marginals match the Locals while keeping its
 * cross-qubit correlation structure. This is one pass of iterative
 * proportional fitting, which is exactly the update the JigSaw paper
 * describes: the probability of a local outcome is distributed over
 * the matching global outcomes in proportion to their current
 * (prior) global probabilities.
 */

#ifndef VARSAW_MITIGATION_BAYESIAN_HH
#define VARSAW_MITIGATION_BAYESIAN_HH

#include <vector>

#include "util/pmf.hh"

namespace varsaw {

/** A high-fidelity marginal over a subset of the global bits. */
struct LocalPmf
{
    /** Global bit positions this marginal spans (bit i of the
     *  local PMF corresponds to global bit positions[i]). */
    std::vector<int> positions;

    /** The marginal distribution itself. */
    Pmf pmf;
};

/**
 * Bayesian reconstruction via iterative proportional fitting.
 *
 * For each local L over subset S (applied in order, @p passes times):
 *
 *     P'(x) = P(x) * L(x|S) / M(x|S)
 *
 * where M is the current marginal of P on S, followed by
 * renormalization. Outcomes outside the Global's support stay at
 * zero probability (the prior carries the correlation information;
 * without it there is nothing to scale).
 *
 * @param global Prior joint distribution (the Global run).
 * @param locals Subset marginals (the subset runs).
 * @param passes Number of sweeps over the locals (JigSaw uses 1).
 * @return The reconstructed, normalized Output-PMF.
 */
Pmf bayesianReconstruct(const Pmf &global,
                        const std::vector<LocalPmf> &locals,
                        int passes = 1);

} // namespace varsaw

#endif // VARSAW_MITIGATION_BAYESIAN_HH
