#include "mitigation/jigsaw.hh"

#include "pauli/subsetting.hh"
#include "util/logging.hh"

namespace varsaw {

Circuit
makeGlobalCircuit(const Circuit &prepared, const PauliString &basis)
{
    Circuit c(prepared.numQubits(),
              "global:" + basis.toString());
    c.append(prepared);
    c.appendBasisRotations(basis);
    c.measureAll();
    return c;
}

Circuit
makeSubsetCircuit(const Circuit &prepared, const PauliString &subset)
{
    if (subset.isIdentity())
        panic("makeSubsetCircuit: subset measures nothing");
    Circuit c(prepared.numQubits(),
              "subset:" + subset.toSubsetString());
    c.append(prepared);
    c.appendBasisRotations(subset);
    c.measureSupport(subset);
    return c;
}

LocalPmf
runSubset(Executor &executor, const Circuit &prepared,
          const std::vector<double> &params, const PauliString &subset,
          std::uint64_t shots)
{
    Circuit c = makeSubsetCircuit(prepared, subset);
    LocalPmf local;
    local.positions = subset.support();
    local.pmf = executor.execute(c, params, shots);
    return local;
}

Pmf
jigsawMitigate(Executor &executor, const Circuit &prepared,
               const std::vector<double> &params,
               const PauliString &basis, const JigsawConfig &config)
{
    // Step 1: CPMs from the basis's sliding windows.
    const auto windows = windowSubsets(basis, config.subsetSize);

    // Step 2: execute subsets and the Global.
    std::vector<LocalPmf> locals;
    locals.reserve(windows.size());
    for (const auto &w : windows)
        locals.push_back(
            runSubset(executor, prepared, params, w,
                      config.subsetShots));

    Circuit global = makeGlobalCircuit(prepared, basis);
    Pmf global_pmf =
        executor.execute(global, params, config.globalShots);

    // Step 3: Bayesian reconstruction.
    return bayesianReconstruct(global_pmf, locals,
                               config.reconstructionPasses);
}

} // namespace varsaw
