#include "mitigation/jigsaw.hh"

#include "pauli/subsetting.hh"
#include "util/logging.hh"

#include <utility>

namespace varsaw {

Circuit
makeGlobalCircuit(const Circuit &prepared, const PauliString &basis)
{
    Circuit c(prepared.numQubits(),
              "global:" + basis.toString());
    c.append(prepared);
    c.appendBasisRotations(basis);
    c.measureAll();
    return c;
}

Circuit
makeSubsetCircuit(const Circuit &prepared, const PauliString &subset)
{
    if (subset.isIdentity())
        panic("makeSubsetCircuit: subset measures nothing");
    Circuit c(prepared.numQubits(),
              "subset:" + subset.toSubsetString());
    c.append(prepared);
    c.appendBasisRotations(subset);
    c.measureSupport(subset);
    return c;
}

Circuit
makeGlobalSuffix(const PauliString &basis)
{
    Circuit c(basis.numQubits(), "global:" + basis.toString());
    c.appendBasisRotations(basis);
    c.measureAll();
    return c;
}

Circuit
makeSubsetSuffix(const PauliString &subset)
{
    if (subset.isIdentity())
        panic("makeSubsetSuffix: subset measures nothing");
    Circuit c(subset.numQubits(),
              "subset:" + subset.toSubsetString());
    c.appendBasisRotations(subset);
    c.measureSupport(subset);
    return c;
}

LocalPmf
runSubset(Executor &executor, const Circuit &prepared,
          const std::vector<double> &params, const PauliString &subset,
          std::uint64_t shots)
{
    Circuit c = makeSubsetCircuit(prepared, subset);
    LocalPmf local;
    local.positions = subset.support();
    local.pmf = executor.execute(c, params, shots);
    return local;
}

JigsawCircuitSet
makeJigsawCircuits(const Circuit &prepared, const PauliString &basis,
                   int subset_size)
{
    JigsawCircuitSet set;
    set.windows = windowSubsets(basis, subset_size);
    set.subsetCircuits.reserve(set.windows.size());
    for (const auto &w : set.windows)
        set.subsetCircuits.push_back(makeSubsetCircuit(prepared, w));
    set.globalCircuit = makeGlobalCircuit(prepared, basis);
    return set;
}

JigsawCircuitSet
makeJigsawSuffixes(const PauliString &basis, int subset_size)
{
    JigsawCircuitSet set;
    set.windows = windowSubsets(basis, subset_size);
    set.subsetCircuits.reserve(set.windows.size());
    for (const auto &w : set.windows)
        set.subsetCircuits.push_back(makeSubsetSuffix(w));
    set.globalCircuit = makeGlobalSuffix(basis);
    return set;
}

Pmf
reconstructJigsaw(const JigsawCircuitSet &set,
                  const std::vector<Pmf> &subset_pmfs,
                  const Pmf &global_pmf, int reconstruction_passes)
{
    if (subset_pmfs.size() != set.windows.size())
        panic("reconstructJigsaw: subset PMF count != window count");
    std::vector<LocalPmf> locals;
    locals.reserve(set.windows.size());
    for (std::size_t w = 0; w < set.windows.size(); ++w) {
        LocalPmf local;
        local.positions = set.windows[w].support();
        local.pmf = subset_pmfs[w];
        locals.push_back(std::move(local));
    }
    return bayesianReconstruct(global_pmf, locals,
                               reconstruction_passes);
}

Pmf
jigsawMitigate(Executor &executor, const Circuit &prepared,
               const std::vector<double> &params,
               const PauliString &basis, const JigsawConfig &config)
{
    // Steps 1-2: build and execute the CPMs, then the Global.
    JigsawCircuitSet set =
        makeJigsawCircuits(prepared, basis, config.subsetSize);
    std::vector<Pmf> subset_pmfs;
    subset_pmfs.reserve(set.subsetCircuits.size());
    for (const auto &c : set.subsetCircuits)
        subset_pmfs.push_back(
            executor.execute(c, params, config.subsetShots));
    Pmf global_pmf = executor.execute(set.globalCircuit, params,
                                      config.globalShots);

    // Step 3: Bayesian reconstruction.
    return reconstructJigsaw(set, subset_pmfs, global_pmf,
                             config.reconstructionPasses);
}

} // namespace varsaw
