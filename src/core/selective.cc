#include "core/selective.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "util/logging.hh"

namespace varsaw {

std::pair<Hamiltonian, Hamiltonian>
splitByCoefficientMass(const Hamiltonian &hamiltonian,
                       double heavy_fraction)
{
    if (heavy_fraction < 0.0 || heavy_fraction > 1.0)
        fatal("splitByCoefficientMass: fraction must be in [0, 1]");

    const auto &terms = hamiltonian.terms();
    std::vector<std::size_t> order(terms.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return std::abs(terms[a].coefficient) >
                             std::abs(terms[b].coefficient);
                     });

    const double total = hamiltonian.coefficientL1Norm();
    const double target = heavy_fraction * total;

    Hamiltonian heavy(hamiltonian.numQubits(),
                      hamiltonian.name() + "-heavy");
    Hamiltonian light(hamiltonian.numQubits(),
                      hamiltonian.name() + "-light");
    heavy.addTerm(PauliString(hamiltonian.numQubits()),
                  hamiltonian.identityOffset());

    double accumulated = 0.0;
    for (std::size_t idx : order) {
        const auto &term = terms[idx];
        // Strict '<' so fraction 0 sends everything to light and
        // fraction 1 (target == total) keeps everything heavy.
        if (accumulated < target - 1e-12) {
            heavy.addTerm(term.string, term.coefficient);
            accumulated += std::abs(term.coefficient);
        } else {
            light.addTerm(term.string, term.coefficient);
        }
    }
    return {std::move(heavy), std::move(light)};
}

SelectiveVarsawEstimator::SelectiveVarsawEstimator(
    const Hamiltonian &hamiltonian, const Circuit &ansatz,
    Executor &executor, const VarsawConfig &config,
    double heavy_fraction, std::uint64_t light_shots)
{
    auto parts = splitByCoefficientMass(hamiltonian, heavy_fraction);
    heavy_ = std::move(parts.first);
    light_ = std::move(parts.second);
    if (heavy_.numTerms() == 0)
        fatal("SelectiveVarsawEstimator: heavy part is empty; use "
              "BaselineEstimator directly for fraction 0");
    varsaw_ = std::make_unique<VarsawEstimator>(heavy_, ansatz,
                                                executor, config);
    if (light_.numTerms() > 0)
        baseline_ = std::make_unique<BaselineEstimator>(
            light_, ansatz, executor, light_shots, BasisMode::Cover,
            ShotAllocation::Uniform, config.runtime);
}

double
SelectiveVarsawEstimator::estimate(const std::vector<double> &params)
{
    double energy = varsaw_->estimate(params);
    if (baseline_)
        energy += baseline_->estimate(params);
    return energy;
}

void
SelectiveVarsawEstimator::onIterationBoundary()
{
    varsaw_->onIterationBoundary();
}

} // namespace varsaw
