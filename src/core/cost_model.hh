/**
 * @file
 * Analytic circuit-cost model behind Fig. 8.
 *
 * Per VQA iteration, with Q qubits and P = 0.01 * Q^4 Pauli bases
 * (the paper's scaling assumption for molecular Hamiltonians):
 *
 *  - Traditional VQA executes P circuits;
 *  - JigSaw executes P Globals plus ~P*(Q-1) subsets: O(Q^5);
 *  - VarSaw executes k*P Globals (k = Global execution fraction,
 *    0..1) plus the reduced subset pool, bounded by 9*(Q-1) unique
 *    non-dominated 2-qubit windows: O(k*Q^4 + Q).
 */

#ifndef VARSAW_CORE_COST_MODEL_HH
#define VARSAW_CORE_COST_MODEL_HH

#include <vector>

namespace varsaw {

/** Closed-form per-iteration circuit counts (Fig. 8). */
class CostModel
{
  public:
    /** Pauli bases for a Q-qubit molecular problem: 0.01 * Q^4. */
    static double pauliTerms(double qubits);

    /** Traditional VQA circuits per iteration. */
    static double traditionalCircuits(double qubits);

    /**
     * JigSaw-for-VQA circuits per iteration:
     * Globals (P) + subsets (P * (Q - 1)) for window size 2.
     */
    static double jigsawCircuits(double qubits);

    /**
     * Upper bound on VarSaw's reduced subset pool: at most 9
     * non-dominated X/Y/Z window combinations per adjacent-pair
     * position.
     */
    static double varsawSubsetBound(double qubits);

    /**
     * VarSaw circuits per iteration at Global fraction @p k:
     * k * P + varsawSubsetBound(Q).
     */
    static double varsawCircuits(double qubits, double k);
};

/** One row of the Fig. 8 sweep. */
struct CostModelRow
{
    double qubits = 0.0;
    double traditional = 0.0;
    double jigsaw = 0.0;
    std::vector<double> varsaw; //!< one entry per k value
};

/**
 * Evaluate the model over a qubit sweep.
 *
 * @param qubit_points Qubit counts to evaluate.
 * @param ks           VarSaw Global fractions (e.g. 1, 0.1, ...).
 */
std::vector<CostModelRow>
sweepCostModel(const std::vector<double> &qubit_points,
               const std::vector<double> &ks);

} // namespace varsaw

#endif // VARSAW_CORE_COST_MODEL_HH
