/**
 * @file
 * VarSaw's spatial optimization: Commuting of Pauli String Subsets.
 *
 * JigSaw generates sliding-window subsets per basis circuit, after
 * commutation reduction — so the same window is regenerated and
 * re-executed for basis after basis. VarSaw flips the order
 * (Fig. 10): generate windows for *every raw Hamiltonian term*,
 * aggregate, then commutativity-reduce the aggregate (dedup +
 * dominance elimination). The surviving few subsets are executed
 * once per iteration and *shared* by every basis reconstruction,
 * answered through the covering relation.
 */

#ifndef VARSAW_CORE_SPATIAL_HH
#define VARSAW_CORE_SPATIAL_HH

#include <cstddef>
#include <string>
#include <vector>

#include "pauli/commutation.hh"
#include "pauli/hamiltonian.hh"
#include "pauli/subsetting.hh"

namespace varsaw {

/**
 * Precomputed execution plan for one Hamiltonian: which subset
 * circuits to run each iteration, and how each basis's needed
 * windows map onto them.
 */
struct SpatialPlan
{
    /** Subset (window) size. */
    int windowSize = 2;

    /** Cover-reduced measurement bases of the Hamiltonian. */
    BasisReduction bases;

    /** The reduced subset set actually executed each iteration. */
    std::vector<PauliString> executedSubsets;

    /** How one needed window of a basis is answered. */
    struct WindowBinding
    {
        /** The needed window string (full width). */
        PauliString window;

        /** Index into executedSubsets of the covering subset. */
        std::size_t coverIndex = 0;

        /** Global qubit positions of the window's support. */
        std::vector<int> globalPositions;

        /**
         * Positions of those qubits within the covering subset's
         * compact outcome bits (for marginalization).
         */
        std::vector<int> marginalPositions;
    };

    /** Window bindings per basis (aligned with bases.bases). */
    std::vector<std::vector<WindowBinding>> basisWindows;

    /** Human-readable plan summary. */
    std::string summary() const;
};

/**
 * Build the spatial plan: commutation-reduce the Hamiltonian,
 * aggregate windows over all raw terms (and, in Merge mode, over
 * the merged bases, so every basis window has a cover), reduce
 * them, and bind every basis window to its covering executed subset.
 *
 * Panics if a basis window has no cover — the dominance reduction
 * guarantees one exists, so absence is a library bug.
 */
SpatialPlan buildSpatialPlan(const Hamiltonian &hamiltonian,
                             int window_size,
                             BasisMode basis_mode = BasisMode::Cover);

/** Circuit counts behind Fig. 12, for one workload. */
struct SubsetCounts
{
    /** Baseline Pauli circuits (cover-reduced bases). */
    std::size_t baselineBases = 0;

    /** JigSaw subsets: per-basis windows, no cross-basis sharing. */
    std::size_t jigsawSubsets = 0;

    /** VarSaw subsets: the reduced aggregate. */
    std::size_t varsawSubsets = 0;

    /** jigsawSubsets / baselineBases (orange column, JigSaw). */
    double jigsawRatio() const;

    /** varsawSubsets / baselineBases (orange column, VarSaw). */
    double varsawRatio() const;

    /** jigsawSubsets / varsawSubsets (green line). */
    double reductionRatio() const;
};

/** Compute the Fig. 12 counts for a Hamiltonian. */
SubsetCounts countSubsets(const Hamiltonian &hamiltonian,
                          int window_size);

} // namespace varsaw

#endif // VARSAW_CORE_SPATIAL_HH
