/**
 * @file
 * Selective term mitigation (the Section 7.3 extension: "employ
 * measurement error mitigation ... only to specific terms in the
 * Hamiltonian - i.e., only employ mitigation where it matters
 * most").
 *
 * The Hamiltonian is split by coefficient mass: the heavy fraction
 * flows through the full VarSaw pipeline, the light remainder is
 * measured unmitigated. Sweeping the fraction trades circuit cost
 * against accuracy.
 */

#ifndef VARSAW_CORE_SELECTIVE_HH
#define VARSAW_CORE_SELECTIVE_HH

#include <memory>
#include <utility>

#include "core/varsaw.hh"
#include "pauli/hamiltonian.hh"
#include "vqa/estimator.hh"

namespace varsaw {

/**
 * Split a Hamiltonian into (heavy, light) parts: terms sorted by
 * descending |coefficient|, the heavy part takes terms until it
 * holds at least @p heavy_fraction of the total |coefficient| mass
 * (the identity offset always goes to the heavy part).
 *
 * @param heavy_fraction In [0, 1]; 1 puts everything in heavy.
 */
std::pair<Hamiltonian, Hamiltonian>
splitByCoefficientMass(const Hamiltonian &hamiltonian,
                       double heavy_fraction);

/**
 * Energy estimator mitigating only the heavy part of the
 * Hamiltonian with VarSaw; the light part is measured through the
 * plain baseline pipeline. The reported energy is the sum.
 *
 * Both halves are built from config.runtime: with
 * config.runtime.service set they become two sessions of that
 * shared ExecutionService — one worker pool and one result cache
 * across the halves, so work they have in common (e.g. the
 * fully-measured Z-basis Global both pipelines submit at equal
 * shots) executes once. Energies are bit-identical either way.
 */
class SelectiveVarsawEstimator : public EnergyEstimator
{
  public:
    /**
     * @param hamiltonian    The full problem Hamiltonian.
     * @param ansatz         Parameterized preparation circuit.
     * @param executor       Backend (counts circuit cost).
     * @param config         VarSaw tunables for the heavy part.
     * @param heavy_fraction Coefficient-mass fraction mitigated.
     * @param light_shots    Shots per unmitigated light basis.
     */
    SelectiveVarsawEstimator(const Hamiltonian &hamiltonian,
                             const Circuit &ansatz,
                             Executor &executor,
                             const VarsawConfig &config,
                             double heavy_fraction,
                             std::uint64_t light_shots);

    double estimate(const std::vector<double> &params) override;

    void onIterationBoundary() override;

    std::string name() const override { return "varsaw-selective"; }

    /** The mitigated (heavy) sub-Hamiltonian. */
    const Hamiltonian &heavy() const { return heavy_; }

    /** The unmitigated (light) sub-Hamiltonian. */
    const Hamiltonian &light() const { return light_; }

    /** The inner VarSaw estimator (plan / scheduler access). */
    const VarsawEstimator &varsaw() const { return *varsaw_; }

  private:
    Hamiltonian heavy_;
    Hamiltonian light_;
    std::unique_ptr<VarsawEstimator> varsaw_;
    std::unique_ptr<BaselineEstimator> baseline_;
};

} // namespace varsaw

#endif // VARSAW_CORE_SELECTIVE_HH
