#include "core/cost_model.hh"

#include <utility>

namespace varsaw {

double
CostModel::pauliTerms(double qubits)
{
    return 0.01 * qubits * qubits * qubits * qubits;
}

double
CostModel::traditionalCircuits(double qubits)
{
    return pauliTerms(qubits);
}

double
CostModel::jigsawCircuits(double qubits)
{
    const double p = pauliTerms(qubits);
    return p + p * (qubits - 1.0);
}

double
CostModel::varsawSubsetBound(double qubits)
{
    return 9.0 * (qubits - 1.0);
}

double
CostModel::varsawCircuits(double qubits, double k)
{
    return k * pauliTerms(qubits) + varsawSubsetBound(qubits);
}

std::vector<CostModelRow>
sweepCostModel(const std::vector<double> &qubit_points,
               const std::vector<double> &ks)
{
    std::vector<CostModelRow> rows;
    rows.reserve(qubit_points.size());
    for (double q : qubit_points) {
        CostModelRow row;
        row.qubits = q;
        row.traditional = CostModel::traditionalCircuits(q);
        row.jigsaw = CostModel::jigsawCircuits(q);
        row.varsaw.reserve(ks.size());
        for (double k : ks)
            row.varsaw.push_back(CostModel::varsawCircuits(q, k));
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace varsaw
