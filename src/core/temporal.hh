/**
 * @file
 * VarSaw's temporal optimization: Selective Execution of Globals.
 *
 * Globals (full measurements) are expensive and noisy; adjacent VQA
 * iterations produce nearly identical distributions, so VarSaw runs
 * Globals only every k-th iteration and hill-climbs k (Fig. 11):
 * on a check iteration the mitigated result is computed both from
 * the stale-Global chain and from a fresh Global; if the stale
 * chain is no worse (its energy is not higher), sparsity doubles;
 * otherwise the fresh result is adopted and sparsity halves.
 */

#ifndef VARSAW_CORE_TEMPORAL_HH
#define VARSAW_CORE_TEMPORAL_HH

#include <cstdint>
#include <string>

namespace varsaw {

/** Hill-climbing scheduler for Global executions. */
class GlobalScheduler
{
  public:
    /** Temporal operating mode. */
    enum class Mode
    {
        /** Fresh Globals every iteration (spatial-only VarSaw,
         *  "VarSaw w/o global sparsity"). */
        NoSparsity,
        /** One Global at iteration 0, never again ("Max-Sparsity"
         *  in Fig. 9 / Table 5). */
        MaxSparsity,
        /** The paper's feedback scheme (default). */
        Adaptive,
    };

    /** Scheduler tunables. */
    struct Config
    {
        Mode mode = Mode::Adaptive;
        int initialInterval = 2; //!< Fig. 11 starts at 2 cycles
        int minInterval = 1;
        int maxInterval = 128;
    };

    explicit GlobalScheduler(const Config &config);

    /** Whether iteration @p tick must execute fresh Globals. */
    bool shouldRunGlobal(std::uint64_t tick) const;

    /**
     * Record the outcome of a check iteration's comparison: widen
     * the interval when the stale chain was no worse than the fresh
     * Globals, narrow it otherwise. Call before noteGlobalRun() so
     * the next Global is scheduled with the updated interval.
     *
     * @param stale_no_worse Stale-chain energy <= fresh energy.
     */
    void adjustInterval(bool stale_no_worse);

    /**
     * Record that Globals were executed at iteration @p tick and
     * schedule the next Global interval() iterations later.
     */
    void noteGlobalRun(std::uint64_t tick);

    /** Current sparsity interval k. */
    int interval() const { return interval_; }

    /** Number of Global (check) iterations so far. */
    std::uint64_t globalsRun() const { return globalsRun_; }

    /** Total iterations observed (ticks passed to bookkeeping). */
    std::uint64_t ticksSeen() const { return ticksSeen_; }

    /** Note that iteration @p tick happened (for the fraction). */
    void recordTick(std::uint64_t tick);

    /** Fraction of iterations that executed Globals. */
    double globalFraction() const;

    /** Mode name for reports. */
    static const char *modeName(Mode mode);

  private:
    Config config_;
    int interval_;
    std::uint64_t nextGlobal_ = 0;
    std::uint64_t globalsRun_ = 0;
    std::uint64_t ticksSeen_ = 0;
};

} // namespace varsaw

#endif // VARSAW_CORE_TEMPORAL_HH
