#include "core/varsaw.hh"

#include "mitigation/jigsaw.hh"
#include "util/logging.hh"

#include <utility>

namespace varsaw {

VarsawEstimator::VarsawEstimator(const Hamiltonian &hamiltonian,
                                 const Circuit &ansatz,
                                 Executor &executor,
                                 const VarsawConfig &config)
    : hamiltonian_(hamiltonian),
      prep_(std::make_shared<const Circuit>(ansatz)),
      runtime_(makeSubmitter(executor, config.runtime)),
      config_(config),
      plan_(buildSpatialPlan(hamiltonian, config.subsetSize,
                             config.basisMode)),
      scheduler_(config.temporal)
{
    // The spatial plan and bases are fixed, so every measurement
    // suffix is built once; each tick submits them against the
    // shared ansatz prep instead of cloning the prepared circuit
    // per subset/basis.
    subsetSuffixes_.reserve(plan_.executedSubsets.size());
    for (const auto &subset : plan_.executedSubsets)
        subsetSuffixes_.push_back(makeSubsetSuffix(subset));
    globalSuffixes_.reserve(plan_.bases.bases.size());
    for (const auto &basis : plan_.bases.bases)
        globalSuffixes_.push_back(makeGlobalSuffix(basis));
}

void
VarsawEstimator::resetTemporalState()
{
    prior_.clear();
    lastResult_.clear();
    havePrior_ = false;
    haveResult_ = false;
    iteration_ = 0;
    iterationStarted_ = false;
    probesThisIteration_ = 0;
    externallyPaced_ = false;
    evaluations_ = 0;
    scheduler_ = GlobalScheduler(config_.temporal);
}

void
VarsawEstimator::advanceIteration()
{
    if (iterationStarted_)
        ++iteration_;
    iterationStarted_ = true;
    probesThisIteration_ = 0;
    if (haveResult_) {
        prior_ = lastResult_;
        havePrior_ = true;
    }
    scheduler_.recordTick(iteration_);
}

void
VarsawEstimator::onIterationBoundary()
{
    externallyPaced_ = true;
    advanceIteration();
}

std::vector<std::vector<LocalPmf>>
VarsawEstimator::collectLocals(const std::vector<double> &params)
{
    // Execute each reduced subset exactly once this tick, as one
    // parallel batch of suffix jobs over the shared prep.
    Batch batch;
    batch.reserve(subsetSuffixes_.size());
    for (const auto &suffix : subsetSuffixes_)
        batch.addPrefixed(prep_, suffix, params,
                          config_.subsetShots);
    const std::vector<Pmf> subset_pmfs = runtime_->run(batch);

    // Answer every basis window from the shared results.
    std::vector<std::vector<LocalPmf>> locals(
        plan_.basisWindows.size());
    for (std::size_t b = 0; b < plan_.basisWindows.size(); ++b) {
        locals[b].reserve(plan_.basisWindows[b].size());
        for (const auto &binding : plan_.basisWindows[b]) {
            LocalPmf local;
            local.positions = binding.globalPositions;
            local.pmf = subset_pmfs[binding.coverIndex]
                .marginal(binding.marginalPositions);
            locals[b].push_back(std::move(local));
        }
    }
    return locals;
}

std::vector<Pmf>
VarsawEstimator::reconstructAll(
    const std::vector<Pmf> &priors,
    const std::vector<std::vector<LocalPmf>> &locals) const
{
    std::vector<Pmf> out;
    out.reserve(priors.size());
    for (std::size_t b = 0; b < priors.size(); ++b)
        out.push_back(bayesianReconstruct(
            priors[b], locals[b], config_.reconstructionPasses));
    return out;
}

std::vector<Pmf>
VarsawEstimator::runGlobals(const std::vector<double> &params)
{
    Batch batch;
    batch.reserve(globalSuffixes_.size());
    for (const auto &suffix : globalSuffixes_)
        batch.addPrefixed(prep_, suffix, params,
                          config_.globalShots);
    std::vector<Pmf> globals = runtime_->run(batch);
    if (config_.mbm)
        for (auto &pmf : globals)
            pmf = config_.mbm->apply(pmf);
    return globals;
}

double
VarsawEstimator::estimate(const std::vector<double> &params)
{
    // Without a driver pacing iterations, every evaluation is its
    // own iteration (the pre-hook behaviour tests rely on).
    if (!externallyPaced_ || !iterationStarted_)
        advanceIteration();
    ++evaluations_;
    const bool first_probe = probesThisIteration_ == 0;
    ++probesThisIteration_;

    auto locals = collectLocals(params);

    // Globals run at most once per iteration, on its first probe.
    const bool run_global = first_probe &&
        (!havePrior_ || scheduler_.shouldRunGlobal(iteration_));

    std::vector<Pmf> mitigated;
    if (run_global) {
        auto fresh_globals = runGlobals(params);
        auto fresh = reconstructAll(fresh_globals, locals);
        const double fresh_energy = energyFromBasisPmfs(
            hamiltonian_, plan_.bases, fresh);

        // The stale-vs-fresh check belongs to the Adaptive feedback
        // scheme only. Running it unconditionally would min-select
        // between two noisy estimates every Global iteration — a
        // ratchet that drags the reported energy below the physical
        // spectrum over long runs (observed on noise-free CH4-6).
        if (havePrior_ &&
            config_.temporal.mode ==
                GlobalScheduler::Mode::Adaptive) {
            // Check iteration: compute the result both ways and
            // hill-climb the sparsity (Section 4.2).
            auto stale = reconstructAll(prior_, locals);
            const double stale_energy = energyFromBasisPmfs(
                hamiltonian_, plan_.bases, stale);
            const bool stale_no_worse =
                stale_energy <= fresh_energy;
            scheduler_.adjustInterval(stale_no_worse);
            mitigated = stale_no_worse ? std::move(stale)
                                       : std::move(fresh);
        } else {
            mitigated = std::move(fresh);
        }
        scheduler_.noteGlobalRun(iteration_);
        // Later probes of this iteration reconstruct from the
        // checked result rather than the superseded prior.
        prior_ = mitigated;
        havePrior_ = true;
    } else {
        // Stale chain: this iteration's shared prior.
        mitigated = reconstructAll(prior_, locals);
    }

    const double energy = energyFromBasisPmfs(
        hamiltonian_, plan_.bases, mitigated);
    lastResult_ = std::move(mitigated);
    haveResult_ = true;
    return energy;
}

} // namespace varsaw
