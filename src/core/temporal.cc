#include "core/temporal.hh"

#include <algorithm>

#include "util/logging.hh"

namespace varsaw {

GlobalScheduler::GlobalScheduler(const Config &config)
    : config_(config), interval_(config.initialInterval)
{
    if (config.minInterval < 1 || config.initialInterval < 1 ||
        config.maxInterval < config.minInterval)
        panic("GlobalScheduler: invalid interval configuration");
}

bool
GlobalScheduler::shouldRunGlobal(std::uint64_t tick) const
{
    switch (config_.mode) {
      case Mode::NoSparsity:
        return true;
      case Mode::MaxSparsity:
        return tick == 0;
      case Mode::Adaptive:
        return tick >= nextGlobal_;
    }
    return true;
}

void
GlobalScheduler::adjustInterval(bool stale_no_worse)
{
    if (config_.mode != Mode::Adaptive)
        return;
    if (stale_no_worse)
        interval_ = std::min(interval_ * 2, config_.maxInterval);
    else
        interval_ = std::max(interval_ / 2, config_.minInterval);
}

void
GlobalScheduler::noteGlobalRun(std::uint64_t tick)
{
    ++globalsRun_;
    if (config_.mode == Mode::Adaptive)
        nextGlobal_ = tick + static_cast<std::uint64_t>(interval_);
}

void
GlobalScheduler::recordTick(std::uint64_t tick)
{
    (void)tick;
    ++ticksSeen_;
}

double
GlobalScheduler::globalFraction() const
{
    if (ticksSeen_ == 0)
        return 0.0;
    return static_cast<double>(globalsRun_) /
        static_cast<double>(ticksSeen_);
}

const char *
GlobalScheduler::modeName(Mode mode)
{
    switch (mode) {
      case Mode::NoSparsity:  return "no-sparsity";
      case Mode::MaxSparsity: return "max-sparsity";
      case Mode::Adaptive:    return "adaptive";
    }
    return "?";
}

} // namespace varsaw
