#include "core/spatial.hh"

#include <sstream>
#include <utility>

#include "util/logging.hh"

namespace varsaw {

std::string
SpatialPlan::summary() const
{
    std::size_t bindings = 0;
    for (const auto &bw : basisWindows)
        bindings += bw.size();
    std::ostringstream out;
    out << "spatial plan: " << bases.bases.size() << " bases, "
        << executedSubsets.size() << " executed subsets (window "
        << windowSize << "), " << bindings << " window bindings";
    return out.str();
}

SpatialPlan
buildSpatialPlan(const Hamiltonian &hamiltonian, int window_size,
                 BasisMode basis_mode)
{
    SpatialPlan plan;
    plan.windowSize = window_size;

    const auto strings = hamiltonian.strings();
    plan.bases = reduceBases(strings, basis_mode);

    // VarSaw order of operations (Fig. 10): subset every raw term,
    // aggregate, then commutativity-reduce. Under Merge grouping the
    // bases are unions of terms, so their windows join the pool too
    // (in Cover mode they are raw terms already, deduped for free).
    auto pool = aggregateSubsets(strings, window_size);
    auto basis_windows = aggregateSubsets(plan.bases.bases,
                                          window_size);
    pool.insert(pool.end(), basis_windows.begin(),
                basis_windows.end());
    plan.executedSubsets = reduceSubsets(pool);

    SubsetCover cover(plan.executedSubsets);

    plan.basisWindows.resize(plan.bases.bases.size());
    for (std::size_t b = 0; b < plan.bases.bases.size(); ++b) {
        const auto windows =
            windowSubsets(plan.bases.bases[b], window_size);
        auto &bindings = plan.basisWindows[b];
        bindings.reserve(windows.size());
        for (const auto &w : windows) {
            auto idx = cover.findCover(w);
            if (!idx) {
                // Bases are raw term strings, so every window is in
                // the aggregate pool; the reduction keeps a dominator
                // for everything it drops. No cover means a bug.
                panic("buildSpatialPlan: window " +
                      w.toSubsetString() + " has no covering subset");
            }
            SpatialPlan::WindowBinding binding;
            binding.window = w;
            binding.coverIndex = *idx;
            binding.globalPositions = w.support();

            const auto cover_support =
                plan.executedSubsets[*idx].support();
            binding.marginalPositions.reserve(
                binding.globalPositions.size());
            for (int q : binding.globalPositions) {
                int pos = -1;
                for (std::size_t i = 0; i < cover_support.size(); ++i)
                    if (cover_support[i] == q) {
                        pos = static_cast<int>(i);
                        break;
                    }
                if (pos < 0)
                    panic("buildSpatialPlan: cover support does not "
                          "contain window qubit");
                binding.marginalPositions.push_back(pos);
            }
            bindings.push_back(std::move(binding));
        }
    }
    return plan;
}

double
SubsetCounts::jigsawRatio() const
{
    return baselineBases == 0 ? 0.0
        : static_cast<double>(jigsawSubsets) /
          static_cast<double>(baselineBases);
}

double
SubsetCounts::varsawRatio() const
{
    return baselineBases == 0 ? 0.0
        : static_cast<double>(varsawSubsets) /
          static_cast<double>(baselineBases);
}

double
SubsetCounts::reductionRatio() const
{
    return varsawSubsets == 0 ? 0.0
        : static_cast<double>(jigsawSubsets) /
          static_cast<double>(varsawSubsets);
}

SubsetCounts
countSubsets(const Hamiltonian &hamiltonian, int window_size)
{
    const auto strings = hamiltonian.strings();
    const BasisReduction reduction = coverReduce(strings);

    SubsetCounts counts;
    counts.baselineBases = reduction.bases.size();
    counts.jigsawSubsets =
        jigsawSubsets(reduction.bases, window_size).size();
    counts.varsawSubsets =
        reduceSubsets(aggregateSubsets(strings, window_size)).size();
    return counts;
}

} // namespace varsaw
