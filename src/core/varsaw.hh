/**
 * @file
 * The VarSaw energy estimator: spatial + temporal optimization of
 * JigSaw measurement-error mitigation for VQAs (Section 4).
 *
 * Per objective evaluation ("tick"):
 *  1. execute the spatially-reduced subset set once; every basis's
 *     window marginals are answered from these shared results
 *     through the covering relation;
 *  2. per basis, reconstruct a mitigated PMF either from a fresh
 *     Global (only on scheduler-chosen ticks) or from the previous
 *     tick's mitigated PMF (the stale chain);
 *  3. on check ticks compute both variants, keep the better energy,
 *     and hill-climb the Global interval.
 */

#ifndef VARSAW_CORE_VARSAW_HH
#define VARSAW_CORE_VARSAW_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/spatial.hh"
#include "core/temporal.hh"
#include "mitigation/bayesian.hh"
#include "mitigation/executor.hh"
#include "mitigation/mbm.hh"
#include "pauli/hamiltonian.hh"
#include "runtime/batch_executor.hh"
#include "runtime/submitter.hh"
#include "sim/circuit.hh"
#include "vqa/estimator.hh"

namespace varsaw {

/** VarSaw tunables. */
struct VarsawConfig
{
    /** Subset (window) size; 2 is optimal (Appendix A). */
    int subsetSize = 2;

    /** Shots per subset circuit. */
    std::uint64_t subsetShots = 2048;

    /** Shots per Global circuit. */
    std::uint64_t globalShots = 4096;

    /** Bayesian reconstruction sweeps. */
    int reconstructionPasses = 1;

    /** Commutation reduction used for the measurement bases. */
    BasisMode basisMode = BasisMode::Cover;

    /** Temporal (Global sparsity) configuration. */
    GlobalScheduler::Config temporal;

    /**
     * Optionally stack IBM-style matrix-based mitigation on the
     * Global PMFs before reconstruction (Fig. 18). Disabled when
     * unset.
     */
    std::optional<MbmCalibration> mbm;

    /** Batch runtime tunables (threads, result cache). */
    RuntimeConfig runtime;
};

/** The VarSaw estimator (the paper's proposed system). */
class VarsawEstimator : public EnergyEstimator
{
  public:
    /**
     * @param hamiltonian Problem Hamiltonian.
     * @param ansatz      Parameterized preparation circuit,
     *                    snapshotted at construction — later
     *                    changes to the caller's circuit do not
     *                    affect this estimator.
     * @param executor    Backend (counts the circuit cost).
     * @param config      VarSaw tunables.
     */
    VarsawEstimator(const Hamiltonian &hamiltonian,
                    const Circuit &ansatz, Executor &executor,
                    const VarsawConfig &config);

    double estimate(const std::vector<double> &params) override;

    /**
     * Advance to the next optimizer iteration: the most recent
     * mitigated result becomes the reconstruction prior for every
     * probe of the new iteration, and the Global schedule ticks
     * once. Called by VqeDriver; when never called (direct use,
     * tests), every estimate() is treated as its own iteration.
     */
    void onIterationBoundary() override;

    std::string name() const override { return "varsaw"; }

    /** The precomputed spatial plan. */
    const SpatialPlan &plan() const { return plan_; }

    /** The temporal scheduler (globals-run stats, interval). */
    const GlobalScheduler &scheduler() const { return scheduler_; }

    /** Objective evaluations performed so far. */
    std::uint64_t ticks() const { return evaluations_; }

    /** Optimizer iterations seen so far. */
    std::uint64_t iterations() const { return iteration_; }

    /** Reset temporal state (stale chain + scheduler + counters). */
    void resetTemporalState();

    /** The submitter (private runtime or shared-service session)
     * circuits are submitted through. */
    JobSubmitter &runtime() { return *runtime_; }
    const JobSubmitter &runtime() const { return *runtime_; }

  private:
    /** Build per-basis LocalPmfs from this tick's subset runs. */
    std::vector<std::vector<LocalPmf>>
    collectLocals(const std::vector<double> &params);

    /** Reconstruct all bases against the given priors. */
    std::vector<Pmf>
    reconstructAll(const std::vector<Pmf> &priors,
                   const std::vector<std::vector<LocalPmf>> &locals)
        const;

    /** Execute fresh Globals for every basis. */
    std::vector<Pmf> runGlobals(const std::vector<double> &params);

    /** Close the current iteration window and open the next. */
    void advanceIteration();

    const Hamiltonian &hamiltonian_;
    /** Construction-time ansatz snapshot, shared by every job. */
    std::shared_ptr<const Circuit> prep_;
    std::unique_ptr<JobSubmitter> runtime_;
    VarsawConfig config_;
    SpatialPlan plan_;
    GlobalScheduler scheduler_;
    /** Suffixes of the reduced subset set (fixed per estimator). */
    std::vector<Circuit> subsetSuffixes_;
    /** Per-basis Global suffixes (fixed per estimator). */
    std::vector<Circuit> globalSuffixes_;

    /** Reconstruction prior for all probes of this iteration. */
    std::vector<Pmf> prior_;
    bool havePrior_ = false;

    /** Most recent probe's mitigated PMFs (next iteration's prior). */
    std::vector<Pmf> lastResult_;
    bool haveResult_ = false;

    std::uint64_t iteration_ = 0;
    bool iterationStarted_ = false;
    int probesThisIteration_ = 0;
    bool externallyPaced_ = false;
    std::uint64_t evaluations_ = 0;
};

} // namespace varsaw

#endif // VARSAW_CORE_VARSAW_HH
