/**
 * @file
 * Umbrella header: include everything the public VarSaw API offers.
 *
 * Fine-grained headers remain available for faster builds; this is
 * the convenience include used by examples and downstream users.
 */

#ifndef VARSAW_VARSAW_HH
#define VARSAW_VARSAW_HH

// Utilities
#include "util/bitops.hh"
#include "util/counts.hh"
#include "util/csv.hh"
#include "util/logging.hh"
#include "util/pmf.hh"
#include "util/rng.hh"
#include "util/statistics.hh"
#include "util/table.hh"

// Pauli algebra
#include "pauli/commutation.hh"
#include "pauli/hamiltonian.hh"
#include "pauli/pauli_op.hh"
#include "pauli/pauli_string.hh"
#include "pauli/pauli_term.hh"
#include "pauli/subsetting.hh"

// Circuit simulation
#include "sim/circuit.hh"
#include "sim/density_matrix.hh"
#include "sim/gate.hh"
#include "sim/sim_engine.hh"
#include "sim/circuit_hash.hh"
#include "sim/job.hh"
#include "sim/state_cache.hh"
#include "sim/statevector.hh"

// Noise substrate
#include "noise/device_model.hh"
#include "noise/readout_error.hh"

// Execution runtime
#include "runtime/batch_executor.hh"
#include "runtime/job_ledger.hh"
#include "runtime/result_cache.hh"
#include "runtime/submitter.hh"
#include "runtime/thread_pool.hh"

// Shared execution service
#include "service/execution_service.hh"
#include "service/scheduler.hh"

// Mitigation substrate
#include "mitigation/bayesian.hh"
#include "mitigation/executor.hh"
#include "mitigation/jigsaw.hh"
#include "mitigation/m3.hh"
#include "mitigation/mbm.hh"
#include "mitigation/zne.hh"

// VQA substrate
#include "vqa/ansatz.hh"
#include "vqa/estimator.hh"
#include "vqa/optimizer.hh"
#include "vqa/qaoa.hh"
#include "vqa/vqe.hh"
#include "vqa/zne_estimator.hh"

// Workloads
#include "chem/exact_solver.hh"
#include "chem/maxcut.hh"
#include "chem/molecules.hh"
#include "chem/spin_models.hh"

// VarSaw core
#include "core/cost_model.hh"
#include "core/selective.hh"
#include "core/spatial.hh"
#include "core/temporal.hh"
#include "core/varsaw.hh"

#endif // VARSAW_VARSAW_HH
