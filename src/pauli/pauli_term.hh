/**
 * @file
 * A Pauli term: a real coefficient times a Pauli string.
 */

#ifndef VARSAW_PAULI_PAULI_TERM_HH
#define VARSAW_PAULI_PAULI_TERM_HH

#include "pauli/pauli_string.hh"

#include <utility>

namespace varsaw {

/**
 * One term of a Hamiltonian, c * P.
 *
 * Coefficients are real because every Hamiltonian handled here is
 * Hermitian and expanded in the (Hermitian) Pauli basis.
 */
struct PauliTerm
{
    PauliString string;
    double coefficient = 0.0;

    PauliTerm() = default;

    PauliTerm(PauliString s, double c)
        : string(std::move(s)), coefficient(c)
    {}

    /** Parse convenience: PauliTerm::of("ZZIZ", 0.5). */
    static PauliTerm
    of(const std::string &text, double c)
    {
        return PauliTerm(PauliString::parse(text), c);
    }
};

} // namespace varsaw

#endif // VARSAW_PAULI_PAULI_TERM_HH
