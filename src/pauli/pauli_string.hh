/**
 * @file
 * Bit-packed multi-qubit Pauli strings.
 *
 * A PauliString is the unit of everything in this library: a
 * Hamiltonian term's operator part, a measurement basis, and a
 * partial-measurement subset (where identity positions mean
 * "unmeasured"). Strings follow the paper's convention: character 0
 * of the text form is qubit 0 (leftmost).
 */

#ifndef VARSAW_PAULI_PAULI_STRING_HH
#define VARSAW_PAULI_PAULI_STRING_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "pauli/pauli_op.hh"

namespace varsaw {

/**
 * An n-qubit Pauli string, packed as X/Z bit masks (n <= 64).
 *
 * Supports the three relations the VarSaw pipeline is built on:
 *
 *  - qubit-wise compatibility (qwcCompatible): no position holds two
 *    different non-identity operators; compatible strings can be
 *    measured by one circuit;
 *  - covering (coveredBy): every non-identity position of this string
 *    matches the other string, i.e. measuring the other string also
 *    measures this one ("trivial commutation" in the paper);
 *  - merging (mergedWith): the union of two compatible strings.
 */
class PauliString
{
  public:
    PauliString() = default;

    /** All-identity string over @p num_qubits qubits. */
    explicit PauliString(int num_qubits);

    /**
     * Parse from text such as "ZZIZ" or "ZX--" (both 'I' and '-'
     * denote identity). Fatal on invalid characters.
     */
    static PauliString parse(const std::string &text);

    /** Construct directly from packed masks (advanced use). */
    static PauliString fromMasks(int num_qubits, std::uint64_t x_mask,
                                 std::uint64_t z_mask);

    /** Number of qubits the string spans. */
    int numQubits() const { return numQubits_; }

    /** Operator at qubit @p q. */
    PauliOp op(int q) const;

    /** Set the operator at qubit @p q. */
    void setOp(int q, PauliOp op);

    /** Packed X-component mask. */
    std::uint64_t xMask() const { return xMask_; }

    /** Packed Z-component mask. */
    std::uint64_t zMask() const { return zMask_; }

    /** Mask of non-identity positions. */
    std::uint64_t supportMask() const { return xMask_ | zMask_; }

    /** Number of non-identity positions. */
    int weight() const;

    /** Whether every position is the identity. */
    bool isIdentity() const { return supportMask() == 0; }

    /** Indices of non-identity positions, ascending. */
    std::vector<int> support() const;

    /**
     * Qubit-wise compatibility: no position where both strings are
     * non-identity and differ. Compatible strings share a measurement
     * basis circuit.
     */
    bool qwcCompatible(const PauliString &other) const;

    /**
     * Covering relation: this string is covered by @p parent if every
     * non-identity position of this string holds the same operator in
     * @p parent. A circuit measuring @p parent measures this string
     * for free (the paper's "trivial commutation").
     */
    bool coveredBy(const PauliString &parent) const;

    /**
     * Union of two qubit-wise compatible strings (the joint
     * measurement basis). Panics if the strings conflict.
     */
    PauliString mergedWith(const PauliString &other) const;

    /**
     * Restriction to a window: identity everywhere except positions
     * [start, start+len), which keep their operators.
     */
    PauliString restrictedTo(int start, int len) const;

    /**
     * Restriction to an arbitrary set of positions (identity
     * elsewhere).
     */
    PauliString restrictedTo(const std::vector<int> &positions) const;

    /**
     * True anti-commutation check in the full Pauli group:
     * strings anti-commute iff the symplectic product is odd.
     * (Qubit-wise compatibility implies commutation but not
     * conversely; the library exposes both.)
     */
    bool commutesWith(const PauliString &other) const;

    /** Text form with 'I' for identity, qubit 0 leftmost. */
    std::string toString() const;

    /**
     * Text form with '-' for identity, matching the subset-string
     * notation of the paper's figures (e.g. "ZX--").
     */
    std::string toSubsetString() const;

    bool operator==(const PauliString &other) const
    {
        return numQubits_ == other.numQubits_ &&
            xMask_ == other.xMask_ && zMask_ == other.zMask_;
    }

    bool operator!=(const PauliString &other) const
    {
        return !(*this == other);
    }

    /** Deterministic ordering (for stable grouping output). */
    bool operator<(const PauliString &other) const;

    /** Hash suitable for unordered containers. */
    std::size_t hash() const;

  private:
    std::uint64_t xMask_ = 0;
    std::uint64_t zMask_ = 0;
    int numQubits_ = 0;
};

/** std::hash adapter for PauliString. */
struct PauliStringHash
{
    std::size_t
    operator()(const PauliString &p) const
    {
        return p.hash();
    }
};

} // namespace varsaw

#endif // VARSAW_PAULI_PAULI_STRING_HH
