/**
 * @file
 * Pauli-basis Hamiltonians.
 *
 * A Hamiltonian is a linear combination of Pauli strings plus a real
 * identity offset. The VQA objective each iteration is the
 * expectation of this operator in the ansatz state; the lowest
 * eigenvalue is the problem's ground-state energy.
 */

#ifndef VARSAW_PAULI_HAMILTONIAN_HH
#define VARSAW_PAULI_HAMILTONIAN_HH

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pauli/pauli_term.hh"

namespace varsaw {

/** A Hermitian operator expressed in the Pauli basis. */
class Hamiltonian
{
  public:
    Hamiltonian() = default;

    /** Empty Hamiltonian over @p num_qubits qubits. */
    explicit Hamiltonian(int num_qubits, std::string name = "");

    /** Number of qubits. */
    int numQubits() const { return numQubits_; }

    /** Human-readable workload name (e.g. "CH4-6"). */
    const std::string &name() const { return name_; }

    /** Set the workload name. */
    void setName(std::string name) { name_ = std::move(name); }

    /**
     * Add a term. Identity strings are folded into the constant
     * offset instead of being stored (they need no measurement).
     * Adding an existing string accumulates onto its coefficient.
     */
    void addTerm(const PauliString &string, double coefficient);

    /** Parse-and-add convenience. */
    void addTerm(const std::string &text, double coefficient);

    /** Non-identity terms. */
    const std::vector<PauliTerm> &terms() const { return terms_; }

    /** Number of non-identity Pauli terms. */
    std::size_t numTerms() const { return terms_.size(); }

    /** Constant (identity) offset. */
    double identityOffset() const { return identityOffset_; }

    /**
     * Energy given per-term expectation values:
     * offset + sum_i coeff_i * term_expectations[i], with
     * term_expectations aligned with terms().
     */
    double energy(const std::vector<double> &term_expectations) const;

    /** Sum of absolute coefficients (a crude spectral bound). */
    double coefficientL1Norm() const;

    /**
     * A guaranteed lower bound on the ground energy:
     * offset - coefficientL1Norm().
     */
    double energyLowerBound() const;

    /** Just the Pauli strings of all terms, in term order. */
    std::vector<PauliString> strings() const;

    /** Multi-line text rendering (term per line). */
    std::string toString() const;

  private:
    int numQubits_ = 0;
    std::string name_;
    double identityOffset_ = 0.0;
    std::vector<PauliTerm> terms_;
    // String -> index into terms_, so construction stays O(T) even
    // for the 32,699-term Cr2 workload.
    std::unordered_map<PauliString, std::size_t, PauliStringHash>
        termIndex_;
};

} // namespace varsaw

#endif // VARSAW_PAULI_HAMILTONIAN_HH
