/**
 * @file
 * Measurement subsetting: sliding-window partial measurements.
 *
 * JigSaw measures a circuit's qubits a small window at a time; the
 * window's Pauli operators (taken from the measurement basis) define
 * a partial-measurement string such as "ZX--". This file provides:
 *
 *  - window generation for a single basis (JigSaw's per-circuit
 *    subsetting),
 *  - aggregate generation across all Hamiltonian terms (VarSaw's
 *    pre-reduction pool, Fig. 10 right),
 *  - the VarSaw spatial reduction: deduplicate + eliminate subsets
 *    dominated (covered) by another subset (Fig. 6, Eq. 3 -> Eq. 4),
 *  - cover lookup: find which executed subset answers a needed
 *    window (exact match or dominating superset).
 */

#ifndef VARSAW_PAULI_SUBSETTING_HH
#define VARSAW_PAULI_SUBSETTING_HH

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "pauli/pauli_string.hh"

namespace varsaw {

/**
 * Sliding-window subsets of one measurement-basis string.
 *
 * For an n-qubit basis and window size m there are n-m+1 windows;
 * each yields the basis restricted to that window. All-identity
 * windows are dropped (they require no measurement), and duplicate
 * restrictions within this basis are emitted once (e.g. a basis
 * "IZII" yields "-Z--" from two windows).
 *
 * @param basis       Full-width measurement basis.
 * @param window_size Subset size m (>= 1, <= numQubits).
 */
std::vector<PauliString>
windowSubsets(const PauliString &basis, int window_size);

/**
 * JigSaw's subset workload for a list of basis circuits: the
 * concatenation of windowSubsets() per basis, with *no* cross-basis
 * deduplication (JigSaw is application-agnostic; each circuit's
 * subsets are generated and executed independently).
 */
std::vector<PauliString>
jigsawSubsets(const std::vector<PauliString> &bases, int window_size);

/**
 * VarSaw's pre-reduction pool: window subsets of *every* raw
 * Hamiltonian term string, concatenated (duplicates included; the
 * reduction removes them).
 */
std::vector<PauliString>
aggregateSubsets(const std::vector<PauliString> &strings,
                 int window_size);

/**
 * VarSaw spatial reduction: drop duplicates, then drop any subset
 * covered by another surviving subset (dominance elimination).
 * Output is sorted deterministically.
 *
 * Reproduces Fig. 6: the 30 raw windows of the 10-term Hamiltonian
 * reduce to the 9 strings of Eq. 4.
 */
std::vector<PauliString>
reduceSubsets(const std::vector<PauliString> &subsets);

/**
 * Index over executed subsets answering "which executed circuit
 * covers this needed window?" — the runtime half of the spatial
 * optimization: a window's local PMF is the covering subset's
 * marginal.
 */
class SubsetCover
{
  public:
    /** Build the index over the executed subset strings. */
    explicit SubsetCover(std::vector<PauliString> executed);

    /** The executed subsets, in index order. */
    const std::vector<PauliString> &executed() const
    {
        return executed_;
    }

    /**
     * Find an executed subset covering @p needed (identity positions
     * of @p needed are wildcards). Exact matches are found in O(1);
     * otherwise the smallest-weight covering subset is returned.
     *
     * @return Index into executed(), or std::nullopt if none covers.
     */
    std::optional<std::size_t> findCover(const PauliString &needed) const;

  private:
    std::vector<PauliString> executed_;
    // Exact-match index from subset string to executed index.
    std::unordered_map<PauliString, std::size_t, PauliStringHash> exact_;
};

} // namespace varsaw

#endif // VARSAW_PAULI_SUBSETTING_HH
