#include "pauli/hamiltonian.hh"

#include <cmath>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "util/logging.hh"

namespace varsaw {

Hamiltonian::Hamiltonian(int num_qubits, std::string name)
    : numQubits_(num_qubits), name_(std::move(name))
{
    if (num_qubits < 1 || num_qubits > 64)
        panic("Hamiltonian: qubit count must be in [1, 64]");
}

void
Hamiltonian::addTerm(const PauliString &string, double coefficient)
{
    if (string.numQubits() != numQubits_)
        panic("Hamiltonian::addTerm: string width mismatch");
    if (string.isIdentity()) {
        identityOffset_ += coefficient;
        return;
    }
    auto [it, inserted] = termIndex_.try_emplace(string, terms_.size());
    if (!inserted) {
        terms_[it->second].coefficient += coefficient;
        return;
    }
    terms_.emplace_back(string, coefficient);
}

void
Hamiltonian::addTerm(const std::string &text, double coefficient)
{
    addTerm(PauliString::parse(text), coefficient);
}

double
Hamiltonian::energy(const std::vector<double> &term_expectations) const
{
    if (term_expectations.size() != terms_.size())
        panic("Hamiltonian::energy: expectation vector size mismatch");
    double e = identityOffset_;
    for (std::size_t i = 0; i < terms_.size(); ++i)
        e += terms_[i].coefficient * term_expectations[i];
    return e;
}

double
Hamiltonian::coefficientL1Norm() const
{
    double norm = 0.0;
    for (const auto &term : terms_)
        norm += std::abs(term.coefficient);
    return norm;
}

double
Hamiltonian::energyLowerBound() const
{
    return identityOffset_ - coefficientL1Norm();
}

std::vector<PauliString>
Hamiltonian::strings() const
{
    std::vector<PauliString> out;
    out.reserve(terms_.size());
    for (const auto &term : terms_)
        out.push_back(term.string);
    return out;
}

std::string
Hamiltonian::toString() const
{
    std::ostringstream out;
    out << name_ << " (" << numQubits_ << " qubits, "
        << terms_.size() << " Pauli terms";
    if (identityOffset_ != 0.0)
        out << ", offset " << identityOffset_;
    out << ")\n";
    for (const auto &term : terms_)
        out << "  " << term.coefficient << " * "
            << term.string.toString() << "\n";
    return out.str();
}

} // namespace varsaw
