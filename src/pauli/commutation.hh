/**
 * @file
 * Qubit-wise commutation analysis and measurement-basis reduction.
 *
 * Two reductions are provided:
 *
 *  - coverReduce(): the paper's "trivial qubit commutation"
 *    (Fig. 6, Eq. 2): a term is eliminated when it is covered by
 *    another term already present (I acting as wildcard). This is
 *    the baseline used throughout the evaluation.
 *  - groupQubitWise(): greedy tensor-product-basis grouping that
 *    also *merges* compatible strings into joint bases (as done by
 *    OpenFermion / PyQuil). Provided as the more aggressive variant
 *    the paper cites but scopes out; used in ablation benches.
 */

#ifndef VARSAW_PAULI_COMMUTATION_HH
#define VARSAW_PAULI_COMMUTATION_HH

#include <cstddef>
#include <vector>

#include "pauli/pauli_string.hh"
#include "pauli/pauli_term.hh"

namespace varsaw {

/**
 * Result of a measurement-basis reduction: one measurement circuit
 * per basis, with every input term assigned to the basis that
 * measures it.
 */
struct BasisReduction
{
    /** Measurement bases (one circuit each). */
    std::vector<PauliString> bases;

    /** termToBasis[i] = index into bases measuring input term i. */
    std::vector<std::size_t> termToBasis;

    /** Indices of input terms assigned to each basis. */
    std::vector<std::vector<std::size_t>> basisTerms;
};

/**
 * The paper's trivial-commutation reduction: keep a term's string as
 * a basis unless it is covered by an already-kept term string.
 *
 * Strings are processed in descending weight (ties broken by the
 * deterministic PauliString ordering) so potential parents are kept
 * before the strings they cover. Reproduces Eq. 2 of Fig. 6
 * (10 terms -> 7 bases).
 */
BasisReduction coverReduce(const std::vector<PauliString> &strings);

/**
 * Greedy qubit-wise-commutation grouping with merging: first-fit of
 * descending-weight strings into joint bases; a string joins the
 * first basis it is compatible with and the basis template becomes
 * the union. At least as strong as coverReduce.
 */
BasisReduction groupQubitWise(const std::vector<PauliString> &strings);

/** Which commutation reduction the measurement pipeline uses. */
enum class BasisMode
{
    /** The paper's trivial covering reduction (default). */
    Cover,
    /** Greedy merge grouping (OpenFermion/PyQuil style; used for
     *  the TFIM experiments where bases collapse to 2 circuits). */
    Merge,
};

/** Dispatch to coverReduce or groupQubitWise by mode. */
BasisReduction reduceBases(const std::vector<PauliString> &strings,
                           BasisMode mode);

/**
 * Number of strings in @p family (excluding @p p itself) that can
 * measure @p p, i.e. strings that cover p. Reproduces the arrow
 * counts of Fig. 7 (III -> 26, IIZ -> 8, IZZ -> 2, ZZZ -> 0 over the
 * 27 X/Z/I 3-qubit strings).
 */
int countCoveringParents(const PauliString &p,
                         const std::vector<PauliString> &family);

/**
 * Enumerate all Pauli strings over @p num_qubits qubits drawing
 * operators from @p alphabet (e.g. {I, X, Z} for Fig. 7's 27-string
 * family). Intended for small n only.
 */
std::vector<PauliString>
enumerateStrings(int num_qubits, const std::vector<PauliOp> &alphabet);

} // namespace varsaw

#endif // VARSAW_PAULI_COMMUTATION_HH
