#include "pauli/pauli_string.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace varsaw {

PauliString::PauliString(int num_qubits) : numQubits_(num_qubits)
{
    if (num_qubits < 0 || num_qubits > 64)
        panic("PauliString: qubit count must be in [0, 64]");
}

PauliString
PauliString::parse(const std::string &text)
{
    PauliString p(static_cast<int>(text.size()));
    for (std::size_t q = 0; q < text.size(); ++q) {
        if (!isPauliChar(text[q]))
            fatal("PauliString::parse: invalid character '" +
                  std::string(1, text[q]) + "' in \"" + text + "\"");
        p.setOp(static_cast<int>(q), pauliFromChar(text[q]));
    }
    return p;
}

PauliString
PauliString::fromMasks(int num_qubits, std::uint64_t x_mask,
                       std::uint64_t z_mask)
{
    PauliString p(num_qubits);
    const std::uint64_t valid =
        num_qubits == 64 ? ~0ull : ((1ull << num_qubits) - 1);
    if ((x_mask | z_mask) & ~valid)
        panic("PauliString::fromMasks: mask exceeds qubit count");
    p.xMask_ = x_mask;
    p.zMask_ = z_mask;
    return p;
}

PauliOp
PauliString::op(int q) const
{
    const int x = static_cast<int>((xMask_ >> q) & 1);
    const int z = static_cast<int>((zMask_ >> q) & 1);
    return pauliFromBits(x, z);
}

void
PauliString::setOp(int q, PauliOp op)
{
    if (q < 0 || q >= numQubits_)
        panic("PauliString::setOp: qubit index out of range");
    const std::uint64_t bit = 1ull << q;
    xMask_ = (xMask_ & ~bit) |
        (static_cast<std::uint64_t>(xBit(op)) << q);
    zMask_ = (zMask_ & ~bit) |
        (static_cast<std::uint64_t>(zBit(op)) << q);
}

int
PauliString::weight() const
{
    return popcount(supportMask());
}

std::vector<int>
PauliString::support() const
{
    std::vector<int> out;
    std::uint64_t m = supportMask();
    while (m) {
        const int q = std::countr_zero(m);
        out.push_back(q);
        m &= m - 1;
    }
    return out;
}

bool
PauliString::qwcCompatible(const PauliString &other) const
{
    // A conflict is a position where both strings are non-identity
    // and the (x, z) encodings differ.
    const std::uint64_t both = supportMask() & other.supportMask();
    const std::uint64_t diff =
        (xMask_ ^ other.xMask_) | (zMask_ ^ other.zMask_);
    return (both & diff) == 0;
}

bool
PauliString::coveredBy(const PauliString &parent) const
{
    // Every non-identity position of *this must hold the identical
    // operator in parent.
    const std::uint64_t mine = supportMask();
    const std::uint64_t diff =
        (xMask_ ^ parent.xMask_) | (zMask_ ^ parent.zMask_);
    return (mine & diff) == 0;
}

PauliString
PauliString::mergedWith(const PauliString &other) const
{
    if (!qwcCompatible(other))
        panic("PauliString::mergedWith: strings conflict");
    PauliString merged(numQubits_);
    merged.xMask_ = xMask_ | other.xMask_;
    merged.zMask_ = zMask_ | other.zMask_;
    return merged;
}

PauliString
PauliString::restrictedTo(int start, int len) const
{
    std::uint64_t window;
    if (len >= 64)
        window = ~0ull;
    else
        window = ((1ull << len) - 1) << start;
    PauliString out(numQubits_);
    out.xMask_ = xMask_ & window;
    out.zMask_ = zMask_ & window;
    return out;
}

PauliString
PauliString::restrictedTo(const std::vector<int> &positions) const
{
    const std::uint64_t window = positionsMask(positions);
    PauliString out(numQubits_);
    out.xMask_ = xMask_ & window;
    out.zMask_ = zMask_ & window;
    return out;
}

bool
PauliString::commutesWith(const PauliString &other) const
{
    // Symplectic product: strings anti-commute iff
    // |{q : x_a z_b != x_b z_a at q}| is odd.
    const std::uint64_t cross =
        (xMask_ & other.zMask_) ^ (zMask_ & other.xMask_);
    return parity(cross) == 0;
}

std::string
PauliString::toString() const
{
    std::string s(numQubits_, 'I');
    for (int q = 0; q < numQubits_; ++q)
        s[q] = pauliChar(op(q));
    return s;
}

std::string
PauliString::toSubsetString() const
{
    std::string s = toString();
    for (char &c : s)
        if (c == 'I')
            c = '-';
    return s;
}

bool
PauliString::operator<(const PauliString &other) const
{
    if (numQubits_ != other.numQubits_)
        return numQubits_ < other.numQubits_;
    if (xMask_ != other.xMask_)
        return xMask_ < other.xMask_;
    return zMask_ < other.zMask_;
}

std::size_t
PauliString::hash() const
{
    // Mix the two masks and the width with a Fibonacci multiplier.
    std::size_t h = static_cast<std::size_t>(numQubits_);
    h = h * 0x9E3779B97F4A7C15ull + xMask_;
    h = h * 0x9E3779B97F4A7C15ull + zMask_;
    h ^= h >> 29;
    return h;
}

} // namespace varsaw
