#include "pauli/subsetting.hh"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/logging.hh"

namespace varsaw {

std::vector<PauliString>
windowSubsets(const PauliString &basis, int window_size)
{
    const int n = basis.numQubits();
    if (window_size < 1)
        panic("windowSubsets: window size must be >= 1");
    const int m = std::min(window_size, n);

    std::vector<PauliString> out;
    std::unordered_set<PauliString, PauliStringHash> seen;
    for (int start = 0; start + m <= n; ++start) {
        PauliString window = basis.restrictedTo(start, m);
        if (window.isIdentity())
            continue;
        if (seen.insert(window).second)
            out.push_back(window);
    }
    return out;
}

std::vector<PauliString>
jigsawSubsets(const std::vector<PauliString> &bases, int window_size)
{
    std::vector<PauliString> out;
    for (const auto &basis : bases) {
        auto windows = windowSubsets(basis, window_size);
        out.insert(out.end(), windows.begin(), windows.end());
    }
    return out;
}

std::vector<PauliString>
aggregateSubsets(const std::vector<PauliString> &strings,
                 int window_size)
{
    return jigsawSubsets(strings, window_size);
}

std::vector<PauliString>
reduceSubsets(const std::vector<PauliString> &subsets)
{
    // Deduplicate first; the dominance pass is then quadratic in the
    // number of *unique* windows, which is bounded by
    // (positions) * 16 for 2-qubit windows regardless of term count.
    std::vector<PauliString> unique;
    {
        std::unordered_set<PauliString, PauliStringHash> seen;
        for (const auto &s : subsets)
            if (!s.isIdentity() && seen.insert(s).second)
                unique.push_back(s);
    }

    std::vector<PauliString> kept;
    kept.reserve(unique.size());
    for (const auto &candidate : unique) {
        bool dominated = false;
        for (const auto &other : unique) {
            if (other == candidate)
                continue;
            if (candidate.coveredBy(other)) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            kept.push_back(candidate);
    }
    std::sort(kept.begin(), kept.end());
    return kept;
}

SubsetCover::SubsetCover(std::vector<PauliString> executed)
    : executed_(std::move(executed))
{
    exact_.reserve(executed_.size());
    for (std::size_t i = 0; i < executed_.size(); ++i)
        exact_.emplace(executed_[i], i);
}

std::optional<std::size_t>
SubsetCover::findCover(const PauliString &needed) const
{
    // Fast path: exact match.
    if (auto it = exact_.find(needed); it != exact_.end())
        return it->second;

    // Dominating superset: prefer the smallest weight so the
    // marginalization discards as little as possible.
    std::optional<std::size_t> best;
    int best_weight = std::numeric_limits<int>::max();
    for (std::size_t i = 0; i < executed_.size(); ++i) {
        if (needed.coveredBy(executed_[i]) &&
            executed_[i].weight() < best_weight) {
            best = i;
            best_weight = executed_[i].weight();
        }
    }
    return best;
}

} // namespace varsaw
