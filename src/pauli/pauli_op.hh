/**
 * @file
 * Single-qubit Pauli operators.
 *
 * The 2-bit encoding (x-bit, z-bit) is chosen so that a full Pauli
 * string packs into two 64-bit masks, making qubit-wise commutation
 * and covering checks O(1) word operations (required to process the
 * 32,699-term Cr2 Hamiltonian of Table 2 in seconds).
 */

#ifndef VARSAW_PAULI_PAULI_OP_HH
#define VARSAW_PAULI_PAULI_OP_HH

#include <cstdint>

namespace varsaw {

/**
 * Single-qubit Pauli operator.
 *
 * Encoding: bit 0 is the X component, bit 1 is the Z component, so
 * I=00, X=01, Z=10, Y=11 (Y = iXZ has both components set).
 */
enum class PauliOp : std::uint8_t
{
    I = 0, //!< Identity (unmeasured wildcard in subset strings)
    X = 1, //!< Pauli X
    Z = 2, //!< Pauli Z
    Y = 3, //!< Pauli Y
};

/** X component (0/1) of a Pauli operator's encoding. */
inline int
xBit(PauliOp op)
{
    return static_cast<int>(op) & 1;
}

/** Z component (0/1) of a Pauli operator's encoding. */
inline int
zBit(PauliOp op)
{
    return (static_cast<int>(op) >> 1) & 1;
}

/** Build a PauliOp from its X and Z component bits. */
inline PauliOp
pauliFromBits(int x, int z)
{
    return static_cast<PauliOp>((x & 1) | ((z & 1) << 1));
}

/** Printable character for a Pauli operator ('I','X','Z','Y'). */
inline char
pauliChar(PauliOp op)
{
    switch (op) {
      case PauliOp::I: return 'I';
      case PauliOp::X: return 'X';
      case PauliOp::Z: return 'Z';
      case PauliOp::Y: return 'Y';
    }
    return '?';
}

/**
 * Parse a Pauli character. Both 'I' and '-' denote identity; the
 * paper's figures use '-' for unmeasured qubits in subset strings.
 *
 * @return The operator, or PauliOp::I for unknown characters
 *         (callers validate input separately).
 */
inline PauliOp
pauliFromChar(char c)
{
    switch (c) {
      case 'X': case 'x': return PauliOp::X;
      case 'Y': case 'y': return PauliOp::Y;
      case 'Z': case 'z': return PauliOp::Z;
      default: return PauliOp::I;
    }
}

/** Whether a character is a valid Pauli-string character. */
inline bool
isPauliChar(char c)
{
    switch (c) {
      case 'I': case 'i': case '-':
      case 'X': case 'x':
      case 'Y': case 'y':
      case 'Z': case 'z':
        return true;
      default:
        return false;
    }
}

} // namespace varsaw

#endif // VARSAW_PAULI_PAULI_OP_HH
