#include "pauli/commutation.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"

namespace varsaw {

namespace {

/**
 * Order term indices by descending string weight; ties broken by the
 * deterministic PauliString ordering, then by index. Heavy strings
 * first means potential covering parents are processed before the
 * strings they cover.
 */
std::vector<std::size_t>
weightSortedOrder(const std::vector<PauliString> &strings)
{
    std::vector<std::size_t> order(strings.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
        [&](std::size_t a, std::size_t b) {
            const int wa = strings[a].weight();
            const int wb = strings[b].weight();
            if (wa != wb)
                return wa > wb;
            if (strings[a] != strings[b])
                return strings[a] < strings[b];
            return a < b;
        });
    return order;
}

} // namespace

BasisReduction
coverReduce(const std::vector<PauliString> &strings)
{
    BasisReduction red;
    red.termToBasis.resize(strings.size());

    for (std::size_t idx : weightSortedOrder(strings)) {
        const PauliString &s = strings[idx];
        bool placed = false;
        for (std::size_t b = 0; b < red.bases.size(); ++b) {
            if (s.coveredBy(red.bases[b])) {
                red.termToBasis[idx] = b;
                red.basisTerms[b].push_back(idx);
                placed = true;
                break;
            }
        }
        if (!placed) {
            red.termToBasis[idx] = red.bases.size();
            red.bases.push_back(s);
            red.basisTerms.push_back({idx});
        }
    }
    return red;
}

BasisReduction
groupQubitWise(const std::vector<PauliString> &strings)
{
    BasisReduction red;
    red.termToBasis.resize(strings.size());

    for (std::size_t idx : weightSortedOrder(strings)) {
        const PauliString &s = strings[idx];
        bool placed = false;
        for (std::size_t b = 0; b < red.bases.size(); ++b) {
            if (s.qwcCompatible(red.bases[b])) {
                red.bases[b] = red.bases[b].mergedWith(s);
                red.termToBasis[idx] = b;
                red.basisTerms[b].push_back(idx);
                placed = true;
                break;
            }
        }
        if (!placed) {
            red.termToBasis[idx] = red.bases.size();
            red.bases.push_back(s);
            red.basisTerms.push_back({idx});
        }
    }
    return red;
}

BasisReduction
reduceBases(const std::vector<PauliString> &strings, BasisMode mode)
{
    return mode == BasisMode::Cover ? coverReduce(strings)
                                    : groupQubitWise(strings);
}

int
countCoveringParents(const PauliString &p,
                     const std::vector<PauliString> &family)
{
    int count = 0;
    for (const auto &candidate : family) {
        if (candidate == p)
            continue;
        if (p.coveredBy(candidate))
            ++count;
    }
    return count;
}

std::vector<PauliString>
enumerateStrings(int num_qubits, const std::vector<PauliOp> &alphabet)
{
    if (num_qubits < 0 || num_qubits > 16)
        panic("enumerateStrings: refuse to enumerate beyond 16 qubits");
    std::vector<PauliString> out;
    const std::size_t k = alphabet.size();
    std::size_t total = 1;
    for (int q = 0; q < num_qubits; ++q)
        total *= k;
    out.reserve(total);
    for (std::size_t code = 0; code < total; ++code) {
        PauliString s(num_qubits);
        std::size_t c = code;
        for (int q = 0; q < num_qubits; ++q) {
            s.setOp(q, alphabet[c % k]);
            c /= k;
        }
        out.push_back(s);
    }
    return out;
}

} // namespace varsaw
