/**
 * @file
 * Tests for spin-model Hamiltonians.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "chem/exact_solver.hh"
#include "chem/spin_models.hh"
#include "pauli/commutation.hh"

namespace varsaw {
namespace {

TEST(Tfim, TermStructure)
{
    Hamiltonian h = tfim(5, 1.0, 0.8);
    // 4 ZZ bonds + 5 X fields.
    EXPECT_EQ(h.numTerms(), 9u);
    EXPECT_EQ(h.numQubits(), 5);
}

TEST(Tfim, GroupsIntoTwoBases)
{
    // The paper's Fig. 16 TFIM needs only a couple of grouped
    // measurement circuits; cover reduction gives exactly 2 here
    // (one Z-chain parent, one X parent) plus possibly ungrouped
    // leftovers. Verify the reduction is small.
    Hamiltonian h = tfim(5, 1.0, 0.8);
    const auto red = coverReduce(h.strings());
    // ZZ bonds are pairwise incomparable under covering (no term
    // contains another), X fields likewise; the commuting parents
    // are the individual bond/field strings.
    EXPECT_LE(red.bases.size(), h.numTerms());
    for (const auto &b : red.bases)
        EXPECT_FALSE(b.isIdentity());
}

TEST(Tfim, ExactGroundEnergySmallChain)
{
    // TFIM-2: H = -J Z0 Z1 - h (X0 + X1); for J=0 the ground energy
    // is -2h exactly.
    Hamiltonian h = tfim(2, 0.0, 1.0);
    EXPECT_NEAR(groundStateEnergy(h), -2.0, 1e-9);
}

TEST(Tfim, CriticalPointEnergyKnownForm)
{
    // Open-chain TFIM at J=h=1 ground energy: E = 1 - 1/sin(pi/(2(2N+1)))
    // is the closed form for periodic variants; instead verify
    // against the variational bound E >= -L1 norm and that energy
    // decreases with system size.
    const double e3 = groundStateEnergy(tfim(3, 1.0, 1.0));
    const double e4 = groundStateEnergy(tfim(4, 1.0, 1.0));
    EXPECT_LT(e4, e3);
    EXPECT_GE(e3, tfim(3, 1.0, 1.0).energyLowerBound());
}

TEST(Ising, DiagonalGroundEnergy)
{
    // Classical Ising: all-Z Hamiltonian, ground state is a basis
    // state; for J=1, hz=0.5 on 3 sites the all-up state gives
    // E = -(2*1) - 3*0.5 = -3.5.
    Hamiltonian h = isingChain(3, 1.0, 0.5);
    EXPECT_NEAR(groundStateEnergy(h), -3.5, 1e-9);
}

TEST(Heisenberg, TwoSiteSingletEnergy)
{
    // Two-site XXX chain: eigenvalues J(1,1,1,-3); ground = -3J.
    Hamiltonian h = heisenbergChain(2, 1.0);
    EXPECT_NEAR(groundStateEnergy(h), -3.0, 1e-9);
}

TEST(Xy, TwoSiteGroundEnergy)
{
    // Two-site XY: H = J(XX + YY) has eigenvalues {0, 0, 2J, -2J}.
    Hamiltonian h = xyChain(2, 1.0);
    EXPECT_NEAR(groundStateEnergy(h), -2.0, 1e-9);
}

TEST(SpinModels, NamesEncodeWidth)
{
    EXPECT_EQ(tfim(5, 1, 1).name(), "TFIM-5");
    EXPECT_EQ(heisenbergChain(4, 1).name(), "Heisenberg-4");
}

} // namespace
} // namespace varsaw
