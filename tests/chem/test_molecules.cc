/**
 * @file
 * Tests for the molecular workload library (Table 2 signatures and
 * the literature H2 Hamiltonian).
 */

#include <gtest/gtest.h>

#include "chem/exact_solver.hh"
#include "chem/molecules.hh"

namespace varsaw {
namespace {

TEST(Table2, ThirteenWorkloads)
{
    EXPECT_EQ(table2Workloads().size(), 13u);
}

TEST(Table2, SpecLookup)
{
    const auto &spec = moleculeSpec("CH4-6");
    EXPECT_EQ(spec.qubits, 6);
    EXPECT_EQ(spec.pauliTerms, 94);
    EXPECT_TRUE(spec.temporal);
    EXPECT_FALSE(moleculeSpec("Cr2-34").temporal);
}

TEST(H2, FifteenTermsIncludingIdentity)
{
    Hamiltonian h = h2Sto3g();
    EXPECT_EQ(h.numQubits(), 4);
    // 14 measurable terms + identity offset = 15 of Table 2.
    EXPECT_EQ(h.numTerms(), 14u);
    EXPECT_NE(h.identityOffset(), 0.0);
}

TEST(H2, GroundEnergyMatchesLiterature)
{
    // Electronic ground energy of H2/STO-3G near equilibrium is
    // about -1.857 Hartree (O'Malley et al., PRX 6, 031007). The
    // textbook-rounded coefficients used here give -1.85105; assert
    // both the literature band and the exact eigenvalue of our
    // coefficient set (regression pin for the Lanczos solver).
    Hamiltonian h = h2Sto3g();
    const double e0 = groundStateEnergy(h);
    EXPECT_NEAR(e0, -1.857, 0.01);
    EXPECT_NEAR(e0, -1.8510456784, 1e-8);
}

TEST(H2, DiagonalEnergyOfHartreeFockState)
{
    // |0000> (both electrons in the lowest orbitals under our
    // ordering) should give an energy above the ground state but
    // below zero.
    Hamiltonian h = h2Sto3g();
    std::vector<double> exps;
    for (const auto &term : h.terms()) {
        // <0...0| P |0...0> = 1 for Z-only strings, else 0.
        exps.push_back(term.string.xMask() == 0 ? 1.0 : 0.0);
    }
    const double e_hf = h.energy(exps);
    EXPECT_LT(e_hf, 0.0);
    EXPECT_GT(e_hf, groundStateEnergy(h));
}

/** Every Table 2 workload must hit its exact signature. */
class Table2Signature
    : public ::testing::TestWithParam<MoleculeSpec>
{
};

TEST_P(Table2Signature, QubitAndTermCountsMatch)
{
    const MoleculeSpec &spec = GetParam();
    Hamiltonian h = molecule(spec.name);
    EXPECT_EQ(h.numQubits(), spec.qubits);
    if (spec.name == "H2-4") {
        // Literature Hamiltonian: 15 terms counting the identity.
        EXPECT_EQ(h.numTerms() + 1, 15u);
    } else {
        EXPECT_EQ(static_cast<int>(h.numTerms()), spec.pauliTerms);
    }
}

TEST_P(Table2Signature, DeterministicConstruction)
{
    const MoleculeSpec &spec = GetParam();
    if (spec.qubits > 12)
        GTEST_SKIP() << "large workload checked once in term test";
    Hamiltonian a = molecule(spec.name);
    Hamiltonian b = molecule(spec.name);
    ASSERT_EQ(a.numTerms(), b.numTerms());
    for (std::size_t i = 0; i < a.numTerms(); ++i) {
        EXPECT_EQ(a.terms()[i].string, b.terms()[i].string);
        EXPECT_DOUBLE_EQ(a.terms()[i].coefficient,
                         b.terms()[i].coefficient);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, Table2Signature,
    ::testing::ValuesIn(table2Workloads()),
    [](const ::testing::TestParamInfo<MoleculeSpec> &info) {
        std::string name = info.param.name;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(SyntheticMolecule, DiagonalTermsDominante)
{
    Hamiltonian h = molecule("CH4-6");
    double diag = 0.0, offdiag = 0.0;
    for (const auto &term : h.terms()) {
        if (term.string.xMask() == 0)
            diag += std::abs(term.coefficient);
        else
            offdiag += std::abs(term.coefficient);
    }
    EXPECT_GT(diag, offdiag * 0.5);
}

TEST(SyntheticMolecule, GroundEnergyBelowHartreeFock)
{
    Hamiltonian h = molecule("H2O-6");
    const double e0 = groundStateEnergy(h);
    EXPECT_GE(e0, h.energyLowerBound());
    // Correlation: ground state below the best diagonal state.
    std::vector<double> exps;
    for (const auto &term : h.terms())
        exps.push_back(term.string.xMask() == 0 ? 1.0 : 0.0);
    EXPECT_LT(e0, h.energy(exps));
}

TEST(SyntheticMolecule, RequestedCountTooLargeIsFatalChecked)
{
    // 2 qubits support at most 3 + hopping 2 strings... a huge
    // request cannot be met; the generator must detect it.
    EXPECT_DEATH(
        {
            syntheticMolecule("impossible", 2, 1000, 1);
        },
        "cannot reach requested term count");
}

} // namespace
} // namespace varsaw
