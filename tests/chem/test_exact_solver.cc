/**
 * @file
 * Tests for the exact reference solver (Hamiltonian application,
 * Lanczos, tridiagonal eigenvalues, ideal-VQE parameter search).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "chem/exact_solver.hh"
#include "chem/molecules.hh"
#include "chem/spin_models.hh"
#include "vqa/estimator.hh"

namespace varsaw {
namespace {

using Cvec = std::vector<std::complex<double>>;

TEST(ApplyHamiltonian, SingleZTerm)
{
    Hamiltonian h(1);
    h.addTerm("Z", 2.0);
    Cvec x = {{1, 0}, {1, 0}};
    Cvec y(2, {0, 0});
    applyHamiltonian(h, x, y);
    EXPECT_NEAR(y[0].real(), 2.0, 1e-12);
    EXPECT_NEAR(y[1].real(), -2.0, 1e-12);
}

TEST(ApplyHamiltonian, SingleXTermPermutes)
{
    Hamiltonian h(1);
    h.addTerm("X", 1.0);
    Cvec x = {{1, 0}, {0, 0}};
    Cvec y(2, {0, 0});
    applyHamiltonian(h, x, y);
    EXPECT_NEAR(y[1].real(), 1.0, 1e-12);
    EXPECT_NEAR(std::abs(y[0]), 0.0, 1e-12);
}

TEST(ApplyHamiltonian, YTermPhase)
{
    Hamiltonian h(1);
    h.addTerm("Y", 1.0);
    Cvec x = {{1, 0}, {0, 0}};
    Cvec y(2, {0, 0});
    applyHamiltonian(h, x, y);
    // Y|0> = i|1>.
    EXPECT_NEAR(y[1].imag(), 1.0, 1e-12);
}

TEST(ApplyHamiltonian, IdentityOffsetScales)
{
    Hamiltonian h(1);
    h.addTerm("I", -2.5);
    Cvec x = {{1, 0}, {2, 0}};
    Cvec y(2, {0, 0});
    applyHamiltonian(h, x, y);
    EXPECT_NEAR(y[0].real(), -2.5, 1e-12);
    EXPECT_NEAR(y[1].real(), -5.0, 1e-12);
}

TEST(Tridiagonal, DiagonalMatrix)
{
    EXPECT_NEAR(tridiagonalSmallestEigenvalue({3, -1, 5}, {0, 0}),
                -1.0, 1e-9);
}

TEST(Tridiagonal, TwoByTwoExact)
{
    // [[2, 1], [1, 2]]: eigenvalues 1 and 3.
    EXPECT_NEAR(tridiagonalSmallestEigenvalue({2, 2}, {1}), 1.0,
                1e-9);
}

TEST(Tridiagonal, ToeplitzKnownSpectrum)
{
    // Tridiagonal (-2 on diag, 1 off): smallest eigenvalue is
    // -2 + 2*cos(pi/(n+1)) ... for diag=0, off=1 and n=3 the
    // eigenvalues are {-sqrt(2), 0, sqrt(2)}.
    EXPECT_NEAR(tridiagonalSmallestEigenvalue({0, 0, 0}, {1, 1}),
                -std::sqrt(2.0), 1e-9);
}

TEST(Lanczos, SingleQubitZ)
{
    Hamiltonian h(1);
    h.addTerm("Z", 1.0);
    EXPECT_NEAR(groundStateEnergy(h), -1.0, 1e-9);
}

TEST(Lanczos, OffsetShiftsSpectrum)
{
    Hamiltonian h(2);
    h.addTerm("ZZ", 1.0);
    h.addTerm("II", 10.0);
    EXPECT_NEAR(groundStateEnergy(h), 9.0, 1e-8);
}

TEST(Lanczos, MatchesL1BoundDirection)
{
    Hamiltonian h = molecule("LiH-6");
    const double e0 = groundStateEnergy(h);
    EXPECT_GE(e0, h.energyLowerBound() - 1e-9);
}

TEST(Lanczos, DeterministicAcrossSeeds)
{
    Hamiltonian h = tfim(4, 1.0, 0.7);
    const double a = groundStateEnergy(h, 120, 1);
    const double b = groundStateEnergy(h, 120, 987);
    EXPECT_NEAR(a, b, 1e-8);
}

TEST(IdealVqe, ReachesNearGroundEnergyForH2)
{
    Hamiltonian h = h2Sto3g();
    EfficientSU2 ansatz(AnsatzConfig{4, 2, Entanglement::Full});
    IdealVqeResult res = idealOptimalParameters(h, ansatz, 2, 300, 3);
    const double e0 = groundStateEnergy(h);
    // Hardware-efficient ansatz should close most of the gap from
    // the Hartree-Fock-like starting region.
    EXPECT_LT(res.energy, e0 + 0.15);
    EXPECT_GE(res.energy, e0 - 1e-6);
}

TEST(IdealVqe, ParametersReproduceReportedEnergy)
{
    Hamiltonian h = tfim(3, 1.0, 0.6);
    EfficientSU2 ansatz(AnsatzConfig{3, 2, Entanglement::Linear});
    IdealVqeResult res = idealOptimalParameters(h, ansatz, 2, 250, 5);
    ExactEstimator est(h, ansatz.circuit());
    EXPECT_NEAR(est.estimate(res.parameters), res.energy, 1e-9);
}

} // namespace
} // namespace varsaw
