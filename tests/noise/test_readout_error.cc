/**
 * @file
 * Unit and property tests for readout-error channels.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "noise/readout_error.hh"
#include "util/rng.hh"

namespace varsaw {
namespace {

TEST(ReadoutError, MeanError)
{
    ReadoutError e{0.02, 0.06};
    EXPECT_DOUBLE_EQ(e.meanError(), 0.04);
}

TEST(ReadoutError, ScalingClampsAtHalf)
{
    ReadoutError e{0.3, 0.4};
    ReadoutError scaled = e.scaled(3.0);
    EXPECT_DOUBLE_EQ(scaled.p01, 0.5);
    EXPECT_DOUBLE_EQ(scaled.p10, 0.5);
    ReadoutError mild = e.scaled(1.1);
    EXPECT_NEAR(mild.p01, 0.33, 1e-12);
}

TEST(ReadoutConfusion, NoErrorIsIdentity)
{
    std::vector<double> probs = {0.1, 0.2, 0.3, 0.4};
    applyReadoutConfusion(probs, {{0, 0}, {0, 0}});
    EXPECT_DOUBLE_EQ(probs[0], 0.1);
    EXPECT_DOUBLE_EQ(probs[3], 0.4);
}

TEST(ReadoutConfusion, SingleQubitFlip)
{
    // Pure |0> with p01 = 0.1 reads 1 with probability 0.1.
    std::vector<double> probs = {1.0, 0.0};
    applyReadoutConfusion(probs, {{0.1, 0.25}});
    EXPECT_NEAR(probs[0], 0.9, 1e-12);
    EXPECT_NEAR(probs[1], 0.1, 1e-12);

    // Pure |1> with p10 = 0.25 reads 0 with probability 0.25.
    probs = {0.0, 1.0};
    applyReadoutConfusion(probs, {{0.1, 0.25}});
    EXPECT_NEAR(probs[0], 0.25, 1e-12);
    EXPECT_NEAR(probs[1], 0.75, 1e-12);
}

TEST(ReadoutConfusion, PreservesNormalization)
{
    Rng rng(3);
    std::vector<double> probs(8);
    double total = 0.0;
    for (auto &p : probs) {
        p = rng.uniform();
        total += p;
    }
    for (auto &p : probs)
        p /= total;

    applyReadoutConfusion(probs,
                          {{0.05, 0.1}, {0.02, 0.04}, {0.01, 0.07}});
    double after = 0.0;
    for (double p : probs) {
        EXPECT_GE(p, 0.0);
        after += p;
    }
    EXPECT_NEAR(after, 1.0, 1e-12);
}

TEST(ReadoutConfusion, TensorStructureOnProductState)
{
    // Independent qubits: channel acts independently per qubit.
    std::vector<double> probs = {1.0, 0.0, 0.0, 0.0}; // |00>
    applyReadoutConfusion(probs, {{0.1, 0.2}, {0.3, 0.4}});
    EXPECT_NEAR(probs[0b00], 0.9 * 0.7, 1e-12);
    EXPECT_NEAR(probs[0b01], 0.1 * 0.7, 1e-12);
    EXPECT_NEAR(probs[0b10], 0.9 * 0.3, 1e-12);
    EXPECT_NEAR(probs[0b11], 0.1 * 0.3, 1e-12);
}

TEST(InverseReadoutConfusion, RoundTripRecoversInput)
{
    Rng rng(5);
    std::vector<double> original(16);
    double total = 0.0;
    for (auto &p : original) {
        p = rng.uniform();
        total += p;
    }
    for (auto &p : original)
        p /= total;

    const std::vector<ReadoutError> errors = {
        {0.03, 0.08}, {0.01, 0.05}, {0.06, 0.02}, {0.04, 0.04}};
    std::vector<double> noisy = original;
    applyReadoutConfusion(noisy, errors);
    ASSERT_TRUE(applyInverseReadoutConfusion(noisy, errors));
    for (std::size_t i = 0; i < original.size(); ++i)
        EXPECT_NEAR(noisy[i], original[i], 1e-10);
}

TEST(InverseReadoutConfusion, SingularMatrixRejected)
{
    std::vector<double> probs = {0.5, 0.5};
    EXPECT_FALSE(applyInverseReadoutConfusion(probs, {{0.5, 0.5}}));
}

TEST(CrosstalkFactor, GrowsLinearly)
{
    EXPECT_DOUBLE_EQ(crosstalkFactor(1, 0.05), 1.0);
    EXPECT_DOUBLE_EQ(crosstalkFactor(2, 0.05), 1.05);
    EXPECT_DOUBLE_EQ(crosstalkFactor(27, 0.04), 1.0 + 26 * 0.04);
    EXPECT_DOUBLE_EQ(crosstalkFactor(0, 0.05), 1.0);
}

/** Property: confusion is a stochastic map for any rates <= 0.5. */
class ConfusionStochastic : public ::testing::TestWithParam<int>
{
};

TEST_P(ConfusionStochastic, MassAndPositivityPreserved)
{
    Rng rng(100 + GetParam());
    const int m = 1 + GetParam() % 4;
    std::vector<double> probs(1ull << m, 0.0);
    probs[rng.uniformInt(probs.size())] = 1.0;

    std::vector<ReadoutError> errors(m);
    for (auto &e : errors) {
        e.p01 = rng.uniform(0.0, 0.5);
        e.p10 = rng.uniform(0.0, 0.5);
    }
    applyReadoutConfusion(probs, errors);
    double total = 0.0;
    for (double p : probs) {
        EXPECT_GE(p, -1e-15);
        total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomChannels, ConfusionStochastic,
                         ::testing::Range(0, 12));

} // namespace
} // namespace varsaw
