/**
 * @file
 * Unit tests for simulated device models.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "noise/device_model.hh"

namespace varsaw {
namespace {

TEST(DeviceModel, MumbaiPreset)
{
    const DeviceModel d = DeviceModel::mumbai();
    EXPECT_EQ(d.numQubits(), 27);
    // Readout errors within the published 1-7%-ish band.
    for (const auto &e : d.readout()) {
        EXPECT_GT(e.meanError(), 0.004);
        EXPECT_LT(e.meanError(), 0.08);
        EXPECT_GT(e.p10, e.p01); // excited-state decay asymmetry
    }
    EXPECT_GT(d.crosstalkSlope(), 0.0);
    EXPECT_GT(d.gate2Error(), d.gate1Error());
}

TEST(DeviceModel, PresetsAreDeterministic)
{
    const DeviceModel a = DeviceModel::mumbai();
    const DeviceModel b = DeviceModel::mumbai();
    for (int q = 0; q < a.numQubits(); ++q) {
        EXPECT_DOUBLE_EQ(a.readout()[q].p01, b.readout()[q].p01);
        EXPECT_DOUBLE_EQ(a.readout()[q].p10, b.readout()[q].p10);
    }
}

TEST(DeviceModel, LagosCleanerThanJakarta)
{
    const DeviceModel lagos = DeviceModel::lagos();
    const DeviceModel jakarta = DeviceModel::jakarta();
    EXPECT_EQ(lagos.numQubits(), 7);
    EXPECT_EQ(jakarta.numQubits(), 7);
    double lagos_mean = 0.0, jakarta_mean = 0.0;
    for (int q = 0; q < 7; ++q) {
        lagos_mean += lagos.readout()[q].meanError();
        jakarta_mean += jakarta.readout()[q].meanError();
    }
    EXPECT_LT(lagos_mean, jakarta_mean);
}

TEST(DeviceModel, BestQubitsSortedByError)
{
    const DeviceModel d = DeviceModel::mumbai();
    const auto best = d.bestQubits(5);
    ASSERT_EQ(best.size(), 5u);
    for (std::size_t i = 1; i < best.size(); ++i)
        EXPECT_LE(d.readout()[best[i - 1]].meanError(),
                  d.readout()[best[i]].meanError());
    // The best qubit beats every other qubit.
    for (int q = 0; q < d.numQubits(); ++q)
        EXPECT_LE(d.readout()[best[0]].meanError(),
                  d.readout()[q].meanError());
}

TEST(DeviceModel, EffectiveReadoutBestMappingBeatsDefault)
{
    const DeviceModel d = DeviceModel::mumbai();
    const auto best = d.effectiveReadout(2, true);
    const auto dflt = d.effectiveReadout(2, false);
    double best_mean = 0.0, dflt_mean = 0.0;
    for (int i = 0; i < 2; ++i) {
        best_mean += best[i].meanError();
        dflt_mean += dflt[i].meanError();
    }
    EXPECT_LE(best_mean, dflt_mean);
}

TEST(DeviceModel, EffectiveReadoutCrosstalkGrowsWithWidth)
{
    const DeviceModel d = DeviceModel::mumbai();
    // Same physical qubit (default order, slot 0), more neighbors.
    const auto narrow = d.effectiveReadout(2, false);
    const auto wide = d.effectiveReadout(20, false);
    EXPECT_GT(wide[0].meanError(), narrow[0].meanError());
}

TEST(DeviceModel, ScaledMultipliesErrors)
{
    const DeviceModel d = DeviceModel::uniform(3, 0.02, 0.04, 0.05,
                                               1e-4, 1e-3);
    const DeviceModel s = d.scaled(2.0);
    EXPECT_NEAR(s.readout()[0].p01, 0.04, 1e-12);
    EXPECT_NEAR(s.readout()[0].p10, 0.08, 1e-12);
    EXPECT_NEAR(s.gate2Error(), 2e-3, 1e-15);
}

TEST(DeviceModel, WithoutGateNoise)
{
    const DeviceModel d =
        DeviceModel::mumbai().withoutGateNoise();
    EXPECT_EQ(d.gate1Error(), 0.0);
    EXPECT_EQ(d.gate2Error(), 0.0);
    // Readout untouched.
    EXPECT_GT(d.readout()[0].meanError(), 0.0);
}

TEST(DeviceModel, WithoutCrosstalk)
{
    const DeviceModel d = DeviceModel::mumbai().withoutCrosstalk();
    EXPECT_EQ(d.crosstalkSlope(), 0.0);
    const auto narrow = d.effectiveReadout(2, false);
    const auto wide = d.effectiveReadout(20, false);
    EXPECT_DOUBLE_EQ(wide[0].meanError(), narrow[0].meanError());
}

TEST(DeviceModel, WithoutReadoutErrorKeepsGateNoise)
{
    const DeviceModel d =
        DeviceModel::mumbai().withoutReadoutError();
    for (const auto &e : d.readout())
        EXPECT_EQ(e.meanError(), 0.0);
    EXPECT_EQ(d.crosstalkSlope(), 0.0);
    EXPECT_GT(d.gate2Error(), 0.0);
}

TEST(DeviceModel, IdealHasNoErrors)
{
    const DeviceModel d = DeviceModel::ideal(5);
    for (const auto &e : d.readout())
        EXPECT_EQ(e.meanError(), 0.0);
    EXPECT_EQ(d.gate2Error(), 0.0);
}

TEST(DeviceModel, DriftPerturbsPerQubit)
{
    const DeviceModel base = DeviceModel::mumbai();
    const DeviceModel drifted = base.drifted(7, 0.3);
    EXPECT_EQ(drifted.numQubits(), base.numQubits());
    int changed = 0;
    for (int q = 0; q < base.numQubits(); ++q) {
        EXPECT_GT(drifted.readout()[q].meanError(), 0.0);
        if (std::abs(drifted.readout()[q].meanError() -
                     base.readout()[q].meanError()) > 1e-6)
            ++changed;
    }
    EXPECT_GT(changed, base.numQubits() / 2);
    // Gate errors untouched by readout drift.
    EXPECT_DOUBLE_EQ(drifted.gate2Error(), base.gate2Error());
}

TEST(DeviceModel, DriftDeterministicPerSeed)
{
    const DeviceModel base = DeviceModel::lagos();
    const DeviceModel a = base.drifted(3, 0.2);
    const DeviceModel b = base.drifted(3, 0.2);
    const DeviceModel c = base.drifted(4, 0.2);
    for (int q = 0; q < base.numQubits(); ++q)
        EXPECT_DOUBLE_EQ(a.readout()[q].p01, b.readout()[q].p01);
    bool differs = false;
    for (int q = 0; q < base.numQubits(); ++q)
        if (a.readout()[q].p01 != c.readout()[q].p01)
            differs = true;
    EXPECT_TRUE(differs);
}

TEST(DeviceModel, SummaryMentionsName)
{
    EXPECT_NE(DeviceModel::mumbai().summary().find("mumbai"),
              std::string::npos);
}

} // namespace
} // namespace varsaw
