// FAIL fixture [layering]: sim/ must build without runtime/ (PR 3
// contract) and nothing below service/ may include service/.
#include "runtime/batch_executor.hh"
#include "service/execution_service.hh"
#include "util/parallel.hh" // allowed — not a finding

namespace fixture {
int touch() { return 1; }
} // namespace fixture
