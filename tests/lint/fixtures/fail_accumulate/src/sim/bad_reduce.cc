// FAIL fixture [parallel-accumulate]: a reduction in disguise — the
// lambda accumulates into a captured scalar, so the merge order
// depends on thread interleaving. Must use chunkedReduce (or
// per-chunk partials merged in fixed order).
#include "util/parallel.hh"

namespace fixture {

double
sumAll(const double *a, unsigned long n)
{
    double sum = 0.0;
    varsaw::parallelForItems(
        n, [&](unsigned long b, unsigned long e) {
            for (unsigned long i = b; i < e; ++i)
                sum += a[i];
        });
    return sum;
}

} // namespace fixture
