// FAIL fixture [unordered-iter]: bucket order feeding a hash — the
// canonical way to make a result depend on the standard library's
// hashing internals.
#include <cstdint>
#include <unordered_map>

namespace fixture {

std::uint64_t
hashCounts(const std::unordered_map<int, int> &counts)
{
    std::uint64_t h = 0;
    for (const auto &kv : counts)
        h = h * 31 + static_cast<std::uint64_t>(kv.first);
    return h;
}

} // namespace fixture
