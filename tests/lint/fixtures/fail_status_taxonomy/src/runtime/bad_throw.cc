// FAIL fixture [status-taxonomy]: a naked std::runtime_error throw
// and a process-killing abort() on an execution path — both must go
// through the Status taxonomy (util/status.hh) instead.
#include <cstdlib>
#include <stdexcept>

namespace fixture {

int
executeOne(int jobs)
{
    if (jobs < 0)
        throw std::runtime_error("negative job count");
    if (jobs > 1 << 20)
        std::abort();
    return jobs;
}

} // namespace fixture
