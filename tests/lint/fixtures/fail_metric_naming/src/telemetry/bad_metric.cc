// FAIL fixture [metric-naming]: registry names that break the
// layer.component.metric convention — CamelCase and a single
// segment with no layer prefix.
namespace fixture {

struct Counter
{
    void add() {}
};

struct Registry
{
    Counter &
    counter(const char *)
    {
        static Counter c;
        return c;
    }
};

void
record()
{
    Registry reg;
    reg.counter("Service.BadName").add();
    reg.counter("retries").add();
}

} // namespace fixture
