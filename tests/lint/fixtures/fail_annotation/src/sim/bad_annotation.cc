// FAIL fixture [annotation]: an exemption without a reason is
// itself a finding — allowlists must say WHY a site is safe.
#include <unordered_map>

namespace fixture {

int
walk(std::unordered_map<int, int> &m)
{
    int acc = 0;
    // varsaw-lint: allow(unordered-iter)
    for (const auto &kv : m)
        acc += kv.second;
    return acc;
}

} // namespace fixture
