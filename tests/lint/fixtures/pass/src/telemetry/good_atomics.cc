// PASS fixture: every atomic op in a documented-contract hot path
// states its memory order explicitly.
#include <atomic>
#include <cstdint>

namespace fixture {

std::atomic<std::uint64_t> g_hits{0};

void
recordHit()
{
    g_hits.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
hits()
{
    return g_hits.load(std::memory_order_relaxed);
}

} // namespace fixture
