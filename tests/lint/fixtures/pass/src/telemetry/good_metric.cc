// PASS fixture: registry names follow layer.component.metric —
// dot-separated lowercase snake_case, two or more segments.
namespace fixture {

struct Counter
{
    void add() {}
};

struct Registry
{
    Counter &
    counter(const char *)
    {
        static Counter c;
        return c;
    }
};

void
record()
{
    Registry reg;
    reg.counter("telemetry.fixture.events_total").add();
    reg.counter("service.retries").add();
}

} // namespace fixture
