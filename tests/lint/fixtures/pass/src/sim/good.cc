// PASS fixture: everything here is sanctioned usage — allowed layer
// includes, fixed-fold reductions, per-chunk partials, ordered
// iteration, and one annotated (reasoned) unordered walk. The lint
// suite requires this tree to come back clean.
#include "pauli/pauli_string.hh"
#include "telemetry/trace.hh"
#include "util/parallel.hh"

#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

// A reduction through the fixed-fold helper: the chunk lambda
// accumulates into state it declares itself, in ascending index
// order — the sanctioned shape.
double
norm(const double *a, unsigned long n)
{
    return varsaw::chunkedReduce<double>(
        n, [&](unsigned long b, unsigned long e) {
            double partial = 0.0;
            for (unsigned long i = b; i < e; ++i)
                partial += a[i] * a[i];
            return partial;
        });
}

// Elementwise parallel loop: disjoint subscripted writes only.
void
scale(double *a, unsigned long n, double s)
{
    varsaw::parallelForItems(
        n, [&](unsigned long b, unsigned long e) {
            for (unsigned long i = b; i < e; ++i)
                a[i] *= s;
        });
}

// Ordered iteration feeding a result is fine.
unsigned long
sumKeys(const std::map<int, int> &m)
{
    unsigned long h = 0;
    for (const auto &kv : m)
        h = h * 31 + static_cast<unsigned long>(kv.first);
    return h;
}

// Unordered iteration that does NOT feed a result, exempted with a
// reasoned annotation (this is the allowlist mechanism under test).
void
dropExpired(std::unordered_map<int, int> &cache)
{
    // varsaw-lint: allow(unordered-iter) order-insensitive erase; nothing result-bearing observes the walk
    for (auto it = cache.begin(); it != cache.end();) {
        if (it->second == 0)
            it = cache.erase(it);
        else
            ++it;
    }
}

} // namespace fixture
