// PASS fixture: arch intrinsic headers are allowed here — and only
// here. The tree's CMakeLists.txt pins this TU with
// -ffp-contract=off, which the fp-contract rule verifies.
#include <immintrin.h>

namespace fixture {

double
fused(double a, double b, double c)
{
    return __builtin_fma(a, b, c);
}

} // namespace fixture
