// PASS fixture [status-taxonomy]: StatusError is the sanctioned
// exception on execution paths, a bare `throw;` only re-propagates,
// and panic() remains the invariant-violation escape.
#include "util/status.hh"

namespace fixture {

[[noreturn]] void panic(const char *);

int
executeOne(int jobs)
{
    if (jobs < 0)
        throw varsaw::StatusError(
            varsaw::invalidArgumentError("negative job count"));
    if (jobs > 1 << 20)
        panic("fixture: impossible job count");
    try {
        return jobs + 1;
    } catch (...) {
        throw;
    }
}

} // namespace fixture
