// FAIL fixture [intrinsics]: arch intrinsic headers are confined to
// src/sim/kernels/ — everything above stays ISA-portable.
#include <immintrin.h>

namespace fixture {
int touch() { return 1; }
} // namespace fixture
