// FAIL fixture [nondeterminism]: wall-clock reads and unseeded
// randomness in a deterministic path. Results must be pure
// functions of job content.
#include <chrono>
#include <cstdlib>

namespace fixture {

double
jittered(double x)
{
    const auto t = std::chrono::steady_clock::now();
    (void)t;
    return x * (1.0 + std::rand() / 1e9);
}

} // namespace fixture
