// FAIL fixture [fp-contract]: this kernel TU exists but the tree's
// CMakeLists.txt never pins it with -ffp-contract=off, so the
// compiler may fuse the rounding DAGs the bit-identity contract
// depends on.
namespace fixture {

double
dot(const double *a, const double *b, unsigned long n)
{
    double acc = 0.0;
    for (unsigned long i = 0; i < n; ++i)
        acc = __builtin_fma(a[i], b[i], acc);
    return acc;
}

} // namespace fixture
