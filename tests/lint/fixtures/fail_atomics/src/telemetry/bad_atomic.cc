// FAIL fixture [atomics-order]: default-seq_cst ops in a
// documented-contract hot path — both the bare method call and the
// operator form.
#include <atomic>
#include <cstdint>

namespace fixture {

std::atomic<std::uint64_t> g_hits{0};

void
recordHit()
{
    g_hits.fetch_add(1);
}

void
bump()
{
    ++g_hits;
}

} // namespace fixture
