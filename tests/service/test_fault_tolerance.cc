/**
 * @file
 * Fault-tolerance tests for the execution stack under the
 * deterministic injector (fault/): retries converge bit-identically,
 * deadlines and backoff run on the virtual clock, poison jobs are
 * quarantined, bounded admission queues shed with ResourceExhausted,
 * and every degradation path (worker stall, cache-insert failure,
 * late submit after shutdown) preserves results.
 *
 * The injector is process-wide; every test installs its plan through
 * a PlanGuard that restores the previous plan (and zeroes the
 * injection stats) on exit, and tears down its service (joining the
 * workers) before the guard fires.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chem/spin_models.hh"
#include "core/selective.hh"
#include "core/varsaw.hh"
#include "fault/fault_injector.hh"
#include "runtime/batch_executor.hh"
#include "service/execution_service.hh"
#include "sim/circuit.hh"
#include "sim/circuit_hash.hh"
#include "util/status.hh"
#include "vqa/ansatz.hh"

namespace varsaw {
namespace {

/** Restores the process-wide fault plan + stats at scope exit. */
class PlanGuard
{
  public:
    PlanGuard() : saved_(fault::FaultInjector::instance().plan()) {}

    ~PlanGuard()
    {
        fault::FaultInjector::instance().configure(saved_);
        fault::FaultInjector::instance().resetStats();
    }

    PlanGuard(const PlanGuard &) = delete;
    PlanGuard &operator=(const PlanGuard &) = delete;

  private:
    fault::FaultPlan saved_;
};

/** Parse-and-install a plan spec (must be well-formed). */
void
installPlan(const std::string &spec)
{
    fault::FaultPlan plan;
    std::string error;
    ASSERT_TRUE(fault::parseFaultPlan(spec, plan, error)) << error;
    fault::FaultInjector::instance().configure(plan);
    fault::FaultInjector::instance().resetStats();
}

/** All rates zero: injection off, real clock. */
void
installZeroPlan()
{
    fault::FaultInjector::instance().configure(fault::FaultPlan{});
    fault::FaultInjector::instance().resetStats();
}

/** Exact (bitwise) equality of two PMFs. */
void
expectBitIdentical(const Pmf &a, const Pmf &b)
{
    ASSERT_EQ(a.numBits(), b.numBits());
    ASSERT_EQ(a.raw().size(), b.raw().size());
    for (const auto &[outcome, p] : a.raw()) {
        auto it = b.raw().find(outcome);
        ASSERT_NE(it, b.raw().end()) << "outcome " << outcome;
        EXPECT_EQ(p, it->second) << "outcome " << outcome;
    }
}

/** A prefix-sharing workload: per-basis Globals over one ansatz. */
Batch
basisWorkload(const std::shared_ptr<const Circuit> &prep,
              const std::vector<PauliString> &bases,
              const std::vector<double> &params, std::uint64_t shots)
{
    Batch batch;
    for (const auto &basis : bases)
        batch.addPrefixed(prep, makeGlobalSuffix(basis), params,
                          shots);
    return batch;
}

std::vector<PauliString>
tfimBases(int qubits)
{
    const Hamiltonian h = tfim(qubits, 1.0, 0.7);
    return coverReduce(h.strings()).bases;
}

/** The one 4-qubit workload most tests run (fresh objects each
 * call; results depend only on content + backend seed). */
struct Workload
{
    std::shared_ptr<const Circuit> prep;
    std::vector<double> params;
    std::vector<PauliString> bases;

    Workload()
    {
        EfficientSU2 ansatz(
            AnsatzConfig{4, 2, Entanglement::Linear});
        prep = std::make_shared<const Circuit>(ansatz.circuit());
        params = ansatz.initialParameters(17);
        bases = tfimBases(4);
    }

    Batch batch(std::uint64_t shots) const
    {
        return basisWorkload(prep, bases, params, shots);
    }
};

/** Fault-free reference results for @p batch on a seed-3 ideal
 * backend (zero plan installed for the duration). */
std::vector<Pmf>
idealReference(const Batch &batch)
{
    installZeroPlan();
    IdealExecutor exec(3);
    RuntimeConfig rc;
    rc.threads = 1;
    BatchExecutor runtime(exec, rc);
    return runtime.run(batch);
}

TEST(FaultTolerance, ZeroRatePlanIsBitIdenticalAndInjectionFree)
{
    PlanGuard guard;
    const Workload w;
    const Batch batch = w.batch(1024);
    const std::vector<Pmf> ref = idealReference(batch);

    installZeroPlan();
    IdealExecutor exec(3);
    ServiceConfig sc;
    sc.threads = 2;
    ExecutionService service(exec, sc);
    auto session = service.createSession();
    const auto got = session->run(batch);

    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        expectBitIdentical(got[i], ref[i]);
    EXPECT_EQ(fault::FaultInjector::instance().stats().total(), 0u);
    EXPECT_EQ(exec.retriesPerformed(), 0u);
    EXPECT_EQ(service.stats().quarantinedKeys, 0u);
    EXPECT_EQ(service.stats().shedJobs, 0u);
}

TEST(FaultTolerance, TransientFaultsRetryToBitIdenticalResults)
{
    PlanGuard guard;
    const Workload w;
    const Batch batch = w.batch(1024);
    const std::vector<Pmf> ref = idealReference(batch);
    const std::uint64_t ref_circuits = [&] {
        installZeroPlan();
        IdealExecutor exec(3);
        RuntimeConfig rc;
        rc.threads = 1;
        rc.cacheResults = true; // dedupe like the service does
        BatchExecutor runtime(exec, rc);
        (void)runtime.run(batch);
        return exec.circuitsExecuted();
    }();

    // Every job fails its first two attempts, then succeeds: the
    // surviving attempt samples the same content-derived stream a
    // first-try success would, so results cannot move a bit.
    installPlan("seed=11,exec_transient=1.0,burst=2,retries=5,"
                "virtual_time=1");
    IdealExecutor exec(3);
    ServiceConfig sc;
    sc.threads = 2;
    ExecutionService service(exec, sc);
    auto session = service.createSession();
    const auto got = session->run(batch);

    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        expectBitIdentical(got[i], ref[i]);
    EXPECT_GT(exec.retriesPerformed(), 0u);
    const auto stats = fault::FaultInjector::instance().stats();
    EXPECT_GT(stats.injected[static_cast<int>(
                  fault::FaultSite::ExecutorTransient)],
              0u);
    // An injected transient fails BEFORE the backend runs, so the
    // paper's cost counter is exact under chaos: same circuit count
    // as the fault-free run.
    EXPECT_EQ(exec.circuitsExecuted(), ref_circuits);
}

TEST(FaultTolerance, CorruptionIsDetectedAndRetriedBitIdentical)
{
    PlanGuard guard;
    const Workload w;
    const Batch batch = w.batch(512);
    const std::vector<Pmf> ref = idealReference(batch);

    installPlan("seed=13,corrupt=1.0,burst=2,retries=5,"
                "virtual_time=1");
    IdealExecutor exec(3);
    ServiceConfig sc;
    sc.threads = 2;
    ExecutionService service(exec, sc);
    auto session = service.createSession();
    const auto got = session->run(batch);

    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        expectBitIdentical(got[i], ref[i]);
    EXPECT_GT(exec.retriesPerformed(), 0u);
    EXPECT_GT(fault::FaultInjector::instance()
                  .stats()
                  .injected[static_cast<int>(
                      fault::FaultSite::ResultCorruption)],
              0u);
}

TEST(FaultTolerance, DeadlineExceededOnVirtualClock)
{
    PlanGuard guard;
    // First attempt fails (transient), the 1 ms backoff before
    // attempt 2 blows the 0.5 ms deadline — all on the virtual
    // clock, so the test is instantaneous and exact.
    installPlan("exec_transient=1.0,burst=10,retries=10,"
                "backoff_ns=1000000,max_backoff_ns=8000000,"
                "deadline_ns=500000,virtual_time=1");
    IdealExecutor exec(3);
    Circuit c(2);
    c.h(0).cx(0, 1).measureAll();
    const std::vector<double> params;
    const StatusOr<Pmf> result =
        exec.tryExecuteJob(JobView{c, params, 0, nullptr}, 99);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::DeadlineExceeded);
    // Both attempts died before reaching the backend.
    EXPECT_EQ(exec.circuitsExecuted(), 0u);
}

TEST(FaultTolerance, RetryBackoffIsDeterministicOnVirtualClock)
{
    PlanGuard guard;
    auto &inj = fault::FaultInjector::instance();
    Circuit c(2);
    c.h(0).cx(0, 1).measureAll();
    const std::vector<double> params;
    const JobView job{c, params, 64, nullptr};

    for (int round = 0; round < 2; ++round) {
        // configure() resets the virtual clock, so both rounds
        // replay the identical schedule.
        installPlan("exec_transient=1.0,burst=3,retries=5,"
                    "backoff_ns=1000,max_backoff_ns=8000,"
                    "virtual_time=1");
        IdealExecutor exec(3);
        const StatusOr<Pmf> result = exec.tryExecuteJob(job, 7);
        ASSERT_TRUE(result.ok()) << result.status().toString();
        // Attempts 0..2 fail; backoffs 1000, 2000, 4000 ns precede
        // attempts 1..3. Exponential, capped, and exactly
        // reproducible.
        EXPECT_EQ(inj.nowNs(), 7000u) << "round " << round;
        EXPECT_EQ(exec.retriesPerformed(), 3u);
    }
}

TEST(FaultTolerance, InvalidJobFailsItsFutureNotTheService)
{
    PlanGuard guard;
    installZeroPlan();
    IdealExecutor exec(3);
    ServiceConfig sc;
    sc.threads = 2;
    ExecutionService service(exec, sc);
    auto session = service.createSession();

    // A circuit with no measurements is a malformed submission: it
    // must fail ITS future with InvalidArgument — never a panic,
    // never the pool.
    Circuit bad(2);
    bad.h(0).cx(0, 1);
    Batch batch;
    batch.add(bad, {}, 128);
    auto futures = session->submit(batch);
    ASSERT_EQ(futures.size(), 1u);
    try {
        (void)futures[0].get();
        FAIL() << "invalid job must fail its future";
    } catch (const StatusError &e) {
        EXPECT_EQ(e.code(), StatusCode::InvalidArgument);
    }

    // The service is fully alive: a valid batch still executes.
    const Workload w;
    const Batch good = w.batch(256);
    const auto got = session->run(good);
    const std::vector<Pmf> ref = idealReference(good);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        expectBitIdentical(got[i], ref[i]);
}

TEST(FaultTolerance, ExhaustedRetriesQuarantineThePoisonKey)
{
    PlanGuard guard;
    const Workload w;
    Batch batch;
    batch.addPrefixed(w.prep, makeGlobalSuffix(w.bases.front()),
                      w.params, 256);
    const std::vector<Pmf> ref = idealReference(batch);

    // burst > retries: every attempt fails, the key is poisoned.
    installPlan("seed=5,exec_transient=1.0,burst=50,retries=3,"
                "virtual_time=1");
    IdealExecutor exec(3);
    ServiceConfig sc;
    sc.threads = 1;
    ExecutionService service(exec, sc);
    auto session = service.createSession();

    auto futures = session->submit(batch);
    ASSERT_EQ(futures.size(), 1u);
    try {
        (void)futures[0].get();
        FAIL() << "exhausted retries must fail the future";
    } catch (const StatusError &e) {
        EXPECT_EQ(e.code(), StatusCode::Unavailable);
    }
    EXPECT_EQ(service.stats().quarantinedKeys, 1u);
    EXPECT_TRUE(
        service.ledger().isQuarantined(makeJobKey(batch.jobs()[0])));
    EXPECT_EQ(exec.circuitsExecuted(), 0u);

    // Resubmission fast-fails with FailedPrecondition WITHOUT
    // touching the backend: the poison job cannot burn retry
    // budgets over and over.
    auto again = session->submit(batch);
    try {
        (void)again[0].get();
        FAIL() << "quarantined key must fast-fail";
    } catch (const StatusError &e) {
        EXPECT_EQ(e.code(), StatusCode::FailedPrecondition);
    }
    EXPECT_EQ(exec.circuitsExecuted(), 0u);

    // Quarantine SURVIVES clearing the dedupe state: dropping
    // caches must not silently re-admit poison jobs.
    service.clearSharedCaches();
    auto after_clear = session->submit(batch);
    EXPECT_THROW((void)after_clear[0].get(), StatusError);
    EXPECT_EQ(service.stats().quarantinedKeys, 1u);

    const JobLedgerStats ledger_stats = service.ledger().stats();
    EXPECT_EQ(ledger_stats.quarantined, 1u);
    EXPECT_EQ(ledger_stats.quarantineRejections, 2u);

    // Operator intervention: clear the quarantine, fix the fault
    // (zero plan), and the key executes to the unfaulted result.
    service.ledger().clearQuarantine();
    EXPECT_EQ(service.stats().quarantinedKeys, 0u);
    installZeroPlan();
    const auto got = session->run(batch);
    ASSERT_EQ(got.size(), 1u);
    expectBitIdentical(got[0], ref[0]);
}

TEST(FaultTolerance, CacheInsertFailureDegradesToBypass)
{
    PlanGuard guard;
    const Workload w;
    const Batch batch = w.batch(512);
    const std::vector<Pmf> ref = idealReference(batch);

    // Every prepared state fails to become resident: the state
    // cache degrades to bypass. Waiters still get their states, so
    // only work changes — results are pure functions of content.
    installPlan("cache_insert=1.0");
    IdealExecutor exec(3);
    ServiceConfig sc;
    sc.threads = 2;
    ExecutionService service(exec, sc);
    auto session = service.createSession();
    const auto got = session->run(batch);

    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        expectBitIdentical(got[i], ref[i]);
    EXPECT_GT(exec.simEngine().cache().stats().insertFailures, 0u);
    EXPECT_GT(fault::FaultInjector::instance()
                  .stats()
                  .injected[static_cast<int>(
                      fault::FaultSite::StateCacheInsert)],
              0u);
}

TEST(FaultTolerance, BackpressureShedsWithResourceExhausted)
{
    PlanGuard guard;
    const Workload w;
    // N single-job batches with distinct shot counts (distinct
    // keys), plus their fault-free references.
    constexpr int kBatches = 16;
    std::vector<Batch> batches;
    std::vector<Pmf> refs;
    for (int i = 0; i < kBatches; ++i) {
        Batch b;
        b.addPrefixed(w.prep, makeGlobalSuffix(w.bases.front()),
                      w.params, 256 + static_cast<std::uint64_t>(i));
        refs.push_back(idealReference(b).front());
        batches.push_back(std::move(b));
    }

    // One worker held ~30 ms per job by injected latency spikes, a
    // queue depth of one, and a tight submission loop: most
    // submissions find the queue full and are shed.
    installPlan("latency_spike=1.0,latency_ns=30000000");
    IdealExecutor exec(3);
    ServiceConfig sc;
    sc.threads = 1;
    sc.maxQueueDepth = 1;
    ExecutionService service(exec, sc);
    auto session = service.createSession();

    std::vector<std::future<Pmf>> futures;
    for (const Batch &b : batches)
        futures.push_back(std::move(session->submit(b).front()));

    std::vector<int> shed_indices;
    std::uint64_t delivered = 0;
    for (int i = 0; i < kBatches; ++i) {
        try {
            const Pmf got = futures[static_cast<std::size_t>(i)].get();
            expectBitIdentical(got, refs[static_cast<std::size_t>(i)]);
            ++delivered;
        } catch (const StatusError &e) {
            EXPECT_EQ(e.code(), StatusCode::ResourceExhausted);
            shed_indices.push_back(i);
        }
    }
    EXPECT_GT(session->stats().shedJobs, 0u);
    EXPECT_EQ(session->stats().shedJobs, shed_indices.size());
    EXPECT_EQ(service.stats().shedJobs, shed_indices.size());
    EXPECT_EQ(delivered + shed_indices.size(),
              static_cast<std::uint64_t>(kBatches));
    EXPECT_GT(delivered, 0u);
    // Shedding never quarantines: the jobs were never executed.
    EXPECT_EQ(service.stats().quarantinedKeys, 0u);
    EXPECT_EQ(service.ledger().stats().abandoned,
              shed_indices.size());

    // Back off and resubmit: the abandoned claims were released, so
    // every shed job now executes to its unfaulted result.
    installZeroPlan();
    for (int i : shed_indices) {
        const auto got =
            session->run(batches[static_cast<std::size_t>(i)]);
        ASSERT_EQ(got.size(), 1u);
        expectBitIdentical(got[0], refs[static_cast<std::size_t>(i)]);
    }
}

TEST(FaultTolerance, WorkerStallDegradesToInlineExecution)
{
    PlanGuard guard;
    const Workload w;
    const Batch batch = w.batch(512);
    const std::vector<Pmf> ref = idealReference(batch);

    // Every chunk's worker is "wedged": the service degrades to
    // inline execution on the submitting thread — same jobs, same
    // streams, same results.
    installPlan("worker_stall=1.0");
    IdealExecutor exec(3);
    ServiceConfig sc;
    sc.threads = 4;
    ExecutionService service(exec, sc);
    auto session = service.createSession();
    const auto got = session->run(batch);

    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        expectBitIdentical(got[i], ref[i]);
    // Every PRIMARY ran inline (duplicate submissions were answered
    // from the primaries' futures, as always).
    const SessionStats stats = session->stats();
    EXPECT_EQ(stats.inlineJobs, stats.cacheMisses);
    EXPECT_EQ(stats.inlineJobs + stats.cacheHits, batch.size());
    EXPECT_GT(fault::FaultInjector::instance()
                  .stats()
                  .injected[static_cast<int>(
                      fault::FaultSite::WorkerStall)],
              0u);
}

TEST(FaultTolerance, LateSubmitAfterShutdownExecutesInlineCounted)
{
    PlanGuard guard;
    installZeroPlan();
    const Workload w;
    const Batch batch = w.batch(512);
    const std::vector<Pmf> ref = idealReference(batch);

    installZeroPlan();
    IdealExecutor exec(3);
    ServiceConfig sc;
    sc.threads = 2;
    ExecutionService service(exec, sc);
    auto session = service.createSession();
    service.shutdown();

    // The late submission still yields identical results (inline on
    // this thread) — and, since this PR, is COUNTED instead of
    // falling over silently.
    const auto got = session->run(batch);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        expectBitIdentical(got[i], ref[i]);
    // Primaries ran inline and were counted; duplicates were
    // answered from their futures as usual.
    const SessionStats stats = session->stats();
    EXPECT_EQ(stats.inlineJobs, stats.cacheMisses);
    EXPECT_EQ(stats.inlineJobs + stats.cacheHits, batch.size());
    EXPECT_EQ(service.stats().inlineAfterShutdown,
              stats.inlineJobs);
    EXPECT_GT(service.stats().inlineAfterShutdown, 0u);
}

TEST(FaultTolerance, ShutdownUnderLoadWithFaultsResolvesAllFutures)
{
    PlanGuard guard;
    const Workload w;
    constexpr int kThreads = 4;
    constexpr int kBatchesPerThread = 6;

    // Fault-free references, one per distinct shot count.
    std::vector<std::vector<Pmf>> refs(
        static_cast<std::size_t>(kThreads * kBatchesPerThread));
    {
        installZeroPlan();
        IdealExecutor exec(3);
        RuntimeConfig rc;
        rc.threads = 1;
        BatchExecutor runtime(exec, rc);
        for (int i = 0; i < kThreads * kBatchesPerThread; ++i)
            refs[static_cast<std::size_t>(i)] = runtime.run(
                w.batch(300 + static_cast<std::uint64_t>(i)));
    }

    // Real-time chaos: 20% transients (burst 2 < retries 5, so
    // every job converges), latency spikes, microsecond backoffs —
    // while the main thread shuts the service down mid-storm.
    installPlan("seed=9,exec_transient=0.2,latency_spike=0.5,"
                "latency_ns=100000,burst=2,retries=5,"
                "backoff_ns=1000,max_backoff_ns=8000");
    IdealExecutor exec(3);
    ServiceConfig sc;
    sc.threads = kThreads;
    ExecutionService service(exec, sc);

    std::vector<std::vector<Pmf>> got(refs.size());
    std::vector<std::exception_ptr> errors(refs.size());
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
            auto session = service.createSession();
            for (int j = 0; j < kBatchesPerThread; ++j) {
                const int i = t * kBatchesPerThread + j;
                try {
                    got[static_cast<std::size_t>(i)] = session->run(
                        w.batch(300 + static_cast<std::uint64_t>(i)));
                } catch (...) {
                    errors[static_cast<std::size_t>(i)] =
                        std::current_exception();
                }
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    service.shutdown();
    for (auto &thread : submitters)
        thread.join();

    // Every submission resolved to a value: no shed (queues are
    // unbounded here), no quarantine (burst < retries), shutdown
    // only moved late work inline. And every value is bit-identical
    // to the fault-free reference.
    for (std::size_t i = 0; i < refs.size(); ++i) {
        ASSERT_EQ(errors[i], nullptr) << "batch " << i;
        ASSERT_EQ(got[i].size(), refs[i].size()) << "batch " << i;
        for (std::size_t k = 0; k < refs[i].size(); ++k)
            expectBitIdentical(got[i][k], refs[i][k]);
    }
    EXPECT_EQ(service.stats().quarantinedKeys, 0u);
    EXPECT_EQ(service.stats().shedJobs, 0u);
}

TEST(FaultTolerance, SessionDestroyedWhileRetriesInFlight)
{
    PlanGuard guard;
    const Workload w;
    const Batch batch = w.batch(768);
    const std::vector<Pmf> ref = idealReference(batch);

    installPlan("seed=21,exec_transient=1.0,burst=2,retries=5,"
                "virtual_time=1");
    IdealExecutor exec(3);
    ServiceConfig sc;
    sc.threads = 2;
    ExecutionService service(exec, sc);
    auto session = service.createSession();
    auto futures = session->submit(batch);
    // Drop the session with the (retrying) work still in flight:
    // admitted tasks keep running and the futures stay valid — the
    // task closures capture shared batch storage, never the
    // session.
    session.reset();

    ASSERT_EQ(futures.size(), ref.size());
    for (std::size_t i = 0; i < futures.size(); ++i)
        expectBitIdentical(futures[i].get(), ref[i]);
    EXPECT_GT(exec.retriesPerformed(), 0u);
}

} // namespace
} // namespace varsaw
