/**
 * @file
 * Tests for the shared execution service: cross-estimator dedupe,
 * bit-identity to the private-runtime path across thread counts /
 * session counts / cache settings / submission interleavings, fair
 * FIFO admission, per-session statistics, kernel-assist lending,
 * and graceful shutdown under concurrent submission.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "chem/spin_models.hh"
#include "core/selective.hh"
#include "core/varsaw.hh"
#include "noise/device_model.hh"
#include "service/execution_service.hh"
#include "service/scheduler.hh"
#include "sim/circuit.hh"
#include "sim/statevector.hh"
#include "telemetry/introspect.hh"
#include "telemetry/metrics.hh"
#include "telemetry/profiler.hh"
#include "util/parallel.hh"

#if defined(__unix__) || defined(__APPLE__)
#define VARSAW_TEST_UNIX_SOCKETS 1
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif
#include "vqa/ansatz.hh"
#include "vqa/estimator.hh"
#include "vqa/zne_estimator.hh"

namespace varsaw {
namespace {

/** Exact (bitwise) equality of two PMFs. */
void
expectBitIdentical(const Pmf &a, const Pmf &b)
{
    ASSERT_EQ(a.numBits(), b.numBits());
    ASSERT_EQ(a.raw().size(), b.raw().size());
    for (const auto &[outcome, p] : a.raw()) {
        auto it = b.raw().find(outcome);
        ASSERT_NE(it, b.raw().end()) << "outcome " << outcome;
        EXPECT_EQ(p, it->second) << "outcome " << outcome;
    }
}

/** A prefix-sharing workload: per-basis Globals over one ansatz. */
Batch
basisWorkload(const std::shared_ptr<const Circuit> &prep,
              const std::vector<PauliString> &bases,
              const std::vector<double> &params, std::uint64_t shots)
{
    Batch batch;
    for (const auto &basis : bases)
        batch.addPrefixed(prep, makeGlobalSuffix(basis), params,
                          shots);
    return batch;
}

std::vector<PauliString>
tfimBases(int qubits)
{
    const Hamiltonian h = tfim(qubits, 1.0, 0.7);
    return coverReduce(h.strings()).bases;
}

TEST(ExecutionService, CrossSessionDedupeExecutesOnce)
{
    EfficientSU2 ansatz(AnsatzConfig{4, 2, Entanglement::Linear});
    auto prep = std::make_shared<const Circuit>(ansatz.circuit());
    const auto params = ansatz.initialParameters(11);
    const auto bases = tfimBases(4);

    IdealExecutor exec(3);
    ServiceConfig sc;
    sc.threads = 1;
    ExecutionService service(exec, sc);
    auto a = service.createSession("estimator-a");
    auto b = service.createSession("estimator-b");

    const Batch batch = basisWorkload(prep, bases, params, 512);
    const auto ra = a->run(batch);
    const std::uint64_t executed_after_a = exec.circuitsExecuted();
    const auto rb = b->run(batch); // identical batch, other tenant
    // Session B re-executed NOTHING: every job was answered from
    // session A's primaries.
    EXPECT_EQ(exec.circuitsExecuted(), executed_after_a);
    EXPECT_EQ(b->stats().cacheHits, batch.size());
    EXPECT_EQ(b->stats().crossSessionHits, batch.size());
    EXPECT_EQ(a->stats().crossSessionHits, 0u);
    EXPECT_EQ(service.stats().crossSessionHits, batch.size());

    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i)
        expectBitIdentical(ra[i], rb[i]);
}

TEST(ExecutionService, BitIdenticalToPrivateRuntimes)
{
    // The core determinism contract: a shared-service run of two
    // overlapping estimator workloads is bit-identical to the same
    // workloads on private per-estimator runtimes — across service
    // thread counts, cache on/off, and session count.
    EfficientSU2 ansatz(AnsatzConfig{4, 2, Entanglement::Linear});
    auto prep = std::make_shared<const Circuit>(ansatz.circuit());
    const auto params = ansatz.initialParameters(17);
    const auto bases = tfimBases(4);
    const DeviceModel device = DeviceModel::uniform(4, 0.02, 0.05);

    // Two overlapping batches (B is a subset of A plus a repeat).
    const Batch batch_a = basisWorkload(prep, bases, params, 1024);
    Batch batch_b = basisWorkload(prep, bases, params, 1024);
    batch_b.addPrefixed(prep, makeGlobalSuffix(bases.front()),
                        params, 2048);

    // Private reference: serial per-estimator runtimes.
    std::vector<Pmf> ref_a, ref_b;
    {
        NoisyExecutor exec(device,
                           GateNoiseMode::AnalyticDepolarizing, 7);
        RuntimeConfig rc;
        rc.cacheResults = true;
        BatchExecutor ra(exec, rc), rb(exec, rc);
        ref_a = ra.run(batch_a);
        ref_b = rb.run(batch_b);
    }

    for (int threads : {1, 4, 8}) {
        for (bool cache_on : {true, false}) {
            NoisyExecutor exec(
                device, GateNoiseMode::AnalyticDepolarizing, 7);
            ServiceConfig sc;
            sc.threads = threads;
            sc.cacheResults = cache_on;
            ExecutionService service(exec, sc);
            auto sa = service.createSession();
            auto sb = service.createSession();
            const auto got_a = sa->run(batch_a);
            const auto got_b = sb->run(batch_b);
            ASSERT_EQ(got_a.size(), ref_a.size());
            ASSERT_EQ(got_b.size(), ref_b.size());
            for (std::size_t i = 0; i < ref_a.size(); ++i)
                expectBitIdentical(ref_a[i], got_a[i]);
            for (std::size_t i = 0; i < ref_b.size(); ++i)
                expectBitIdentical(ref_b[i], got_b[i]);
        }
    }
}

TEST(ExecutionService, ConcurrentInterleavedSubmissionsDeterministic)
{
    // Two client threads hammer the service with overlapping
    // batches concurrently. Whatever interleaving the ledger sees,
    // every result must equal the serial private-runtime reference.
    EfficientSU2 ansatz(AnsatzConfig{4, 2, Entanglement::Linear});
    auto prep = std::make_shared<const Circuit>(ansatz.circuit());
    const auto bases = tfimBases(4);
    const DeviceModel device = DeviceModel::uniform(4, 0.03, 0.06);

    std::vector<std::vector<double>> points;
    for (int t = 0; t < 4; ++t) {
        auto params = ansatz.initialParameters(
            100 + static_cast<std::uint64_t>(t));
        points.push_back(params);
    }

    // Serial reference.
    std::vector<std::vector<Pmf>> reference;
    {
        NoisyExecutor exec(device,
                           GateNoiseMode::AnalyticDepolarizing, 5);
        RuntimeConfig rc;
        rc.cacheResults = true;
        BatchExecutor runtime(exec, rc);
        for (const auto &params : points)
            reference.push_back(runtime.run(
                basisWorkload(prep, bases, params, 768)));
    }

    for (int repeat = 0; repeat < 3; ++repeat) {
        NoisyExecutor exec(device,
                           GateNoiseMode::AnalyticDepolarizing, 5);
        ServiceConfig sc;
        sc.threads = 4;
        ExecutionService service(exec, sc);

        std::vector<std::vector<Pmf>> got_a(points.size());
        std::vector<std::vector<Pmf>> got_b(points.size());
        auto client = [&](std::vector<std::vector<Pmf>> *out) {
            auto session = service.createSession();
            for (std::size_t p = 0; p < points.size(); ++p)
                (*out)[p] = session->run(
                    basisWorkload(prep, bases, points[p], 768));
        };
        std::thread ta(client, &got_a);
        std::thread tb(client, &got_b);
        ta.join();
        tb.join();

        for (std::size_t p = 0; p < points.size(); ++p) {
            ASSERT_EQ(got_a[p].size(), reference[p].size());
            for (std::size_t i = 0; i < reference[p].size(); ++i) {
                expectBitIdentical(reference[p][i], got_a[p][i]);
                expectBitIdentical(reference[p][i], got_b[p][i]);
            }
        }
    }
}

TEST(ExecutionService, EstimatorsShareServiceViaRuntimeConfig)
{
    // The rewiring path estimators actually use: RuntimeConfig::
    // service routes two estimators with overlapping Hamiltonians
    // onto sessions of one service. Energies equal the
    // private-runtime energies bit for bit, and the overlapping
    // basis circuits (the Z-type bases both Hamiltonians compile to
    // the same fully-measured Global) dedupe across the estimators.
    const Hamiltonian h_full = tfim(4, 1.0, 0.7);
    Hamiltonian h_zz(4, "tfim-zz");
    for (const auto &term : h_full.terms())
        if ((term.string.supportMask() & 0xF) != 0 &&
            term.string.toString().find('X') == std::string::npos)
            h_zz.addTerm(term.string, term.coefficient);
    ASSERT_GT(h_zz.numTerms(), 0u);

    EfficientSU2 ansatz(AnsatzConfig{4, 2, Entanglement::Linear});
    const auto params = ansatz.initialParameters(21);
    const DeviceModel device = DeviceModel::uniform(4, 0.02, 0.05);

    auto energies = [&](ExecutionService *service, Executor &exec,
                        std::uint64_t *executed) {
        RuntimeConfig rc;
        rc.cacheResults = true;
        rc.service = service;
        BaselineEstimator full(h_full, ansatz.circuit(), exec, 1024,
                               BasisMode::Cover,
                               ShotAllocation::Uniform, rc);
        BaselineEstimator zz(h_zz, ansatz.circuit(), exec, 1024,
                             BasisMode::Cover,
                             ShotAllocation::Uniform, rc);
        const double ef = full.estimate(params);
        const double ez = zz.estimate(params);
        if (executed)
            *executed = exec.circuitsExecuted();
        return std::pair<double, double>{ef, ez};
    };

    NoisyExecutor private_exec(
        device, GateNoiseMode::AnalyticDepolarizing, 9);
    std::uint64_t private_executed = 0;
    const auto private_energies =
        energies(nullptr, private_exec, &private_executed);

    NoisyExecutor shared_exec(
        device, GateNoiseMode::AnalyticDepolarizing, 9);
    ServiceConfig sc;
    sc.threads = 2;
    ExecutionService service(shared_exec, sc);
    std::uint64_t shared_executed = 0;
    const auto shared_energies =
        energies(&service, shared_exec, &shared_executed);

    EXPECT_EQ(private_energies.first, shared_energies.first);
    EXPECT_EQ(private_energies.second, shared_energies.second);
    // The Z-basis Global is identical work in both estimators:
    // cross-estimator dedupe must fire and save executions relative
    // to the private path. (Under the VARSAW_SHARED_SERVICE=1 CI
    // shim the "private" arm is itself service-backed and already
    // dedupes, so only equality can be required there.)
    EXPECT_GT(service.stats().crossSessionHits, 0u);
    const char *forced = std::getenv("VARSAW_SHARED_SERVICE");
    if (forced && forced[0] == '1' && forced[1] == '\0')
        EXPECT_EQ(shared_executed, private_executed);
    else
        EXPECT_LT(shared_executed, private_executed);
}

TEST(ExecutionService, ZneEstimatorRunsThroughTheService)
{
    const Hamiltonian h = tfim(3, 1.0, 0.5);
    EfficientSU2 ansatz(AnsatzConfig{3, 1, Entanglement::Linear});
    const auto params = ansatz.initialParameters(43);
    const DeviceModel device = DeviceModel::uniform(3, 0.02, 0.05);

    auto energy = [&](ExecutionService *service, Executor &exec) {
        RuntimeConfig rc;
        rc.cacheResults = true;
        rc.service = service;
        ZneEstimator zne(h, ansatz.circuit(), exec, 2048, {1, 3, 5},
                         rc);
        return zne.estimate(params);
    };

    NoisyExecutor private_exec(
        device, GateNoiseMode::AnalyticDepolarizing, 27);
    const double private_energy = energy(nullptr, private_exec);

    NoisyExecutor shared_exec(
        device, GateNoiseMode::AnalyticDepolarizing, 27);
    ServiceConfig sc;
    sc.threads = 4;
    ExecutionService service(shared_exec, sc);
    const double shared_energy = energy(&service, shared_exec);

    EXPECT_EQ(private_energy, shared_energy);
}

TEST(ExecutionService, SelectiveHeavyLightHalvesShareOneService)
{
    const Hamiltonian h = tfim(4, 1.0, 0.7);
    EfficientSU2 ansatz(AnsatzConfig{4, 1, Entanglement::Linear});
    const auto params = ansatz.initialParameters(31);
    const DeviceModel device = DeviceModel::uniform(4, 0.03, 0.06);

    auto energy = [&](ExecutionService *service, Executor &exec) {
        VarsawConfig config;
        config.subsetShots = 512;
        config.globalShots = 1024;
        config.runtime.cacheResults = true;
        config.runtime.service = service;
        SelectiveVarsawEstimator est(h, ansatz.circuit(), exec,
                                     config, 0.6, 512);
        return est.estimate(params);
    };

    NoisyExecutor private_exec(
        device, GateNoiseMode::AnalyticDepolarizing, 13);
    const double private_energy = energy(nullptr, private_exec);

    NoisyExecutor shared_exec(
        device, GateNoiseMode::AnalyticDepolarizing, 13);
    ServiceConfig sc;
    sc.threads = 4;
    ExecutionService service(shared_exec, sc);
    const double shared_energy = energy(&service, shared_exec);

    EXPECT_EQ(private_energy, shared_energy);
    // Both halves opened sessions on the one service.
    EXPECT_EQ(service.stats().sessionsOpened, 2u);
}

TEST(ExecutionService, PerSessionStatsAndFifoFairness)
{
    IdealExecutor exec(1);
    ServiceConfig sc;
    sc.threads = 2;
    ExecutionService service(exec, sc);
    auto a = service.createSession("a");
    auto b = service.createSession("b");

    Circuit c(2);
    c.h(0).cx(0, 1).measureAll();
    Batch batch;
    for (int i = 0; i < 8; ++i)
        batch.add(c, {}, 128);

    const auto ra = a->run(batch);
    const auto rb = b->run(batch);
    for (std::size_t i = 1; i < ra.size(); ++i)
        expectBitIdentical(ra[0], ra[i]);
    for (std::size_t i = 0; i < rb.size(); ++i)
        expectBitIdentical(ra[0], rb[i]);

    // A executed the single primary; its 7 in-batch duplicates are
    // same-session hits. B's 8 are all cross-session hits.
    EXPECT_EQ(a->stats().jobsSubmitted, 8u);
    EXPECT_EQ(a->stats().cacheMisses, 1u);
    EXPECT_EQ(a->stats().cacheHits, 7u);
    EXPECT_EQ(a->stats().crossSessionHits, 0u);
    EXPECT_EQ(b->stats().cacheHits, 8u);
    EXPECT_EQ(b->stats().crossSessionHits, 8u);
    EXPECT_EQ(b->stats().shotsSaved, 8u * 128u);
    EXPECT_EQ(exec.circuitsExecuted(), 1u);

    // JobSubmitter view of the same numbers.
    EXPECT_EQ(a->cacheStats().hits, 7u);
    EXPECT_EQ(b->cacheStats().hitRate(), 1.0);
    EXPECT_EQ(a->jobsSubmitted(), 8u);
}

TEST(ServiceScheduler, RoundRobinAcrossQueues)
{
    // One worker, two queues loaded while the worker is blocked on
    // a gate task: admission must then alternate a, b, a, b, ...
    ServiceScheduler scheduler(1);
    const auto qa = scheduler.openQueue();
    const auto qb = scheduler.openQueue();

    std::promise<void> gate;
    std::shared_future<void> gate_future =
        gate.get_future().share();
    std::mutex order_mutex;
    std::vector<int> order;
    ASSERT_EQ(scheduler.enqueue(
                  qa, [gate_future] { gate_future.wait(); }),
              ServiceScheduler::Admission::Accepted);
    for (int i = 0; i < 3; ++i) {
        ASSERT_EQ(scheduler.enqueue(qa,
                                    [&] {
                                        std::lock_guard<std::mutex>
                                            lock(order_mutex);
                                        order.push_back(0);
                                    }),
                  ServiceScheduler::Admission::Accepted);
        ASSERT_EQ(scheduler.enqueue(qb,
                                    [&] {
                                        std::lock_guard<std::mutex>
                                            lock(order_mutex);
                                        order.push_back(1);
                                    }),
                  ServiceScheduler::Admission::Accepted);
    }
    gate.set_value();
    scheduler.drain();
    // After the gate task (queue a), service alternates b, a, b...
    ASSERT_EQ(order.size(), 6u);
    for (std::size_t i = 1; i < order.size(); ++i)
        EXPECT_NE(order[i], order[i - 1]) << "position " << i;
    scheduler.closeQueue(qa);
    scheduler.closeQueue(qb);
}

TEST(ServiceScheduler, IdleWorkersLendThemselvesToKernels)
{
    // A service worker executing an engaged statevector sweep must
    // receive help from its idle peers through the kernel-assist
    // hook (the unified-scheduler half of the old two-pool split).
    const int saved = kernelThreads();
    // Wide admission cap: helpers left over in the standalone
    // kernel pool from earlier tests cannot crowd the scheduler's
    // workers out of the assist slots.
    setKernelThreads(kMaxKernelThreads);
    {
        ServiceScheduler scheduler(4);
        const auto q = scheduler.openQueue();
        std::uint64_t assists = 0;
        for (int attempt = 0; attempt < 50 && assists == 0;
             ++attempt) {
            ASSERT_EQ(
                scheduler.enqueue(
                    q,
                    [] {
                        // 2^20 amplitudes: every gate sweep is an
                        // engaged kernel loop of 16 chunks.
                        Statevector sv(20);
                        Circuit c(20);
                        for (int q2 = 0; q2 < 20; ++q2)
                            c.h(q2);
                        sv.run(c, {});
                    }),
                ServiceScheduler::Admission::Accepted);
            scheduler.drain();
            assists = scheduler.kernelAssists();
        }
        EXPECT_GT(assists, 0u);
    }
    setKernelThreads(saved);
}

TEST(ExecutionService, ShutdownDrainsAndLaterSubmitsRunInline)
{
    EfficientSU2 ansatz(AnsatzConfig{4, 2, Entanglement::Linear});
    auto prep = std::make_shared<const Circuit>(ansatz.circuit());
    const auto params = ansatz.initialParameters(41);
    const auto bases = tfimBases(4);
    const Batch batch = basisWorkload(prep, bases, params, 256);

    IdealExecutor serial_exec(19);
    RuntimeConfig rc;
    rc.cacheResults = true;
    BatchExecutor serial(serial_exec, rc);
    const auto reference = serial.run(batch);

    IdealExecutor exec(19);
    ServiceConfig sc;
    sc.threads = 4;
    ExecutionService service(exec, sc);
    auto session = service.createSession();

    auto futures = session->submit(batch);
    service.shutdown(); // drains: all admitted futures resolve
    for (std::size_t i = 0; i < futures.size(); ++i)
        expectBitIdentical(reference[i], futures[i].get());
    EXPECT_TRUE(service.closed());

    // Submissions after shutdown run inline with identical results.
    const auto after = session->run(batch);
    for (std::size_t i = 0; i < after.size(); ++i)
        expectBitIdentical(reference[i], after[i]);
}

TEST(ExecutionService, ShutdownWhileConcurrentlySubmittingIsClean)
{
    // Clients submit while another thread shuts the service down.
    // Every future must resolve to the serial reference value
    // whether its job was admitted, drained, or executed inline —
    // and nothing may leak or race (ASan/TSan-sensitive path).
    EfficientSU2 ansatz(AnsatzConfig{4, 1, Entanglement::Linear});
    auto prep = std::make_shared<const Circuit>(ansatz.circuit());
    const auto bases = tfimBases(4);

    std::vector<std::vector<double>> points;
    for (int t = 0; t < 6; ++t)
        points.push_back(ansatz.initialParameters(
            200 + static_cast<std::uint64_t>(t)));

    std::vector<std::vector<Pmf>> reference;
    {
        IdealExecutor exec(23);
        RuntimeConfig rc;
        rc.cacheResults = true;
        BatchExecutor runtime(exec, rc);
        for (const auto &params : points)
            reference.push_back(runtime.run(
                basisWorkload(prep, bases, params, 256)));
    }

    for (int repeat = 0; repeat < 4; ++repeat) {
        IdealExecutor exec(23);
        ServiceConfig sc;
        sc.threads = 2;
        ExecutionService service(exec, sc);

        std::atomic<int> done_clients{0};
        auto client = [&](int offset) {
            auto session = service.createSession();
            for (std::size_t p = 0; p < points.size(); ++p) {
                const std::size_t idx =
                    (p + static_cast<std::size_t>(offset)) %
                    points.size();
                const auto got = session->run(basisWorkload(
                    prep, bases, points[idx], 256));
                for (std::size_t i = 0; i < got.size(); ++i)
                    expectBitIdentical(reference[idx][i], got[i]);
            }
            done_clients.fetch_add(1);
        };
        std::thread ta(client, 0);
        std::thread tb(client, 3);
        // Shut down mid-flight: admitted work drains, later
        // submissions fall back to inline execution.
        service.shutdown();
        ta.join();
        tb.join();
        EXPECT_EQ(done_clients.load(), 2);
    }
}

TEST(ExecutionService, RejectsForeignBackends)
{
    IdealExecutor mine(1), other(2);
    ServiceConfig sc;
    sc.threads = 1;
    ExecutionService service(mine, sc);
    RuntimeConfig rc;
    EXPECT_DEATH(
        { auto s = service.openSession(other, rc); }, "backend");
}

TEST(ExecutionService, ClearSharedCachesFencesDedupeNotResults)
{
    EfficientSU2 ansatz(AnsatzConfig{4, 1, Entanglement::Linear});
    auto prep = std::make_shared<const Circuit>(ansatz.circuit());
    const auto params = ansatz.initialParameters(51);
    const Batch batch =
        basisWorkload(prep, tfimBases(4), params, 256);

    IdealExecutor exec(29);
    ServiceConfig sc;
    sc.threads = 1;
    ExecutionService service(exec, sc);
    auto session = service.createSession();

    const auto first = session->run(batch);
    const std::uint64_t executed = exec.circuitsExecuted();
    ASSERT_GT(executed, 0u);

    // Fenced: the repeat re-executes everything (each phase pays
    // its own way) yet reproduces every result bit for bit.
    service.clearSharedCaches();
    const auto second = session->run(batch);
    EXPECT_EQ(exec.circuitsExecuted(), 2 * executed);
    for (std::size_t i = 0; i < first.size(); ++i)
        expectBitIdentical(first[i], second[i]);

    // Unfenced: the next repeat is answered entirely from cache.
    const auto third = session->run(batch);
    EXPECT_EQ(exec.circuitsExecuted(), 2 * executed);
    for (std::size_t i = 0; i < first.size(); ++i)
        expectBitIdentical(first[i], third[i]);
}

TEST(Executor, ExecutorsCanShareOneSimEngine)
{
    // setSimEngine() installs one engine — hence one StateCache —
    // into several executors. Prepared states are pure functions of
    // (prefix ops, params), independent of any backend's noise or
    // seed, so sharing skips preparations without being able to
    // change a result.
    EfficientSU2 ansatz(AnsatzConfig{4, 2, Entanglement::Linear});
    auto prep = std::make_shared<const Circuit>(ansatz.circuit());
    const auto params = ansatz.initialParameters(61);
    const DeviceModel device = DeviceModel::uniform(4, 0.02, 0.05);
    const Batch batch =
        basisWorkload(prep, tfimBases(4), params, 512);

    NoisyExecutor a(device, GateNoiseMode::AnalyticDepolarizing, 5);
    NoisyExecutor b_shared(device,
                           GateNoiseMode::AnalyticDepolarizing, 6);
    NoisyExecutor b_private(device,
                            GateNoiseMode::AnalyticDepolarizing, 6);
    b_shared.setSimEngine(a.sharedSimEngine());
    ASSERT_EQ(&b_shared.simEngine(), &a.simEngine());

    RuntimeConfig rc;
    BatchExecutor ra(a, rc), rbs(b_shared, rc), rbp(b_private, rc);
    ra.run(batch);
    const std::uint64_t preps_after_a =
        a.simEngine().stats().prepSimulations;
    ASSERT_GT(preps_after_a, 0u);

    const auto res_shared = rbs.run(batch);
    // b's jobs found a's prepared state: no new preparation ran.
    EXPECT_EQ(a.simEngine().stats().prepSimulations, preps_after_a);

    // And sharing changed nothing: identical to an executor with
    // its own engine and the same seed.
    const auto res_private = rbp.run(batch);
    ASSERT_EQ(res_private.size(), res_shared.size());
    for (std::size_t i = 0; i < res_private.size(); ++i)
        expectBitIdentical(res_private[i], res_shared[i]);
}

TEST(JobLedger, LruEvictsColdKeysKeepsHotOnes)
{
    // The submission-order-deterministic LRU that replaced the
    // reproducibility bulk-clear: pushing past the cap evicts the
    // least-recently-claimed key only, so a hot key survives any
    // number of one-shot claims.
    ResultCache cache(8);
    JobLedger ledger(2);
    auto key = [](std::uint64_t n) {
        return JobKey{n, 0, 64};
    };

    auto hot = ledger.claim(key(1), 64, cache);
    ASSERT_FALSE(hot.duplicate());
    hot.publish->set_value(Pmf(1));
    ledger.store(key(1), Pmf(1), cache);

    for (std::uint64_t cold = 2; cold < 6; ++cold) {
        // Touch the hot key, then claim a fresh cold one: the cap
        // (2) forces an eviction that must always pick the cold
        // predecessor, never the just-touched hot key.
        auto again = ledger.claim(key(1), 64, cache);
        ASSERT_TRUE(again.duplicate());
        auto fresh = ledger.claim(key(cold), 64, cache);
        ASSERT_FALSE(fresh.duplicate());
        fresh.publish->set_value(Pmf(1));
        ledger.store(key(cold), Pmf(1), cache);
        EXPECT_EQ(ledger.size(), 2u);
    }
    EXPECT_TRUE(ledger.claim(key(1), 64, cache).duplicate());
    // Cold keys were evicted: claiming one again is a fresh miss.
    auto evicted = ledger.claim(key(2), 64, cache);
    EXPECT_FALSE(evicted.duplicate());
    evicted.publish->set_value(Pmf(1));
}

TEST(BatchExecutor, HotResultsSurviveTheCacheBoundary)
{
    // End-to-end view of the same property: a runtime whose cap is
    // smaller than the tick's key count still answers the repeated
    // hot submissions from cache instead of bulk-clearing — and
    // with content-derived streams the results are bit-identical
    // to an uncapped run.
    IdealExecutor exec(7);
    RuntimeConfig config;
    config.cacheResults = true;
    config.cacheMaxEntries = 4;
    BatchExecutor runtime(exec, config);

    Circuit hot(2);
    hot.h(0).cx(0, 1).measureAll();
    auto coldCircuit = [](double theta) {
        Circuit c(2);
        c.ry(0, theta).measureAll();
        return c;
    };

    const Pmf first = runtime.runOne(hot, {}, 256);
    std::uint64_t executed = exec.circuitsExecuted();
    for (int i = 0; i < 12; ++i) {
        // Interleave: hot key re-claimed, then a cold one-shot key.
        const Pmf again = runtime.runOne(hot, {}, 256);
        expectBitIdentical(first, again);
        runtime.runOne(coldCircuit(0.1 * (i + 1)), {}, 256);
    }
    // The hot key never re-executed: 12 cold executions only.
    EXPECT_EQ(exec.circuitsExecuted(), executed + 12);
    EXPECT_GE(runtime.cacheStats().hits, 12u);
}

TEST(ServiceScheduler, QueueGaugesTrackAndTypedShedDoesNotLeak)
{
    // The admission-visibility gauges: service.queue_depth counts
    // exactly the waiting chunks, a Full (shed) admission moves
    // nothing, and a drained scheduler reads 0. The labeled queue
    // also feeds the per-session queue_wait series.
    const bool metricsWas = telemetry::metricsEnabled();
    const bool profilerWas = telemetry::profilerEnabled();
    telemetry::setMetricsEnabled(true);
    telemetry::setProfilerEnabled(true);
    auto &reg = telemetry::MetricsRegistry::instance();
    auto &depth = reg.gauge("service.queue_depth");
    depth.reset();
    auto &wait = reg.histogram(
        "profile.phase.queue_wait_ns{session=gauge_test}");
    wait.reset();

    {
        ServiceScheduler scheduler(1, 2);
        const auto q = scheduler.openQueue("gauge_test");

        // Park the single worker on a gate task; wait until it is
        // RUNNING (off the queue) so the depth cap below is exact.
        std::promise<void> gate;
        std::shared_future<void> gate_future =
            gate.get_future().share();
        std::atomic<bool> started{false};
        ASSERT_EQ(scheduler.enqueue(q,
                                    [&started, gate_future] {
                                        started.store(
                                            true,
                                            std::memory_order_release);
                                        gate_future.wait();
                                    }),
                  ServiceScheduler::Admission::Accepted);
        while (!started.load(std::memory_order_acquire))
            std::this_thread::yield();

        ASSERT_EQ(scheduler.enqueue(q, [] {}),
                  ServiceScheduler::Admission::Accepted);
        ASSERT_EQ(scheduler.enqueue(q, [] {}),
                  ServiceScheduler::Admission::Accepted);
        EXPECT_EQ(scheduler.queueDepth(q), 2u);
        EXPECT_EQ(depth.value(), 2);

        // At the cap: a typed shed — and the gauge must not move,
        // in either direction.
        EXPECT_EQ(scheduler.enqueue(q, [] {}),
                  ServiceScheduler::Admission::Full);
        EXPECT_EQ(depth.value(), 2);

        gate.set_value();
        scheduler.drain();
        EXPECT_EQ(scheduler.queueDepth(q), 0u);
        EXPECT_EQ(depth.value(), 0);
        // All three admitted chunks landed in the labeled series.
        EXPECT_EQ(wait.count(), 3u);
        scheduler.closeQueue(q);
    }

    telemetry::setProfilerEnabled(profilerWas);
    telemetry::setMetricsEnabled(metricsWas);
}

TEST(ExecutionService, SloAccountingPerLatencyClass)
{
    // Latency-class accounting: every batch lands in its class's
    // service.latency_ns histogram; a batch over its class target
    // bumps service.slo_burn. Pure observation — the results above
    // already pin that nothing reads these back.
    const bool metricsWas = telemetry::metricsEnabled();
    telemetry::setMetricsEnabled(true);
    auto &reg = telemetry::MetricsRegistry::instance();
    auto &ilat = reg.histogram(telemetry::labeled(
        "service.latency_ns", {{"class", "interactive"}}));
    auto &iburn = reg.counter(telemetry::labeled(
        "service.slo_burn", {{"class", "interactive"}}));
    auto &blat = reg.histogram(telemetry::labeled(
        "service.latency_ns", {{"class", "bulk"}}));
    auto &bburn = reg.counter(telemetry::labeled(
        "service.slo_burn", {{"class", "bulk"}}));
    ilat.reset();
    iburn.reset();
    blat.reset();
    bburn.reset();

    IdealExecutor exec(5);
    ServiceConfig sc;
    sc.threads = 2;
    sc.interactiveSloNs = 1; // any real batch busts a 1 ns target
    sc.bulkSloNs = 0;        // 0 = burn counting disabled
    ExecutionService service(exec, sc);
    auto fast =
        service.createSession("fast", LatencyClass::Interactive);
    EXPECT_EQ(fast->latencyClass(), LatencyClass::Interactive);
    auto slow = service.createSession("slow");
    EXPECT_EQ(slow->latencyClass(), LatencyClass::Bulk);

    Circuit c(2);
    c.h(0).cx(0, 1).measureAll();
    Batch batch;
    for (int i = 0; i < 4; ++i)
        batch.add(c, {}, 64);

    fast->run(batch);
    service.drain(); // completion is recorded by the last chunk
    EXPECT_EQ(ilat.count(), 1u);
    EXPECT_EQ(iburn.value(), 1u);
    EXPECT_EQ(blat.count(), 0u);

    slow->run(batch);
    service.drain();
    EXPECT_EQ(blat.count(), 1u);
    EXPECT_EQ(bburn.value(), 0u); // over a disabled target: no burn
    EXPECT_EQ(ilat.count(), 1u);  // and no class cross-talk

    telemetry::setMetricsEnabled(metricsWas);
}

TEST(LatencyClass, NamesAreStable)
{
    EXPECT_STREQ(latencyClassName(LatencyClass::Interactive),
                 "interactive");
    EXPECT_STREQ(latencyClassName(LatencyClass::Bulk), "bulk");
}

#if defined(VARSAW_TEST_UNIX_SOCKETS)

/** Netcat-equivalent introspection client: one command, read all. */
std::string
introspectQuery(const std::string &path, const std::string &command)
{
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return {};
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (connect(fd, reinterpret_cast<sockaddr *>(&addr),
                sizeof(addr)) != 0) {
        ::close(fd);
        return {};
    }
    const std::string line = command + "\n";
    (void)send(fd, line.data(), line.size(), 0);
    std::string out;
    char buf[4096];
    for (;;) {
        const ssize_t n = recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return out;
}

TEST(ExecutionService, IntrospectionEndpointServesLiveSessions)
{
    // End-to-end wiring: VARSAW_INTROSPECT-style path slot ->
    // service starts the endpoint -> a socket client (what
    // varsaw-top runs) sees the live session registry.
    const std::string path = "/tmp/varsaw_test_svc_intro.sock";
    const std::string savedPath = telemetry::introspectPath();
    telemetry::setIntrospectPath(path);
    {
        IdealExecutor exec(3);
        ServiceConfig sc;
        sc.threads = 1;
        ExecutionService service(exec, sc);
        auto session = service.createSession(
            "live_a", LatencyClass::Interactive);
        Circuit c(2);
        c.h(0).measureAll();
        Batch batch;
        batch.add(c, {}, 32);
        session->run(batch);

        const std::string sessions =
            introspectQuery(path, "sessions");
        EXPECT_NE(sessions.find("\"session\": \"live_a\""),
                  std::string::npos)
            << sessions;
        EXPECT_NE(sessions.find("\"class\": \"interactive\""),
                  std::string::npos);
        EXPECT_NE(sessions.find("\"jobs_submitted\": 1"),
                  std::string::npos);

        const std::string top = introspectQuery(path, "top");
        EXPECT_NE(top.find("live_a"), std::string::npos) << top;
    }
    // The endpoint dies with the service: the socket is unlinked
    // and a fresh connect fails.
    EXPECT_TRUE(introspectQuery(path, "top").empty());
    telemetry::setIntrospectPath(savedPath);
}

#endif // VARSAW_TEST_UNIX_SOCKETS

} // namespace
} // namespace varsaw
