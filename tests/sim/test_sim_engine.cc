/**
 * @file
 * Tests for the prefix-shared simulation engine: the prep/suffix
 * split, prepared-state caching (exactly one prep per key, under
 * any thread count), and bit-identity with the legacy full-circuit
 * path for both job shapes with the cache on and off.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mitigation/executor.hh"
#include "mitigation/jigsaw.hh"
#include "noise/device_model.hh"
#include "runtime/batch_executor.hh"
#include "sim/circuit_hash.hh"
#include "sim/sim_engine.hh"
#include "sim/state_cache.hh"
#include "vqa/ansatz.hh"

namespace varsaw {
namespace {

Circuit
su2Ansatz(int qubits)
{
    return EfficientSU2(AnsatzConfig{qubits, 2, Entanglement::Linear})
        .circuit();
}

std::vector<double>
testParams(int qubits)
{
    return EfficientSU2(
               AnsatzConfig{qubits, 2, Entanglement::Linear})
        .initialParameters(5);
}

TEST(PrefixSplit, GlobalCircuitSplitsAtBasisRotations)
{
    const Circuit ansatz = su2Ansatz(4);
    const Circuit global =
        makeGlobalCircuit(ansatz, PauliString::parse("XYZX"));
    const PrefixSplit split = splitPrepSuffix(global);
    // The prefix is exactly the ansatz; the suffix holds the
    // basis-change gates (H for X, Sdg+H for Y, nothing for Z).
    EXPECT_EQ(split.prefixOps, ansatz.ops().size());
    EXPECT_EQ(global.ops().size() - split.prefixOps, 4u);
}

TEST(PrefixSplit, AllZBasisHasEmptySuffix)
{
    const Circuit ansatz = su2Ansatz(4);
    const Circuit global =
        makeGlobalCircuit(ansatz, PauliString::parse("ZZZZ"));
    const PrefixSplit split = splitPrepSuffix(global);
    EXPECT_EQ(split.prefixOps, global.ops().size());
}

TEST(PrefixSplit, SamePrefixKeyAcrossBases)
{
    const Circuit ansatz = su2Ansatz(4);
    const auto params = testParams(4);
    const Circuit a =
        makeGlobalCircuit(ansatz, PauliString::parse("XYZX"));
    const Circuit b =
        makeGlobalCircuit(ansatz, PauliString::parse("YXXZ"));
    EXPECT_EQ(prepKeyOf(nullptr, a, params).combined(),
              prepKeyOf(nullptr, b, params).combined());

    // The explicit (prep, suffix) shape shares the same key.
    const Circuit suffix = makeGlobalSuffix(PauliString::parse("XYZX"));
    EXPECT_EQ(prepKeyOf(&ansatz, suffix, params).combined(),
              prepKeyOf(nullptr, a, params).combined());

    // Different parameters are a different prepared state.
    auto other = params;
    other[0] += 0.25;
    EXPECT_NE(prepKeyOf(nullptr, a, params).combined(),
              prepKeyOf(nullptr, a, other).combined());
}

TEST(SimEngine, MarginalMatchesFullRunBothShapesAndCacheModes)
{
    const int qubits = 5;
    const Circuit ansatz = su2Ansatz(qubits);
    const auto params = testParams(qubits);
    const std::vector<PauliString> bases = {
        PauliString::parse("XYZXY"), PauliString::parse("ZZZZZ"),
        PauliString::parse("YYXXZ"), PauliString::parse("XZIZX")};

    for (bool cache_on : {false, true}) {
        SimEngine engine(SimEngineConfig{cache_on, 32});
        for (const auto &basis : bases) {
            const Circuit full = makeGlobalCircuit(ansatz, basis);
            Statevector reference(qubits);
            reference.run(full, params);
            const auto expected = reference.marginalProbabilities(
                full.measuredQubits());

            const auto plain =
                engine.measuredMarginal(nullptr, full, params);
            const Circuit suffix = makeGlobalSuffix(basis);
            const auto prefixed =
                engine.measuredMarginal(&ansatz, suffix, params);

            ASSERT_EQ(plain.size(), expected.size());
            ASSERT_EQ(prefixed.size(), expected.size());
            for (std::size_t i = 0; i < expected.size(); ++i) {
                EXPECT_EQ(plain[i], expected[i]);
                EXPECT_EQ(prefixed[i], expected[i]);
            }
        }
    }
}

TEST(SimEngine, SubsetSuffixMatchesSubsetCircuit)
{
    const int qubits = 5;
    const Circuit ansatz = su2Ansatz(qubits);
    const auto params = testParams(qubits);
    const PauliString subset = PauliString::parse("IXYII");

    SimEngine engine;
    const Circuit full = makeSubsetCircuit(ansatz, subset);
    Statevector reference(qubits);
    reference.run(full, params);
    const auto expected =
        reference.marginalProbabilities(full.measuredQubits());

    const auto got = engine.measuredMarginal(
        &ansatz, makeSubsetSuffix(subset), params);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(got[i], expected[i]);
}

TEST(SimEngine, OnePrepSimulationPerKey)
{
    const int qubits = 4;
    const Circuit ansatz = su2Ansatz(qubits);
    const auto params = testParams(qubits);

    SimEngine engine;
    const std::vector<PauliString> bases = {
        PauliString::parse("XXXX"), PauliString::parse("YYYY"),
        PauliString::parse("ZZZZ"), PauliString::parse("XYZX")};
    for (const auto &basis : bases)
        engine.measuredMarginal(&ansatz, makeGlobalSuffix(basis),
                                params);

    const SimEngineStats stats = engine.stats();
    EXPECT_EQ(stats.prepSimulations, 1u);
    EXPECT_EQ(stats.suffixApplications, bases.size());
    EXPECT_EQ(stats.cache.misses, 1u);
    EXPECT_EQ(stats.cache.hits, bases.size() - 1);

    // A second parameter point is a new key: exactly one more prep.
    auto other = params;
    other[1] -= 0.5;
    for (const auto &basis : bases)
        engine.measuredMarginal(&ansatz, makeGlobalSuffix(basis),
                                other);
    EXPECT_EQ(engine.stats().prepSimulations, 2u);
}

TEST(SimEngine, MultiBasisBatchPreparesOncePerThreadCount)
{
    // The acceptance property: with the cache enabled, one
    // multi-basis objective evaluation costs exactly one full
    // state-prep simulation per unique (prefix, params) key — at
    // every thread count, including under the prefix-aware
    // scheduler's grouping.
    const int qubits = 6;
    const Circuit ansatz = su2Ansatz(qubits);
    const auto params = testParams(qubits);
    auto prep = std::make_shared<const Circuit>(ansatz);
    const std::vector<PauliString> bases = {
        PauliString::parse("XYZXYZ"), PauliString::parse("ZZZZZZ"),
        PauliString::parse("YYXXZZ"), PauliString::parse("XXYYXX"),
        PauliString::parse("ZXZXZX"), PauliString::parse("YZYZYZ")};

    for (int threads : {1, 4, 8}) {
        NoisyExecutor exec(DeviceModel::uniform(qubits, 0.02, 0.05),
                           GateNoiseMode::AnalyticDepolarizing, 11);
        RuntimeConfig config;
        config.threads = threads;
        BatchExecutor runtime(exec, config);

        Batch batch;
        for (const auto &basis : bases)
            batch.addPrefixed(prep, makeGlobalSuffix(basis), params,
                              1024);
        runtime.run(batch);

        const SimEngineStats stats = exec.simEngine().stats();
        EXPECT_EQ(stats.prepSimulations, 1u)
            << "threads=" << threads;
        EXPECT_EQ(stats.suffixApplications, bases.size())
            << "threads=" << threads;
    }
}

TEST(SimEngine, CacheDisabledRunsFullSimulations)
{
    const int qubits = 4;
    const Circuit ansatz = su2Ansatz(qubits);
    const auto params = testParams(qubits);

    SimEngine engine(SimEngineConfig{false, 32});
    for (int i = 0; i < 3; ++i)
        engine.measuredMarginal(
            &ansatz, makeGlobalSuffix(PauliString::parse("XYZX")),
            params);
    const SimEngineStats stats = engine.stats();
    EXPECT_EQ(stats.prepSimulations, 0u);
    EXPECT_EQ(stats.fullSimulations, 3u);
}

TEST(JobKey, PrefixedJobKeyMatchesFlattenedCircuit)
{
    const int qubits = 4;
    const Circuit ansatz = su2Ansatz(qubits);
    const auto params = testParams(qubits);
    const PauliString basis = PauliString::parse("XYZX");

    CircuitJob prefixed{makeGlobalSuffix(basis), params, 2048,
                        std::make_shared<const Circuit>(ansatz)};
    CircuitJob plain{makeGlobalCircuit(ansatz, basis), params, 2048,
                     nullptr};

    EXPECT_EQ(jobCircuitHash(prefixed),
              circuitStructuralHash(plain.circuit));
    const JobKey a = makeJobKey(prefixed);
    const JobKey b = makeJobKey(plain);
    EXPECT_TRUE(a == b);

    // flattened() reconstructs the plain circuit exactly.
    EXPECT_EQ(circuitStructuralHash(prefixed.flattened()),
              circuitStructuralHash(plain.circuit));
}

TEST(ExecutorJob, PrefixedAndPlainJobsBitIdentical)
{
    // Same stream + same denoted circuit => bit-identical sampled
    // PMFs, whichever shape the job arrives in and whether or not
    // prepared states are shared.
    const int qubits = 5;
    const Circuit ansatz = su2Ansatz(qubits);
    const auto params = testParams(qubits);
    const PauliString basis = PauliString::parse("XYZXY");
    auto prep = std::make_shared<const Circuit>(ansatz);

    for (bool cache_on : {true, false}) {
        NoisyExecutor exec(DeviceModel::uniform(qubits, 0.02, 0.05),
                           GateNoiseMode::AnalyticDepolarizing, 7);
        exec.simEngine().setCacheEnabled(cache_on);

        const Pmf plain = exec.executeJob(
            makeGlobalCircuit(ansatz, basis), params, 4096, 3);
        const Pmf prefixed = exec.executeJob(
            CircuitJob{makeGlobalSuffix(basis), params, 4096, prep},
            3);
        ASSERT_EQ(plain.raw().size(), prefixed.raw().size());
        for (const auto &[outcome, p] : plain.raw())
            EXPECT_EQ(prefixed.prob(outcome), p);
    }
}

TEST(ExecutorJob, TrajectoryModeHandlesPrefixedJobs)
{
    const int qubits = 4;
    const Circuit ansatz = su2Ansatz(qubits);
    const auto params = testParams(qubits);
    const PauliString basis = PauliString::parse("XYZX");
    auto prep = std::make_shared<const Circuit>(ansatz);

    NoisyExecutor exec(DeviceModel::uniform(qubits, 0.02, 0.05),
                       GateNoiseMode::PauliTrajectories, 13, 16);
    const Pmf plain = exec.executeJob(
        makeGlobalCircuit(ansatz, basis), params, 0, 9);
    const Pmf prefixed = exec.executeJob(
        CircuitJob{makeGlobalSuffix(basis), params, 0, prep}, 9);
    ASSERT_EQ(plain.raw().size(), prefixed.raw().size());
    for (const auto &[outcome, p] : plain.raw())
        EXPECT_EQ(prefixed.prob(outcome), p);
}

TEST(SimEngine, PrepWithTrailingBasisGatesSharesKeyAndMatches)
{
    // An ansatz that itself ends with H: the trailing gate belongs
    // to the suffix in both job shapes, so the plain and prefixed
    // forms share one prep key and still agree with a full run.
    Circuit ansatz(3);
    ansatz.ryParam(0, 0).cx(0, 1).cx(1, 2).h(2);
    const std::vector<double> params{0.37};
    const PauliString basis = PauliString::parse("XYZ");

    const Circuit full = makeGlobalCircuit(ansatz, basis);
    EXPECT_EQ(prepKeyOf(&ansatz, makeGlobalSuffix(basis), params)
                  .combined(),
              prepKeyOf(nullptr, full, params).combined());

    Statevector reference(3);
    reference.run(full, params);
    const auto expected =
        reference.marginalProbabilities(full.measuredQubits());

    SimEngine engine;
    const auto plain = engine.measuredMarginal(nullptr, full, params);
    const auto prefixed = engine.measuredMarginal(
        &ansatz, makeGlobalSuffix(basis), params);
    // One prep simulation serves both shapes.
    EXPECT_EQ(engine.stats().prepSimulations, 1u);
    ASSERT_EQ(plain.size(), expected.size());
    ASSERT_EQ(prefixed.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(plain[i], expected[i]);
        EXPECT_EQ(prefixed[i], expected[i]);
    }
}

} // namespace
} // namespace varsaw
