/**
 * @file
 * Bit-identity of the thread-parallel statevector kernels.
 *
 * The intra-kernel parallel layer (util/parallel.hh) promises that
 * results are a pure function of the inputs — never of the
 * kernel-thread count. Elementwise kernels get this for free
 * (disjoint writes, identical per-element arithmetic); reductions
 * and histograms get it from the fixed chunk decomposition (chunk
 * size depends only on the loop's total) plus fixed-order merging.
 * These tests pin the contract: every kernel, at register widths
 * just below and above the engagement threshold (so both the plain
 * and the chunked algorithm are exercised), across kernel threads
 * {1, 2, 8}, produces bit-identical output — plus direct
 * determinism checks of the primitive on ragged (non-power-of-two)
 * totals where the last chunk is odd-sized.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <complex>
#include <cstring>
#include <vector>

#include "sim/sim_engine.hh"
#include "sim/statevector.hh"
#include "util/parallel.hh"

namespace varsaw {
namespace {

/** Restore the process-wide kernel-thread setting on scope exit. */
class KernelThreadsGuard
{
  public:
    KernelThreadsGuard() : saved_(kernelThreads()) {}
    ~KernelThreadsGuard() { setKernelThreads(saved_); }

  private:
    int saved_;
};

const std::vector<int> kThreadCounts = {1, 2, 8};

/**
 * Widths around the engagement threshold (kParallelEngage = 2^16
 * items): at 15 qubits every loop is below it (plain serial
 * algorithm), at 16 the full-sweep kernels are chunked while the
 * pair kernels are not, at 17 everything is chunked.
 */
const std::vector<int> kWidths = {15, 16, 17};

/** Deterministic dense state: rotations, entanglers, phases. */
Statevector
makeState(int n)
{
    Circuit c(n);
    for (int q = 0; q < n; ++q)
        c.h(q);
    for (int q = 0; q < n; ++q)
        c.ry(q, 0.23 + 0.13 * q);
    for (int q = 0; q + 1 < n; ++q)
        c.cx(q, q + 1);
    for (int q = 0; q < n; ++q)
        c.rz(q, 0.31 - 0.05 * q);
    c.rzz(0, n - 1, 0.77);
    Statevector sv(n);
    sv.run(c, {});
    return sv;
}

/** Exact amplitude equality (bitwise, via memcmp). */
void
expectBitIdentical(const Statevector &a, const Statevector &b,
                   const char *what, int n, int threads)
{
    ASSERT_EQ(a.amplitudes().size(), b.amplitudes().size());
    const int same = std::memcmp(
        a.amplitudes().data(), b.amplitudes().data(),
        a.amplitudes().size() * sizeof(Statevector::Amplitude));
    EXPECT_EQ(same, 0) << what << " diverged at n=" << n
                       << " kernelThreads=" << threads;
}

void
expectBitIdentical(const std::vector<double> &a,
                   const std::vector<double> &b, const char *what,
                   int n, int threads)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0)
            ++mismatches;
    EXPECT_EQ(mismatches, 0u)
        << what << " diverged at n=" << n
        << " kernelThreads=" << threads;
}

/**
 * Run @p mutate on a fresh copy of @p input at every thread count
 * and assert the resulting states are bit-identical to the
 * single-thread reference.
 */
template <typename Fn>
void
sweepMutating(const Statevector &input, const char *what, Fn mutate)
{
    KernelThreadsGuard guard;
    const int n = input.numQubits();
    setKernelThreads(1);
    Statevector reference(input);
    mutate(reference);
    for (const int t : kThreadCounts) {
        setKernelThreads(t);
        Statevector got(input);
        mutate(got);
        expectBitIdentical(reference, got, what, n, t);
    }
}

TEST(ParallelKernels, Apply1QBitIdenticalAcrossThreads)
{
    for (const int n : kWidths) {
        const Statevector input = makeState(n);
        for (const int q : {0, 1, n / 2, n - 1})
            sweepMutating(input, "apply1Q",
                          [&](Statevector &sv) {
                              sv.apply1Q(q, gates::ry(0.41));
                          });
    }
}

TEST(ParallelKernels, TwoQubitKernelsBitIdenticalAcrossThreads)
{
    for (const int n : kWidths) {
        const Statevector input = makeState(n);
        sweepMutating(input, "applyCX", [&](Statevector &sv) {
            sv.applyCX(0, n - 1);
        });
        sweepMutating(input, "applyCZ", [&](Statevector &sv) {
            sv.applyCZ(1, n / 2);
        });
        sweepMutating(input, "applyRZZ", [&](Statevector &sv) {
            sv.applyRZZ(1, n - 2, 0.53);
        });
        sweepMutating(input, "applySwap", [&](Statevector &sv) {
            sv.applySwap(0, n - 1);
        });
    }
}

TEST(ParallelKernels, DiagonalRunBitIdenticalAcrossThreads)
{
    for (const int n : kWidths) {
        const Statevector input = makeState(n);
        // RZ layer + CZ + RZZ fuses into one mixed diagonal pass.
        Circuit mixed(n);
        for (int q = 0; q < n; ++q)
            mixed.rz(q, 0.11 * (q + 1));
        mixed.cz(0, n - 1);
        mixed.rzz(1, n - 2, 0.37);
        sweepMutating(input, "diagonalRunMixed",
                      [&](Statevector &sv) {
                          sv.applyOps(mixed.ops().data(),
                                      mixed.ops().size(), {});
                      });
        // Bit-only run (the hoisted-dispatch specialization).
        Circuit bits(n);
        for (int q = 0; q < n; ++q)
            bits.rz(q, 0.09 * (q + 1));
        bits.s(0);
        bits.t(1);
        sweepMutating(input, "diagonalRunBits",
                      [&](Statevector &sv) {
                          sv.applyOps(bits.ops().data(),
                                      bits.ops().size(), {});
                      });
    }
}

TEST(ParallelKernels, SameQubit1QRunFusionMatchesUnfused)
{
    // The Matrix2-product fusion changes the float path (one fused
    // multiply instead of k), so it is NOT bit-pinned against the
    // unfused gates — but it must be unitary-equivalent and, like
    // every kernel, bit-identical across thread counts.
    for (const int n : {6, 16}) {
        const Statevector input = makeState(n);
        Circuit fused(n);
        fused.ry(2, 0.31).rz(2, -0.44).ry(2, 1.02);
        Statevector a(input);
        a.applyOps(fused.ops().data(), fused.ops().size(), {});
        Statevector b(input);
        b.apply1Q(2, gates::ry(0.31));
        b.apply1Q(2, gates::rz(-0.44));
        b.apply1Q(2, gates::ry(1.02));
        double max_err = 0.0;
        for (std::size_t i = 0; i < a.amplitudes().size(); ++i)
            max_err = std::max(
                max_err, std::abs(a.amplitudes()[i] -
                                  b.amplitudes()[i]));
        EXPECT_LT(max_err, 1e-12) << "n=" << n;
        sweepMutating(input, "sameQubitRun", [&](Statevector &sv) {
            sv.applyOps(fused.ops().data(), fused.ops().size(),
                        {});
        });
    }
}

TEST(ParallelKernels, ApplyPauliBitIdenticalAcrossThreads)
{
    for (const int n : kWidths) {
        const Statevector input = makeState(n);
        PauliString permuting(n);
        PauliString zonly(n);
        for (int q = 0; q < n; ++q) {
            permuting.setOp(q, q % 3 == 0
                                   ? PauliOp::X
                                   : (q % 3 == 1 ? PauliOp::Y
                                                 : PauliOp::Z));
            zonly.setOp(q, q % 2 == 0 ? PauliOp::Z : PauliOp::I);
        }
        sweepMutating(input, "applyPauliPermuting",
                      [&](Statevector &sv) {
                          sv.applyPauli(permuting);
                      });
        sweepMutating(input, "applyPauliZOnly",
                      [&](Statevector &sv) {
                          sv.applyPauli(zonly);
                      });
    }
}

TEST(ParallelKernels, ReductionsBitIdenticalAcrossThreads)
{
    KernelThreadsGuard guard;
    for (const int n : kWidths) {
        const Statevector input = makeState(n);
        Statevector other = input;
        other.apply1Q(0, gates::ry(0.5));
        PauliString p(n);
        for (int q = 0; q < n; ++q)
            p.setOp(q, q % 2 == 0 ? PauliOp::Z : PauliOp::X);

        setKernelThreads(1);
        const double norm_ref = input.norm();
        const double expect_ref = input.expectationPauli(p);
        const auto inner_ref = input.innerProduct(other);
        for (const int t : kThreadCounts) {
            setKernelThreads(t);
            EXPECT_EQ(input.norm(), norm_ref)
                << "norm n=" << n << " t=" << t;
            EXPECT_EQ(input.expectationPauli(p), expect_ref)
                << "expectation n=" << n << " t=" << t;
            const auto inner = input.innerProduct(other);
            EXPECT_EQ(inner.real(), inner_ref.real())
                << "inner n=" << n << " t=" << t;
            EXPECT_EQ(inner.imag(), inner_ref.imag())
                << "inner n=" << n << " t=" << t;
        }
    }
}

TEST(ParallelKernels, HistogramsBitIdenticalAcrossThreads)
{
    KernelThreadsGuard guard;
    for (const int n : kWidths) {
        const Statevector input = makeState(n);
        const std::vector<int> identity = {0, 1, 2, 3, 4, 5};
        const std::vector<int> permuted = {n - 1, 3, 0, n / 2};

        setKernelThreads(1);
        const auto probs_ref = input.probabilities();
        const auto ident_ref =
            input.marginalProbabilities(identity);
        const auto perm_ref =
            input.marginalProbabilities(permuted);
        for (const int t : kThreadCounts) {
            setKernelThreads(t);
            expectBitIdentical(input.probabilities(), probs_ref,
                               "probabilities", n, t);
            expectBitIdentical(
                input.marginalProbabilities(identity), ident_ref,
                "marginalIdentity", n, t);
            expectBitIdentical(
                input.marginalProbabilities(permuted), perm_ref,
                "marginalPermuted", n, t);
        }
        // Sanity: the chunked histogram is still a distribution.
        double total = 0.0;
        for (const double v : ident_ref)
            total += v;
        EXPECT_NEAR(total, 1.0, 1e-10);
    }
}

TEST(ParallelKernels, CopyFromRecyclesCapacityAndIsExact)
{
    KernelThreadsGuard guard;
    const Statevector src = makeState(16);
    for (const int t : kThreadCounts) {
        setKernelThreads(t);
        Statevector dst(1);
        EXPECT_FALSE(dst.copyFrom(src)); // must grow: 2 -> 2^16
        expectBitIdentical(src, dst, "copyFrom-grow", 16, t);
        Statevector dst2(16);
        EXPECT_TRUE(dst2.copyFrom(src)); // capacity suffices
        expectBitIdentical(src, dst2, "copyFrom-reuse", 16, t);
        // Shrinking width reuses the larger allocation.
        const Statevector narrow = makeState(4);
        EXPECT_TRUE(dst2.copyFrom(narrow));
        EXPECT_EQ(dst2.numQubits(), 4);
        expectBitIdentical(narrow, dst2, "copyFrom-narrow", 4, t);
    }
}

TEST(ParallelKernels, BasisChangeRunsNeverFuseAcrossShapeBoundary)
{
    // An ansatz ENDING in a basis-change gate, measured in a basis
    // whose first rotation targets the same qubit: the flattened
    // circuit sees [..., H(0), H(0), ...] in ONE applyOps span
    // while the (prep, suffix) shape applies the same gates across
    // the tail/suffix boundary in separate spans. Matrix2 fusion
    // of the H·H run would give the two shapes different float
    // roundings — the fusion rule must leave basis-change-only
    // runs unfused so both shapes stay bit-identical (they share a
    // prep cache key, so this is a hard contract).
    for (const int n : {5, 17}) { // below and above the threshold
        Circuit prep(n);
        for (int q = 0; q < n; ++q)
            prep.ry(q, 0.4 + 0.1 * q);
        for (int q = 0; q + 1 < n; ++q)
            prep.cx(q, q + 1);
        prep.h(0).s(1); // trailing basis-change run

        Circuit suffix(n);
        suffix.h(0).sdg(1).h(1); // X on q0, Y-style on q1
        suffix.measureAll();

        Circuit full(n);
        full.append(prep);
        full.append(suffix);
        full.measureAll();

        SimEngine engine;
        const auto prefixed =
            engine.measuredMarginal(&prep, suffix, {});
        const auto flattened =
            engine.measuredMarginal(nullptr, full, {});
        expectBitIdentical(prefixed, flattened,
                           "prefixedVsFlattened", n,
                           kernelThreads());

        // Mixed suffix [RZ(q), H(q)]: the flattened twin's
        // canonical split lands BETWEEN the two gates, so a fused
        // [RZ·H] in the prefixed span would diverge — the
        // non-basis->basis transition rule must keep them
        // separate.
        Circuit mixed_suffix(n);
        mixed_suffix.rz(0, 0.61).h(0);
        mixed_suffix.measureAll();
        Circuit mixed_full(n);
        mixed_full.append(prep);
        mixed_full.append(mixed_suffix);
        mixed_full.measureAll();
        const auto mixed_prefixed =
            engine.measuredMarginal(&prep, mixed_suffix, {});
        const auto mixed_flattened =
            engine.measuredMarginal(nullptr, mixed_full, {});
        expectBitIdentical(mixed_prefixed, mixed_flattened,
                           "mixedSuffixShapes", n,
                           kernelThreads());
    }
}

// ---- The primitive itself, on ragged totals -----------------------

TEST(ParallelPrimitive, ChunkDecompositionIsThreadInvariant)
{
    // Chunk size depends only on the total.
    EXPECT_EQ(parallelChunkSize(100), kParallelGrain);
    EXPECT_EQ(parallelChunkCount(1), 1u);
    EXPECT_EQ(parallelChunkCount(kParallelGrain), 1u);
    EXPECT_EQ(parallelChunkCount(kParallelGrain + 1), 2u);
    EXPECT_EQ(parallelChunkCount(kParallelEngage), 2u);
    // Above kMaxParallelChunks * grain the chunk size grows so the
    // count stays bounded.
    const std::uint64_t huge =
        kMaxParallelChunks * kParallelGrain * 4;
    EXPECT_LE(parallelChunkCount(huge), kMaxParallelChunks);
    // Ragged totals still produce aligned chunk boundaries: the
    // size is rounded up to kParallelChunkAlign so every interior
    // boundary lands on an 8-item line (SIMD lane-group width).
    for (std::uint64_t ragged :
         {huge + 1, huge + 7, huge + 1009, huge * 3 + 13}) {
        EXPECT_EQ(parallelChunkSize(ragged) % kParallelChunkAlign,
                  0u)
            << "total=" << ragged;
        EXPECT_LE(parallelChunkCount(ragged), kMaxParallelChunks);
    }
}

TEST(ParallelPrimitive, RaggedTotalsCoverEveryIndexOnce)
{
    KernelThreadsGuard guard;
    // 3 full chunks plus an odd 17-item tail.
    const std::uint64_t total = 3 * kParallelGrain + 17;
    for (const int t : kThreadCounts) {
        setKernelThreads(t);
        std::vector<std::atomic<int>> hits(total);
        parallelForChunks(
            total, [&](std::uint64_t, std::uint64_t begin,
                       std::uint64_t end) {
                for (std::uint64_t i = begin; i < end; ++i)
                    hits[i].fetch_add(1,
                                      std::memory_order_relaxed);
            });
        std::uint64_t wrong = 0;
        for (std::uint64_t i = 0; i < total; ++i)
            if (hits[i].load(std::memory_order_relaxed) != 1)
                ++wrong;
        EXPECT_EQ(wrong, 0u) << "t=" << t;
    }
}

TEST(ParallelPrimitive, ChunkedReduceIsBitIdenticalOnRaggedTotals)
{
    KernelThreadsGuard guard;
    const std::uint64_t total = 5 * kParallelGrain + 12345;
    // A sum whose terms vary in magnitude, so association matters
    // and any ordering drift would change the bits.
    auto term = [](std::uint64_t i) {
        return 1.0 / static_cast<double>(i + 1) +
            static_cast<double>(i % 97) * 1e-7;
    };
    setKernelThreads(1);
    const double reference = chunkedReduce<double>(
        total, [&](std::uint64_t b, std::uint64_t e) {
            double acc = 0.0;
            for (std::uint64_t i = b; i < e; ++i)
                acc += term(i);
            return acc;
        });
    for (const int t : kThreadCounts) {
        setKernelThreads(t);
        for (int repeat = 0; repeat < 3; ++repeat) {
            const double got = chunkedReduce<double>(
                total, [&](std::uint64_t b, std::uint64_t e) {
                    double acc = 0.0;
                    for (std::uint64_t i = b; i < e; ++i)
                        acc += term(i);
                    return acc;
                });
            EXPECT_EQ(got, reference) << "t=" << t;
        }
    }
}

TEST(ParallelPrimitive, PairwiseReduceOrderIsFixed)
{
    // ((a+b)+(c+d)) + e — the documented association.
    std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
    const double got = pairwiseReduce(v);
    EXPECT_EQ(got, ((1.0 + 2.0) + (3.0 + 4.0)) + 5.0);
}

TEST(ParallelPrimitive, SetKernelThreadsClampsAndDefaults)
{
    KernelThreadsGuard guard;
    setKernelThreads(3);
    EXPECT_EQ(kernelThreads(), 3);
    setKernelThreads(kMaxKernelThreads + 100);
    EXPECT_EQ(kernelThreads(), kMaxKernelThreads);
    setKernelThreads(0);
    EXPECT_EQ(kernelThreads(), defaultKernelThreads());
}

} // namespace
} // namespace varsaw
