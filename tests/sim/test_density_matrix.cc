/**
 * @file
 * Tests for the density-matrix engine, including cross-validation
 * against the state-vector simulator and the trajectory noise mode.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/density_matrix.hh"
#include "sim/statevector.hh"
#include "util/rng.hh"

namespace varsaw {
namespace {

constexpr double kEps = 1e-10;

TEST(DensityMatrix, InitialStateIsPureZero)
{
    DensityMatrix dm(2);
    EXPECT_NEAR(dm.trace(), 1.0, kEps);
    EXPECT_NEAR(dm.purity(), 1.0, kEps);
    EXPECT_NEAR(dm.probabilities()[0], 1.0, kEps);
}

TEST(DensityMatrix, MatchesStatevectorOnRandomCircuits)
{
    Rng rng(31);
    for (int trial = 0; trial < 5; ++trial) {
        const int n = 2 + static_cast<int>(rng.uniformInt(3));
        Circuit c(n);
        for (int g = 0; g < 20; ++g) {
            const int q = static_cast<int>(rng.uniformInt(n));
            switch (rng.uniformInt(5)) {
              case 0: c.h(q); break;
              case 1: c.ry(q, rng.uniform(-3, 3)); break;
              case 2: c.rz(q, rng.uniform(-3, 3)); break;
              case 3: {
                int q2 = static_cast<int>(rng.uniformInt(n));
                if (q2 == q)
                    q2 = (q + 1) % n;
                c.cx(q, q2);
                break;
              }
              default: {
                int q2 = static_cast<int>(rng.uniformInt(n));
                if (q2 == q)
                    q2 = (q + 1) % n;
                c.rzz(q, q2, rng.uniform(-2, 2));
                break;
              }
            }
        }
        Statevector sv(n);
        sv.run(c, {});
        DensityMatrix dm(n);
        dm.run(c, {});

        EXPECT_NEAR(dm.purity(), 1.0, 1e-9);
        const auto p_sv = sv.probabilities();
        const auto p_dm = dm.probabilities();
        for (std::size_t i = 0; i < p_sv.size(); ++i)
            EXPECT_NEAR(p_dm[i], p_sv[i], 1e-9);

        // Random Pauli expectation agreement.
        PauliString p(n);
        for (int q = 0; q < n; ++q)
            p.setOp(q, static_cast<PauliOp>(rng.uniformInt(4)));
        EXPECT_NEAR(dm.expectationPauli(p), sv.expectationPauli(p),
                    1e-9);
    }
}

TEST(DensityMatrix, DepolarizingShrinksPurity)
{
    DensityMatrix dm(1);
    dm.apply1Q(0, gates::fixedMatrix(GateKind::H));
    EXPECT_NEAR(dm.purity(), 1.0, kEps);
    dm.applyDepolarizing(0, 0.2);
    EXPECT_LT(dm.purity(), 1.0);
    EXPECT_NEAR(dm.trace(), 1.0, kEps);
}

TEST(DensityMatrix, FullDepolarizingGivesMaximallyMixed)
{
    // p = 3/4 sends any single-qubit state to I/2.
    DensityMatrix dm(1);
    dm.apply1Q(0, gates::ry(0.7));
    dm.applyDepolarizing(0, 0.75);
    EXPECT_NEAR(dm.probabilities()[0], 0.5, kEps);
    EXPECT_NEAR(dm.probabilities()[1], 0.5, kEps);
    EXPECT_NEAR(dm.purity(), 0.5, kEps);
}

TEST(DensityMatrix, DepolarizingZExpectationScaling)
{
    // <Z> scales by (1 - 4p/3) under depolarizing(p).
    DensityMatrix dm(1);
    const double p = 0.1;
    dm.applyDepolarizing(0, p);
    EXPECT_NEAR(dm.expectationPauli(PauliString::parse("Z")),
                1.0 - 4.0 * p / 3.0, kEps);
}

TEST(DensityMatrix, TwoQubitDepolarizing)
{
    DensityMatrix dm(2);
    dm.applyTwoQubitDepolarizing(0, 1, 15.0 / 16.0);
    // Fully mixed: every diagonal entry 1/4.
    for (double prob : dm.probabilities())
        EXPECT_NEAR(prob, 0.25, kEps);
    EXPECT_NEAR(dm.trace(), 1.0, kEps);
}

TEST(DensityMatrix, ConjugateByPauliMatchesUnitary)
{
    Rng rng(77);
    DensityMatrix dm(2);
    dm.apply1Q(0, gates::ry(1.1));
    dm.applyCX(0, 1);

    DensityMatrix conj = dm;
    conj.conjugateByPauli(PauliString::parse("XZ"));

    DensityMatrix gate = dm;
    gate.apply1Q(0, gates::fixedMatrix(GateKind::X));
    gate.apply1Q(1, gates::fixedMatrix(GateKind::Z));

    for (std::uint64_t r = 0; r < dm.dim(); ++r)
        for (std::uint64_t c = 0; c < dm.dim(); ++c)
            EXPECT_NEAR(std::abs(conj.element(r, c) -
                                 gate.element(r, c)),
                        0.0, 1e-9);
}

TEST(DensityMatrix, RunNoisyKeepsTraceAndLowersPurity)
{
    Circuit c(3);
    c.h(0).cx(0, 1).cx(1, 2);
    DensityMatrix dm(3);
    dm.runNoisy(c, {}, 1e-3, 1e-2);
    EXPECT_NEAR(dm.trace(), 1.0, 1e-9);
    EXPECT_LT(dm.purity(), 1.0);
    EXPECT_GT(dm.purity(), 0.9);
}

TEST(DensityMatrix, MarginalProbabilities)
{
    Circuit c(3);
    c.h(0).cx(0, 1).cx(1, 2);
    DensityMatrix dm(3);
    dm.run(c, {});
    const auto marg = dm.marginalProbabilities({0, 2});
    EXPECT_NEAR(marg[0b00], 0.5, kEps);
    EXPECT_NEAR(marg[0b11], 0.5, kEps);
}

TEST(Rzz, StatevectorActionOnBasisStates)
{
    // RZZ only adds phases; probabilities unchanged.
    Statevector sv(2);
    sv.applyRZZ(0, 1, 1.3);
    EXPECT_NEAR(sv.probabilities()[0], 1.0, kEps);

    // On |++>, RZZ(theta) keeps <XX> = 1 and rotates single-qubit
    // coherences: <X I> = cos(theta), <Y Z> = sin(theta)
    // (parity-sector phase analysis).
    const double theta = M_PI / 3.0;
    Statevector sv2(2);
    sv2.apply1Q(0, gates::fixedMatrix(GateKind::H));
    sv2.apply1Q(1, gates::fixedMatrix(GateKind::H));
    sv2.applyRZZ(0, 1, theta);
    EXPECT_NEAR(sv2.norm(), 1.0, kEps);
    EXPECT_NEAR(sv2.expectationPauli(PauliString::parse("ZZ")), 0.0,
                kEps);
    EXPECT_NEAR(sv2.expectationPauli(PauliString::parse("XX")), 1.0,
                kEps);
    EXPECT_NEAR(sv2.expectationPauli(PauliString::parse("XI")),
                std::cos(theta), kEps);
    EXPECT_NEAR(
        std::abs(sv2.expectationPauli(PauliString::parse("YZ"))),
        std::sin(theta), kEps);
}

TEST(Rzz, EquivalentToCxRzCx)
{
    // RZZ(t) == CX(0,1); RZ(t) on target; CX(0,1).
    const double theta = 0.77;
    Circuit a(2), b(2);
    a.h(0).ry(1, 0.3).rzz(0, 1, theta);
    b.h(0).ry(1, 0.3).cx(0, 1).rz(1, theta).cx(0, 1);
    Statevector sva(2), svb(2);
    sva.run(a, {});
    svb.run(b, {});
    const auto ip = sva.innerProduct(svb);
    EXPECT_NEAR(std::abs(ip), 1.0, 1e-10);
}

} // namespace
} // namespace varsaw
